#!/usr/bin/env python
"""Block-size analysis: walk the paper's Sec. IV derivation end to end.

Reproduces, for the X-Gene-class chip:
- the register-blocking optimum (Fig. 5): mr x nr = 8x6, nrf = 6,
  gamma = 6.857;
- the cache-blocking chain (eqs. (15)/(17)/(18)): kc = 512, mc = 56,
  nc = 1920, with the cache-occupancy fractions the paper quotes;
- the multi-threaded adjustment (eqs. (19)/(20)): mc = 24, nc = 1792;
- the prefetch distances PREFA = 1024 and PREFB = 24576;
- the layer-by-layer compute-to-memory ratios (eqs. (8)/(14)/(16)).

Run:  python examples/block_size_analysis.py
"""

from repro.arch import XGENE
from repro.blocking import (
    RegisterBlockingProblem,
    goto_blocking,
    plan_prefetch,
    solve_cache_blocking,
)
from repro.model import RatioBreakdown


def main() -> None:
    chip = XGENE

    # -- register blocking (Sec. IV-A) --------------------------------------
    problem = RegisterBlockingProblem.from_core(chip.core)
    best = problem.solve()
    print("register blocking (eqs. (8)-(11)):")
    print(f"  optimum: mr x nr = {best.mr}x{best.nr}, nrf = {best.nrf}, "
          f"gamma = {best.gamma:.3f}")
    print(f"  C tile uses {best.c_registers} vector registers; "
          f"{best.ab_registers} rotate for A/B\n")

    # -- cache blocking (Sec. IV-B) ------------------------------------------
    serial = solve_cache_blocking(chip, best.mr, best.nr, threads=1)
    l1_frac = serial.kc * best.nr * 8 / chip.l1d.size_bytes
    l2_frac = serial.mc * serial.kc * 8 / chip.l2.size_bytes
    l3_frac = serial.kc * serial.nc * 8 / chip.l3.size_bytes
    print("cache blocking, one thread (eqs. (15)/(17)/(18)):")
    print(f"  {serial}   (k1={serial.k1}, k2={serial.k2}, k3={serial.k3})")
    print(f"  B sliver fills {l1_frac:.2f} of L1, A block {l2_frac:.2f} of "
          f"L2, B panel {l3_frac:.2f} of L3\n")

    # -- parallel adjustment (Sec. IV-C) --------------------------------------
    print("cache blocking under threads (eqs. (19)/(20)):")
    for threads in (1, 2, 4, 8):
        blk = solve_cache_blocking(chip, best.mr, best.nr, threads=threads)
        print(f"  {threads} thread(s): {blk}")
    print()

    # -- prefetch distances ----------------------------------------------------
    pf = plan_prefetch(best.mr, best.nr, serial.kc)
    print(f"prefetch distances: PREFA = {pf.prefa_bytes} B (A into L1), "
          f"PREFB = {pf.prefb_bytes} B (B into L2)\n")

    # -- gamma across layers -----------------------------------------------------
    ratios = RatioBreakdown.for_blocking(best.mr, best.nr, serial.kc, serial.mc)
    print("compute-to-memory ratios across GEBP layers:")
    print(f"  register kernel (eq. 8):  {ratios.register_kernel:.3f}")
    print(f"  GESS/GEBS (eq. 14):       {ratios.gess:.3f}")
    print(f"  GEBP (eq. 16):            {ratios.gebp:.3f}\n")

    # -- comparison with the half-cache heuristic ----------------------------------
    goto = goto_blocking(chip, best.mr, best.nr)
    print(f"Goto half-cache heuristic would pick: {goto} "
          "(Table VI's comparison point)")


if __name__ == "__main__":
    main()
