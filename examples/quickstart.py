#!/usr/bin/env python
"""Quickstart: run the paper's DGEMM functionally and on the modeled chip.

Computes ``C := alpha*A@B + beta*C`` through the real Goto loop nest
(blocking + packing + GEBP, validated against numpy), then asks the
performance simulator what the same call achieves on the 64-bit ARMv8
eight-core chip — serial and with all eight cores.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch import XGENE
from repro.blocking import solve_cache_blocking
from repro.gemm import GemmTrace, dgemm, numpy_dgemm
from repro.sim import GemmSimulator


def main() -> None:
    rng = np.random.default_rng(2015)
    m = n = k = 768
    a = np.asfortranarray(rng.standard_normal((m, k)))
    b = np.asfortranarray(rng.standard_normal((k, n)))
    c = np.asfortranarray(rng.standard_normal((m, n)))

    # 1. The analytic block-size engine (paper Sec. IV) for this chip.
    blocking = solve_cache_blocking(XGENE, mr=8, nr=6, threads=1)
    print(f"derived blocking for {XGENE.name}: {blocking}")

    # 2. Functional DGEMM through the packed Goto loop nest.
    trace = GemmTrace()
    result = dgemm(a, b, c.copy(order="F"), alpha=1.0, beta=1.0,
                   blocking=blocking, trace=trace)
    err = np.abs(result - numpy_dgemm(a, b, c)).max()
    print(f"functional DGEMM: {trace.flops / 1e6:.0f} Mflops of work, "
          f"{len(trace.gebps)} GEBP calls, max |err| vs numpy = {err:.2e}")

    # 3. Predicted performance on the modeled ARMv8 chip.
    sim = GemmSimulator(XGENE)
    for threads in (1, 8):
        perf = sim.simulate("OpenBLAS-8x6", m, n, k, threads=threads)
        peak = XGENE.peak_flops_for(threads) / 1e9
        print(f"simulated {threads} thread(s): {perf.gflops:5.2f} Gflops "
              f"of {peak:.1f} peak  ({perf.efficiency * 100:.1f}% efficiency)")

    # 4. The register kernel's theoretical ceiling (Table IV, 7:24).
    ub = sim.kernel_upper_bound(sim._resolve("OpenBLAS-8x6"))
    print(f"register-kernel upper bound (micro-benchmark): {ub * 100:.1f}%")


if __name__ == "__main__":
    main()
