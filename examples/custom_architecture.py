#!/usr/bin/env python
"""Apply the paper's method to a different (hypothetical) ARM SoC.

The whole point of the theory-guided approach is that nothing is specific
to the X-Gene: the register-blocking optimum, the cache block sizes, the
prefetch distances and the predicted efficiency all derive from the
architecture description. This example defines a beefier 16-core chip
(wider SIMD would change eq. (11); here we grow caches and core count)
and re-derives everything.

Run:  python examples/custom_architecture.py
"""

from repro.arch import KB, MB, CacheParams, ChipParams, CoreParams, DramParams
from repro.blocking import (
    RegisterBlockingProblem,
    plan_prefetch,
    solve_cache_blocking,
)
from repro.sim import GemmSimulator

BIG_SOC = ChipParams(
    name="hypothetical-armv8-16core",
    cores=16,
    cores_per_module=4,
    core=CoreParams(
        issue_width=4,
        fma_pipes=1,
        load_ports=1,
        fma_latency=4,
        fma_throughput_cycles=2,
        load_latency=4,
        fp_registers=32,
        fp_register_bytes=16,
        frequency_hz=2.6e9,
    ),
    l1d=CacheParams(name="L1D", size_bytes=64 * KB, line_bytes=64, ways=4,
                    latency_cycles=4, shared_by=1),
    l2=CacheParams(name="L2", size_bytes=1 * MB, line_bytes=64, ways=16,
                   latency_cycles=14, shared_by=4),
    l3=CacheParams(name="L3", size_bytes=16 * MB, line_bytes=64, ways=16,
                   latency_cycles=42, shared_by=16),
    dram=DramParams(latency_cycles=200, bandwidth_bytes_per_cycle=32.0,
                    bridges=2),
)


def main() -> None:
    chip = BIG_SOC
    print(f"chip: {chip.name}  ({chip.cores} cores, "
          f"{chip.peak_flops / 1e9:.1f} Gflops peak)\n")

    # Register blocking is a function of the register file alone — with
    # the same A64 file, the 8x6 optimum carries over.
    best = RegisterBlockingProblem.from_core(chip.core).solve()
    print(f"register blocking: {best.mr}x{best.nr} (gamma {best.gamma:.3f})")

    # Cache blocking tracks the larger caches.
    for threads in (1, chip.cores):
        blk = solve_cache_blocking(chip, best.mr, best.nr, threads=threads)
        print(f"  {threads:2d} thread(s): {blk}")
    blk1 = solve_cache_blocking(chip, best.mr, best.nr, threads=1)
    pf = plan_prefetch(best.mr, best.nr, blk1.kc)
    print(f"prefetch distances: PREFA={pf.prefa_bytes}, "
          f"PREFB={pf.prefb_bytes}\n")

    # Predicted DGEMM efficiency on the new chip.
    sim = GemmSimulator(chip)
    for threads in (1, 4, 16):
        p = sim.simulate("OpenBLAS-8x6", 4096, 4096, 4096, threads=threads)
        print(f"simulated {threads:2d} thread(s): {p.gflops:6.2f} Gflops "
              f"({p.efficiency * 100:.1f}%)")


if __name__ == "__main__":
    main()
