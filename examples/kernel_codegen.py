#!/usr/bin/env python
"""Generate the paper's 8x6 register kernel and verify it on the pipeline.

Shows the full Sec. IV-A pipeline:
- solve the register rotation (eq. (12)) — both the paper's Table I cycle
  and the exhaustive optimum;
- schedule the loads (eq. (13)) and report the realized distances;
- emit the assembly (Fig. 8) with PREFA/PREFB prefetches;
- run the generated body on the scoreboard core: the rotated kernel must
  sustain the FMA pipe with zero stalls, and keep doing so even when loads
  take L2-like latency — which the unrotated kernel cannot.

Run:  python examples/kernel_codegen.py
"""

from repro.arch import XGENE
from repro.kernels import (
    KERNEL_8X6,
    get_variant,
    paper_plan,
    schedule_body,
    solve_rotation,
)
from repro.pipeline import ScoreboardCore


def main() -> None:
    # -- rotation (eq. 12) ----------------------------------------------------
    table = paper_plan()
    solved = solve_rotation(KERNEL_8X6)
    print("software register rotation (Table I, paper's cycle):")
    for slot, regs in table.table():
        print(f"  {slot}: {regs}")
    print(f"  paper cycle min CL->NF distance: {table.min_distance}")
    print(f"  exhaustive optimum distance:     {solved.min_distance} "
          f"(cycle {solved.sigma})\n")

    # -- scheduling (eq. 13) -----------------------------------------------------
    sched = schedule_body(KERNEL_8X6, table)
    print(f"load schedule: min load-to-use distance "
          f"{sched.min_load_use_distance} instructions "
          "(paper's Fig. 7 realizes 9)\n")

    # -- codegen (Fig. 8) ----------------------------------------------------------
    kernel = get_variant("OpenBLAS-8x6")
    lines = kernel.body.to_text().splitlines()
    print(f"generated body: {len(lines)} instructions "
          f"({kernel.body.num_fmla} fmla, {kernel.body.num_loads} ldr, "
          f"{kernel.body.num_prefetches} prfm); first 12:")
    for line in lines[:12]:
        print(line)
    print()

    # -- pipeline verification --------------------------------------------------------
    for label, latency in (("L1 hit", XGENE.core.load_latency),
                           ("L2 fill", XGENE.l2.latency_cycles)):
        core = ScoreboardCore(XGENE.core, load_latency=latency)
        rotated = core.steady_state_cycles_per_iteration(
            kernel.body.instructions)
        static = core.steady_state_cycles_per_iteration(
            get_variant("OpenBLAS-8x6-noRR").body.instructions)
        ideal = kernel.body.num_fmla * XGENE.core.fma_throughput_cycles
        print(f"scoreboard @ {label} load latency ({latency} cyc): "
              f"rotated {rotated:.0f} cyc/body (ideal {ideal}), "
              f"unrotated {static:.0f} cyc/body")


if __name__ == "__main__":
    main()
