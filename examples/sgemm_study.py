#!/usr/bin/env python
"""SGEMM: the paper's method at single precision.

Four float32 lanes per NEON register change the whole derivation chain:
the lane constraint (11) becomes multiples of 4, the register budget (9)
admits a 12x8 tile with gamma 9.6 (vs 8x6 / 6.857 for DGEMM), and the
cache chain yields kc = 768 while keeping the B sliver at exactly 3/4 of
the L1 — the same fraction as double precision, because the reservation
arithmetic is element-size invariant. The functional SGEMM then runs the
identical packed loop nest in float32.

Run:  python examples/sgemm_study.py
"""

import numpy as np

from repro.arch import XGENE
from repro.gemm import sgemm, sgemm_blocking, sgemm_register_blocking
from repro.pipeline import LoadInterferenceModel


def main() -> None:
    reg = sgemm_register_blocking()
    print(f"SGEMM register blocking: {reg.mr}x{reg.nr} "
          f"(gamma {reg.gamma:.2f}, nrf {reg.nrf})")
    for threads in (1, 8):
        blk = sgemm_blocking(threads=threads)
        frac = blk.kc * blk.nr * 4 / XGENE.l1d.size_bytes
        print(f"  {threads} thread(s): {blk}  (B sliver fills {frac:.2f} "
              "of L1)")

    # Register-kernel bound: per k-iteration, 12x8/4 = 24 FMLAs and
    # (12+8)/4 = 5 loads; same calibrated overlap model.
    model = LoadInterferenceModel()
    bound = model.efficiency(5, 24)
    print(f"SGEMM register-kernel upper bound: {bound:.1%} "
          f"(DGEMM 8x6: {model.efficiency(7, 24):.1%})")

    # Functional check.
    rng = np.random.default_rng(8)
    m = n = k = 256
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    c = rng.standard_normal((m, n)).astype(np.float32)
    got = sgemm(a, b, c.copy())
    err = np.abs(got - (a @ b + c)).max()
    print(f"functional SGEMM {m}^3: max |err| vs numpy = {err:.2e} "
          f"(float32 tolerance)")


if __name__ == "__main__":
    main()
