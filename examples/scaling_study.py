#!/usr/bin/env python
"""Scaling study: threads, block-size sensitivity and the ATLAS gap.

Reproduces the paper's parallel findings in one script:
- Fig. 14: OpenBLAS-8x6 under 1/2/4/8 threads across matrix sizes;
- Table VI: what reusing the serial block sizes costs at 8 threads;
- the headline +~8% over the ATLAS 5x5 implementation, serial and
  parallel.

Run:  python examples/scaling_study.py
"""

from repro.analysis import format_series
from repro.arch import XGENE
from repro.blocking import CacheBlocking, solve_cache_blocking
from repro.sim import GemmSimulator

SIZES = (256, 512, 1024, 2048, 3072, 4096, 5120, 6400)


def main() -> None:
    sim = GemmSimulator(XGENE)

    # -- Fig. 14: thread scaling ------------------------------------------------
    series = []
    for threads in (1, 2, 4, 8):
        blk = solve_cache_blocking(XGENE, 8, 6, threads=threads)
        gfs = [
            sim.simulate("OpenBLAS-8x6", s, s, s, threads=threads).gflops
            for s in SIZES
        ]
        series.append((f"{threads}T ({blk})", gfs))
    print(format_series(SIZES, series, x_label="size",
                        title="OpenBLAS-8x6 Gflops under thread counts"))
    print()

    # -- Table VI: block-size sensitivity at 8 threads ------------------------------
    print("8-thread efficiency when block sizes ignore cache sharing:")
    for kc, mc, nc in ((512, 24, 1792), (512, 56, 1920)):
        blk = CacheBlocking(8, 6, kc, mc, nc, 1, 2, 1)
        p = sim.simulate("OpenBLAS-8x6", 5120, 5120, 5120, threads=8,
                         blocking=blk)
        note = "derived for 8T" if mc == 24 else "serial sizes reused"
        print(f"  {kc}x{mc}x{nc} ({note}): {p.efficiency * 100:.1f}%")
    print()

    # -- the ATLAS comparison ------------------------------------------------------
    for threads in (1, 8):
        ours = sim.simulate("OpenBLAS-8x6", 5120, 5120, 5120, threads=threads)
        atlas = sim.simulate("ATLAS-5x5", 5120, 5120, 5120, threads=threads)
        gain = (ours.gflops / atlas.gflops - 1) * 100
        print(f"{threads} thread(s): OpenBLAS-8x6 {ours.gflops:.2f} vs "
              f"ATLAS-5x5 {atlas.gflops:.2f} Gflops  (+{gain:.1f}%)")


if __name__ == "__main__":
    main()
