#!/usr/bin/env python
"""LINPACK motif: blocked LU on top of the reproduced DGEMM.

The paper's opening motivation: "as the core part of the LINPACK
benchmark, DGEMM has been an important kernel for measuring the potential
performance of a HPC platform." This example runs the whole chain:

1. factor a dense system with right-looking blocked LU whose trailing
   updates go through our packed Goto DGEMM;
2. solve and report the HPL-style scaled residual (must be O(1));
3. ask the chip simulator what fraction of the factorization's DGEMM
   work the 8x6 kernel would sustain — i.e., the Linpack-relevant number
   the paper is ultimately optimizing.

Run:  python examples/linpack_motif.py
"""

import numpy as np

from repro.apps import linpack_residual, lu_factor, lu_solve
from repro.arch import XGENE
from repro.sim import GemmSimulator


def main() -> None:
    rng = np.random.default_rng(1979)  # LINPACK's birth year
    n, nb = 384, 64
    a = rng.standard_normal((n, n)) + 0.1 * n * np.eye(n)
    b = rng.standard_normal(n)

    result = lu_factor(a, nb=nb)
    x = lu_solve(result, b)
    resid = linpack_residual(a, x, b)
    total_flops = 2 * n**3 / 3
    print(f"LU({n}x{n}, nb={nb}): scaled residual {resid:.3e} "
          f"({'PASS' if resid < 16 else 'FAIL'} by HPL's threshold of 16)")
    print(f"flops: {total_flops / 1e6:.0f} M total, "
          f"{result.gemm_flops / 1e6:.0f} M "
          f"({result.gemm_flops / total_flops:.0%}) in DGEMM updates")

    # What would the chip sustain on the dominant update shapes?
    sim = GemmSimulator(XGENE)
    m = n - nb
    for threads in (1, 8):
        perf = sim.simulate("OpenBLAS-8x6", m, m, nb, threads=threads)
        print(f"simulated trailing update ({m}x{m} rank-{nb}) on "
              f"{threads} thread(s): {perf.gflops:.2f} Gflops "
              f"({perf.efficiency:.1%})")


if __name__ == "__main__":
    main()
