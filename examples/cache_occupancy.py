#!/usr/bin/env python
"""Inspect L1 occupancy during GEBP — eq. (15)'s intent vs LRU reality.

The paper's kc derivation reserves k1 = 1 of the L1's 4 ways for the C
tile and the streaming A column, leaving 3 ways for the resident
kc x nr B sliver (3/4 of the cache). Replaying a GEBP slice through the
set-associative simulator shows something the arithmetic alone cannot:
under *strict LRU*, the A stream (touched once per iteration, just like
B's lines) ends up sharing the ways roughly evenly with B — the static
reservation is not literally enforced by the replacement policy. What
keeps B-sliver accesses fast on the real machine is the pair of
prefetchers (PLDL1KEEP + the hardware sequential prefetcher), which cover
both streams' fills; the reservation arithmetic guarantees there is
*capacity* for this to work without thrashing.

Run:  python examples/cache_occupancy.py
"""

from repro.arch import XGENE
from repro.blocking import solve_cache_blocking
from repro.kernels import KERNEL_8X6
from repro.memory import MemoryHierarchy
from repro.sim import simulate_gebp_cache

# The address regions simulate_gebp_cache assigns per stream.
REGION_NAMES = [
    (0x00000000, 1 << 28, "A"),
    (1 << 28, 1 << 29, "B"),
    (1 << 29, 1 << 30, "C"),
]


def owner(line: int, line_bytes: int) -> str:
    addr = line * line_bytes
    for lo, hi, name in REGION_NAMES:
        if lo <= addr < hi:
            return name
    return "?"


def main() -> None:
    chip = XGENE
    blocking = solve_cache_blocking(chip, 8, 6)
    hierarchy = MemoryHierarchy(chip)
    result = simulate_gebp_cache(
        KERNEL_8X6, blocking, chip=chip, hierarchy=hierarchy
    )
    print(f"GEBP slice replayed: {result.l1_loads} L1 loads, "
          f"{result.l1_load_miss_rate:.1%} miss rate\n")

    l1 = hierarchy.l1[0]
    line_bytes = chip.l1d.line_bytes
    print("L1 occupancy after the run (sampled sets):\n")
    print("set  | ways (stream owning each resident line)")
    print("-----+----------------------------------------")
    counts = {"A": 0, "B": 0, "C": 0, "?": 0}
    for s in range(chip.l1d.num_sets):
        owners = []
        for line in l1.set_contents(s):
            name = owner(line, line_bytes)
            owners.append(name)
            counts[name] += 1
        if s % 16 == 0:
            print(f"{s:4d} | {' '.join(owners)}")
    total = sum(counts.values())
    print("\nway occupancy by stream:")
    for name in "ABC":
        frac = counts[name] / total if total else 0.0
        print(f"  {name}: {counts[name]:4d} lines ({frac:.1%})")
    b_frac = counts["B"] / total if total else 0.0
    print(f"\ndesign intent: B resident in 3/4 of the cache;"
          f" measured under strict LRU: {b_frac:.0%}.")
    print("The streams share ways ~evenly — residency is delivered by the")
    print("prefetchers, for which eq. (15) guarantees the capacity:")
    print(f"  miss rate with prefetchers: {result.l1_load_miss_rate:.1%}")

    # Re-run with prefetching disabled to show the capacity claim matters.
    bare = simulate_gebp_cache(
        KERNEL_8X6, blocking, chip=chip, prefetch=False, hw_late=1.0
    )
    print(f"  miss rate without them:     {bare.l1_load_miss_rate:.1%}")


if __name__ == "__main__":
    main()
