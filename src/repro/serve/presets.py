"""Warm-up query sets for ``repro serve --warm``.

A *warm set* is a deterministic list of query documents covering the
combinations a preset machine is most likely to be asked about: the
paper's kernels at the canonical square sizes and thread counts, plus
one cachesim slice and one timed micro-tile run per kernel. Warming a
cache directory with one of these sets turns the corresponding future
queries into pure disk reads.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.serve.query import MACHINE_PRESETS, QueryError

__all__ = ["WARM_PRESETS", "warm_queries"]

#: Kernels covered by every warm set (the paper's production pair).
_WARM_KERNELS = ("OpenBLAS-8x6", "OpenBLAS-4x4")

#: Square problem sizes warmed for the analytic model.
_WARM_SIZES = (256, 512, 1024)

#: Thread counts warmed (every registered preset has at least 4 cores).
_WARM_THREADS = (1, 4)

#: Valid arguments to :func:`warm_queries`.
WARM_PRESETS = MACHINE_PRESETS + ("all",)


def warm_queries(preset: str) -> List[Dict[str, Any]]:
    """The warm-up batch for ``preset`` (a machine name or ``"all"``).

    Every returned document is already in servable query shape; feeding
    the list straight to :meth:`QueryEngine.run_batch` populates the
    cache for it.
    """
    from repro.kernels.variants import get_variant

    if preset not in WARM_PRESETS:
        raise QueryError(
            f"unknown warm preset {preset!r}; choose from "
            f"{list(WARM_PRESETS)}"
        )
    machines = list(MACHINE_PRESETS) if preset == "all" else [preset]
    queries: List[Dict[str, Any]] = []
    for machine in machines:
        for kernel in _WARM_KERNELS:
            for threads in _WARM_THREADS:
                for size in _WARM_SIZES:
                    queries.append({
                        "kind": "simulate",
                        "machine": machine,
                        "kernel": kernel,
                        "m": size, "n": size, "k": size,
                        "threads": threads,
                    })
            queries.append({
                "kind": "cachesim",
                "machine": machine,
                "kernel": kernel,
                "nc_slice": 12,
            })
            # kc must be a whole number of unrolled kernel bodies.
            queries.append({
                "kind": "timed",
                "machine": machine,
                "kernel": kernel,
                "kc": get_variant(kernel).plan.unroll * 4,
            })
    return queries
