"""Sharded, crash-safe on-disk result store for the serving layer.

One JSON file per cache key, sharded by hash prefix so no single
directory grows unboundedly::

    <root>/ab/ab93f1...e2.json

Every entry is written atomically via
:func:`~repro.obs.run_report.atomic_write_text` (temp file + rename in
the same directory), so a crash mid-write can never leave a truncated
entry behind. Reads are deliberately forgiving: a missing, truncated,
garbage, version-skewed or key-mismatched file is a **miss** — the
engine recomputes and rewrites it — never an exception. A cache must
not be able to take the service down.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.obs.run_report import atomic_write_json, validate_report
from repro.serve.query import QUERY_SCHEMA_VERSION

__all__ = ["STORE_SCHEMA_VERSION", "ResultStore"]

#: Version of the on-disk entry envelope (not of the answer inside it —
#: the answer carries the RunReport SCHEMA_VERSION on its own).
STORE_SCHEMA_VERSION = 1

#: Hash-prefix characters used as the shard directory name. 2 hex chars
#: = 256 shards, keeping directories small up to millions of entries.
SHARD_CHARS = 2


class ResultStore:
    """Content-hash-keyed persistent answer store.

    Args:
        root: Directory holding the shards; created lazily on the first
            :meth:`put`.
    """

    def __init__(self, root: Any) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """The entry file a key maps to (shard dir + key file)."""
        return self.root / key[:SHARD_CHARS] / f"{key}.json"

    # -- read ---------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached answer for ``key``, or ``None`` on any miss.

        Corruption of every flavour — unreadable file, truncated or
        garbage JSON, wrong envelope, version skew, key mismatch, or an
        answer that no longer validates against the report schema — is
        treated as a miss so the entry gets recomputed and overwritten.
        """
        entry = self._load_entry(key)
        if entry is None:
            return None
        return entry["answer"]

    def _load_entry(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            text = self.path_for(key).read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
        except (json.JSONDecodeError, ValueError):
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("kind") != "serve-cache-entry":
            return None
        if doc.get("store_schema_version") != STORE_SCHEMA_VERSION:
            return None
        if doc.get("query_schema_version") != QUERY_SCHEMA_VERSION:
            return None
        if doc.get("key") != key:
            return None
        answer = doc.get("answer")
        if not isinstance(answer, dict) or validate_report(answer):
            return None
        return doc

    # -- write --------------------------------------------------------------

    def put(
        self, key: str, query: Dict[str, Any], answer: Dict[str, Any]
    ) -> Path:
        """Persist ``answer`` for ``key`` atomically; returns the path.

        The canonical query travels inside the entry purely for human
        inspection of the cache directory — reads trust only the key.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, {
            "kind": "serve-cache-entry",
            "store_schema_version": STORE_SCHEMA_VERSION,
            "query_schema_version": QUERY_SCHEMA_VERSION,
            "key": key,
            "query": query,
            "answer": answer,
        })
        return path

    # -- maintenance --------------------------------------------------------

    def keys(self) -> Iterator[str]:
        """Every key with a well-formed entry file name on disk."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or len(shard.name) != SHARD_CHARS:
                continue
            for entry in sorted(shard.glob("*.json")):
                key = entry.stem
                if key.startswith(shard.name):
                    yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def bytes_held(self) -> int:
        """Total size of all entry files (the cache's disk footprint)."""
        total = 0
        for key in self.keys():
            try:
                total += os.path.getsize(self.path_for(key))
            except OSError:
                continue
        return total

    def __repr__(self) -> str:
        return f"ResultStore(root={str(self.root)!r})"
