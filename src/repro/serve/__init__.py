"""Memoized query-serving layer over the simulator engine families.

The *simulation-as-a-service* face of the stack: plain JSON query
documents (:mod:`repro.serve.query`) are content-hash-keyed, answered
from a sharded crash-safe on-disk store (:mod:`repro.serve.store`) when
possible, and otherwise computed concurrently on the generalized
:class:`~repro.gemm.pool.WorkerPool` job API and persisted
(:mod:`repro.serve.engine`). Cached answers are byte-identical to
freshly computed ones — the ``serve.cache`` oracle in
:mod:`repro.verify.oracles` enforces exactly that.
"""

from repro.serve.engine import Answer, QueryEngine, ServeStats, compute_answer
from repro.serve.presets import WARM_PRESETS, warm_queries
from repro.serve.query import (
    KINDS,
    MACHINE_PRESETS,
    QUERY_SCHEMA_VERSION,
    QueryError,
    canonical_query,
    query_key,
    resolve_machine,
)
from repro.serve.store import STORE_SCHEMA_VERSION, ResultStore

__all__ = [
    "Answer",
    "QueryEngine",
    "ServeStats",
    "compute_answer",
    "WARM_PRESETS",
    "warm_queries",
    "KINDS",
    "MACHINE_PRESETS",
    "QUERY_SCHEMA_VERSION",
    "QueryError",
    "canonical_query",
    "query_key",
    "resolve_machine",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
]
