"""Canonical query documents and their content-hash cache keys.

A *query* is a plain JSON document asking the stack one question: what
does this machine/kernel/shape combination do under one of the three
engine families? The serving layer never keys a cache on Python objects
— a query is canonicalized (defaults filled, fields validated, unknown
keys rejected) and the canonical JSON serialization is SHA-256-hashed
into the cache key, reusing the JSON-only param-doc idiom of
:mod:`repro.verify.oracles`.

Five query kinds exist — one per engine family, plus one per workload
exhibit:

- ``simulate`` — the analytic Sec. III/IV performance model
  (:meth:`~repro.sim.gemm_sim.GemmSimulator.simulate`);
- ``cachesim`` — the event-accurate GEBP cache replay
  (:func:`~repro.sim.gebp_cachesim.simulate_gebp_cache`);
- ``timed`` — the timing-functional micro-tile run
  (:meth:`~repro.sim.gemm_sim.GemmSimulator.timed_kernel`);
- ``stencil`` — the blocked-vs-unblocked stencil exhibit
  (:func:`~repro.workloads.exhibit.stencil_exhibit`);
- ``conv`` — the direct-vs-im2col convolution exhibit
  (:func:`~repro.workloads.exhibit.conv_exhibit`).

The GEMM kinds take a ``kernel`` field; the workload kinds do not (their
kernels are generated from the workload shape), and reject it like any
other field that does not belong to the kind.

The ``machine`` field is either a registered preset name (any key of
:data:`repro.arch.presets.PRESETS` — ``"xgene"``, ``"mobile"``,
``"big_little"``) or a full machine document in the
:mod:`repro.verify.machines` schema, so fuzzer-shaped chips are servable
too.

Both :data:`QUERY_SCHEMA_VERSION` and the answer document's
:data:`~repro.obs.run_report.SCHEMA_VERSION` are folded into the key
material: bumping either version changes every key, so stale cache
entries become unreachable (and are additionally rejected on read by the
store's own version check) instead of being served in an old shape.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.arch.params import ChipParams
from repro.arch.presets import preset_names
from repro.errors import ArchitectureError, ReproError
from repro.obs.run_report import SCHEMA_VERSION

__all__ = [
    "GEMM_KINDS",
    "KINDS",
    "MACHINE_PRESETS",
    "WORKLOAD_KINDS",
    "QUERY_SCHEMA_VERSION",
    "QueryError",
    "canonical_query",
    "query_key",
    "resolve_machine",
]

#: Version of the canonical query shape. Bump whenever a field is added,
#: renamed, or its default changes — any of those changes what a cached
#: answer means, so the key must change with it.
QUERY_SCHEMA_VERSION = 1

#: The GEMM query kinds, one per engine family (these take ``kernel``).
GEMM_KINDS = ("simulate", "cachesim", "timed")

#: The workload-exhibit query kinds (no ``kernel`` field).
WORKLOAD_KINDS = ("stencil", "conv")

#: All query kinds.
KINDS = GEMM_KINDS + WORKLOAD_KINDS

#: Named machine presets a query may reference — derived from the one
#: chip registry (:data:`repro.arch.presets.PRESETS`) so a new preset is
#: servable without touching this module. Preset *names* are part of the
#: cache-key material; the chips behind them must stay byte-stable.
MACHINE_PRESETS = preset_names()


class QueryError(ReproError):
    """Raised for malformed or unserviceable query documents."""


#: Per-kind field specs: name -> (default, validator description).
_COMMON_FIELDS = ("kind", "machine", "kernel")

_KIND_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "simulate": {
        "m": 256, "n": 256, "k": 256, "threads": 1, "parallel_axis": "m",
    },
    "cachesim": {
        "threads": 1, "nc_slice": None, "seed": 0, "engine": "auto",
    },
    "timed": {
        "kc": None, "hw_late": 0.25, "seed": 0, "engine": "auto",
    },
    "stencil": {
        "height": None, "width": None, "radius": 1, "iterations": 2,
        "seed": 0, "smoke": False,
    },
    "conv": {
        "cin": None, "height": None, "width": None, "kh": 3, "kw": 3,
        "filters": None, "seed": 0, "smoke": False,
    },
}


def _require_int(query: Dict[str, Any], field: str, minimum: int) -> None:
    value = query[field]
    if not isinstance(value, int) or isinstance(value, bool):
        raise QueryError(f"query field {field!r} must be an integer, "
                         f"got {value!r}")
    if value < minimum:
        raise QueryError(f"query field {field!r} must be >= {minimum}, "
                         f"got {value}")


def canonical_query(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Validate ``doc`` and return its canonical form.

    Canonicalization fills every optional field with its default and
    rejects unknown fields, so two queries that mean the same thing
    always produce the same document — and therefore the same cache key.
    The input is not mutated.
    """
    if not isinstance(doc, dict):
        raise QueryError(
            f"query must be an object, got {type(doc).__name__}"
        )
    kind = doc.get("kind")
    if kind not in KINDS:
        raise QueryError(
            f"query kind {kind!r} unknown; choose from {list(KINDS)}"
        )
    query: Dict[str, Any] = {
        "kind": kind,
        "machine": doc.get("machine", "xgene"),
    }
    common = _COMMON_FIELDS if kind in GEMM_KINDS else ("kind", "machine")
    if kind in GEMM_KINDS:
        query["kernel"] = doc.get("kernel", "OpenBLAS-8x6")
    defaults = _KIND_DEFAULTS[kind]
    unknown = set(doc) - set(common) - set(defaults)
    if unknown:
        raise QueryError(
            f"unknown {kind} query field(s): {sorted(unknown)}"
        )
    for field, default in defaults.items():
        query[field] = doc.get(field, default)

    if kind in GEMM_KINDS:
        from repro.kernels.variants import VARIANTS

        if query["kernel"] not in VARIANTS:
            raise QueryError(
                f"unknown kernel {query['kernel']!r}; choose from "
                f"{sorted(VARIANTS)}"
            )
    machine = query["machine"]
    if isinstance(machine, str):
        if machine not in MACHINE_PRESETS:
            raise QueryError(
                f"unknown machine preset {machine!r}; choose from "
                f"{list(MACHINE_PRESETS)} or pass a machine document"
            )
    elif not isinstance(machine, dict):
        raise QueryError(
            "machine must be a preset name or a machine document"
        )

    if kind == "simulate":
        for field in ("m", "n", "k", "threads"):
            _require_int(query, field, 1)
        if query["parallel_axis"] not in ("m", "n"):
            raise QueryError("parallel_axis must be 'm' or 'n'")
    elif kind == "cachesim":
        _require_int(query, "threads", 1)
        _require_int(query, "seed", 0)
        if query["nc_slice"] is not None:
            _require_int(query, "nc_slice", 1)
        if query["engine"] not in ("auto", "batched", "scalar"):
            raise QueryError(
                f"cachesim engine {query['engine']!r} unknown"
            )
    elif kind == "timed":
        _require_int(query, "seed", 0)
        if query["kc"] is not None:
            _require_int(query, "kc", 1)
        if not isinstance(query["hw_late"], (int, float)) or isinstance(
            query["hw_late"], bool
        ):
            raise QueryError("hw_late must be a number")
        query["hw_late"] = float(query["hw_late"])
        if query["engine"] not in ("auto", "compiled", "interpreted"):
            raise QueryError(f"timed engine {query['engine']!r} unknown")
    else:  # stencil / conv
        _require_int(query, "seed", 0)
        if not isinstance(query["smoke"], bool):
            raise QueryError("smoke must be a boolean")
        sized = (
            ("height", "width", "radius", "iterations")
            if kind == "stencil"
            else ("cin", "height", "width", "kh", "kw", "filters")
        )
        for field in sized:
            if query[field] is not None:
                _require_int(query, field, 1)
    return query


def query_key(query: Dict[str, Any]) -> Tuple[Dict[str, Any], str]:
    """Canonicalize ``query`` and derive its content-hash cache key.

    Returns ``(canonical, key)``. The key covers the canonical query
    plus both schema versions, so any schema bump invalidates the whole
    cache by construction.
    """
    canonical = canonical_query(query)
    material = json.dumps(
        {
            "query_schema": QUERY_SCHEMA_VERSION,
            "report_schema": SCHEMA_VERSION,
            "query": canonical,
        },
        sort_keys=True,
    )
    return canonical, hashlib.sha256(material.encode()).hexdigest()


def resolve_machine(machine: Any) -> Tuple[str, "ChipParams"]:
    """Materialize a query's ``machine`` field into a chip.

    Returns ``(label, chip)`` where the label names the preset or marks
    a custom machine document.
    """
    from repro.arch.presets import get_preset

    if isinstance(machine, str):
        try:
            return machine, get_preset(machine)
        except ArchitectureError:
            raise QueryError(
                f"unknown machine preset {machine!r}"
            ) from None
    from repro.verify.machines import build_chip

    try:
        return "custom", build_chip(machine)
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise QueryError(f"invalid machine document: {exc}") from exc
