"""The memoized query engine: dedup, pool dispatch, persistent answers.

:class:`QueryEngine` turns the repo's three deterministic engine
families into a serving layer. One :meth:`run_batch` call processes a
list of query documents:

1. every query is canonicalized and content-hash-keyed
   (:mod:`repro.serve.query`);
2. duplicate keys within the batch are **deduplicated** — each unique
   key is looked up and computed at most once, however many times it
   appears;
3. unique keys are looked up in the persistent
   :class:`~repro.serve.store.ResultStore`; hits are served verbatim
   from disk;
4. misses are dispatched as jobs to a
   :class:`~repro.gemm.pool.WorkerPool` (via :meth:`WorkerPool.submit`)
   so simulate, cachesim and timed computations run concurrently; with
   no pool they are computed inline;
5. freshly computed answers are validated, written atomically to the
   store from the dispatching thread, and served.

Answers are :class:`~repro.obs.run_report.RunReport` documents with
``created=None`` — deliberately timestamp-free, so a cached answer is
**byte-identical** to a freshly computed one (the ``serve.cache`` oracle
holds the layer to that claim). A query that fails to canonicalize or
compute produces an *error answer* (``stats.error``) that is served but
never cached: a cache must not remember failures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.gemm.pool import WorkerPool
from repro.obs.metrics import MetricsRegistry
from repro.obs.run_report import RunReport
from repro.serve.query import QueryError, query_key, resolve_machine
from repro.serve.store import ResultStore

__all__ = ["Answer", "QueryEngine", "ServeStats", "compute_answer"]


@dataclass
class ServeStats:
    """Occurrence-level counters of one engine's lifetime.

    ``queries == hits + computed + deduped + errors`` always holds:
    every occurrence in a batch lands in exactly one bucket. ``hits``
    counts occurrences served from the persistent store, ``computed``
    counts unique cache misses actually executed, ``deduped`` counts
    repeat occurrences of a computed key within a batch, and ``errors``
    counts occurrences whose query failed to canonicalize or compute.
    """

    queries: int = 0
    hits: int = 0
    computed: int = 0
    deduped: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "queries": self.queries,
            "hits": self.hits,
            "computed": self.computed,
            "deduped": self.deduped,
            "errors": self.errors,
        }


@dataclass
class Answer:
    """One served answer: the document plus its provenance.

    Attributes:
        index: Position of the query in the input batch.
        key: Content-hash cache key (empty for malformed queries).
        query: The canonical query (the raw input for malformed ones).
        answer: The RunReport-schema answer document.
        source: ``"hit"`` | ``"computed"`` | ``"dedup"`` | ``"error"``.
    """

    index: int
    key: str
    query: Dict[str, Any]
    answer: Dict[str, Any]
    source: str

    def to_json_line(self) -> str:
        """The answer as one deterministic JSON line (for streaming)."""
        return json.dumps(self.answer, sort_keys=True)


# -- per-kind executors -------------------------------------------------------


def _simulate_answer(query: Dict[str, Any]) -> Tuple[Dict, Dict]:
    from repro.sim.gemm_sim import GemmSimulator

    _, chip = resolve_machine(query["machine"])
    sim = GemmSimulator(chip)
    perf = sim.simulate(
        query["kernel"], query["m"], query["n"], query["k"],
        threads=query["threads"], parallel_axis=query["parallel_axis"],
    )
    engines = {"model": {"requested": "analytic", "selected": "analytic",
                         "fallback_reason": None}}
    blk = perf.blocking
    stats = {
        "performance": {
            "cycles": perf.cycles,
            "flops": perf.flops,
            "gflops": perf.gflops,
            "efficiency": perf.efficiency,
            "l1_loads": perf.l1_loads,
            "breakdown": dict(perf.breakdown),
            "joules": perf.joules,
            "gflops_per_watt": perf.gflops_per_watt,
            "energy_breakdown": dict(perf.energy_breakdown),
        },
        "blocking": {
            "mr": blk.mr, "nr": blk.nr, "kc": blk.kc, "mc": blk.mc,
            "nc": blk.nc,
        },
    }
    return engines, stats


def _cachesim_answer(query: Dict[str, Any]) -> Tuple[Dict, Dict]:
    from repro.obs.run_report import snapshot_gebp_cache_result
    from repro.sim.gemm_sim import GemmSimulator

    _, chip = resolve_machine(query["machine"])
    sim = GemmSimulator(chip)
    requested = query["engine"]
    selected = "scalar" if requested == "scalar" else "batched"
    result = sim.cache_sim(
        query["kernel"], threads=query["threads"],
        nc_slice=query["nc_slice"], engine=requested, seed=query["seed"],
    )
    engines = {"cachesim": {"requested": requested, "selected": selected,
                            "fallback_reason": None}}
    return engines, {"result": snapshot_gebp_cache_result(result)}


def _timed_answer(query: Dict[str, Any]) -> Tuple[Dict, Dict]:
    from repro.obs.run_report import snapshot_timed_run
    from repro.sim.gemm_sim import GemmSimulator

    _, chip = resolve_machine(query["machine"])
    sim = GemmSimulator(chip)
    run = sim.timed_kernel(
        query["kernel"], kc=query["kc"], engine=query["engine"],
        hw_late=query["hw_late"], seed=query["seed"],
    )
    engines = {"timed": {"requested": query["engine"],
                         "selected": run.engine,
                         "fallback_reason": run.fallback_reason}}
    return engines, {"run": snapshot_timed_run(run)}


def _stencil_answer(query: Dict[str, Any]) -> Tuple[Dict, Dict]:
    from repro.workloads.exhibit import stencil_exhibit

    _, chip = resolve_machine(query["machine"])
    doc = stencil_exhibit(
        chip,
        height=query["height"], width=query["width"],
        radius=query["radius"], iterations=query["iterations"],
        seed=query["seed"], smoke=query["smoke"],
    )
    engines = {
        "cache": {"requested": "auto", "selected": "batched",
                  "fallback_reason": None},
        "timed": {"requested": "auto", "selected": "compiled",
                  "fallback_reason": None},
    }
    return engines, {"exhibit": doc}


def _conv_answer(query: Dict[str, Any]) -> Tuple[Dict, Dict]:
    from repro.workloads.exhibit import conv_exhibit

    _, chip = resolve_machine(query["machine"])
    doc = conv_exhibit(
        chip,
        cin=query["cin"], height=query["height"], width=query["width"],
        kh=query["kh"], kw=query["kw"], filters=query["filters"],
        seed=query["seed"], smoke=query["smoke"],
    )
    engines = {
        "cache": {"requested": "auto", "selected": "batched",
                  "fallback_reason": None},
        "timed": {"requested": "auto", "selected": "compiled",
                  "fallback_reason": None},
    }
    return engines, {"exhibit": doc}


_EXECUTORS = {
    "simulate": _simulate_answer,
    "cachesim": _cachesim_answer,
    "timed": _timed_answer,
    "stencil": _stencil_answer,
    "conv": _conv_answer,
}


def compute_answer(query: Dict[str, Any], key: str) -> Dict[str, Any]:
    """Execute one canonical query and build its answer document.

    The answer is a validated RunReport dict with ``created=None`` so
    that recomputing the same query always yields the same bytes.
    """
    engines, stats = _EXECUTORS[query["kind"]](query)
    return RunReport(
        command="query",
        created=None,
        params={"key": key, "query": query},
        engines=engines,
        stats=stats,
    ).to_dict()


def _error_answer(
    query: Dict[str, Any], key: str, exc: BaseException
) -> Dict[str, Any]:
    return RunReport(
        command="query",
        created=None,
        params={"key": key, "query": query},
        stats={"error": {
            "type": type(exc).__name__,
            "message": str(exc),
        }},
    ).to_dict()


# -- the engine ---------------------------------------------------------------


class QueryEngine:
    """Memoized query-serving front end over the engine families.

    Args:
        store: A :class:`ResultStore` or a directory path for one.
        pool: Optional worker pool; cache misses are submitted to it as
            jobs and computed concurrently. ``None`` computes inline
            (the mode the verify oracle uses).
        metrics: Optional registry receiving ``serve.*`` counters and
            the batch span; ``None`` costs nothing.
    """

    def __init__(
        self,
        store: Any,
        pool: Optional[WorkerPool] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else (
            ResultStore(store)
        )
        self.pool = pool
        self.metrics = metrics
        self.stats = ServeStats()

    def query(self, doc: Dict[str, Any]) -> Answer:
        """Serve a single query document."""
        return self.run_batch([doc])[0]

    def run_batch(self, docs: List[Dict[str, Any]]) -> List[Answer]:
        """Serve a batch: dedup, look up, dispatch misses, persist.

        Returns one :class:`Answer` per input document, in input order.
        """
        if self.metrics is not None:
            before = self.stats.as_dict()
            with self.metrics.span("serve.batch"):
                answers = self._run_batch(docs)
            for name, value in self.stats.as_dict().items():
                delta = value - before[name]
                if delta:
                    self.metrics.inc(f"serve.{name}", delta)
            return answers
        return self._run_batch(docs)

    def _run_batch(self, docs: List[Dict[str, Any]]) -> List[Answer]:
        self.stats.queries += len(docs)
        # 1. Canonicalize. Malformed queries become error answers now;
        #    everything else proceeds keyed.
        keyed: List[Optional[Tuple[Dict[str, Any], str]]] = []
        answers: List[Optional[Answer]] = [None] * len(docs)
        for index, doc in enumerate(docs):
            try:
                canonical, key = query_key(doc)
            except QueryError as exc:
                self.stats.errors += 1
                raw = doc if isinstance(doc, dict) else {"query": repr(doc)}
                answers[index] = Answer(
                    index=index, key="", query=raw,
                    answer=_error_answer(raw, "", exc), source="error",
                )
                keyed.append(None)
            else:
                keyed.append((canonical, key))

        # 2. Dedup: first occurrence of each key owns the lookup/compute.
        order: List[str] = []
        first: Dict[str, Tuple[Dict[str, Any], int]] = {}
        for index, entry in enumerate(keyed):
            if entry is None:
                continue
            canonical, key = entry
            if key not in first:
                first[key] = (canonical, index)
                order.append(key)

        # 3. Store lookups for unique keys.
        unique: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        misses: List[str] = []
        for key in order:
            canonical, _ = first[key]
            cached = self.store.get(key)
            if cached is not None:
                unique[key] = ("hit", cached)
            else:
                misses.append(key)

        # 4. Compute misses — concurrently on the pool when available.
        def job(canonical: Dict[str, Any], key: str):
            def work() -> Dict[str, Any]:
                return compute_answer(canonical, key)
            return work

        computed: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        if self.pool is not None and len(misses) > 1:
            handles = [
                (key, self.pool.submit(job(first[key][0], key)))
                for key in misses
            ]
            for key, handle in handles:
                try:
                    computed[key] = ("computed", handle.result())
                except Exception as exc:
                    computed[key] = (
                        "error", _error_answer(first[key][0], key, exc)
                    )
        else:
            for key in misses:
                try:
                    computed[key] = (
                        "computed", compute_answer(first[key][0], key)
                    )
                except Exception as exc:
                    computed[key] = (
                        "error", _error_answer(first[key][0], key, exc)
                    )

        # 5. Persist fresh answers (single-threaded, atomic per entry);
        #    errors are served but never cached.
        for key, (source, answer) in computed.items():
            if source == "computed":
                self.store.put(key, first[key][0], answer)
            unique[key] = (source, answer)

        # 6. Assemble per-occurrence answers and counters.
        served: Dict[str, bool] = {}
        for index, entry in enumerate(keyed):
            if entry is None:
                continue
            canonical, key = entry
            source, answer = unique[key]
            if source == "hit":
                self.stats.hits += 1
                occurrence = "hit"
            elif source == "error":
                self.stats.errors += 1
                occurrence = "error"
            elif not served.get(key):
                self.stats.computed += 1
                occurrence = "computed"
            else:
                self.stats.deduped += 1
                occurrence = "dedup"
            served[key] = True
            answers[index] = Answer(
                index=index, key=key, query=canonical,
                answer=answer, source=occurrence,
            )
        return [a for a in answers if a is not None]
