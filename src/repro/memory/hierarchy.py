"""Multi-level, multi-core memory hierarchy.

Builds the Fig. 1 topology from a :class:`~repro.arch.params.ChipParams`:
a private L1D per core, an L2 shared by each dual-core module, an L3 shared
by the whole chip, and DRAM behind two memory bridges. Accesses walk down
the levels on miss and allocate on the way back up (non-inclusive,
allocate-on-fill), charging the latency of the deepest level reached.

Software prefetches (``PLDL1KEEP`` / ``PLDL2KEEP``) install a line into the
target level and every level below it, without charging demand latency —
the timing benefit of prefetching is that later demand accesses hit.
"""

from __future__ import annotations

import random
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.arch.params import ChipParams, WritePolicy
from repro.errors import SimulationError
from repro.memory.cache import (
    CODE_PREFETCH,
    CODE_STORE,
    KIND_LOAD,
    KIND_PREFETCH,
    KIND_STORE,
    Cache,
    CacheStats,
)
from repro.memory.tlb import Tlb

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.batch import BatchTrace
    from repro.memory.trace import TraceCost


@dataclass
class AccessResult:
    """Outcome of one demand access.

    Attributes:
        level_hit: 1-based cache level that served the access;
            ``len(levels)+1`` means DRAM.
        latency_cycles: Load-to-use latency charged for this access.
        tlb_miss: Whether the access missed in the TLB (if modeled).
    """

    level_hit: int
    latency_cycles: int
    tlb_miss: bool = False


class MemoryHierarchy:
    """The chip's cache/DRAM system, shared-level aware.

    Args:
        chip: Architecture description.
        with_tlb: Model per-core TLBs if the chip defines TLB parameters.
        seed: Seed for the RANDOM-replacement policy. Each cache gets its
            own :class:`random.Random` derived from the seed and the
            cache's position, so hierarchies built with the same seed
            replay identically and per-cache victim streams stay
            independent of the order levels are visited in (which is what
            keeps the batched engine bit-identical under RANDOM). ``None``
            keeps the legacy per-set ``Random(0)`` default.
    """

    def __init__(
        self,
        chip: ChipParams,
        with_tlb: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        self.chip = chip
        self.seed = seed
        # Private L1 per core.
        self.l1: List[Cache] = [
            Cache(chip.l1d, rng=self._cache_rng(i)) for i in range(chip.cores)
        ]
        # One L2 per module.
        self.l2: List[Cache] = [
            Cache(chip.l2, rng=self._cache_rng(chip.cores + j))
            for j in range(chip.modules)
        ]
        # One L3 for the chip (optional).
        self.l3: Optional[Cache] = (
            Cache(chip.l3, rng=self._cache_rng(chip.cores + chip.modules))
            if chip.l3
            else None
        )
        self.dram_accesses = 0
        self.dram_line_bytes = chip.l1d.line_bytes
        self.tlbs: List[Optional[Tlb]] = [
            Tlb(chip.tlb) if (with_tlb and chip.tlb) else None
            for _ in range(chip.cores)
        ]
        # Hardware prefetchers attached to this hierarchy register here so
        # reset_stats/flush/reset cover their counters and stream state.
        # Weak references: the hierarchy must not keep a dead prefetcher
        # (or its install closure over this hierarchy) alive.
        self._prefetchers: "weakref.WeakSet" = weakref.WeakSet()
        # Observability hook: when set to a MetricsRegistry, the batched
        # replay paths record access/DRAM counters and span timings into
        # it. None (the default) keeps the hot paths entirely branch-cheap.
        self.metrics = None

    def _cache_rng(self, index: int) -> Optional[random.Random]:
        """The per-cache victim RNG for position ``index`` (see ``seed``)."""
        if self.seed is None:
            return None
        return random.Random(1_000_003 * self.seed + index)

    # -- topology helpers ---------------------------------------------------

    def module_of(self, core: int) -> int:
        """Module index owning ``core``."""
        self._check_core(core)
        return core // self.chip.cores_per_module

    def levels_for(self, core: int) -> List[Cache]:
        """The cache path for ``core``, fastest first."""
        self._check_core(core)
        path = [self.l1[core], self.l2[self.module_of(core)]]
        if self.l3 is not None:
            path.append(self.l3)
        return path

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.chip.cores:
            raise SimulationError(f"core {core} out of range")

    # -- demand accesses ----------------------------------------------------

    def access_line(
        self, core: int, line: int, kind: str = KIND_LOAD
    ) -> AccessResult:
        """One demand line access from ``core``; walks the hierarchy."""
        levels = self.levels_for(core)
        level_params = self.chip.cache_levels
        tlb_miss = False
        tlb = self.tlbs[core]
        if tlb is not None:
            tlb_miss = not tlb.access_line(line, self.dram_line_bytes)
        for depth, cache in enumerate(levels):
            if cache.access_line(line, kind):
                lat = level_params[depth].latency_cycles
                if tlb is not None and tlb_miss:
                    lat += tlb.params.miss_penalty_cycles
                if kind == KIND_STORE:
                    # Write-through levels propagate the store outward.
                    d = depth
                    while (
                        d < len(levels)
                        and level_params[d].write_policy.value
                        == "write-through"
                    ):
                        if d + 1 < len(levels):
                            levels[d + 1].access_line(line, KIND_STORE)
                        else:
                            self.dram_accesses += 1
                        d += 1
                return AccessResult(depth + 1, lat, tlb_miss)
            # Miss: fall through to the next level; the line was allocated
            # in this level by access_line (allocate-on-fill).
        self.dram_accesses += 1
        lat = self.chip.dram.latency_cycles
        if tlb is not None and tlb_miss:
            lat += tlb.params.miss_penalty_cycles
        return AccessResult(len(levels) + 1, lat, tlb_miss)

    def access_bytes(
        self, core: int, address: int, nbytes: int, kind: str = KIND_LOAD
    ) -> List[AccessResult]:
        """Demand access to a byte range, one result per touched line."""
        if nbytes <= 0:
            return []
        lb = self.dram_line_bytes
        first, last = address // lb, (address + nbytes - 1) // lb
        return [
            self.access_line(core, line, kind)
            for line in range(first, last + 1)
        ]

    # -- software prefetch --------------------------------------------------

    def prefetch_line(self, core: int, line: int, target_level: int) -> None:
        """Install ``line`` into ``target_level`` and all deeper levels.

        ``target_level`` is 1-based (1 = L1). Prefetches never charge demand
        latency here; they are accounted as prefetch traffic.
        """
        levels = self.levels_for(core)
        if not 1 <= target_level <= len(levels):
            raise SimulationError(
                f"prefetch target level {target_level} out of range"
            )
        for cache in levels[target_level - 1 :]:
            if cache.access_line(line, KIND_PREFETCH):
                break  # already present here and (assumed) below

    # -- batched replay -----------------------------------------------------

    def run_batch(
        self,
        core: int,
        trace: "BatchTrace",
        max_level: int = 8,
        force_scalar: bool = False,
    ) -> "TraceCost":
        """Replay a :class:`~repro.memory.batch.BatchTrace` on ``core``.

        Produces bit-identical counters (per-level :class:`CacheStats`,
        ``dram_accesses``, TLB stats) and an identical
        :class:`~repro.memory.trace.TraceCost` to scalar
        :func:`~repro.memory.trace.run_trace` over the same records.

        The walk is level-wise: the whole batch is resolved against the L1
        in one vectorized sweep, then only the miss subset — merged, in
        program order, with software prefetches targeting the next level —
        propagates downward. The decomposition is exact because each
        cache's state depends only on its own access sequence, which the
        per-level subsets preserve. Write-through levels propagate stores
        that hit them outward as an *injected* store subset, merged with
        the walking miss subset in program order — the batched mirror of
        the scalar propagation chain. RANDOM/PLRU levels are handled per
        cache inside :meth:`Cache.access_lines_batched`;
        ``force_scalar=True`` takes the scalar oracle path.
        """
        from repro.memory.trace import TraceCost, run_trace

        levels = self.levels_for(core)
        level_params = self.chip.cache_levels
        if force_scalar:
            return run_trace(self, core, trace, max_level)
        lb = self.dram_line_bytes
        lines, kinds, plevels = trace.expand_lines(lb)
        cost = TraceCost(level_hits=[0] * max_level)
        if lines.size == 0:
            return cost
        is_prefetch = kinds == CODE_PREFETCH
        if is_prefetch.any():
            targets = plevels[is_prefetch]
            lo, hi = int(targets.min()), int(targets.max())
            if lo < 1 or hi > len(levels):
                raise SimulationError(
                    f"prefetch target level {lo if lo < 1 else hi} "
                    f"out of range"
                )
        demand = ~is_prefetch
        cost.accesses = int(demand.sum())
        latency = 0
        # The TLB sees every demand access in program order, independently
        # of which cache level serves it, so it can be replayed up front.
        tlb = self.tlbs[core]
        if tlb is not None:
            tlb_misses = 0
            for line in lines[demand]:
                if not tlb.access_line(int(line), lb):
                    tlb_misses += 1
            latency += tlb_misses * tlb.params.miss_penalty_cycles
        active = np.flatnonzero(demand | (plevels == 1))
        inject = np.empty(0, dtype=np.int64)
        is_store = kinds == CODE_STORE
        for depth, cache in enumerate(levels, start=1):
            if depth > 1:
                entering = np.flatnonzero(is_prefetch & (plevels == depth))
                if entering.size:
                    active = np.sort(np.concatenate([active, entering]))
            if active.size == 0 and inject.size == 0:
                continue
            # Injected write-through stores join the walking subset in
            # program order. The two are disjoint: a store either hit a
            # shallower level (injected here) or missed it (still walking).
            if inject.size:
                merged = np.concatenate([active, inject])
                order = np.argsort(merged, kind="stable")
                merged = merged[order]
                from_walk = np.concatenate(
                    [
                        np.ones(active.size, dtype=bool),
                        np.zeros(inject.size, dtype=bool),
                    ]
                )[order]
            else:
                merged, from_walk = active, None
            hits = cache.access_lines_batched(lines[merged], kinds[merged])
            if from_walk is None:
                walk_idx, walk_hits = merged, hits
            else:
                walk_idx, walk_hits = merged[from_walk], hits[from_walk]
            hit_demand = int(demand[walk_idx[walk_hits]].sum())
            if hit_demand:
                cost.level_hits[min(depth - 1, max_level - 1)] += hit_demand
                latency += hit_demand * level_params[depth - 1].latency_cycles
            # Write-through: stores served here start propagating, and
            # already-injected stores keep chaining — both regardless of
            # the propagated access's own outcome (the scalar chain is
            # gated on the levels' write policies, not on hit results).
            wt = (
                level_params[depth - 1].write_policy
                is WritePolicy.WRITE_THROUGH
            )
            if wt:
                stores_hit = walk_idx[walk_hits & is_store[walk_idx]]
                next_inject = (
                    np.sort(np.concatenate([stores_hit, inject]))
                    if inject.size
                    else stores_hit
                )
                if depth == len(levels):
                    self.dram_accesses += int(next_inject.size)
                    next_inject = np.empty(0, dtype=np.int64)
            else:
                next_inject = np.empty(0, dtype=np.int64)
            inject = next_inject
            # Misses — demand walks on; prefetches install level by level
            # until they find the line resident (the scalar break).
            active = walk_idx[~walk_hits]
        to_dram = int(demand[active].sum())
        if to_dram:
            self.dram_accesses += to_dram
            cost.level_hits[min(len(levels), max_level - 1)] += to_dram
            latency += to_dram * self.chip.dram.latency_cycles
        cost.latency_cycles = latency
        m = self.metrics
        if m is not None:
            m.inc("hierarchy.batched_replays")
            m.inc("hierarchy.demand_line_accesses", cost.accesses)
            m.inc("hierarchy.dram_line_accesses", to_dram)
            m.inc("hierarchy.latency_cycles", latency)
        return cost

    def run_batch_levels(
        self,
        core: int,
        trace: "BatchTrace",
        force_scalar: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Replay a trace like :meth:`run_batch`, returning per-access detail.

        Returns ``(levels, latencies)`` arrays with one entry per *demand*
        line access of ``trace`` in program order: the 1-based cache level
        that served it (``len(levels)+1`` = DRAM) and the latency charged —
        exactly the :class:`AccessResult` fields :meth:`access_line` would
        have produced for the same access in the same sequence. Cache and
        TLB state and statistics evolve identically to the scalar replay;
        this is what the compiled timed-execution engine feeds into the
        scoreboard.
        """
        levels = self.levels_for(core)
        level_params = self.chip.cache_levels
        lb = self.dram_line_bytes
        if force_scalar:
            served: List[int] = []
            lats: List[int] = []
            for acc in trace:
                if acc.kind == KIND_PREFETCH:
                    self.prefetch_line(core, acc.address // lb, acc.level)
                    continue
                for res in self.access_bytes(
                    core, acc.address, acc.nbytes, acc.kind
                ):
                    served.append(res.level_hit)
                    lats.append(res.latency_cycles)
            return (
                np.array(served, dtype=np.int64),
                np.array(lats, dtype=np.int64),
            )
        lines, kinds, plevels = trace.expand_lines(lb)
        is_prefetch = kinds == CODE_PREFETCH
        if is_prefetch.any():
            targets = plevels[is_prefetch]
            lo, hi = int(targets.min()), int(targets.max())
            if lo < 1 or hi > len(levels):
                raise SimulationError(
                    f"prefetch target level {lo if lo < 1 else hi} "
                    f"out of range"
                )
        demand = ~is_prefetch
        served_at = np.zeros(lines.size, dtype=np.int64)
        tlb_penalty = np.zeros(lines.size, dtype=np.int64)
        tlb = self.tlbs[core]
        if tlb is not None:
            demand_idx = np.flatnonzero(demand)
            for idx in demand_idx:
                if not tlb.access_line(int(lines[idx]), lb):
                    tlb_penalty[idx] = tlb.params.miss_penalty_cycles
        active = np.flatnonzero(demand | (plevels == 1))
        inject = np.empty(0, dtype=np.int64)
        is_store = kinds == CODE_STORE
        for depth, cache in enumerate(levels, start=1):
            if depth > 1:
                entering = np.flatnonzero(is_prefetch & (plevels == depth))
                if entering.size:
                    active = np.sort(np.concatenate([active, entering]))
            if active.size == 0 and inject.size == 0:
                continue
            # See run_batch: injected write-through stores merge with the
            # walking subset in program order; the two are disjoint.
            if inject.size:
                merged = np.concatenate([active, inject])
                order = np.argsort(merged, kind="stable")
                merged = merged[order]
                from_walk = np.concatenate(
                    [
                        np.ones(active.size, dtype=bool),
                        np.zeros(inject.size, dtype=bool),
                    ]
                )[order]
            else:
                merged, from_walk = active, None
            hits = cache.access_lines_batched(lines[merged], kinds[merged])
            if from_walk is None:
                walk_idx, walk_hits = merged, hits
            else:
                walk_idx, walk_hits = merged[from_walk], hits[from_walk]
            served_at[walk_idx[walk_hits]] = depth
            wt = (
                level_params[depth - 1].write_policy
                is WritePolicy.WRITE_THROUGH
            )
            if wt:
                stores_hit = walk_idx[walk_hits & is_store[walk_idx]]
                next_inject = (
                    np.sort(np.concatenate([stores_hit, inject]))
                    if inject.size
                    else stores_hit
                )
                if depth == len(levels):
                    self.dram_accesses += int(next_inject.size)
                    next_inject = np.empty(0, dtype=np.int64)
            else:
                next_inject = np.empty(0, dtype=np.int64)
            inject = next_inject
            active = walk_idx[~walk_hits]
        dram_idx = active[demand[active]]
        self.dram_accesses += dram_idx.size
        served_at[dram_idx] = len(levels) + 1
        latency_of = np.array(
            [0]
            + [p.latency_cycles for p in level_params]
            + [self.chip.dram.latency_cycles],
            dtype=np.int64,
        )
        out_levels = served_at[demand]
        out_lat = latency_of[out_levels] + tlb_penalty[demand]
        m = self.metrics
        if m is not None:
            m.inc("hierarchy.batched_replays")
            m.inc("hierarchy.demand_line_accesses", int(out_levels.size))
            m.inc("hierarchy.dram_line_accesses", int(dram_idx.size))
            m.inc("hierarchy.latency_cycles", int(out_lat.sum()))
        return out_levels, out_lat

    # -- prefetchers --------------------------------------------------------

    def register_prefetcher(self, prefetcher) -> None:
        """Tie a hardware prefetcher's lifecycle to this hierarchy.

        Registered prefetchers have their counters cleared by
        :meth:`reset_stats`, their stream state cleared by :meth:`flush`,
        and both by :meth:`reset`. Held weakly.
        """
        self._prefetchers.add(prefetcher)

    def prefetcher_stats(self) -> Dict[str, int]:
        """Merged observation/issue counters of registered prefetchers."""
        merged = {"observed_lines": 0, "issued": 0, "late": 0}
        for pf in self._prefetchers:
            merged["observed_lines"] += pf.stats.observed_lines
            merged["issued"] += pf.stats.issued
            merged["late"] += pf.stats.late
        return merged

    # -- statistics ---------------------------------------------------------

    def all_caches(self) -> Dict[str, Cache]:
        """Every cache in the hierarchy, keyed ``l1[i]``/``l2[j]``/``l3``."""
        caches: Dict[str, Cache] = {}
        for i, cache in enumerate(self.l1):
            caches[f"l1[{i}]"] = cache
        for j, cache in enumerate(self.l2):
            caches[f"l2[{j}]"] = cache
        if self.l3 is not None:
            caches["l3"] = self.l3
        return caches

    def l1_stats(self, core: Optional[int] = None) -> CacheStats:
        """Stats for one core's L1, or all L1s merged."""
        if core is not None:
            self._check_core(core)
            return self.l1[core].stats
        merged = CacheStats()
        for cache in self.l1:
            merged = merged.merged_with(cache.stats)
        return merged

    def l2_stats(self, module: Optional[int] = None) -> CacheStats:
        if module is not None:
            return self.l2[module].stats
        merged = CacheStats()
        for cache in self.l2:
            merged = merged.merged_with(cache.stats)
        return merged

    def l3_stats(self) -> CacheStats:
        if self.l3 is None:
            return CacheStats()
        return self.l3.stats

    def batched_fallback_accesses(self) -> int:
        """Line accesses the batched engine resolved through the scalar
        per-access fallback (RANDOM/PLRU caches), summed over all caches
        since the last stats reset."""
        return sum(
            c.batched_fallback_accesses for c in self.all_caches().values()
        )

    # -- snapshot / restore -------------------------------------------------

    def snapshot(self) -> dict:
        """Copy of the full cache/TLB/DRAM state, for warm-state reuse.

        Restoring the snapshot on the same hierarchy reproduces contents,
        statistics and replacement state bit-exactly, so a sweep can carry
        a warmed hierarchy across adjacent points instead of re-replaying
        the warm-up trace. Hardware-prefetcher stream state is deliberately
        excluded: prefetchers are re-attached per run and observe their
        streams from the replayed trace itself.
        """
        return {
            "caches": {
                name: cache.snapshot()
                for name, cache in self.all_caches().items()
            },
            "dram_accesses": self.dram_accesses,
            "tlbs": [
                tlb.snapshot() if tlb is not None else None
                for tlb in self.tlbs
            ],
        }

    def restore(self, snap: dict) -> None:
        """Restore a :meth:`snapshot`; the snapshot stays reusable."""
        caches = self.all_caches()
        for name, cache_snap in snap["caches"].items():
            caches[name].restore(cache_snap)
        self.dram_accesses = snap["dram_accesses"]
        for tlb, tlb_snap in zip(self.tlbs, snap["tlbs"]):
            if tlb is not None and tlb_snap is not None:
                tlb.restore(tlb_snap)

    def flush(self) -> None:
        """Empty every cache and TLB (stats retained).

        Registered hardware prefetchers forget their tracked streams too:
        a stream position remembered across a flush would suppress the
        re-prefetching a cold cache needs, so flushed state and stream
        state travel together.
        """
        for cache in self.all_caches().values():
            cache.flush()
        for tlb in self.tlbs:
            if tlb is not None:
                tlb.flush()
        for pf in self._prefetchers:
            pf.reset_streams()

    def reset_stats(self) -> None:
        """Zero every counter: caches, DRAM, TLBs, and the observation/
        issue counters of registered hardware prefetchers."""
        for cache in self.all_caches().values():
            cache.reset_stats()
        self.dram_accesses = 0
        for tlb in self.tlbs:
            if tlb is not None:
                tlb.reset_stats()
        for pf in self._prefetchers:
            pf.reset_stats()

    def reset(self) -> None:
        """Restore the pristine just-constructed state.

        Unlike ``flush()`` + ``reset_stats()``, this also rebuilds each
        cache's replacement-policy state *and* its victim RNG from the
        hierarchy seed, so RANDOM/PLRU hierarchies replay the exact same
        victim stream as a freshly constructed ``MemoryHierarchy``.
        """
        for index, cache in enumerate(self.all_caches().values()):
            cache.reset(rng=self._cache_rng(index))
        self.dram_accesses = 0
        for tlb in self.tlbs:
            if tlb is not None:
                tlb.flush()
                tlb.reset_stats()
        for pf in self._prefetchers:
            pf.reset()
