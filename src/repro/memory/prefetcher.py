"""Hardware sequential prefetcher model.

X-Gene-class cores tag sequential access streams and pull the next line(s)
into the L1 ahead of demand. The GEBP streams (packed A, packed B) are
perfectly sequential inside the k-loop, so this prefetcher is what keeps
the B sliver effectively L1-resident even though true LRU would evict it
(see :mod:`repro.sim.gebp_cachesim`).

Timeliness is modeled with a deterministic late/drop pattern: a fraction
``late_rate`` of prefetches fail to arrive before the demand access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import SimulationError
from repro.memory.hierarchy import MemoryHierarchy


class DropPattern:
    """Deterministic 'every k-th event fires' pattern at a given rate.

    Using an error-accumulator instead of an RNG keeps every simulation
    bit-reproducible while matching the requested rate exactly over any
    long window.
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise SimulationError("drop rate must be in [0, 1]")
        self.rate = rate
        self._acc = 0.0

    def dropped(self) -> bool:
        """True for a ``rate`` fraction of calls."""
        self._acc += self.rate
        if self._acc >= 1.0:
            self._acc -= 1.0
            return True
        return False

    def reset(self) -> None:
        """Rewind to the start of the pattern (fresh-object equivalence)."""
        self._acc = 0.0


@dataclass
class PrefetcherStats:
    """Issue counters for one prefetcher instance."""

    observed_lines: int = 0
    issued: int = 0
    late: int = 0


class SequentialPrefetcher:
    """Tagged next-line prefetcher in front of a core's L1.

    Args:
        hierarchy: The memory system to install lines into (may be ``None``
            when a custom ``install`` sink is supplied).
        core: The core this prefetcher serves.
        late_rate: Fraction of prefetches that arrive too late (modeled
            as not issued).
        degree: Lines fetched ahead per stream advance.
        install: Override for the install action, called as
            ``install(line, target_level)``. Trace compilers use this to
            *record* the prefetch stream instead of applying it — the
            issue pattern is a pure function of the observed addresses, so
            a recorded stream replays identically on any hierarchy.
    """

    def __init__(
        self,
        hierarchy: Optional[MemoryHierarchy],
        core: int,
        late_rate: float = 0.25,
        degree: int = 1,
        install: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if degree < 1:
            raise SimulationError("prefetch degree must be >= 1")
        if hierarchy is None and install is None:
            raise SimulationError(
                "SequentialPrefetcher needs a hierarchy or an install sink"
            )
        self.hierarchy = hierarchy
        self.core = core
        self.degree = degree
        self.stats = PrefetcherStats()
        self._late = DropPattern(late_rate)
        self._last_line: Dict[str, int] = {}
        if install is None:
            install = lambda line, level: hierarchy.prefetch_line(
                core, line, level
            )
        self._install = install
        if hierarchy is not None:
            # The hierarchy's reset_stats/flush/reset cover registered
            # prefetchers, so hardware-prefetch counters share the cache
            # counters' lifecycle instead of silently surviving resets.
            hierarchy.register_prefetcher(self)

    def observe(self, line: int, stream: str) -> None:
        """Notify the prefetcher of a demand access to ``line`` on a
        named stream; advances trigger next-line prefetches."""
        if self._last_line.get(stream) == line:
            return
        self._last_line[stream] = line
        self.stats.observed_lines += 1
        if self._late.dropped():
            self.stats.late += 1
            return
        for d in range(1, self.degree + 1):
            self._install(line + d, 1)
            self.stats.issued += 1

    # -- lifecycle ----------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the observation/issue counters."""
        self.stats = PrefetcherStats()

    def reset_streams(self) -> None:
        """Forget tracked stream positions and rewind the late pattern,
        so the next observations behave like a fresh prefetcher (the
        counterpart of flushing the caches it installs into)."""
        self._last_line.clear()
        self._late.reset()

    def reset(self) -> None:
        """Full fresh-object reset: counters and stream state."""
        self.reset_stats()
        self.reset_streams()
