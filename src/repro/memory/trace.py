"""Address-trace primitives.

A trace is an iterable of :class:`Access` records at byte granularity.
Generators here produce the streams the packed GEBP loop nest issues —
sliver reads of A, resident reads of B, and C tile read-modify-writes —
which the cost model replays through a :class:`~repro.memory.hierarchy.
MemoryHierarchy` to obtain per-level miss counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

from repro.memory.cache import KIND_LOAD, KIND_PREFETCH, KIND_STORE
from repro.memory.hierarchy import MemoryHierarchy

DOUBLE = 8
QWORD = 16


@dataclass(frozen=True)
class Access:
    """One memory access.

    Attributes:
        address: Byte address.
        nbytes: Access width in bytes.
        kind: ``"load"``, ``"store"`` or ``"prefetch"``.
        level: For prefetches, the 1-based target cache level.
    """

    address: int
    nbytes: int = QWORD
    kind: str = KIND_LOAD
    level: int = 1


def strided_matrix_trace(
    base: int,
    rows: int,
    cols: int,
    ld: int,
    kind: str = KIND_LOAD,
    element_bytes: int = DOUBLE,
) -> Iterator[Access]:
    """Column-major walk over a ``rows x cols`` matrix with leading dim ``ld``.

    This is the access pattern of *packing*: reading a sub-matrix out of the
    big column-major operand.
    """
    for j in range(cols):
        col_base = base + j * ld * element_bytes
        for i in range(0, rows * element_bytes, QWORD):
            nbytes = min(QWORD, rows * element_bytes - i)
            yield Access(col_base + i, nbytes, kind)


def contiguous_trace(
    base: int,
    nbytes: int,
    kind: str = KIND_LOAD,
    step: int = QWORD,
) -> Iterator[Access]:
    """A linear walk over ``nbytes`` contiguous bytes in ``step`` chunks."""
    for off in range(0, nbytes, step):
        yield Access(base + off, min(step, nbytes - off), kind)


@dataclass
class TraceCost:
    """Aggregate result of replaying a trace."""

    accesses: int = 0
    latency_cycles: int = 0
    level_hits: List[int] = field(default_factory=list)


def run_trace(
    hierarchy: MemoryHierarchy,
    core: int,
    trace: Iterable[Access],
    max_level: int = 8,
) -> TraceCost:
    """Replay ``trace`` on ``core``; returns latency and per-level hit counts.

    ``level_hits[i]`` counts accesses served at 1-based level ``i+1``
    (the last slot is DRAM).
    """
    cost = TraceCost(level_hits=[0] * max_level)
    for acc in trace:
        if acc.kind == KIND_PREFETCH:
            line = acc.address // hierarchy.dram_line_bytes
            hierarchy.prefetch_line(core, line, acc.level)
            continue
        for res in hierarchy.access_bytes(core, acc.address, acc.nbytes, acc.kind):
            cost.accesses += 1
            cost.latency_cycles += res.latency_cycles
            idx = min(res.level_hit - 1, max_level - 1)
            cost.level_hits[idx] += 1
    return cost
