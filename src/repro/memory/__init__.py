"""Memory-system simulation: caches, hierarchy, TLB, traces."""

from repro.memory.batch import (
    ACCESS_DTYPE,
    BatchTrace,
    compile_trace,
    warm_region,
)
from repro.memory.cache import (
    CODE_LOAD,
    CODE_PREFETCH,
    CODE_STORE,
    KIND_LOAD,
    KIND_PREFETCH,
    KIND_STORE,
    Cache,
    CacheStats,
)
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.prefetcher import (
    DropPattern,
    PrefetcherStats,
    SequentialPrefetcher,
)
from repro.memory.replacement import (
    LruSetPolicy,
    PlruSetPolicy,
    RandomSetPolicy,
    SetPolicy,
    make_set_policy,
)
from repro.memory.tlb import Tlb, TlbStats
from repro.memory.trace import (
    Access,
    TraceCost,
    contiguous_trace,
    run_trace,
    strided_matrix_trace,
)

__all__ = [
    "Cache",
    "CacheStats",
    "BatchTrace",
    "compile_trace",
    "warm_region",
    "ACCESS_DTYPE",
    "KIND_LOAD",
    "KIND_STORE",
    "KIND_PREFETCH",
    "CODE_LOAD",
    "CODE_STORE",
    "CODE_PREFETCH",
    "MemoryHierarchy",
    "AccessResult",
    "Tlb",
    "TlbStats",
    "Access",
    "TraceCost",
    "run_trace",
    "contiguous_trace",
    "strided_matrix_trace",
    "SetPolicy",
    "DropPattern",
    "SequentialPrefetcher",
    "PrefetcherStats",
    "LruSetPolicy",
    "RandomSetPolicy",
    "PlruSetPolicy",
    "make_set_policy",
]
