"""Replacement policies for the set-associative cache simulator.

Each policy manages victim selection within a single cache set. The paper's
block-size derivation (Sec. IV-B) leans on the L1/L2/L3 being LRU; the
RANDOM and tree-PLRU policies are provided for the ablation study in
``benchmarks/bench_ablation_replacement.py``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.arch.params import ReplacementPolicy


class SetPolicy:
    """Victim-selection state for one cache set with ``ways`` ways."""

    def __init__(self, ways: int) -> None:
        self.ways = ways

    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""
        raise NotImplementedError

    def victim(self) -> int:
        """Choose the way to evict (caller then calls :meth:`touch`)."""
        raise NotImplementedError

    def state(self):
        """Opaque copy of the victim-selection state (for snapshots)."""
        raise NotImplementedError

    def set_state(self, state) -> None:
        """Restore a state captured by :meth:`state`."""
        raise NotImplementedError


class LruSetPolicy(SetPolicy):
    """True LRU: maintain ways in recency order (index 0 = LRU)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def state(self):
        return list(self._order)

    def set_state(self, state) -> None:
        self._order = list(state)


class RandomSetPolicy(SetPolicy):
    """Uniform-random victim selection (deterministic via a seeded RNG)."""

    def __init__(self, ways: int, rng: Optional[random.Random] = None) -> None:
        super().__init__(ways)
        self._rng = rng or random.Random(0)

    def touch(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.ways)

    def state(self):
        # The RNG may be shared across a cache's sets (seeded hierarchies):
        # every set then reports the same state and restoring is
        # idempotent, leaving the shared stream where the snapshot took it.
        return self._rng.getstate()

    def set_state(self, state) -> None:
        self._rng.setstate(state)


class PlruSetPolicy(SetPolicy):
    """Tree pseudo-LRU over a power-of-two number of ways.

    Non-power-of-two way counts fall back to the next power of two with
    unreachable leaves skipped by re-walking, which preserves the policy's
    near-LRU behaviour.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._leaves = 1
        while self._leaves < ways:
            self._leaves *= 2
        # One bit per internal node of a complete binary tree.
        self._bits = [0] * max(1, self._leaves - 1)

    def touch(self, way: int) -> None:
        node = 0
        lo, hi = 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point away: right is older
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0
                node = 2 * node + 2
                lo = mid
        # leaf reached

    def victim(self) -> int:
        while True:
            node = 0
            lo, hi = 0, self._leaves
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if self._bits[node] == 0:
                    node = 2 * node + 1
                    hi = mid
                else:
                    node = 2 * node + 2
                    lo = mid
            if lo < self.ways:
                return lo
            # Unreachable padded leaf: flip the path and retry.
            self.touch(min(lo, self.ways - 1))

    def state(self):
        return list(self._bits)

    def set_state(self, state) -> None:
        self._bits = list(state)


def make_set_policy(
    policy: ReplacementPolicy, ways: int, rng: Optional[random.Random] = None
) -> SetPolicy:
    """Factory mapping a :class:`ReplacementPolicy` to per-set state."""
    if policy is ReplacementPolicy.LRU:
        return LruSetPolicy(ways)
    if policy is ReplacementPolicy.RANDOM:
        return RandomSetPolicy(ways, rng)
    if policy is ReplacementPolicy.PLRU:
        return PlruSetPolicy(ways)
    raise ValueError(f"unknown replacement policy: {policy}")
