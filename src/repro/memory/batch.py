"""Batched address-trace representation for the vectorized cache engine.

A :class:`BatchTrace` holds an access stream as a NumPy structured array of
``(address, nbytes, kind, level)`` records — the array analogue of the
generator-based :class:`~repro.memory.trace.Access` streams. Compiling a
stream once per GEBP shape and replaying it through
:meth:`~repro.memory.hierarchy.MemoryHierarchy.run_batch` removes the
per-access Python overhead that bounds the Table VII / Fig. 15 block-size
sweeps; the same object still iterates as ``Access`` records, so the scalar
:func:`~repro.memory.trace.run_trace` path replays it unchanged as the
differential-testing oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.memory.cache import (
    CODE_LOAD,
    CODE_PREFETCH,
    CODE_STORE,
    CODE_TO_KIND,
    KIND_TO_CODE,
)
from repro.memory.trace import Access

#: One access record: byte address, width, kind code, prefetch target level.
ACCESS_DTYPE = np.dtype(
    [
        ("address", np.int64),
        ("nbytes", np.int32),
        ("kind", np.int8),
        ("level", np.int8),
    ]
)


class BatchTrace:
    """An access stream materialized as one structured array.

    Args:
        records: Array of :data:`ACCESS_DTYPE` records in program order.

    The trace is immutable by convention: line expansions are cached per
    line size, so a trace compiled once per GEBP shape can be replayed
    across every sweep point and both engines without re-materializing.
    """

    __slots__ = ("records", "_line_cache")

    def __init__(self, records: np.ndarray) -> None:
        self.records = np.ascontiguousarray(records, dtype=ACCESS_DTYPE)
        self._line_cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_accesses(cls, accesses: Iterable[Access]) -> "BatchTrace":
        """Compile an iterable of :class:`Access` records (a generator
        trace from :mod:`repro.memory.trace`, a list, ...)."""
        rows: List[Tuple[int, int, int, int]] = []
        for acc in accesses:
            try:
                code = KIND_TO_CODE[acc.kind]
            except KeyError:
                raise SimulationError(
                    f"unknown access kind: {acc.kind!r}"
                ) from None
            rows.append((acc.address, acc.nbytes, code, acc.level))
        return cls.from_rows(rows)

    @classmethod
    def from_rows(
        cls, rows: Sequence[Tuple[int, int, int, int]]
    ) -> "BatchTrace":
        """Build from ``(address, nbytes, kind_code, level)`` tuples."""
        records = np.array(rows, dtype=ACCESS_DTYPE) if rows else np.empty(
            0, dtype=ACCESS_DTYPE
        )
        return cls(records)

    @staticmethod
    def concat(traces: Sequence["BatchTrace"]) -> "BatchTrace":
        """Concatenate traces in order."""
        if not traces:
            return BatchTrace(np.empty(0, dtype=ACCESS_DTYPE))
        return BatchTrace(np.concatenate([t.records for t in traces]))

    def shifted(self, offset: int) -> "BatchTrace":
        """A copy with every address moved by ``offset`` bytes.

        Lets one trace compiled at base 0 serve every core: per-core
        placement is a pure relocation of the same access pattern.
        """
        if offset == 0:
            return self
        records = self.records.copy()
        records["address"] += offset
        return BatchTrace(records)

    # -- views --------------------------------------------------------------

    def __len__(self) -> int:
        return self.records.size

    def __iter__(self) -> Iterator[Access]:
        """Iterate as scalar :class:`Access` records (the oracle path)."""
        for rec in self.records:
            yield Access(
                address=int(rec["address"]),
                nbytes=int(rec["nbytes"]),
                kind=CODE_TO_KIND[int(rec["kind"])],
                level=int(rec["level"]),
            )

    @property
    def addresses(self) -> np.ndarray:
        return self.records["address"]

    @property
    def kinds(self) -> np.ndarray:
        return self.records["kind"]

    # -- line expansion -----------------------------------------------------

    def expand_lines(
        self, line_bytes: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand byte ranges to per-line accesses for ``line_bytes``.

        Returns ``(lines, kinds, levels)`` arrays, one entry per touched
        cache line, in program order. Demand accesses cover
        ``address .. address+nbytes-1`` (empty for ``nbytes <= 0``);
        prefetches touch exactly the line holding ``address``, matching the
        scalar :func:`~repro.memory.trace.run_trace` semantics. The result
        is cached per line size.
        """
        cached = self._line_cache.get(line_bytes)
        if cached is not None:
            return cached
        rec = self.records
        addr = rec["address"]
        nb = rec["nbytes"].astype(np.int64)
        kind = rec["kind"]
        first = addr // line_bytes
        last = (addr + nb - 1) // line_bytes
        counts = np.maximum(last - first + 1, 0)
        np.copyto(counts, 0, where=nb <= 0)
        np.copyto(counts, 1, where=kind == CODE_PREFETCH)
        total = int(counts.sum())
        if total == 0:
            out = (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int8),
                np.empty(0, dtype=np.int8),
            )
            self._line_cache[line_bytes] = out
            return out
        run_starts = np.repeat(np.cumsum(counts) - counts, counts)
        lines = np.repeat(first, counts) + (
            np.arange(total, dtype=np.int64) - run_starts
        )
        kinds = np.repeat(kind, counts)
        levels = np.repeat(rec["level"], counts)
        out = (lines, kinds, levels)
        self._line_cache[line_bytes] = out
        return out

    def line_count(self, line_bytes: int) -> int:
        """Number of per-line accesses the replay performs."""
        return self.expand_lines(line_bytes)[0].size


def compile_trace(accesses: Iterable[Access]) -> BatchTrace:
    """Compile a generator-based trace into a :class:`BatchTrace`."""
    return BatchTrace.from_accesses(accesses)


def warm_region(cache, base: int, nbytes: int, line_bytes: int) -> None:
    """Load every line of ``[base, base + nbytes)`` into one cache.

    The batched replacement for the per-line Python warm-up loops the
    timed executor runs before a measurement (GEBP's precondition that
    packing already placed A in the L2 and B in the L3): state and
    statistics end up exactly as if ``cache.access_line((base + off) //
    line_bytes)`` had been called for every ``off in range(0, nbytes,
    line_bytes)``.

    Args:
        cache: A :class:`~repro.memory.cache.Cache` (one level, not a
            hierarchy — warming targets a specific level directly).
        base: First byte of the region.
        nbytes: Region size; non-positive warms nothing.
        line_bytes: The cache's line size.
    """
    if nbytes <= 0:
        return
    lines = (
        base + np.arange(0, nbytes, line_bytes, dtype=np.int64)
    ) // line_bytes
    cache.access_lines_batched(
        lines, np.full(lines.size, CODE_LOAD, dtype=np.int8)
    )
