"""TLB model — the paper's stated future-work item, implemented here.

A fully-associative LRU TLB over page-granular translations. The GEMM cost
model can enable it to study how packing keeps the page working set small
(packed buffers are contiguous, so a GEBP touches few distinct pages).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.arch.params import TlbParams


@dataclass
class TlbStats:
    """TLB access counters."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Fully-associative LRU TLB."""

    def __init__(self, params: TlbParams) -> None:
        self.params = params
        self.stats = TlbStats()
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def access_page(self, page: int) -> bool:
        """Translate ``page``; returns True on hit."""
        self.stats.accesses += 1
        if page in self._entries:
            self._entries.move_to_end(page)
            return True
        self.stats.misses += 1
        if len(self._entries) >= self.params.entries:
            self._entries.popitem(last=False)
        self._entries[page] = None
        return False

    def access_line(self, line: int, line_bytes: int) -> bool:
        """Translate the page holding cache line ``line``."""
        page = (line * line_bytes) // self.params.page_bytes
        return self.access_page(page)

    def flush(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.stats = TlbStats()

    def snapshot(self) -> dict:
        """Copy of the full TLB state (entries in recency order + stats)."""
        return {
            "entries": OrderedDict(self._entries),
            "stats": TlbStats(
                accesses=self.stats.accesses, misses=self.stats.misses
            ),
        }

    def restore(self, snap: dict) -> None:
        """Restore a :meth:`snapshot`; the snapshot stays reusable."""
        self._entries = OrderedDict(snap["entries"])
        self.stats = TlbStats(
            accesses=snap["stats"].accesses, misses=snap["stats"].misses
        )
