"""Set-associative cache simulator.

The simulator is line-granular: callers present byte addresses (or line
indices) and the cache tracks presence per 64-byte line per set, with the
configured associativity and replacement policy. A fast path implements true
LRU with :class:`collections.OrderedDict`; RANDOM and PLRU run through the
generic per-set policy objects.

Statistics distinguish demand loads, stores and software prefetches, which
is what Fig. 15 (L1-dcache-load counts) and Table VII (L1 miss rates) need.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.params import CacheParams, ReplacementPolicy, WritePolicy
from repro.errors import SimulationError
from repro.memory.replacement import SetPolicy, make_set_policy

KIND_LOAD = "load"
KIND_STORE = "store"
KIND_PREFETCH = "prefetch"

_KINDS = (KIND_LOAD, KIND_STORE, KIND_PREFETCH)


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    loads: int = 0
    load_misses: int = 0
    stores: int = 0
    store_misses: int = 0
    prefetches: int = 0
    prefetch_misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.loads + self.stores + self.prefetches

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses + self.prefetch_misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def load_miss_rate(self) -> float:
        """Demand-load miss rate (the paper's L1-dcache-load-miss rate)."""
        return self.load_misses / self.loads if self.loads else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum, used to aggregate per-core caches."""
        return CacheStats(
            loads=self.loads + other.loads,
            load_misses=self.load_misses + other.load_misses,
            stores=self.stores + other.stores,
            store_misses=self.store_misses + other.store_misses,
            prefetches=self.prefetches + other.prefetches,
            prefetch_misses=self.prefetch_misses + other.prefetch_misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )


class Cache:
    """One set-associative cache level.

    Args:
        params: Geometry and policy description.
        rng: RNG used by the RANDOM policy (seeded for reproducibility).
    """

    def __init__(
        self, params: CacheParams, rng: Optional[random.Random] = None
    ) -> None:
        self.params = params
        self.stats = CacheStats()
        self._num_sets = params.num_sets
        self._line_bytes = params.line_bytes
        self._ways = params.ways
        self._is_lru = params.replacement is ReplacementPolicy.LRU
        # Write-through caches never hold dirty lines: every store is
        # propagated outward by the hierarchy instead of being buffered.
        self._write_back = params.write_policy is WritePolicy.WRITE_BACK
        if self._is_lru:
            # tag -> dirty flag, in recency order (last = MRU).
            self._lru_sets: List["OrderedDict[int, bool]"] = [
                OrderedDict() for _ in range(self._num_sets)
            ]
        else:
            self._tags: List[List[Optional[int]]] = [
                [None] * self._ways for _ in range(self._num_sets)
            ]
            self._dirty: List[List[bool]] = [
                [False] * self._ways for _ in range(self._num_sets)
            ]
            self._policies: List[SetPolicy] = [
                make_set_policy(params.replacement, self._ways, rng)
                for _ in range(self._num_sets)
            ]

    # -- address helpers ----------------------------------------------------

    def line_of(self, address: int) -> int:
        """Line index containing byte ``address``."""
        return address // self._line_bytes

    def set_of_line(self, line: int) -> int:
        """Set index for a line index."""
        return line % self._num_sets

    # -- core access --------------------------------------------------------

    def access_line(self, line: int, kind: str = KIND_LOAD) -> bool:
        """Access one cache line; returns True on hit, False on miss.

        A miss allocates the line (also for stores and prefetches —
        write-allocate, matching the paper's write-back caches).
        """
        if kind not in _KINDS:
            raise SimulationError(f"unknown access kind: {kind!r}")
        if self._is_lru:
            hit = self._access_lru(line, kind)
        else:
            hit = self._access_generic(line, kind)
        self._count(kind, hit)
        return hit

    def _access_lru(self, line: int, kind: str) -> bool:
        s = self._lru_sets[line % self._num_sets]
        dirty = kind == KIND_STORE and self._write_back
        if line in s:
            s[line] = s[line] or dirty
            s.move_to_end(line)
            return True
        if len(s) >= self._ways:
            _, evicted_dirty = s.popitem(last=False)
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.writebacks += 1
        s[line] = dirty
        return False

    def _access_generic(self, line: int, kind: str) -> bool:
        set_idx = line % self._num_sets
        tags = self._tags[set_idx]
        dirty = self._dirty[set_idx]
        policy = self._policies[set_idx]
        for way, tag in enumerate(tags):
            if tag == line:
                policy.touch(way)
                if kind == KIND_STORE and self._write_back:
                    dirty[way] = True
                return True
        # Miss: prefer an empty way, else the policy's victim.
        try:
            way = tags.index(None)
        except ValueError:
            way = policy.victim()
            self.stats.evictions += 1
            if dirty[way]:
                self.stats.writebacks += 1
        tags[way] = line
        dirty[way] = kind == KIND_STORE and self._write_back
        policy.touch(way)
        return False

    def _count(self, kind: str, hit: bool) -> None:
        if kind == KIND_LOAD:
            self.stats.loads += 1
            if not hit:
                self.stats.load_misses += 1
        elif kind == KIND_STORE:
            self.stats.stores += 1
            if not hit:
                self.stats.store_misses += 1
        else:
            self.stats.prefetches += 1
            if not hit:
                self.stats.prefetch_misses += 1

    # -- convenience --------------------------------------------------------

    def access_bytes(self, address: int, nbytes: int, kind: str = KIND_LOAD) -> int:
        """Access a byte range; returns the number of line misses."""
        if nbytes <= 0:
            return 0
        first = self.line_of(address)
        last = self.line_of(address + nbytes - 1)
        misses = 0
        for line in range(first, last + 1):
            if not self.access_line(line, kind):
                misses += 1
        return misses

    def contains_line(self, line: int) -> bool:
        """True if ``line`` is currently resident (no state update)."""
        if self._is_lru:
            return line in self._lru_sets[line % self._num_sets]
        return line in self._tags[line % self._num_sets]

    def resident_lines(self) -> int:
        """Total number of lines currently resident."""
        if self._is_lru:
            return sum(len(s) for s in self._lru_sets)
        return sum(
            1 for ways in self._tags for tag in ways if tag is not None
        )

    def flush(self) -> None:
        """Drop all contents (stats are retained)."""
        if self._is_lru:
            for s in self._lru_sets:
                s.clear()
        else:
            for tags, dirty in zip(self._tags, self._dirty):
                for i in range(self._ways):
                    tags[i] = None
                    dirty[i] = False

    def reset_stats(self) -> None:
        self.stats = CacheStats()
