"""Set-associative cache simulator.

The simulator is line-granular: callers present byte addresses (or line
indices) and the cache tracks presence per 64-byte line per set, with the
configured associativity and replacement policy. A fast path implements true
LRU with :class:`collections.OrderedDict`; RANDOM and PLRU run through the
generic per-set policy objects.

For trace replay at array granularity, :meth:`Cache.access_lines_batched`
resolves a whole vector of line accesses at once. LRU caches switch to a
*timestamp-LRU* representation (per-set tag/timestamp/dirty arrays) and the
batch is processed in "rounds": round ``r`` handles the ``r``-th access of
every set in parallel, which is exact because sets are independent and the
within-set order equals program order. RANDOM and PLRU caches fall back to
the scalar per-access path (which preserves the per-cache RNG consumption
order), so the batched engine is bit-identical for every policy.

Statistics distinguish demand loads, stores and software prefetches, which
is what Fig. 15 (L1-dcache-load counts) and Table VII (L1 miss rates) need.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.arch.params import CacheParams, ReplacementPolicy, WritePolicy
from repro.errors import SimulationError
from repro.memory.replacement import SetPolicy, make_set_policy

KIND_LOAD = "load"
KIND_STORE = "store"
KIND_PREFETCH = "prefetch"

_KINDS = (KIND_LOAD, KIND_STORE, KIND_PREFETCH)

#: Integer access-kind codes used by the batched engine (array payloads).
CODE_LOAD = 0
CODE_STORE = 1
CODE_PREFETCH = 2

KIND_TO_CODE = {KIND_LOAD: CODE_LOAD, KIND_STORE: CODE_STORE,
                KIND_PREFETCH: CODE_PREFETCH}
CODE_TO_KIND = (KIND_LOAD, KIND_STORE, KIND_PREFETCH)

#: Below this round width the vectorized sweep hands the remaining tail of
#: the batch to a per-access Python loop: numpy call overhead exceeds the
#: work once only a handful of sets are still active.
DEFAULT_TAIL_MIN = 24


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    loads: int = 0
    load_misses: int = 0
    stores: int = 0
    store_misses: int = 0
    prefetches: int = 0
    prefetch_misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.loads + self.stores + self.prefetches

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses + self.prefetch_misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def load_miss_rate(self) -> float:
        """Demand-load miss rate (the paper's L1-dcache-load-miss rate)."""
        return self.load_misses / self.loads if self.loads else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum, used to aggregate per-core caches."""
        return CacheStats(
            loads=self.loads + other.loads,
            load_misses=self.load_misses + other.load_misses,
            stores=self.stores + other.stores,
            store_misses=self.store_misses + other.store_misses,
            prefetches=self.prefetches + other.prefetches,
            prefetch_misses=self.prefetch_misses + other.prefetch_misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )


class Cache:
    """One set-associative cache level.

    Args:
        params: Geometry and policy description.
        rng: RNG used by the RANDOM policy (seeded for reproducibility).
    """

    def __init__(
        self, params: CacheParams, rng: Optional[random.Random] = None
    ) -> None:
        self.params = params
        self.stats = CacheStats()
        self._num_sets = params.num_sets
        self._line_bytes = params.line_bytes
        self._ways = params.ways
        self._is_lru = params.replacement is ReplacementPolicy.LRU
        # Write-through caches never hold dirty lines: every store is
        # propagated outward by the hierarchy instead of being buffered.
        self._write_back = params.write_policy is WritePolicy.WRITE_BACK
        # Batched-engine observability: line accesses resolved through the
        # vectorized timestamp-LRU sweep vs. through the per-access
        # fallback (non-LRU policies). Not part of CacheStats on purpose.
        self.batched_accesses = 0
        self.batched_fallback_accesses = 0
        # Timestamp-LRU array state (populated lazily on the first batched
        # access; scalar accesses then run against the same representation).
        self._array_mode = False
        self._tags_arr: Optional[np.ndarray] = None
        self._ts_arr: Optional[np.ndarray] = None
        self._dirty_arr: Optional[np.ndarray] = None
        self._clock = 1
        if self._is_lru:
            # tag -> dirty flag, in recency order (last = MRU).
            self._lru_sets: List["OrderedDict[int, bool]"] = [
                OrderedDict() for _ in range(self._num_sets)
            ]
        else:
            self._tags: List[List[Optional[int]]] = [
                [None] * self._ways for _ in range(self._num_sets)
            ]
            self._dirty: List[List[bool]] = [
                [False] * self._ways for _ in range(self._num_sets)
            ]
            self._policies: List[SetPolicy] = [
                make_set_policy(params.replacement, self._ways, rng)
                for _ in range(self._num_sets)
            ]

    # -- address helpers ----------------------------------------------------

    def line_of(self, address: int) -> int:
        """Line index containing byte ``address``."""
        return address // self._line_bytes

    def set_of_line(self, line: int) -> int:
        """Set index for a line index."""
        return line % self._num_sets

    # -- core access --------------------------------------------------------

    def access_line(self, line: int, kind: str = KIND_LOAD) -> bool:
        """Access one cache line; returns True on hit, False on miss.

        A miss allocates the line (also for stores and prefetches —
        write-allocate, matching the paper's write-back caches).
        """
        if kind not in _KINDS:
            raise SimulationError(f"unknown access kind: {kind!r}")
        if self._is_lru:
            if self._array_mode:
                hit = self._access_lru_array(line, kind)
            else:
                hit = self._access_lru(line, kind)
        else:
            hit = self._access_generic(line, kind)
        self._count(kind, hit)
        return hit

    def _access_lru(self, line: int, kind: str) -> bool:
        s = self._lru_sets[line % self._num_sets]
        dirty = kind == KIND_STORE and self._write_back
        if line in s:
            s[line] = s[line] or dirty
            s.move_to_end(line)
            return True
        if len(s) >= self._ways:
            _, evicted_dirty = s.popitem(last=False)
            self.stats.evictions += 1
            if evicted_dirty:
                self.stats.writebacks += 1
        s[line] = dirty
        return False

    def _access_lru_array(self, line: int, kind: str) -> bool:
        """One LRU access against the timestamp-array representation.

        Counter-equivalent to :meth:`_access_lru`: the LRU victim is the
        way with the smallest timestamp, and empty ways carry negative
        timestamps so they are filled before anything is evicted.
        """
        s = line % self._num_sets
        tags = self._tags_arr[s]
        ts = self._ts_arr[s]
        dirty = kind == KIND_STORE and self._write_back
        match = np.flatnonzero(tags == line)
        if match.size:
            w = int(match[0])
            ts[w] = self._clock
            if dirty:
                self._dirty_arr[s, w] = True
            self._clock += 1
            return True
        w = int(ts.argmin())
        if tags[w] >= 0:
            self.stats.evictions += 1
            if self._dirty_arr[s, w]:
                self.stats.writebacks += 1
        tags[w] = line
        ts[w] = self._clock
        self._dirty_arr[s, w] = dirty
        self._clock += 1
        return False

    def _access_generic(self, line: int, kind: str) -> bool:
        set_idx = line % self._num_sets
        tags = self._tags[set_idx]
        dirty = self._dirty[set_idx]
        policy = self._policies[set_idx]
        for way, tag in enumerate(tags):
            if tag == line:
                policy.touch(way)
                if kind == KIND_STORE and self._write_back:
                    dirty[way] = True
                return True
        # Miss: prefer an empty way, else the policy's victim.
        try:
            way = tags.index(None)
        except ValueError:
            way = policy.victim()
            self.stats.evictions += 1
            if dirty[way]:
                self.stats.writebacks += 1
        tags[way] = line
        dirty[way] = kind == KIND_STORE and self._write_back
        policy.touch(way)
        return False

    def _count(self, kind: str, hit: bool) -> None:
        if kind == KIND_LOAD:
            self.stats.loads += 1
            if not hit:
                self.stats.load_misses += 1
        elif kind == KIND_STORE:
            self.stats.stores += 1
            if not hit:
                self.stats.store_misses += 1
        else:
            self.stats.prefetches += 1
            if not hit:
                self.stats.prefetch_misses += 1

    # -- batched access -----------------------------------------------------

    def _ensure_array_mode(self) -> None:
        """Migrate the OrderedDict LRU state to timestamp arrays.

        Empty ways get distinct negative timestamps (way 0 lowest) so the
        ``argmin`` victim rule fills them in index order before evicting;
        resident lines get increasing positive timestamps in recency order,
        which reproduces the OrderedDict's LRU ordering exactly.
        """
        if self._array_mode:
            return
        ways, sets = self._ways, self._num_sets
        self._tags_arr = np.full((sets, ways), -1, dtype=np.int64)
        self._ts_arr = np.tile(
            np.arange(-ways, 0, dtype=np.int64), (sets, 1)
        )
        self._dirty_arr = np.zeros((sets, ways), dtype=bool)
        clock = 1
        for s, od in enumerate(self._lru_sets):
            for w, (line, dirty) in enumerate(od.items()):  # LRU .. MRU
                self._tags_arr[s, w] = line
                self._ts_arr[s, w] = clock
                self._dirty_arr[s, w] = dirty
                clock += 1
        self._clock = clock
        self._array_mode = True
        self._lru_sets = []

    def access_lines_batched(
        self,
        lines: np.ndarray,
        kinds: np.ndarray,
        tail_min: int = DEFAULT_TAIL_MIN,
    ) -> np.ndarray:
        """Access a vector of cache lines; returns a boolean hit mask.

        Args:
            lines: Line indices (non-negative integers), program order.
            kinds: Per-access kind codes (:data:`CODE_LOAD`,
                :data:`CODE_STORE`, :data:`CODE_PREFETCH`).
            tail_min: Round width below which the vectorized sweep hands
                the remaining accesses to the per-access loop.

        Counters (loads/stores/prefetches, misses, evictions, writebacks)
        are updated exactly as if :meth:`access_line` had been called once
        per element. LRU caches run the vectorized timestamp sweep; RANDOM
        and PLRU fall back to the scalar path per access.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        kinds = np.ascontiguousarray(kinds, dtype=np.int8)
        n = lines.size
        if kinds.size != n:
            raise SimulationError("lines and kinds must have equal length")
        if n == 0:
            return np.zeros(0, dtype=bool)
        if (kinds < CODE_LOAD).any() or (kinds > CODE_PREFETCH).any():
            raise SimulationError("unknown access kind code in batch")
        if lines.min() < 0:
            raise SimulationError("negative line index in batch")
        if not self._is_lru:
            hits = np.empty(n, dtype=bool)
            for i in range(n):
                hits[i] = self.access_line(
                    int(lines[i]), CODE_TO_KIND[kinds[i]]
                )
            self.batched_fallback_accesses += n
            return hits
        self._ensure_array_mode()
        hits = self._sweep_lru_batch(lines, kinds, tail_min)
        # Per-kind counters, identical to per-access _count() totals.
        kind_counts = np.bincount(kinds, minlength=3)
        miss_counts = np.bincount(kinds[~hits], minlength=3)
        st = self.stats
        st.loads += int(kind_counts[CODE_LOAD])
        st.stores += int(kind_counts[CODE_STORE])
        st.prefetches += int(kind_counts[CODE_PREFETCH])
        st.load_misses += int(miss_counts[CODE_LOAD])
        st.store_misses += int(miss_counts[CODE_STORE])
        st.prefetch_misses += int(miss_counts[CODE_PREFETCH])
        self.batched_accesses += n
        return hits

    def _sweep_lru_batch(
        self, lines: np.ndarray, kinds: np.ndarray, tail_min: int
    ) -> np.ndarray:
        """The vectorized timestamp-LRU sweep (stats-free; returns hits)."""
        n = lines.size
        sets = lines % self._num_sets
        # Group accesses by set; within a group order equals program order.
        sort_idx = np.argsort(sets, kind="stable")
        ss = sets[sort_idx]
        ls = lines[sort_idx]
        if self._write_back:
            store_sorted = (kinds[sort_idx] == CODE_STORE).view(np.int8)
        else:
            store_sorted = np.zeros(n, dtype=np.int8)
        # Run compression: consecutive accesses to the same line of a set
        # collapse into one state transition. Followers are guaranteed
        # hits, and the run's dirty contribution is "any store in the run".
        new_run = np.empty(n, dtype=bool)
        new_run[0] = True
        np.logical_or(
            ss[1:] != ss[:-1], ls[1:] != ls[:-1], out=new_run[1:]
        )
        run_id = np.cumsum(new_run) - 1
        rep_pos = np.flatnonzero(new_run)
        nruns = rep_pos.size
        run_sets = ss[rep_pos]
        run_lines = ls[rep_pos]
        run_store = np.maximum.reduceat(store_sorted, rep_pos).astype(bool)
        # Round r = the r-th run of every set, processed in parallel.
        run_new_set = np.empty(nruns, dtype=bool)
        run_new_set[0] = True
        run_new_set[1:] = run_sets[1:] != run_sets[:-1]
        starts = np.maximum.accumulate(
            np.where(run_new_set, np.arange(nruns), 0)
        )
        rank = np.arange(nruns) - starts
        order_sort = np.argsort(rank, kind="stable")
        counts = np.bincount(rank)
        offs = np.concatenate(([0], np.cumsum(counts)))
        rl = run_lines[order_sort]
        rs = run_sets[order_sort]
        rsb = run_store[order_sort]
        run_hit = np.zeros(nruns, dtype=bool)

        tags, ts, dirty = self._tags_arr, self._ts_arr, self._dirty_arr
        clock = self._clock
        evictions = 0
        writebacks = 0
        nrounds = counts.size
        r = 0
        while r < nrounds:
            o0, o1 = int(offs[r]), int(offs[r + 1])
            if o1 - o0 < tail_min:
                break
            ln = rl[o0:o1]
            st = rs[o0:o1]
            sb = rsb[o0:o1]
            trows = tags[st]
            match = trows == ln[:, None]
            hit = match.any(axis=1)
            run_hit[order_sort[o0:o1]] = hit
            # Touched way: the matching way on a hit, else the LRU victim
            # (empty ways have negative timestamps, so they fill first).
            way = np.where(
                hit, match.argmax(axis=1), ts[st].argmin(axis=1)
            )
            col = way[:, None]
            vtag = np.take_along_axis(trows, col, axis=1)[:, 0]
            vdirty = np.take_along_axis(dirty[st], col, axis=1)[:, 0]
            evict = ~hit & (vtag >= 0)
            evictions += int(evict.sum())
            writebacks += int((evict & vdirty).sum())
            tags[st, way] = ln  # on a hit this rewrites the same tag
            ts[st, way] = clock
            dirty[st, way] = (hit & vdirty) | sb
            clock += 1
            r += 1
        if r < nrounds:
            # Python tail: few sets remain; process their runs in order
            # against list copies of just those sets' state rows.
            p0 = int(offs[r])
            tail_sets = np.unique(rs[p0:])
            row_of = {int(s): i for i, s in enumerate(tail_sets)}
            ttags = tags[tail_sets].tolist()
            tts = ts[tail_sets].tolist()
            tdirty = dirty[tail_sets].tolist()
            for p in range(p0, nruns):
                line = int(rl[p])
                row = row_of[int(rs[p])]
                trow = ttags[row]
                tsrow = tts[row]
                try:
                    w = trow.index(line)
                    run_hit[order_sort[p]] = True
                    if rsb[p]:
                        tdirty[row][w] = True
                except ValueError:
                    w = tsrow.index(min(tsrow))
                    if trow[w] >= 0:
                        evictions += 1
                        if tdirty[row][w]:
                            writebacks += 1
                    trow[w] = line
                    tdirty[row][w] = bool(rsb[p])
                tsrow[w] = clock
                clock += 1
            tags[tail_sets] = ttags
            ts[tail_sets] = tts
            dirty[tail_sets] = tdirty
        self._clock = clock
        self.stats.evictions += evictions
        self.stats.writebacks += writebacks
        # Expand run verdicts back to per-access hits: run heads carry the
        # sweep's verdict, followers always hit.
        hits_sorted = run_hit[run_id]
        hits_sorted[~new_run] = True
        hits = np.empty(n, dtype=bool)
        hits[sort_idx] = hits_sorted
        return hits

    # -- convenience --------------------------------------------------------

    def access_bytes(self, address: int, nbytes: int, kind: str = KIND_LOAD) -> int:
        """Access a byte range; returns the number of line misses."""
        if nbytes <= 0:
            return 0
        first = self.line_of(address)
        last = self.line_of(address + nbytes - 1)
        misses = 0
        for line in range(first, last + 1):
            if not self.access_line(line, kind):
                misses += 1
        return misses

    def contains_line(self, line: int) -> bool:
        """True if ``line`` is currently resident (no state update)."""
        if self._is_lru:
            if self._array_mode:
                return bool(
                    (self._tags_arr[line % self._num_sets] == line).any()
                )
            return line in self._lru_sets[line % self._num_sets]
        return line in self._tags[line % self._num_sets]

    def set_contents(self, set_index: int) -> List[int]:
        """Resident lines of one set (diagnostic view, no state update).

        LRU caches return lines in recency order, LRU first — whichever
        representation (OrderedDict or timestamp arrays) currently holds
        the state. Other policies return them in way order.
        """
        if not 0 <= set_index < self._num_sets:
            raise SimulationError(f"set index {set_index} out of range")
        if self._is_lru:
            if self._array_mode:
                tags = self._tags_arr[set_index]
                order = np.argsort(self._ts_arr[set_index], kind="stable")
                return [int(tags[w]) for w in order if tags[w] >= 0]
            return list(self._lru_sets[set_index])
        return [tag for tag in self._tags[set_index] if tag is not None]

    def resident_lines(self) -> int:
        """Total number of lines currently resident."""
        if self._is_lru:
            if self._array_mode:
                return int((self._tags_arr >= 0).sum())
            return sum(len(s) for s in self._lru_sets)
        return sum(
            1 for ways in self._tags for tag in ways if tag is not None
        )

    def flush(self) -> None:
        """Drop all contents (stats are retained).

        A flushed cache behaves exactly like a content-fresh one in
        either LRU representation: the array mode's recency clock is
        rewound alongside the timestamps, so the OrderedDict and
        timestamp-array states stay interchangeable across flushes.
        """
        if self._is_lru:
            if self._array_mode:
                self._tags_arr.fill(-1)
                self._ts_arr[:] = np.arange(
                    -self._ways, 0, dtype=np.int64
                )
                self._dirty_arr.fill(False)
                self._clock = 1
                return
            for s in self._lru_sets:
                s.clear()
        else:
            for tags, dirty in zip(self._tags, self._dirty):
                for i in range(self._ways):
                    tags[i] = None
                    dirty[i] = False

    def snapshot(self) -> dict:
        """Copy of the full cache state: contents, stats and counters.

        The snapshot preserves whichever LRU representation (OrderedDict
        or timestamp arrays) currently holds the state, so a restored
        cache replays any trace bit-identically — including the lazy
        array-mode migration point. The snapshot itself stays reusable:
        it can be restored any number of times.
        """
        snap: dict = {
            "stats": replace(self.stats),
            "batched_accesses": self.batched_accesses,
            "batched_fallback_accesses": self.batched_fallback_accesses,
            "clock": self._clock,
        }
        if self._is_lru:
            if self._array_mode:
                snap["mode"] = "array"
                snap["tags"] = self._tags_arr.copy()
                snap["ts"] = self._ts_arr.copy()
                snap["dirty"] = self._dirty_arr.copy()
            else:
                snap["mode"] = "lru"
                snap["sets"] = [OrderedDict(s) for s in self._lru_sets]
        else:
            snap["mode"] = "generic"
            snap["tags"] = [list(t) for t in self._tags]
            snap["dirty"] = [list(d) for d in self._dirty]
            # RANDOM policies may share one RNG across sets; their state()
            # copies are then identical and restore is idempotent.
            snap["policies"] = [p.state() for p in self._policies]
        return snap

    def restore(self, snap: dict) -> None:
        """Restore a :meth:`snapshot` (contents, stats, counters)."""
        self.stats = replace(snap["stats"])
        self.batched_accesses = snap["batched_accesses"]
        self.batched_fallback_accesses = snap["batched_fallback_accesses"]
        self._clock = snap["clock"]
        mode = snap["mode"]
        if mode == "array":
            self._array_mode = True
            self._tags_arr = snap["tags"].copy()
            self._ts_arr = snap["ts"].copy()
            self._dirty_arr = snap["dirty"].copy()
            self._lru_sets = []
        elif mode == "lru":
            self._array_mode = False
            self._tags_arr = self._ts_arr = self._dirty_arr = None
            self._lru_sets = [OrderedDict(s) for s in snap["sets"]]
        else:
            self._tags = [list(t) for t in snap["tags"]]
            self._dirty = [list(d) for d in snap["dirty"]]
            for policy, state in zip(self._policies, snap["policies"]):
                policy.set_state(state)

    def reset_stats(self) -> None:
        """Zero every statistic, including the batched-engine coverage
        counters (``batched_accesses`` / ``batched_fallback_accesses``),
        which earlier survived resets and leaked across measurement
        windows."""
        self.stats = CacheStats()
        self.batched_accesses = 0
        self.batched_fallback_accesses = 0

    def reset(self, rng: Optional[random.Random] = None) -> None:
        """Return the cache to its just-constructed state.

        Beyond :meth:`flush` + :meth:`reset_stats`, this also rebuilds
        the replacement-policy state (RANDOM victim RNG consumption,
        PLRU tree bits) and drops the lazy timestamp-array migration, so
        a reset cache replays any trace with counters identical to a
        freshly constructed one — the round-trip property
        ``tests/test_stats_lifecycle.py`` pins down.

        Args:
            rng: Replacement for the RANDOM policy's RNG; pass a
                generator seeded like the original to reproduce the
                construction-time victim stream.
        """
        self.reset_stats()
        self._clock = 1
        if self._is_lru:
            self._array_mode = False
            self._tags_arr = self._ts_arr = self._dirty_arr = None
            self._lru_sets = [
                OrderedDict() for _ in range(self._num_sets)
            ]
        else:
            self._tags = [
                [None] * self._ways for _ in range(self._num_sets)
            ]
            self._dirty = [
                [False] * self._ways for _ in range(self._num_sets)
            ]
            self._policies = [
                make_set_policy(self.params.replacement, self._ways, rng)
                for _ in range(self._num_sets)
            ]
