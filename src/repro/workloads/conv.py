"""Direct convolution workloads: im2col lowering vs. a blocked loop nest.

A valid (no padding, stride 1) 2D convolution of a ``(cin, H, W)`` image
with ``(F, cin, KH, KW)`` filters is a GEMM in disguise: the ``im2col``
lowering materializes the ``(P, K)`` patches matrix (``P = OH*OW``
output positions, ``K = cin*KH*KW`` reduction length) and multiplies it
by the ``(K, F)`` filter matrix through the existing
:func:`~repro.gemm.driver.dgemm` path. The **direct** path runs the same
Goto loop nest but never materializes patches — each packed A sliver is
gathered straight from the image (the "last-mile" trick that turns
im2col's ``P*K``-element scratch matrix into an L1-resident pack
buffer).

The differential contract: :func:`conv_direct` is **bit-equal** to
:func:`conv_im2col` for *every* blocking. That holds by construction —
the direct gather produces, sliver for sliver, the same C-contiguous
zero-padded buffers :func:`~repro.gemm.packing.pack_a` would build from
the patches matrix, so :func:`~repro.gemm.gebp.gebp` sees identical
inputs in an identical call sequence. The ``conv.im2col`` oracle and the
property suite enforce it.

Blocked-vs-unblocked comparisons carry one extra constraint the stencil
family does not need: ``kc`` splits the reduction sum and the per-tile
matmul shape feeds BLAS kernel selection, so bit-equality across two
*different* blockings requires both to share ``mr``, ``nr`` and ``kc``
with ``mc``/``nc`` multiples of ``mr``/``nr`` (then every register tile
has the same shape and the k-sum the same split on both sides).
:func:`unblocked_conv_blocking` builds the conforming "one giant block"
configuration for a given blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.params import ChipParams
from repro.blocking.cache_blocking import CacheBlocking, solve_cache_blocking
from repro.errors import SimulationError
from repro.gemm.driver import dgemm
from repro.gemm.gebp import gebp
from repro.gemm.packing import pack_b
from repro.gemm.trace import GemmTrace
from repro.isa.instructions import Fmla, Instruction, Ldr, Str
from repro.isa.registers import VReg, XReg
from repro.memory.batch import ACCESS_DTYPE, BatchTrace
from repro.memory.cache import CODE_LOAD, CODE_STORE
from repro.workloads.base import Workload, WorkloadResult

__all__ = [
    "ConvSpec",
    "ConvWorkload",
    "conv_direct",
    "conv_im2col",
    "conv_reference",
    "filter_matrix",
    "im2col",
    "solve_conv_blocking",
    "unblocked_conv_blocking",
]

# Modeled address space (per core; cores relocate by CORE_STRIDE).
X_BASE = 0
W_BASE = 1 << 26
PATCHES_BASE = 1 << 27
PACKA_BASE = 1 << 28
PACKB_BASE = (1 << 28) + (1 << 27)
C_BASE = 1 << 29
CORE_STRIDE = 1 << 30

_ELEM = 8  # float64


@dataclass(frozen=True)
class ConvSpec:
    """One valid-mode, stride-1 convolution problem.

    Attributes:
        cin: Input channels.
        height, width: Image extents.
        kh, kw: Filter extents (``kh <= height``, ``kw <= width``).
        filters: Output channels ``F``.
    """

    cin: int
    height: int
    width: int
    kh: int
    kw: int
    filters: int

    def __post_init__(self) -> None:
        if min(self.cin, self.height, self.width, self.kh, self.kw,
               self.filters) < 1:
            raise SimulationError(f"conv extents must be positive: {self}")
        if self.kh > self.height or self.kw > self.width:
            raise SimulationError(
                f"filter {self.kh}x{self.kw} exceeds image "
                f"{self.height}x{self.width}"
            )

    @property
    def out_height(self) -> int:
        return self.height - self.kh + 1

    @property
    def out_width(self) -> int:
        return self.width - self.kw + 1

    @property
    def p(self) -> int:
        """GEMM M: output positions."""
        return self.out_height * self.out_width

    @property
    def k(self) -> int:
        """GEMM K: reduction length."""
        return self.cin * self.kh * self.kw

    @property
    def flops(self) -> int:
        return 2 * self.p * self.k * self.filters


def im2col(x: np.ndarray, kh: int, kw: int) -> np.ndarray:
    """Materialize the ``(P, K)`` patches matrix of a ``(cin, H, W)`` image.

    ``patches[p, k] = x[c, oy + dh, ox + dw]`` with ``p = oy*OW + ox``
    (row-major output positions) and ``k = (c*kh + dh)*kw + dw``
    (channel-major reduction index) — the layout under which the filter
    matrix is the plain reshape of the filter tensor.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 3:
        raise SimulationError(f"image must be (cin, H, W): shape {x.shape}")
    cin, h, w = x.shape
    oh, ow = h - kh + 1, w - kw + 1
    if oh < 1 or ow < 1:
        raise SimulationError(f"filter {kh}x{kw} exceeds image {h}x{w}")
    # windows[c, dh, dw, oy, ox] — a strided view, no copy.
    windows = np.lib.stride_tricks.sliding_window_view(x, (oh, ow), axis=(1, 2))
    # -> (P, K) with the documented index order.
    patches = windows.transpose(3, 4, 0, 1, 2).reshape(oh * ow, cin * kh * kw)
    return np.ascontiguousarray(patches)


def filter_matrix(w: np.ndarray) -> np.ndarray:
    """Reshape ``(F, cin, kh, kw)`` filters to the ``(K, F)`` GEMM operand."""
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 4:
        raise SimulationError(
            f"filters must be (F, cin, kh, kw): shape {w.shape}"
        )
    f = w.shape[0]
    return np.ascontiguousarray(w.reshape(f, -1).T)


def conv_reference(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Plain einsum convolution — the *numeric* (allclose) reference."""
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    cin, h, wid = x.shape
    f, cin2, kh, kw = w.shape
    if cin != cin2:
        raise SimulationError(f"channel mismatch: image {cin}, filters {cin2}")
    windows = np.lib.stride_tricks.sliding_window_view(
        x, (kh, kw), axis=(1, 2)
    )  # (cin, OH, OW, kh, kw)
    return np.einsum("cyxhw,fchw->fyx", windows, w, optimize=True)


def conv_im2col(
    x: np.ndarray,
    w: np.ndarray,
    blocking: Optional[CacheBlocking] = None,
) -> np.ndarray:
    """Convolution via im2col + the existing blocked DGEMM.

    Returns the ``(F, OH, OW)`` output tensor.
    """
    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    f, _, kh, kw = w.shape
    oh, ow = x.shape[1] - kh + 1, x.shape[2] - kw + 1
    patches = im2col(x, kh, kw)
    wmat = filter_matrix(w)
    out = np.zeros((patches.shape[0], f), order="F")
    out = dgemm(patches, wmat, out, alpha=1.0, beta=0.0, blocking=blocking)
    return np.ascontiguousarray(out.T).reshape(f, oh, ow)


def _gather_packed_a(
    x: np.ndarray,
    spec: ConvSpec,
    ii: int,
    mcur: int,
    kk: int,
    kcur: int,
    mr: int,
) -> np.ndarray:
    """Gather one packed A block straight from the image.

    Produces bit-for-bit what ``pack_a(im2col(x)[ii:ii+mcur, kk:kk+kcur],
    mr)`` would: a C-contiguous zeros-initialized ``(ceil(mcur/mr),
    kcur, mr)`` buffer with ``out[s, k, i] = patches[ii + s*mr + i,
    kk + k]`` — but the values come from ``x`` by index arithmetic, so
    the patches matrix never exists.
    """
    ow = spec.out_width
    p = ii + np.arange(mcur)
    oy, ox = p // ow, p % ow
    kidx = kk + np.arange(kcur)
    c, rem = kidx // (spec.kh * spec.kw), kidx % (spec.kh * spec.kw)
    dh, dw = rem // spec.kw, rem % spec.kw
    # vals[i, k] = x[c_k, oy_i + dh_k, ox_i + dw_k]
    vals = x[c[None, :], oy[:, None] + dh[None, :], ox[:, None] + dw[None, :]]
    ns = -(-mcur // mr)
    out = np.zeros((ns, kcur, mr))
    for s in range(ns):
        lo, hi = s * mr, min((s + 1) * mr, mcur)
        out[s, :, : hi - lo] = vals[lo:hi, :].T
    return out


def conv_direct(
    x: np.ndarray,
    w: np.ndarray,
    blocking: Optional[CacheBlocking] = None,
) -> np.ndarray:
    """Directly-blocked convolution: the Goto nest without the scratch
    matrix.

    Mirrors :func:`~repro.gemm.driver.dgemm`'s jj/kk/ii structure (with
    ``alpha = 1``, ``beta = 0``) exactly, but every packed A block is
    gathered from the image by :func:`_gather_packed_a`. Bit-equal to
    :func:`conv_im2col` under the same blocking.
    """
    from repro.gemm.driver import DEFAULT_BLOCKING

    x = np.asarray(x, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    f, cin, kh, kw = w.shape
    if x.shape[0] != cin:
        raise SimulationError(
            f"channel mismatch: image {x.shape[0]}, filters {cin}"
        )
    spec = ConvSpec(cin=cin, height=x.shape[1], width=x.shape[2],
                    kh=kh, kw=kw, filters=f)
    blk = blocking or DEFAULT_BLOCKING
    m, kdim, n = spec.p, spec.k, f
    wmat = filter_matrix(w)
    out = np.zeros((m, n), order="F")

    # The dgemm loop nest, alpha=1/beta=0 specialization.
    for jj in range(0, n, blk.nc):
        ncur = min(blk.nc, n - jj)
        first_k = True
        for kk in range(0, kdim, blk.kc):
            kcur = min(blk.kc, kdim - kk)
            if first_k:
                out[:, jj : jj + ncur] = 0.0
            packed_b = pack_b(wmat[kk : kk + kcur, jj : jj + ncur], blk.nr)
            for ii in range(0, m, blk.mc):
                mcur = min(blk.mc, m - ii)
                packed_a = _gather_packed_a(
                    x, spec, ii, mcur, kk, kcur, blk.mr
                )
                gebp(
                    packed_a,
                    packed_b,
                    out[ii : ii + mcur, jj : jj + ncur],
                    blk.mr,
                    blk.nr,
                )
            first_k = False
    return np.ascontiguousarray(out.T).reshape(f, spec.out_height,
                                               spec.out_width)


def solve_conv_blocking(chip: ChipParams, spec: ConvSpec) -> CacheBlocking:
    """Block the convolution GEMM against the Table III machinery.

    The paper's 8x6 solve, clamped to the problem: ``kc`` to the
    reduction length, ``mc``/``nc`` to the (register-tile-rounded)
    problem extents — keeping ``mc % mr == 0`` and ``nc % nr == 0`` so
    the result stays comparable (bit-equal) with its
    :func:`unblocked_conv_blocking` counterpart.
    """
    blk = solve_cache_blocking(chip, 8, 6)
    mr, nr = blk.mr, blk.nr
    kc = min(blk.kc, spec.k)
    mc = min(blk.mc, -(-spec.p // mr) * mr)
    nc = min(blk.nc - blk.nc % nr, -(-spec.filters // nr) * nr)
    return CacheBlocking(
        mr=mr, nr=nr, kc=kc, mc=max(mc, mr), nc=max(nc, nr),
        k1=blk.k1, k2=blk.k2, k3=blk.k3,
    )


def unblocked_conv_blocking(
    spec: ConvSpec, blocking: CacheBlocking
) -> CacheBlocking:
    """The "one giant block" configuration comparable to ``blocking``.

    Keeps ``mr``/``nr``/``kc`` (register tiles and the k-split are part
    of the bit-equality contract) and opens ``mc``/``nc`` to cover the
    whole problem in one layer-2/3 iteration.
    """
    mr, nr = blocking.mr, blocking.nr
    return CacheBlocking(
        mr=mr, nr=nr, kc=blocking.kc,
        mc=-(-spec.p // mr) * mr,
        nc=-(-spec.filters // nr) * nr,
        k1=blocking.k1, k2=blocking.k2, k3=blocking.k3,
    )


class ConvWorkload(Workload):
    """One convolution execution: problem, lowering, and blocking.

    Args:
        spec: The convolution problem.
        lowering: ``"im2col"`` (materialize patches, then DGEMM) or
            ``"direct"`` (gather packed blocks from the image).
        blocking: The GEMM blocking; required (solve one with
            :func:`solve_conv_blocking`).
        seed: Image/filter initialization seed.
    """

    name = "conv"
    LOWERINGS = ("im2col", "direct")

    def __init__(
        self,
        spec: ConvSpec,
        lowering: str,
        blocking: CacheBlocking,
        seed: int = 0,
    ) -> None:
        if lowering not in self.LOWERINGS:
            raise SimulationError(
                f"unknown lowering {lowering!r}; choose from {self.LOWERINGS}"
            )
        self.spec = spec
        self.lowering = lowering
        self.blocking = blocking
        self.seed = seed

    def make_operands(self) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        s = self.spec
        x = rng.standard_normal((s.cin, s.height, s.width))
        w = rng.standard_normal((s.filters, s.cin, s.kh, s.kw))
        return x, w

    @property
    def flops(self) -> int:
        return self.spec.flops

    def run(self) -> WorkloadResult:
        x, w = self.make_operands()
        fn = conv_im2col if self.lowering == "im2col" else conv_direct
        out = fn(x, w, blocking=self.blocking)
        return WorkloadResult(output=out, flops=self.flops)

    # -- machine-model faces -------------------------------------------------

    def _patch_source_addresses(self, p: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Image byte addresses of ``patches[p, k]`` (direct gather)."""
        s = self.spec
        oy, ox = p // s.out_width, p % s.out_width
        c, rem = k // (s.kh * s.kw), k % (s.kh * s.kw)
        dh, dw = rem // s.kw, rem % s.kw
        return X_BASE + (
            (c * s.height + oy + dh) * s.width + ox + dw
        ) * _ELEM

    def _pack_a_rows(
        self, ii: int, mcur: int, kk: int, kcur: int
    ) -> np.ndarray:
        """Pack-A phase rows: per sliver, (k-major, i-minor) load+store."""
        s = self.spec
        mr = self.blocking.mr
        rows: List[np.ndarray] = []
        ns = -(-mcur // mr)
        for sl in range(ns):
            lo, hi = sl * mr, min((sl + 1) * mr, mcur)
            kg, ig = np.mgrid[0:kcur, lo:hi]
            kg, ig = kg.ravel(), ig.ravel()
            p = ii + ig
            kidx = kk + kg
            if self.lowering == "im2col":
                src = PATCHES_BASE + (p * s.k + kidx) * _ELEM
            else:
                src = self._patch_source_addresses(p, kidx)
            dst = PACKA_BASE + ((sl * kcur + kg) * mr + (ig - lo)) * _ELEM
            rec = np.empty(2 * src.size, dtype=ACCESS_DTYPE)
            rec["address"][0::2] = src
            rec["address"][1::2] = dst
            rec["kind"][0::2] = CODE_LOAD
            rec["kind"][1::2] = CODE_STORE
            rec["nbytes"] = _ELEM
            rec["level"] = 1
            rows.append(rec)
        return np.concatenate(rows)

    def _pack_b_rows(self, jj: int, ncur: int, kk: int, kcur: int) -> np.ndarray:
        s = self.spec
        nr = self.blocking.nr
        rows: List[np.ndarray] = []
        ns = -(-ncur // nr)
        for sl in range(ns):
            lo, hi = sl * nr, min((sl + 1) * nr, ncur)
            kg, jg = np.mgrid[0:kcur, lo:hi]
            kg, jg = kg.ravel(), jg.ravel()
            src = W_BASE + ((kk + kg) * s.filters + jj + jg) * _ELEM
            dst = PACKB_BASE + ((sl * kcur + kg) * nr + (jg - lo)) * _ELEM
            rec = np.empty(2 * src.size, dtype=ACCESS_DTYPE)
            rec["address"][0::2] = src
            rec["address"][1::2] = dst
            rec["kind"][0::2] = CODE_LOAD
            rec["kind"][1::2] = CODE_STORE
            rec["nbytes"] = _ELEM
            rec["level"] = 1
            rows.append(rec)
        return np.concatenate(rows)

    def _gebp_rows(
        self, jj: int, ncur: int, kk: int, kcur: int, ii: int, mcur: int
    ) -> np.ndarray:
        """GEBP streaming rows: per register tile, C load -> k-loop
        (mr packed-A + nr packed-B loads) -> C store."""
        s = self.spec
        mr, nr = self.blocking.mr, self.blocking.nr
        na, nb = -(-mcur // mr), -(-ncur // nr)
        rows: List[np.ndarray] = []
        for j in range(nb):
            jlo, jhi = j * nr, min((j + 1) * nr, ncur)
            for i in range(na):
                ilo, ihi = i * mr, min((i + 1) * mr, mcur)
                # C tile addresses, column-major over the (P, F) output.
                ci, cj = np.mgrid[ilo:ihi, jlo:jhi]
                c_addr = C_BASE + (
                    (jj + cj.T.ravel()) * s.p + ii + ci.T.ravel()
                ) * _ELEM
                kg = np.arange(kcur)
                a_addr = PACKA_BASE + (
                    ((i * kcur + kg)[:, None] * mr + np.arange(mr)[None, :])
                    * _ELEM
                ).ravel()
                b_addr = PACKB_BASE + (
                    ((j * kcur + kg)[:, None] * nr + np.arange(nr)[None, :])
                    * _ELEM
                ).ravel()
                # Interleave per k: mr A loads then nr B loads.
                k_addr = np.concatenate(
                    [
                        a_addr.reshape(kcur, mr),
                        b_addr.reshape(kcur, nr),
                    ],
                    axis=1,
                ).ravel()
                n_c = c_addr.size
                rec = np.empty(2 * n_c + k_addr.size, dtype=ACCESS_DTYPE)
                rec["address"][:n_c] = c_addr
                rec["kind"][:n_c] = CODE_LOAD
                rec["address"][n_c : n_c + k_addr.size] = k_addr
                rec["kind"][n_c : n_c + k_addr.size] = CODE_LOAD
                rec["address"][n_c + k_addr.size :] = c_addr
                rec["kind"][n_c + k_addr.size :] = CODE_STORE
                rec["nbytes"] = _ELEM
                rec["level"] = 1
                rows.append(rec)
        return np.concatenate(rows)

    def _loop_nest(self):
        """(jj, ncur, kk, kcur, ii, mcur) in dgemm's iteration order;
        ii=None rows mark the per-(jj, kk) pack-B step."""
        s, blk = self.spec, self.blocking
        for jj in range(0, s.filters, blk.nc):
            ncur = min(blk.nc, s.filters - jj)
            for kk in range(0, s.k, blk.kc):
                kcur = min(blk.kc, s.k - kk)
                yield jj, ncur, kk, kcur, None, None
                for ii in range(0, s.p, blk.mc):
                    mcur = min(blk.mc, s.p - ii)
                    yield jj, ncur, kk, kcur, ii, mcur

    def traces(
        self, chip: ChipParams, core: int = 0
    ) -> Tuple[BatchTrace, BatchTrace]:
        """Compile ``(warm, main)`` access streams.

        Warm-up installs the just-written image and filter tensors. The
        main stream follows the loop nest: an im2col workload first
        materializes the patches matrix (image load + scratch store per
        element), then both lowerings run pack-B/pack-A/GEBP — with
        pack-A reading the scratch matrix (im2col) or gathering from the
        image (direct). The GEBP streaming rows are identical in both.
        """
        s = self.spec
        line = chip.l1d.line_bytes
        warm_parts = []
        for base, nbytes in (
            (X_BASE, s.cin * s.height * s.width * _ELEM),
            (W_BASE, s.k * s.filters * _ELEM),
        ):
            addr = base + np.arange(0, nbytes, line, dtype=np.int64)
            rec = np.empty(addr.size, dtype=ACCESS_DTYPE)
            rec["address"] = addr
            rec["nbytes"] = 1
            rec["kind"] = CODE_STORE
            rec["level"] = 1
            warm_parts.append(rec)
        warm = np.concatenate(warm_parts)

        parts: List[np.ndarray] = []
        if self.lowering == "im2col":
            pg, kg = np.mgrid[0 : s.p, 0 : s.k]
            pg, kg = pg.ravel(), kg.ravel()
            src = self._patch_source_addresses(pg, kg)
            dst = PATCHES_BASE + (pg * s.k + kg) * _ELEM
            rec = np.empty(2 * src.size, dtype=ACCESS_DTYPE)
            rec["address"][0::2] = src
            rec["address"][1::2] = dst
            rec["kind"][0::2] = CODE_LOAD
            rec["kind"][1::2] = CODE_STORE
            rec["nbytes"] = _ELEM
            rec["level"] = 1
            parts.append(rec)
        for jj, ncur, kk, kcur, ii, mcur in self._loop_nest():
            if ii is None:
                parts.append(self._pack_b_rows(jj, ncur, kk, kcur))
            else:
                parts.append(self._pack_a_rows(ii, mcur, kk, kcur))
                parts.append(self._gebp_rows(jj, ncur, kk, kcur, ii, mcur))
        main = np.concatenate(parts)

        shift = core * CORE_STRIDE
        return (
            BatchTrace(warm).shifted(shift),
            BatchTrace(main).shifted(shift),
        )

    def kernel_segments(
        self, chip: ChipParams
    ) -> List[Tuple[List[Instruction], int]]:
        """The loop nest as ISA segments, one LDR per trace demand load.

        Segment bodies are cached per shape and reused (the same list
        object), so the compiled engine's per-template memo collapses
        the thousands of identical register tiles.
        """
        mr, nr = self.blocking.mr, self.blocking.nr
        src_ptr, dst_ptr = XReg(0), XReg(1)
        a_ptr, b_ptr, c_ptr = XReg(2), XReg(3), XReg(4)

        copy_body: List[Instruction] = [
            Ldr(VReg(0), src_ptr, post_increment=_ELEM, tag="copy"),
            Str(VReg(0), dst_ptr, post_increment=_ELEM, tag="copy"),
        ]

        # fmla micro-kernel body per k: mr A + nr B loads, mr*nr/2 FMAs.
        k_body: List[Instruction] = []
        a_regs = [VReg(i) for i in range(8)]
        b_regs = [VReg(8 + i) for i in range(6)]
        accs = [VReg(14 + i) for i in range(18)]
        for i in range(mr):
            k_body.append(Ldr(a_regs[i % 8], a_ptr, tag="A"))
        for j in range(nr):
            k_body.append(Ldr(b_regs[j % 6], b_ptr, tag="B"))
        n_fma = max(1, (mr * nr) // 2)
        for t in range(n_fma):
            k_body.append(
                Fmla(
                    accs[t % len(accs)],
                    a_regs[t % 8],
                    b_regs[t % 6].lane(t % 2),
                )
            )

        c_load_cache: dict = {}
        c_store_cache: dict = {}

        def c_load(n: int) -> List[Instruction]:
            if n not in c_load_cache:
                c_load_cache[n] = [
                    Ldr(accs[t % len(accs)], c_ptr, tag="C") for t in range(n)
                ]
            return c_load_cache[n]

        def c_store(n: int) -> List[Instruction]:
            if n not in c_store_cache:
                c_store_cache[n] = [
                    Str(accs[t % len(accs)], c_ptr, tag="C") for t in range(n)
                ]
            return c_store_cache[n]

        segments: List[Tuple[List[Instruction], int]] = []
        s = self.spec
        if self.lowering == "im2col":
            segments.append((copy_body, s.p * s.k))
        for jj, ncur, kk, kcur, ii, mcur in self._loop_nest():
            if ii is None:
                segments.append((copy_body, kcur * ncur))
                continue
            segments.append((copy_body, kcur * mcur))
            na, nb = -(-mcur // mr), -(-ncur // nr)
            for j in range(nb):
                nrv = min(nr, ncur - j * nr)
                for i in range(na):
                    mrv = min(mr, mcur - i * mr)
                    segments.append((c_load(mrv * nrv), 1))
                    segments.append((k_body, kcur))
                    segments.append((c_store(mrv * nrv), 1))
        return segments
