"""Cache-blocked 2D stencil workloads (Jacobi/Laplacian family).

A cross-shaped stencil of radius ``r`` updates every interior point of a
2D grid from its ``4r + 1`` taps; the boundary ring of width ``r``
passes through unchanged, and iterations ping-pong between two buffers
(Jacobi style). Cache blocking tiles the interior traversal; halo values
are read straight from the full source array, so a tile never needs an
explicit exchange buffer and remainder tiles at the right/bottom edges
fall out of the loop bounds.

The differential contract (devito's ``test_cache_blocking`` pattern):
blocked and unblocked execution are **bit-equal** for every block shape,
including non-dividing ones. That holds by construction here — both
traversals evaluate the same per-element expression
(:func:`_update_tile`, fixed tap fold order), and NumPy elementwise
arithmetic is bitwise deterministic regardless of slice shape — and the
property suite and the ``stencil.blocked`` oracle enforce it anyway.

Block sizes come from the same Table III machinery that blocks GEMM:
:func:`solve_stencil_blocking` spends the L1 streaming budget the solver
allots to the packed A/B slivers on a stencil tile plus its halo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.params import ChipParams
from repro.blocking.cache_blocking import solve_cache_blocking
from repro.errors import SimulationError
from repro.isa.instructions import Fmla, Instruction, Ldr, Str
from repro.isa.registers import VReg, XReg
from repro.memory.batch import ACCESS_DTYPE, BatchTrace
from repro.memory.cache import CODE_LOAD, CODE_STORE
from repro.workloads.base import Workload, WorkloadResult

__all__ = [
    "StencilSpec",
    "StencilWorkload",
    "solve_stencil_blocking",
    "stencil_blocked",
    "stencil_reference",
    "tap_offsets",
]

#: Byte offset separating the two ping-pong grid buffers in the modeled
#: address space (each core's whole workload is further relocated by
#: ``core * CORE_STRIDE``, matching :mod:`repro.sim.gebp_cachesim`).
GRID_A_BASE = 0
GRID_B_BASE = 1 << 28
CORE_STRIDE = 1 << 30

_ELEM = 8  # float64


@dataclass(frozen=True)
class StencilSpec:
    """A cross-shaped Jacobi stencil.

    Attributes:
        radius: Arm length; the stencil reads ``4*radius + 1`` taps.
        alpha: Weight of every neighbour tap; the center tap gets
            ``1 - 4*radius*alpha`` so a constant field is a fixed point.
        iterations: Jacobi sweeps to run (ping-pong buffered).
    """

    radius: int = 1
    alpha: float = 0.25
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise SimulationError(f"stencil radius must be >= 1: {self.radius}")
        if self.iterations < 1:
            raise SimulationError(
                f"stencil iterations must be >= 1: {self.iterations}"
            )

    @property
    def taps(self) -> int:
        """Points read per output element."""
        return 4 * self.radius + 1

    @property
    def center_weight(self) -> float:
        return 1.0 - 4.0 * self.radius * self.alpha


def tap_offsets(radius: int) -> List[Tuple[int, int]]:
    """Tap ``(di, dj)`` offsets in the canonical fold order.

    Center first, then per distance ``d`` the up/down/left/right arms.
    Every consumer — the numerics, the address trace, the timed kernel —
    walks taps in exactly this order; it is part of the bit-equality
    contract.
    """
    taps = [(0, 0)]
    for d in range(1, radius + 1):
        taps.extend([(-d, 0), (d, 0), (0, -d), (0, d)])
    return taps


def _update_tile(
    src: np.ndarray,
    dst: np.ndarray,
    spec: StencilSpec,
    tile: Tuple[int, int, int, int],
) -> None:
    """Evaluate the stencil over one tile, halo read from the full src.

    The single shared expression both traversals use: per output element
    the fold order is fixed (center, then each arm by distance), so the
    slice shape cannot change any element's rounding.
    """
    i0, i1, j0, j1 = tile
    a = spec.alpha
    acc = spec.center_weight * src[i0:i1, j0:j1]
    for d in range(1, spec.radius + 1):
        acc = acc + a * src[i0 - d:i1 - d, j0:j1]
        acc = acc + a * src[i0 + d:i1 + d, j0:j1]
        acc = acc + a * src[i0:i1, j0 - d:j1 - d]
        acc = acc + a * src[i0:i1, j0 + d:j1 + d]
    dst[i0:i1, j0:j1] = acc


def _tiles(
    height: int,
    width: int,
    radius: int,
    block: Optional[Tuple[int, int]],
) -> List[Tuple[int, int, int, int]]:
    """Interior tile bounds in traversal order (row-major over tiles).

    ``block=None`` is the unblocked traversal: one tile spanning the
    interior. Remainder tiles at the right/bottom edges are simply
    short — no padding, no special casing.
    """
    r = radius
    i_lo, i_hi = r, height - r
    j_lo, j_hi = r, width - r
    if i_hi <= i_lo or j_hi <= j_lo:
        return []
    if block is None:
        return [(i_lo, i_hi, j_lo, j_hi)]
    bi, bj = block
    if bi < 1 or bj < 1:
        raise SimulationError(f"stencil block must be positive: {block}")
    tiles = []
    for i0 in range(i_lo, i_hi, bi):
        i1 = min(i0 + bi, i_hi)
        for j0 in range(j_lo, j_hi, bj):
            tiles.append((i0, i1, j0, min(j0 + bj, j_hi)))
    return tiles


def _run(
    grid: np.ndarray,
    spec: StencilSpec,
    block: Optional[Tuple[int, int]],
) -> np.ndarray:
    src = np.array(grid, dtype=np.float64)
    if src.ndim != 2:
        raise SimulationError(f"stencil grid must be 2D: shape {src.shape}")
    h, w = src.shape
    r = spec.radius
    tiles = _tiles(h, w, r, block)
    dst = np.empty_like(src)
    for _ in range(spec.iterations):
        dst[:r, :] = src[:r, :]
        dst[h - r:, :] = src[h - r:, :]
        dst[:, :r] = src[:, :r]
        dst[:, w - r:] = src[:, w - r:]
        for tile in tiles:
            _update_tile(src, dst, spec, tile)
        src, dst = dst, src
    return src


def stencil_reference(grid: np.ndarray, spec: StencilSpec) -> np.ndarray:
    """Unblocked execution: one full-interior slice per sweep."""
    return _run(grid, spec, None)


def stencil_blocked(
    grid: np.ndarray, spec: StencilSpec, block: Tuple[int, int]
) -> np.ndarray:
    """Cache-blocked execution, bit-equal to :func:`stencil_reference`."""
    return _run(grid, spec, block)


def solve_stencil_blocking(
    chip: ChipParams, radius: int = 1, element_size: int = 8
) -> Tuple[int, int]:
    """Solve ``(bi, bj)`` tile sizes against the Table III machinery.

    The GEMM solver's ``kc`` answers "how many elements can stream
    through the L1 alongside the resident working set" for the paper's
    8x6 kernel; spending the same budget — ``kc * (mr + nr)`` elements —
    on a stencil tile means the tile plus its halo (reads) and the tile
    itself (writes) fit where GEBP's slivers did:

    ``(b + 2r)^2 + b^2 <= kc * (mr + nr)``

    The column extent is then floored to a whole number of cache lines
    so tile rows don't shear across lines.
    """
    blk = solve_cache_blocking(chip, 8, 6, element_size=element_size)
    budget = blk.kc * (8 + 6)
    r = radius
    b = 1
    while (b + 1 + 2 * r) ** 2 + (b + 1) ** 2 <= budget:
        b += 1
    line_elements = max(1, chip.l1d.line_bytes // element_size)
    bj = max(line_elements, (b // line_elements) * line_elements)
    return b, bj


class StencilWorkload(Workload):
    """One stencil execution: grid, spec, and (optional) blocking.

    Args:
        height, width: Grid shape; the interior must be non-empty.
        spec: The stencil.
        block: ``(bi, bj)`` tile shape, or ``None`` for unblocked.
        seed: Grid initialization seed.
    """

    name = "stencil"

    def __init__(
        self,
        height: int,
        width: int,
        spec: Optional[StencilSpec] = None,
        block: Optional[Tuple[int, int]] = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec or StencilSpec()
        r = self.spec.radius
        if height <= 2 * r or width <= 2 * r:
            raise SimulationError(
                f"{height}x{width} grid has no interior at radius {r}"
            )
        self.height = height
        self.width = width
        self.block = block
        self.seed = seed

    def make_grid(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return rng.standard_normal((self.height, self.width))

    @property
    def n_elements(self) -> int:
        """Interior points updated per sweep."""
        r = self.spec.radius
        return (self.height - 2 * r) * (self.width - 2 * r)

    @property
    def flops(self) -> int:
        # One multiply + one accumulate per tap per element per sweep.
        return 2 * self.spec.taps * self.n_elements * self.spec.iterations

    def run(self) -> WorkloadResult:
        out = _run(self.make_grid(), self.spec, self.block)
        return WorkloadResult(output=out, flops=self.flops)

    # -- machine-model faces -------------------------------------------------

    def _element_order(self) -> Tuple[np.ndarray, np.ndarray]:
        """(i, j) of every interior element, one sweep, traversal order."""
        tiles = _tiles(self.height, self.width, self.spec.radius, self.block)
        ii: List[np.ndarray] = []
        jj: List[np.ndarray] = []
        for i0, i1, j0, j1 in tiles:
            ti, tj = np.mgrid[i0:i1, j0:j1]
            ii.append(ti.ravel())
            jj.append(tj.ravel())
        if not ii:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return (
            np.concatenate(ii).astype(np.int64),
            np.concatenate(jj).astype(np.int64),
        )

    def traces(
        self, chip: ChipParams, core: int = 0
    ) -> Tuple[BatchTrace, BatchTrace]:
        """Compile ``(warm, main)`` access streams.

        Warm-up installs the just-initialized input grid (line-strided
        stores, the :mod:`~repro.sim.gebp_cachesim` idiom). The main
        stream is, per interior element in traversal order: one 8-byte
        load per tap (canonical tap order) then the 8-byte store of the
        result — with the ping-pong buffers swapping roles every sweep.
        Blocked and unblocked workloads emit the same row multiset in a
        different order; the cache walk prices the difference.
        """
        h, w = self.height, self.width
        line = chip.l1d.line_bytes
        grid_bytes = h * w * _ELEM
        warm_addr = GRID_A_BASE + np.arange(0, grid_bytes, line, dtype=np.int64)
        warm = np.empty(warm_addr.size, dtype=ACCESS_DTYPE)
        warm["address"] = warm_addr
        warm["nbytes"] = 1
        warm["kind"] = CODE_STORE
        warm["level"] = 1

        ii, jj = self._element_order()
        offsets = tap_offsets(self.spec.radius)
        n = ii.size
        cols = len(offsets) + 1
        addr = np.empty((n, cols), dtype=np.int64)
        kinds = np.empty((n, cols), dtype=np.int8)
        for t, (di, dj) in enumerate(offsets):
            addr[:, t] = ((ii + di) * w + (jj + dj)) * _ELEM
            kinds[:, t] = CODE_LOAD
        addr[:, -1] = (ii * w + jj) * _ELEM
        kinds[:, -1] = CODE_STORE

        sweeps = []
        for it in range(self.spec.iterations):
            src = GRID_A_BASE if it % 2 == 0 else GRID_B_BASE
            dst = GRID_B_BASE if it % 2 == 0 else GRID_A_BASE
            rec = np.empty(n * cols, dtype=ACCESS_DTYPE)
            shifted = addr.copy()
            shifted[:, :-1] += src
            shifted[:, -1] += dst
            rec["address"] = shifted.ravel()
            rec["nbytes"] = _ELEM
            rec["kind"] = kinds.ravel()
            rec["level"] = 1
            sweeps.append(rec)
        main = np.concatenate(sweeps) if sweeps else np.empty(0, ACCESS_DTYPE)

        shift = core * CORE_STRIDE
        return (
            BatchTrace(warm).shifted(shift),
            BatchTrace(main).shifted(shift),
        )

    def kernel_segments(
        self, chip: ChipParams
    ) -> List[Tuple[List[Instruction], int]]:
        """One per-element loop body, repeated for every element.

        ``v0`` holds the tap weights (loop-invariant), ``x0``/``x1``
        walk the source/destination, and each tap is a load feeding an
        FMA — so every demand load of :meth:`traces` prices exactly one
        ``ldr``. Blocked and unblocked emit the *same* program; only the
        latency stream (the traversal order) differs.
        """
        offsets = tap_offsets(self.spec.radius)
        src_ptr, dst_ptr = XReg(0), XReg(1)
        coeff = VReg(0)
        accs = (VReg(1), VReg(2))
        temps = tuple(VReg(3 + i) for i in range(4))
        body: List[Instruction] = []
        for t in range(len(offsets)):
            tmp = temps[t % len(temps)]
            body.append(Ldr(tmp, src_ptr, post_increment=_ELEM, tag="S"))
            body.append(Fmla(accs[t % 2], tmp, coeff.lane(t % 2)))
        body.append(Str(accs[0], dst_ptr, post_increment=_ELEM, tag="D"))
        repeat = self.n_elements * self.spec.iterations
        return [(body, repeat)] if repeat else []
