"""Workload exhibits: the miss-rate/Gflops story, one JSON doc per family.

Each exhibit runs a workload family's variant pair through both machine
models — the cache walk (:func:`~repro.workloads.base.simulate_workload_cache`)
and the timed scoreboard (:func:`~repro.workloads.base.timed_workload`) —
plus the *numeric* bit-equality check that makes the comparison honest:
the variants must produce byte-identical outputs before their memory
behaviour is worth comparing.

- :func:`stencil_exhibit` — cache-blocked vs. unblocked Jacobi sweeps on
  a wide grid (a row exceeds the L1, so the unblocked traversal loses
  its top-arm reuse);
- :func:`conv_exhibit` — direct vs. im2col convolution at the solved
  blocking (im2col pays the patches-matrix round trip through DRAM).

The docs are deterministic and JSON-clean: the serve layer caches them
by content hash, the CLI prints them, and ``baseline_workloads.json``
commits them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.arch.params import ChipParams
from repro.workloads.base import (
    Workload,
    WorkloadCacheResult,
    WorkloadTimedResult,
    simulate_workload_cache,
    timed_workload,
)
from repro.workloads.conv import (
    ConvSpec,
    ConvWorkload,
    solve_conv_blocking,
    unblocked_conv_blocking,
)
from repro.workloads.stencil import (
    StencilSpec,
    StencilWorkload,
    solve_stencil_blocking,
)

__all__ = ["conv_exhibit", "stencil_exhibit"]


def _variant_doc(
    cache: WorkloadCacheResult, timed: WorkloadTimedResult
) -> Dict[str, Any]:
    return {
        "l1_loads": cache.l1_loads,
        "l1_load_misses": cache.l1_load_misses,
        "l1_load_miss_rate": cache.l1_load_miss_rate,
        "l2_loads": cache.l2_loads,
        "l2_load_misses": cache.l2_load_misses,
        "dram_accesses": cache.dram_accesses,
        "trace_records": cache.trace_records,
        "cycles": timed.cycles,
        "gflops": timed.gflops,
        "efficiency": timed.efficiency,
    }


def _measure(workload: Workload, chip: ChipParams) -> Dict[str, Any]:
    return _variant_doc(
        simulate_workload_cache(workload, chip),
        timed_workload(workload, chip),
    )


def stencil_exhibit(
    chip: ChipParams,
    height: Optional[int] = None,
    width: Optional[int] = None,
    radius: int = 1,
    iterations: int = 2,
    seed: int = 0,
    smoke: bool = False,
) -> Dict[str, Any]:
    """Blocked vs. unblocked stencil on a grid whose rows exceed the L1.

    The default 64x2048 float64 grid makes one row 16 KB: the unblocked
    row-major sweep has evicted row ``i-1`` by the time the up-arm needs
    it, while the solved tile keeps all its halo rows resident. Smoke
    mode narrows the grid (32 rows) but keeps the width — the effect is
    a property of the row length.
    """
    if height is None:
        height = 32 if smoke else 64
    if width is None:
        width = 2048
    spec = StencilSpec(radius=radius, iterations=iterations)
    block = solve_stencil_blocking(chip, radius)
    blocked = StencilWorkload(height, width, spec, block=block, seed=seed)
    unblocked = StencilWorkload(height, width, spec, block=None, seed=seed)
    bit_identical = (
        blocked.run().output.tobytes() == unblocked.run().output.tobytes()
    )
    variants = {
        "unblocked": _measure(unblocked, chip),
        "blocked": _measure(blocked, chip),
    }
    b, u = variants["blocked"], variants["unblocked"]
    return {
        "workload": "stencil",
        "chip": chip.name,
        "params": {
            "height": height,
            "width": width,
            "radius": radius,
            "iterations": iterations,
            "seed": seed,
            "smoke": smoke,
        },
        "block": {"bi": block[0], "bj": block[1]},
        "flops": blocked.flops,
        "bit_identical": bool(bit_identical),
        "variants": variants,
        "miss_rate_ratio": (
            u["l1_load_miss_rate"] / b["l1_load_miss_rate"]
            if b["l1_load_miss_rate"] > 0
            else float(u["l1_load_miss_rate"] == 0)
        ),
        "speedup": b["gflops"] / u["gflops"] if u["gflops"] > 0 else 0.0,
    }


def conv_exhibit(
    chip: ChipParams,
    cin: Optional[int] = None,
    height: Optional[int] = None,
    width: Optional[int] = None,
    kh: int = 3,
    kw: int = 3,
    filters: Optional[int] = None,
    seed: int = 0,
    smoke: bool = False,
) -> Dict[str, Any]:
    """Direct vs. im2col convolution at the solved blocking.

    Both lowerings run the identical GEBP stream; im2col additionally
    materializes the ``(P, K)`` patches matrix and re-reads it while
    packing, so its DRAM traffic carries the scratch matrix twice. The
    doc also proves the two bit-equality contracts: lowering-vs-lowering
    and solved-blocking-vs-unblocked.
    """
    if cin is None:
        cin = 1 if smoke else 3
    if height is None:
        height = 18 if smoke else 34
    if width is None:
        width = 18 if smoke else 34
    if filters is None:
        filters = 8 if smoke else 16
    spec = ConvSpec(cin=cin, height=height, width=width, kh=kh, kw=kw,
                    filters=filters)
    blocking = solve_conv_blocking(chip, spec)
    im2col_wl = ConvWorkload(spec, "im2col", blocking, seed=seed)
    direct_wl = ConvWorkload(spec, "direct", blocking, seed=seed)
    out_im2col = im2col_wl.run().output
    out_direct = direct_wl.run().output
    bit_identical = out_im2col.tobytes() == out_direct.tobytes()
    unblocked = ConvWorkload(
        spec, "im2col", unblocked_conv_blocking(spec, blocking), seed=seed
    )
    bit_identical_unblocked = (
        out_im2col.tobytes() == unblocked.run().output.tobytes()
    )
    variants = {
        "im2col": _measure(im2col_wl, chip),
        "direct": _measure(direct_wl, chip),
    }
    d, i = variants["direct"], variants["im2col"]
    return {
        "workload": "conv",
        "chip": chip.name,
        "params": {
            "cin": cin,
            "height": height,
            "width": width,
            "kh": kh,
            "kw": kw,
            "filters": filters,
            "seed": seed,
            "smoke": smoke,
        },
        "blocking": {
            "mr": blocking.mr,
            "nr": blocking.nr,
            "kc": blocking.kc,
            "mc": blocking.mc,
            "nc": blocking.nc,
        },
        "gemm_shape": {"m": spec.p, "k": spec.k, "n": spec.filters},
        "flops": spec.flops,
        "bit_identical": bool(bit_identical),
        "bit_identical_unblocked": bool(bit_identical_unblocked),
        "variants": variants,
        "dram_ratio": (
            i["dram_accesses"] / d["dram_accesses"]
            if d["dram_accesses"] > 0
            else 0.0
        ),
        "speedup": d["gflops"] / i["gflops"] if i["gflops"] > 0 else 0.0,
    }
