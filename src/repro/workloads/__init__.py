"""Workload families on the machine model (stencils, convolution).

The simulators consume address streams and ISA programs, not GEMM
specifically — this package makes that load-bearing. :mod:`~.base`
defines the workload API generalized from :mod:`repro.apps.lu`;
:mod:`~.stencil` and :mod:`~.conv` are the two concrete families, each
born with a bit-equality differential contract (blocked == unblocked,
im2col == direct) enforced by the property suite and the ``workloads``
oracle suite; :mod:`~.exhibit` packages the miss-rate/Gflops story for
the CLI, the serve layer and the committed baseline.
"""

from repro.workloads.base import (
    CACHE_ENGINES,
    TIMED_ENGINES,
    Workload,
    WorkloadCacheResult,
    WorkloadResult,
    WorkloadTimedResult,
    simulate_workload_cache,
    timed_workload,
    traced_dgemm,
)
from repro.workloads.conv import (
    ConvSpec,
    ConvWorkload,
    conv_direct,
    conv_im2col,
    conv_reference,
    filter_matrix,
    im2col,
    solve_conv_blocking,
    unblocked_conv_blocking,
)
from repro.workloads.exhibit import conv_exhibit, stencil_exhibit
from repro.workloads.stencil import (
    StencilSpec,
    StencilWorkload,
    solve_stencil_blocking,
    stencil_blocked,
    stencil_reference,
    tap_offsets,
)

__all__ = [
    "CACHE_ENGINES",
    "TIMED_ENGINES",
    "ConvSpec",
    "ConvWorkload",
    "StencilSpec",
    "StencilWorkload",
    "Workload",
    "WorkloadCacheResult",
    "WorkloadResult",
    "WorkloadTimedResult",
    "conv_direct",
    "conv_exhibit",
    "conv_im2col",
    "conv_reference",
    "filter_matrix",
    "im2col",
    "simulate_workload_cache",
    "solve_conv_blocking",
    "solve_stencil_blocking",
    "stencil_blocked",
    "stencil_exhibit",
    "stencil_reference",
    "tap_offsets",
    "timed_workload",
    "traced_dgemm",
    "unblocked_conv_blocking",
]
