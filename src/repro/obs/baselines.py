"""Baseline comparison for committed run reports.

Loads committed ``benchmarks/results/*.json`` documents and compares a
fresh :class:`~repro.obs.run_report.RunReport` against them:

- **wall-clock is never compared** — any leaf under ``metrics.spans`` or
  whose path mentions seconds is machine noise, not a result;
- **integer leaves are compared exactly** — the engines are deterministic
  (seeded RNGs, drop patterns, bit-identical batched/compiled paths), so
  a drifted counter is a behaviour change, not noise;
- **float leaves are compared with a relative tolerance**, and the
  direction of an out-of-tolerance change is classified by name
  (``gflops`` up is an improvement, ``miss`` up is a regression;
  unknown directions are conservatively regressions).

``repro report --diff`` drives this and exits nonzero when
:meth:`Comparison.ok` is false (unless ``--warn-only``), which is the
CI regression gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.run_report import RunReport, flatten

__all__ = [
    "Comparison",
    "DEFAULT_TOLERANCE",
    "Finding",
    "compare_files",
    "compare_reports",
    "format_comparison",
    "load_report_dict",
]

#: Default relative tolerance for float leaves.
DEFAULT_TOLERANCE = 0.05

#: Path fragments that mark wall-clock leaves (never compared).
_TIME_MARKERS = ("seconds", "wall_", ".time", "duration")

#: Leaf-name fragments where a larger value is better / worse.
_HIGHER_BETTER = ("gflops", "speedup", "efficiency", "ipc", "hits",
                  "accesses_per_s", "iters_per_s")
_LOWER_BETTER = ("miss", "stall", "cycles", "latency", "eviction",
                 "writeback", "fallback", "late", "dram")


@dataclass(frozen=True)
class Finding:
    """One compared leaf that deviated.

    ``kind`` is ``"regression"`` (fails the gate), ``"improvement"``
    (out of tolerance in the good direction), ``"mismatch"`` (the two
    reports describe different runs — also fails), or ``"added"`` (leaf
    present only in the current report — informational).
    """

    path: str
    baseline: Any
    current: Any
    kind: str
    note: str = ""


@dataclass
class Comparison:
    """Outcome of comparing a current report against a baseline."""

    findings: List[Finding] = field(default_factory=list)
    checked: int = 0
    skipped: int = 0

    @property
    def regressions(self) -> List[Finding]:
        return [f for f in self.findings
                if f.kind in ("regression", "mismatch")]

    @property
    def improvements(self) -> List[Finding]:
        return [f for f in self.findings if f.kind == "improvement"]

    @property
    def ok(self) -> bool:
        """True when nothing fails the regression gate."""
        return not self.regressions


def _is_time_path(path: str) -> bool:
    if path.startswith("metrics.spans."):
        return True
    return any(marker in path for marker in _TIME_MARKERS)


def _direction(path: str) -> Optional[str]:
    """``"higher"``/``"lower"`` = better, ``None`` = unknown."""
    leaf = path.rsplit(".", 1)[-1]
    probe = f"{leaf}.{path}"
    for marker in _HIGHER_BETTER:
        if marker in probe:
            return "higher"
    for marker in _LOWER_BETTER:
        if marker in probe:
            return "lower"
    return None


def _classify_float(
    path: str, base: float, cur: float, tolerance: float
) -> Optional[Finding]:
    scale = max(abs(base), abs(cur))
    if scale == 0:
        return None
    rel = abs(cur - base) / scale
    if rel <= tolerance:
        return None
    direction = _direction(path)
    improved = (direction == "higher" and cur > base) or (
        direction == "lower" and cur < base
    )
    return Finding(
        path=path,
        baseline=base,
        current=cur,
        kind="improvement" if improved else "regression",
        note=f"relative change {rel:.1%} exceeds tolerance {tolerance:.1%}",
    )


def compare_reports(
    baseline: Union[RunReport, Dict[str, Any]],
    current: Union[RunReport, Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Comparison:
    """Compare ``current`` against ``baseline`` (see module docstring)."""
    if isinstance(baseline, RunReport):
        baseline = baseline.to_dict()
    if isinstance(current, RunReport):
        current = current.to_dict()
    comp = Comparison()

    for meta in ("command", "schema_version"):
        if baseline.get(meta) != current.get(meta):
            comp.findings.append(Finding(
                path=meta,
                baseline=baseline.get(meta),
                current=current.get(meta),
                kind="mismatch",
                note="reports describe different runs",
            ))

    base_leaves = dict(flatten(baseline))
    cur_leaves = dict(flatten(current))
    for path in sorted(set(base_leaves) | set(cur_leaves)):
        if path in ("command", "schema_version", "created"):
            continue
        if _is_time_path(path):
            comp.skipped += 1
            continue
        in_base, in_cur = path in base_leaves, path in cur_leaves
        if in_base and not in_cur:
            comp.findings.append(Finding(
                path=path, baseline=base_leaves[path], current=None,
                kind="regression", note="leaf missing from current report",
            ))
            continue
        if in_cur and not in_base:
            comp.findings.append(Finding(
                path=path, baseline=None, current=cur_leaves[path],
                kind="added", note="leaf not in baseline",
            ))
            continue
        base, cur = base_leaves[path], cur_leaves[path]
        comp.checked += 1
        if path.startswith("params."):
            if base != cur:
                comp.findings.append(Finding(
                    path=path, baseline=base, current=cur, kind="mismatch",
                    note="run parameters differ",
                ))
            continue
        if base == cur:
            continue
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (base, cur)
        )
        if not numeric:
            comp.findings.append(Finding(
                path=path, baseline=base, current=cur, kind="regression",
                note="non-numeric leaf changed",
            ))
            continue
        if isinstance(base, int) and isinstance(cur, int):
            comp.findings.append(Finding(
                path=path, baseline=base, current=cur, kind="regression",
                note="deterministic counter drifted",
            ))
            continue
        finding = _classify_float(path, float(base), float(cur), tolerance)
        if finding is not None:
            comp.findings.append(finding)
    return comp


def load_report_dict(path: str) -> Dict[str, Any]:
    """Load a report document from ``path`` without schema enforcement
    (the comparator reports schema drift as findings instead)."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: report must be a JSON object")
    return doc


def compare_files(
    baseline_path: str,
    current_path: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Comparison:
    """Compare two report files (baseline first)."""
    return compare_reports(
        load_report_dict(baseline_path),
        load_report_dict(current_path),
        tolerance=tolerance,
    )


def format_comparison(
    comp: Comparison, baseline_name: str = "baseline",
    current_name: str = "current",
) -> str:
    """Human-readable comparison summary (one line per finding)."""
    lines = [
        f"compared {comp.checked} leaves against {baseline_name} "
        f"({comp.skipped} wall-clock leaves skipped)"
    ]
    for f in comp.findings:
        lines.append(
            f"  [{f.kind}] {f.path}: {baseline_name}={f.baseline!r} "
            f"{current_name}={f.current!r}"
            + (f" ({f.note})" if f.note else "")
        )
    if comp.ok:
        lines.append(
            "OK: no regressions"
            + (f" ({len(comp.improvements)} improvements)"
               if comp.improvements else "")
        )
    else:
        lines.append(f"FAIL: {len(comp.regressions)} regression(s)")
    return "\n".join(lines)
