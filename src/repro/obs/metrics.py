"""Named counters, gauges, histograms and span timers.

The simulator stack's engines each grew their own stat objects
(:class:`~repro.gemm.pool.PoolStats`, :class:`~repro.memory.cache.CacheStats`,
the scoreboard's :class:`~repro.pipeline.scoreboard.PipelineResult`).
:class:`MetricsRegistry` is the layer above them: one mutable sink a whole
run threads through its engines, collecting cross-cutting counts (engine
selections, batch replays, fallback events) and phase timings
(``with registry.span("pack_a"): ...``) that no single stat object owns.

Instrumentation follows a zero-overhead-when-disabled contract: every
instrumented entry point takes ``metrics: Optional[MetricsRegistry] = None``
and guards each hook with ``if metrics is not None`` — a disabled run pays
one pointer comparison per instrumented call, nothing else. Callers that
prefer to pass a registry unconditionally can use :data:`NULL_REGISTRY`,
whose operations are no-ops.

The registry serializes to the ``metrics`` section of a
:class:`~repro.obs.run_report.RunReport` via :meth:`MetricsRegistry.as_dict`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
]

_clock = time.perf_counter


class Histogram:
    """Streaming summary of observed values: count/total/min/max.

    Deliberately bucket-free — the engines' interesting distributions
    (load latencies, per-tile cycles) are already exact dicts on their
    result objects; the registry-level histogram answers "how many, how
    big" without holding every sample.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class Span:
    """Accumulated wall-clock of one named phase (re-enterable timer)."""

    __slots__ = ("count", "seconds", "_t0")

    def __init__(self) -> None:
        self.count = 0
        self.seconds = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = _clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds += _clock() - self._t0
        self.count += 1

    def as_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "seconds": self.seconds}


class MetricsRegistry:
    """A run's named counters, gauges, histograms and span timers.

    Names are free-form dotted strings (``"timed.engine.compiled"``);
    instruments are created on first use. The registry is intentionally
    permissive about threads: counter increments from worker threads are
    single bytecode-level dict updates, and the engines only mutate
    metrics from the dispatching thread, so no lock is taken on the hot
    path.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: Dict[str, Span] = {}

    # -- instruments --------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record the last-seen value of ``name``."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def span(self, name: str) -> Span:
        """The re-enterable phase timer ``name``; use as a context manager::

            with registry.span("pack_a"):
                ...
        """
        sp = self.spans.get(name)
        if sp is None:
            sp = self.spans[name] = Span()
        return sp

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument (fresh-registry equivalence)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()

    def as_dict(self) -> Dict[str, Any]:
        """The ``metrics`` section of a run report (JSON-serializable)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                k: h.as_dict() for k, h in self.histograms.items()
            },
            "spans": {k: s.as_dict() for k, s in self.spans.items()},
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, "
            f"histograms={len(self.histograms)}, spans={len(self.spans)})"
        )


class _NullSpan:
    """A context manager that does nothing, reused for every null span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRegistry(MetricsRegistry):
    """A registry whose every operation is a no-op.

    For callers that want to pass ``metrics`` unconditionally without a
    per-call ``None`` guard. Always empty; :meth:`as_dict` reports empty
    sections.
    """

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str) -> Span:  # type: ignore[override]
        return _NULL_SPAN  # type: ignore[return-value]


#: Shared no-op registry (see :class:`NullRegistry`).
NULL_REGISTRY = NullRegistry()
