"""Structured, versioned run reports.

A :class:`RunReport` is the machine-readable counterpart of the CLI's
plain-text output: one JSON document per run that snapshots the engine
stat objects (:class:`~repro.gemm.pool.PoolStats`,
:class:`~repro.memory.cache.CacheStats` / TLB / prefetcher counters,
:class:`~repro.pipeline.scoreboard.PipelineResult` stall breakdowns),
the engine selections (including ``engine="auto"`` fallback reasons from
:func:`repro.kernels.compiled.compilability`), and the run's
:class:`~repro.obs.metrics.MetricsRegistry` dump.

The document shape is versioned (:data:`SCHEMA_VERSION`) and validated
structurally by :func:`validate_report` — no external schema library is
required. Committed reports under ``benchmarks/results/*.json`` are the
baselines the :mod:`repro.obs.baselines` comparator regresses against.

The snapshot helpers are duck-typed on purpose: they read public counter
attributes only, so this module imports nothing from the engine layers
and can be loaded (e.g. by CI validators) without pulling numpy.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "RunReport",
    "SCHEMA_VERSION",
    "atomic_write_json",
    "atomic_write_text",
    "flatten",
    "snapshot_cache_stats",
    "snapshot_gebp_cache_result",
    "snapshot_hierarchy",
    "snapshot_pipeline",
    "snapshot_pool_stats",
    "snapshot_timed_run",
    "validate_report",
]

#: Version of the report document shape. Bump when a section is renamed,
#: removed, or changes meaning; additions of optional keys are compatible.
SCHEMA_VERSION = 1

#: Sections every report carries, in serialization order.
_SECTIONS = ("schema_version", "command", "created", "params", "engines",
             "metrics", "stats")

_METRIC_SECTIONS = ("counters", "gauges", "histograms", "spans")


def atomic_write_text(path: Any, text: str) -> None:
    """Write ``text`` to ``path`` crash-safely.

    The bytes land in a temporary file in the same directory and are
    moved over ``path`` with :func:`os.replace`, so a reader (or a crash
    mid-write) can only ever observe the old complete document or the
    new complete document — never a truncated one. Every committed JSON
    artifact of the repo (baselines, serve-cache entries, shrunk verify
    cases) goes through here.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: Any, doc: Any, indent: int = 2) -> None:
    """Serialize ``doc`` deterministically and write it atomically."""
    atomic_write_text(
        path, json.dumps(doc, indent=indent, sort_keys=True) + "\n"
    )


@dataclass
class RunReport:
    """One run's structured result document.

    Attributes:
        command: The entry point that produced the report (CLI subcommand
            or benchmark name).
        created: ISO-8601 creation timestamp (informational; never
            compared).
        params: The run's input parameters (CLI args, sweep points).
        engines: Per-engine-slot selection record, e.g.
            ``{"timed": {"requested": "auto", "selected": "interpreted",
            "fallback_reason": "body contains full-vector fmla ..."}}``.
        metrics: A :meth:`MetricsRegistry.as_dict` dump.
        stats: Snapshots of the engine stat objects (see the
            ``snapshot_*`` helpers).
    """

    command: str
    schema_version: int = SCHEMA_VERSION
    created: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    engines: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        return {k: doc[k] for k in _SECTIONS}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the report to ``path``, validating it first."""
        problems = validate_report(self.to_dict())
        if problems:
            raise ValueError(
                "refusing to write schema-invalid report: "
                + "; ".join(problems)
            )
        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunReport":
        problems = validate_report(doc)
        if problems:
            raise ValueError("invalid report: " + "; ".join(problems))
        return cls(
            command=doc["command"],
            schema_version=doc["schema_version"],
            created=doc.get("created"),
            params=doc.get("params", {}),
            engines=doc.get("engines", {}),
            metrics=doc.get("metrics", {}),
            stats=doc.get("stats", {}),
        )

    @classmethod
    def read(cls, path: str) -> "RunReport":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -- comparison ---------------------------------------------------------

    def diff(self, other: "RunReport") -> Dict[str, Tuple[Any, Any]]:
        """Leaves that differ between ``self`` and ``other``.

        Returns ``{dotted.path: (self_value, other_value)}``; a leaf
        present on only one side pairs with ``None`` on the other. The
        informational ``created`` stamp is excluded.
        """
        a = dict(flatten(self.to_dict()))
        b = dict(flatten(other.to_dict()))
        out: Dict[str, Tuple[Any, Any]] = {}
        for key in sorted(set(a) | set(b)):
            if key == "created":
                continue
            va, vb = a.get(key), b.get(key)
            if va != vb:
                out[key] = (va, vb)
        return out


def flatten(
    doc: Any, prefix: str = ""
) -> Iterator[Tuple[str, Any]]:
    """Yield ``(dotted.path, leaf)`` pairs of a nested dict/list document."""
    if isinstance(doc, dict):
        for k in doc:
            yield from flatten(doc[k], f"{prefix}{k}.")
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            yield from flatten(v, f"{prefix}{i}.")
    else:
        yield prefix[:-1], doc


# -- structural validation ---------------------------------------------------


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _check_leaves(doc: Any, path: str, problems: List[str]) -> None:
    if isinstance(doc, dict):
        for k, v in doc.items():
            if not isinstance(k, str):
                problems.append(f"{path}: non-string key {k!r}")
            else:
                _check_leaves(v, f"{path}.{k}", problems)
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            _check_leaves(v, f"{path}[{i}]", problems)
    elif not (doc is None or isinstance(doc, (str, bool, int, float))):
        problems.append(f"{path}: non-JSON leaf {type(doc).__name__}")


def validate_report(doc: Any) -> List[str]:
    """Structural problems of a report document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"report must be an object, got {type(doc).__name__}"]
    version = doc.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append("schema_version must be an integer")
    elif version > SCHEMA_VERSION:
        problems.append(
            f"schema_version {version} is newer than supported "
            f"{SCHEMA_VERSION}"
        )
    elif version < 1:
        problems.append(f"schema_version {version} out of range")
    command = doc.get("command")
    if not isinstance(command, str) or not command:
        problems.append("command must be a non-empty string")
    created = doc.get("created")
    if created is not None and not isinstance(created, str):
        problems.append("created must be a string or null")
    for section in ("params", "engines", "metrics", "stats"):
        if not isinstance(doc.get(section, {}), dict):
            problems.append(f"{section} must be an object")
    unknown = set(doc) - set(_SECTIONS)
    if unknown:
        problems.append(f"unknown sections: {sorted(unknown)}")

    engines = doc.get("engines", {})
    if isinstance(engines, dict):
        for slot, entry in engines.items():
            if not isinstance(entry, dict):
                problems.append(f"engines.{slot} must be an object")
                continue
            sel = entry.get("selected")
            if sel is not None and not isinstance(sel, str):
                problems.append(f"engines.{slot}.selected must be a string")
            reason = entry.get("fallback_reason")
            if reason is not None and not isinstance(reason, str):
                problems.append(
                    f"engines.{slot}.fallback_reason must be a string "
                    "or null"
                )

    metrics = doc.get("metrics", {})
    if isinstance(metrics, dict):
        unknown = set(metrics) - set(_METRIC_SECTIONS)
        if unknown:
            problems.append(f"unknown metrics sections: {sorted(unknown)}")
        for kind in ("counters", "gauges"):
            for name, value in metrics.get(kind, {}).items():
                if not _is_number(value):
                    problems.append(
                        f"metrics.{kind}.{name} must be a number"
                    )
        for name, hist in metrics.get("histograms", {}).items():
            if not isinstance(hist, dict) or not _is_number(
                hist.get("count", None)
            ):
                problems.append(
                    f"metrics.histograms.{name} must be an object with a "
                    "numeric count"
                )
        for name, span in metrics.get("spans", {}).items():
            if (
                not isinstance(span, dict)
                or not _is_number(span.get("count", None))
                or not _is_number(span.get("seconds", None))
            ):
                problems.append(
                    f"metrics.spans.{name} must have numeric count/seconds"
                )

    for section in ("params", "stats"):
        if isinstance(doc.get(section, {}), dict):
            _check_leaves(doc.get(section, {}), section, problems)
    return problems


# -- snapshot helpers (duck-typed on the engine stat objects) ----------------


def snapshot_cache_stats(stats: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.memory.cache.CacheStats` (or merge)."""
    return {
        "loads": stats.loads,
        "load_misses": stats.load_misses,
        "stores": stats.stores,
        "store_misses": stats.store_misses,
        "prefetches": stats.prefetches,
        "prefetch_misses": stats.prefetch_misses,
        "evictions": stats.evictions,
        "writebacks": stats.writebacks,
        "load_miss_rate": stats.load_miss_rate,
    }


def snapshot_hierarchy(h: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.memory.hierarchy.MemoryHierarchy`'s
    counters: merged per-level cache stats, DRAM traffic, TLB and
    hardware-prefetcher totals, and the batched-engine coverage split."""
    doc: Dict[str, Any] = {
        "l1": snapshot_cache_stats(h.l1_stats()),
        "l2": snapshot_cache_stats(h.l2_stats()),
        "dram_accesses": h.dram_accesses,
        "batched_accesses": sum(
            c.batched_accesses for c in h.all_caches().values()
        ),
        "batched_fallback_accesses": sum(
            c.batched_fallback_accesses for c in h.all_caches().values()
        ),
    }
    if h.l3 is not None:
        doc["l3"] = snapshot_cache_stats(h.l3_stats())
    tlb_stats = [t.stats for t in h.tlbs if t is not None]
    # Surfaced explicitly so a report reader can tell "no TLB misses"
    # from "no TLB in the model" (e.g. the mobile preset omits one on
    # purpose; see repro.arch.presets.MOBILE_SOC).
    doc["tlb_modeled"] = bool(tlb_stats)
    if tlb_stats:
        doc["tlb"] = {
            "accesses": sum(s.accesses for s in tlb_stats),
            "misses": sum(s.misses for s in tlb_stats),
        }
    doc["hw_prefetch"] = dict(h.prefetcher_stats())
    return doc


def snapshot_pool_stats(stats: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.gemm.pool.PoolStats`."""
    return {
        "steps": stats.steps,
        "calls": stats.calls,
        "threads": {
            str(t): {
                "pack_a_calls": c.pack_a_calls,
                "pack_b_calls": c.pack_b_calls,
                "gebp_calls": c.gebp_calls,
                "pack_a_seconds": c.pack_a_seconds,
                "pack_b_seconds": c.pack_b_seconds,
                "gebp_seconds": c.gebp_seconds,
            }
            for t, c in sorted(stats.snapshot().items())
        },
    }


def snapshot_pipeline(result: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.pipeline.scoreboard.PipelineResult`."""
    return {
        "cycles": result.cycles,
        "issue_cycles": result.issue_cycles,
        "raw_stall_cycles": result.raw_stall_cycles,
        "structural_stall_cycles": result.structural_stall_cycles,
        "war_stall_cycles": result.war_stall_cycles,
        "instructions": result.instructions,
        "flops": result.flops,
        "ipc": result.ipc,
    }


def snapshot_timed_run(run: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.sim.timed_executor.TimedRun` (the C tile
    values are folded into a content hash; cycles/stalls/latencies plus
    the hash identify the run exactly)."""
    import hashlib

    import numpy as np

    c = np.ascontiguousarray(run.c_tile, dtype=np.float64)
    return {
        "c_sha256": hashlib.sha256(c.tobytes()).hexdigest(),
        "cycles": run.cycles,
        "cycles_per_iteration": run.cycles_per_iteration,
        "efficiency": run.efficiency,
        "engine": run.engine,
        "fallback_reason": run.fallback_reason,
        "pipeline": snapshot_pipeline(run.pipeline),
        "load_latencies": {
            str(lat): cnt for lat, cnt in sorted(run.load_latencies.items())
        },
    }


def snapshot_gebp_cache_result(result: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.sim.gebp_cachesim.GebpCacheResult`."""
    return {
        "l1_loads": result.l1_loads,
        "l1_load_misses": result.l1_load_misses,
        "l1_load_miss_rate": result.l1_load_miss_rate,
        "l2_loads": result.l2_loads,
        "l2_load_misses": result.l2_load_misses,
        "dram_accesses": result.dram_accesses,
        "kernel_loads": result.kernel_loads,
    }


def snapshot_workload_cache_result(result: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.workloads.base.WorkloadCacheResult`."""
    return {
        "l1_loads": result.l1_loads,
        "l1_load_misses": result.l1_load_misses,
        "l1_load_miss_rate": result.l1_load_miss_rate,
        "l2_loads": result.l2_loads,
        "l2_load_misses": result.l2_load_misses,
        "dram_accesses": result.dram_accesses,
        "trace_records": result.trace_records,
    }


def snapshot_workload_timed_result(result: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.workloads.base.WorkloadTimedResult`."""
    return {
        "cycles": result.cycles,
        "seconds": result.seconds,
        "gflops": result.gflops,
        "efficiency": result.efficiency,
        "engine": result.engine,
        "pipeline": snapshot_pipeline(result.pipeline),
    }
