"""Observability: metrics registry, structured run reports, baselines.

The measurement substrate of the stack (the counter-driven methodology of
the paper's Tables IV-VII, made machine-readable):

- :mod:`repro.obs.metrics` — named counters/gauges/histograms and span
  timers behind a zero-overhead-when-disabled hook;
- :mod:`repro.obs.run_report` — the versioned, JSON-serializable
  :class:`RunReport` document every CLI subcommand can emit
  (``repro ... --json out.json``);
- :mod:`repro.obs.baselines` — the regression comparator behind
  ``repro report --diff``.
"""

from repro.obs.baselines import (
    DEFAULT_TOLERANCE,
    Comparison,
    Finding,
    compare_files,
    compare_reports,
    format_comparison,
    load_report_dict,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
)
from repro.obs.run_report import (
    SCHEMA_VERSION,
    RunReport,
    atomic_write_json,
    atomic_write_text,
    flatten,
    snapshot_cache_stats,
    snapshot_gebp_cache_result,
    snapshot_hierarchy,
    snapshot_pipeline,
    snapshot_pool_stats,
    snapshot_timed_run,
    snapshot_workload_cache_result,
    snapshot_workload_timed_result,
    validate_report,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Histogram",
    "Span",
    "RunReport",
    "SCHEMA_VERSION",
    "atomic_write_json",
    "atomic_write_text",
    "validate_report",
    "flatten",
    "snapshot_cache_stats",
    "snapshot_gebp_cache_result",
    "snapshot_hierarchy",
    "snapshot_pipeline",
    "snapshot_pool_stats",
    "snapshot_timed_run",
    "snapshot_workload_cache_result",
    "snapshot_workload_timed_result",
    "Comparison",
    "Finding",
    "DEFAULT_TOLERANCE",
    "compare_reports",
    "compare_files",
    "format_comparison",
    "load_report_dict",
]
