"""Blocked LU factorization built on the reproduction's DGEMM.

The paper motivates DGEMM as "the core part of the LINPACK benchmark":
HPL spends almost all its time in the trailing-submatrix update
``A22 := A22 - L21 @ U12``, which is exactly a rank-nb DGEMM. This module
implements the right-looking blocked LU with partial pivoting whose
update step calls :func:`repro.gemm.dgemm`, plus the triangular solves
and a LINPACK-style driver (factor + solve + residual check).

It serves two purposes: a realistic downstream application of the library
(``examples/linpack_motif.py``), and a second full-matrix correctness
exercise of the GEMM stack (``tests/test_apps_lu.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.blocking.cache_blocking import CacheBlocking
from repro.errors import GemmError
from repro.workloads.base import traced_dgemm


@dataclass
class LuResult:
    """Outcome of :func:`lu_factor`.

    Attributes:
        lu: Packed LU factors (unit-lower L below the diagonal, U on and
            above), column-major.
        piv: Pivot row swapped with row ``i`` at step ``i`` (LAPACK
            convention).
        gemm_flops: Flops executed through the blocked DGEMM updates.
    """

    lu: "np.ndarray"
    piv: "np.ndarray"
    gemm_flops: int


def _unblocked_lu(a: "np.ndarray", piv: "np.ndarray", offset: int) -> None:
    """Partial-pivoting LU of a tall panel, in place."""
    m, nb = a.shape
    for j in range(min(m, nb)):
        p = j + int(np.argmax(np.abs(a[j:, j])))
        piv[offset + j] = offset + p
        if p != j:
            a[[j, p], :] = a[[p, j], :]
        if a[j, j] != 0.0 and j + 1 < m:
            a[j + 1 :, j] /= a[j, j]
            if j + 1 < nb:
                a[j + 1 :, j + 1 :] -= np.outer(
                    a[j + 1 :, j], a[j, j + 1 :]
                )


def lu_factor(
    a: "np.ndarray",
    nb: int = 64,
    blocking: Optional[CacheBlocking] = None,
) -> LuResult:
    """Right-looking blocked LU with partial pivoting.

    Args:
        a: Square matrix (not modified).
        nb: Panel width; the trailing update is a rank-nb DGEMM.
        blocking: Block sizes for the DGEMM updates.

    Returns:
        Packed factors, pivots, and the DGEMM flop count.
    """
    a = np.array(a, dtype=np.float64, order="F")
    n, n2 = a.shape
    if n != n2:
        raise GemmError("LU requires a square matrix")
    if nb < 1:
        raise GemmError("panel width nb must be >= 1")
    piv = np.arange(n)
    gemm_flops = 0

    for j in range(0, n, nb):
        jb = min(nb, n - j)
        # 1. Factor the current panel (rows j.., cols j..j+jb).
        _unblocked_lu(a[j:, j : j + jb], piv, j)
        # 2. Apply the panel's row swaps to the rest of the matrix.
        for jj in range(j, j + jb):
            p = piv[jj]
            if p != jj:
                a[[jj, p], :j] = a[[p, jj], :j]
                a[[jj, p], j + jb :] = a[[p, jj], j + jb :]
        if j + jb < n:
            # 3. U12 := L11^{-1} A12 (unit-lower triangular solve, itself
            # blocked through DGEMM for large panels).
            from repro.gemm.level3 import trsm

            l11 = a[j : j + jb, j : j + jb]
            a12 = a[j : j + jb, j + jb :]
            a12[:, :] = trsm(
                "L", "L", "U", 1.0, l11, a12, nb=32, blocking=blocking
            )
            # 4. Trailing update A22 -= L21 @ U12 — the DGEMM the paper's
            # kernel exists for.
            l21 = np.asfortranarray(a[j + jb :, j : j + jb])
            u12 = np.asfortranarray(a12)
            a[j + jb :, j + jb :], flops = traced_dgemm(
                l21,
                u12,
                a[j + jb :, j + jb :],
                alpha=-1.0,
                beta=1.0,
                blocking=blocking,
            )
            gemm_flops += flops
    return LuResult(lu=a, piv=piv, gemm_flops=gemm_flops)


def lu_solve(result: LuResult, b: "np.ndarray") -> "np.ndarray":
    """Solve ``A x = b`` from packed LU factors."""
    lu, piv = result.lu, result.piv
    n = lu.shape[0]
    x = np.array(b, dtype=np.float64)
    if x.shape[0] != n:
        raise GemmError("right-hand side has wrong length")
    # Apply pivots.
    for i in range(n):
        p = piv[i]
        if p != i:
            x[[i, p]] = x[[p, i]]
    # Forward substitution (unit lower).
    for i in range(1, n):
        x[i] -= lu[i, :i] @ x[:i]
    # Back substitution.
    for i in range(n - 1, -1, -1):
        x[i] = (x[i] - lu[i, i + 1 :] @ x[i + 1 :]) / lu[i, i]
    return x


def linpack_residual(
    a: "np.ndarray", x: "np.ndarray", b: "np.ndarray"
) -> float:
    """The HPL-style scaled residual
    ``||Ax-b||_inf / (eps * ||A||_inf * ||x||_inf * n)``."""
    n = a.shape[0]
    r = np.abs(a @ x - b).max()
    denom = (
        np.finfo(np.float64).eps
        * np.abs(a).sum(axis=1).max()
        * np.abs(x).max()
        * n
    )
    return float(r / denom) if denom else float("inf")


def reconstruct(result: LuResult) -> "np.ndarray":
    """P^{-1} L U from packed factors (for testing)."""
    lu, piv = result.lu, result.piv
    n = lu.shape[0]
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    a = lower @ upper
    for i in range(n - 1, -1, -1):
        p = piv[i]
        if p != i:
            a[[i, p], :] = a[[p, i], :]
    return a
