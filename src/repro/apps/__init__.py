"""Downstream applications built on the reproduction's DGEMM.

The flop-counting DGEMM wrapper the LU update popularized now lives in
:mod:`repro.workloads.base`; it is re-exported here so application code
keeps one import root.
"""

from repro.apps.lu import (
    LuResult,
    linpack_residual,
    lu_factor,
    lu_solve,
    reconstruct,
)
from repro.workloads.base import traced_dgemm

__all__ = [
    "LuResult",
    "lu_factor",
    "lu_solve",
    "linpack_residual",
    "reconstruct",
    "traced_dgemm",
]
