"""Downstream applications built on the reproduction's DGEMM."""

from repro.apps.lu import (
    LuResult,
    linpack_residual,
    lu_factor,
    lu_solve,
    reconstruct,
)

__all__ = [
    "LuResult",
    "lu_factor",
    "lu_solve",
    "linpack_residual",
    "reconstruct",
]
