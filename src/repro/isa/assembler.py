"""Two-way textual assembler for the modeled A64 subset.

``parse_line`` turns one line of assembly text (in the syntax of the paper's
Fig. 8 snippet) into an :class:`~repro.isa.instructions.Instruction`;
``format_program`` renders instruction sequences back to text. Comments
introduced by ``//`` are stripped.

This keeps generated kernels inspectable — tests round-trip every generated
kernel through text and back.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence

from repro.errors import AssemblyError
from repro.isa.instructions import (
    Faddp,
    Fmla,
    FmlaVec,
    Instruction,
    Ldr,
    Nop,
    PrefetchTarget,
    Prfm,
    Str,
)
from repro.isa.registers import VLane, VReg, parse_vreg, parse_xreg

_LDR_STR_RE = re.compile(
    r"^(ldr|str)\s+([qv]\d+)\s*,\s*\[\s*(x\d+)\s*\]\s*,\s*#\s*(-?\d+)$"
)
_FMLA_RE = re.compile(
    r"^fmla\s+v(\d+)\.2d\s*,\s*v(\d+)\.2d\s*,\s*v(\d+)\.d\[(\d)\]$"
)
_FMLA_VEC_RE = re.compile(
    r"^fmla\s+v(\d+)\.2d\s*,\s*v(\d+)\.2d\s*,\s*v(\d+)\.2d$"
)
_FADDP_RE = re.compile(
    r"^faddp\s+v(\d+)\.2d\s*,\s*v(\d+)\.2d\s*,\s*v(\d+)\.2d$"
)
_PRFM_RE = re.compile(
    r"^prfm\s+(PLDL[123]KEEP)\s*,\s*\[\s*(x\d+)\s*(?:,\s*#\s*(-?\w+)\s*)?\]$"
)


def strip_comment(line: str) -> str:
    """Remove a ``//`` comment and surrounding whitespace."""
    return line.split("//", 1)[0].strip()


def parse_line(line: str) -> Optional[Instruction]:
    """Parse one assembly line; returns ``None`` for blank/comment lines.

    Raises:
        AssemblyError: if the line is not in the modeled subset.
    """
    text = strip_comment(line)
    if not text:
        return None
    if text == "nop":
        return Nop()

    m = _LDR_STR_RE.match(text)
    if m:
        op, reg, base, imm = m.groups()
        vreg = parse_vreg(reg)
        xreg = parse_xreg(base)
        if op == "ldr":
            return Ldr(dst=vreg, base=xreg, post_increment=int(imm))
        return Str(src=vreg, base=xreg, post_increment=int(imm))

    m = _FMLA_RE.match(text)
    if m:
        acc, mulc, mulr, lane = (int(g) for g in m.groups())
        return Fmla(
            acc=VReg(acc),
            multiplicand=VReg(mulc),
            multiplier=VLane(VReg(mulr), lane),
        )

    m = _FMLA_VEC_RE.match(text)
    if m:
        acc, mulc, mulr = (int(g) for g in m.groups())
        return FmlaVec(
            acc=VReg(acc), multiplicand=VReg(mulc), multiplier=VReg(mulr)
        )

    m = _FADDP_RE.match(text)
    if m:
        dst, first, second = (int(g) for g in m.groups())
        return Faddp(dst=VReg(dst), first=VReg(first), second=VReg(second))

    m = _PRFM_RE.match(text)
    if m:
        prfop, base, offset = m.groups()
        off = 0 if offset is None else _parse_offset(offset)
        return Prfm(
            target=PrefetchTarget(prfop), base=parse_xreg(base), offset=off
        )

    raise AssemblyError(f"cannot parse instruction: {line!r}")


def _parse_offset(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad prefetch offset: {text!r}") from exc


def parse_program(source: str) -> List[Instruction]:
    """Parse a multi-line assembly listing into an instruction list."""
    out: List[Instruction] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        try:
            instr = parse_line(raw)
        except AssemblyError as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from exc
        if instr is not None:
            out.append(instr)
    return out


def format_program(
    instructions: Iterable[Instruction],
    comments: Optional[Sequence[str]] = None,
) -> str:
    """Render instructions as assembly text, one per line.

    Args:
        instructions: The instruction sequence.
        comments: Optional per-instruction trailing comments.
    """
    instrs = list(instructions)
    lines: List[str] = []
    for i, instr in enumerate(instrs):
        line = f"    {instr}"
        if comments is not None and i < len(comments) and comments[i]:
            line = f"{line:<48}// {comments[i]}"
        lines.append(line)
    return "\n".join(lines)
