"""Kernel program container with summary statistics.

A :class:`Program` wraps an instruction sequence and exposes the aggregate
measures the paper reasons about: FMLA count, load count, the LDR:FMLA ratio
(Table IV), the arithmetic-instruction percentage (Sec. V-A), and FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, List, Sequence, Tuple

from repro.isa.assembler import format_program
from repro.isa.instructions import Instruction


@dataclass
class Program:
    """An ordered instruction sequence with a name.

    Attributes:
        name: Human-readable kernel name (e.g. ``"gebp-8x6"``).
        instructions: The instruction list, in issue order.
    """

    name: str
    instructions: List[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self.instructions[idx]

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, instructions: Sequence[Instruction]) -> None:
        self.instructions.extend(instructions)

    @property
    def num_fmla(self) -> int:
        """Number of FMLA instructions."""
        return sum(1 for i in self if i.is_fma)

    @property
    def num_loads(self) -> int:
        """Number of LDR instructions."""
        return sum(1 for i in self if i.is_load)

    @property
    def num_stores(self) -> int:
        return sum(1 for i in self if i.is_store)

    @property
    def num_prefetches(self) -> int:
        return sum(1 for i in self if i.is_prefetch)

    @property
    def flops(self) -> int:
        """Total FLOPs performed by one pass over the program."""
        return sum(i.flops for i in self)

    @property
    def ldr_fmla_ratio(self) -> Tuple[int, int]:
        """The LDR:FMLA ratio in lowest terms, as used in Table IV.

        Returns:
            ``(loads, fmlas)`` reduced by their gcd; ``(0, 0)`` if the
            program has neither.
        """
        loads, fmlas = self.num_loads, self.num_fmla
        if loads == 0 and fmlas == 0:
            return (0, 0)
        if loads == 0:
            return (0, 1)
        if fmlas == 0:
            return (1, 0)
        frac = Fraction(loads, fmlas)
        return (frac.numerator, frac.denominator)

    @property
    def arithmetic_fraction(self) -> float:
        """Fraction of FMLA instructions over FMLA + memory instructions.

        This is the paper's ``(mr*nr/2) / (mr*nr/2 + (mr+nr)/2)`` measure
        (Sec. V-A), computed from the actual instruction stream.
        """
        mem = self.num_loads + self.num_stores
        total = self.num_fmla + mem
        if total == 0:
            return 0.0
        return self.num_fmla / total

    def to_text(self) -> str:
        """Render the program as assembly text."""
        return format_program(self.instructions)
