"""Functional executor for the modeled A64 subset.

Interprets generated kernel programs against an architectural machine
state — 32 two-lane float64 vector registers, pointer registers, and a
region-based memory — so the *semantics* of the emitted assembly can be
validated, not just its instruction counts: executing the 8x6 kernel body
over a packed A sliver and B sliver must accumulate exactly
``C += A_sliver @ B_sliver`` into the C-tile registers
(``tests/test_isa_executor.py``).

The executor is intentionally strict: loads from unmapped addresses and
writes outside a mapped region raise, catching address-bookkeeping bugs
in the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.isa.instructions import (
    Faddp,
    Fmla,
    FmlaVec,
    Instruction,
    Ldr,
    Mnemonic,
    Prfm,
    Str,
)
from repro.isa.program import Program
from repro.isa.registers import (
    DOUBLE_BYTES,
    LANES_PER_VECTOR,
    NUM_VECTOR_REGS,
    VReg,
    XReg,
)


class Memory:
    """Region-based float64 memory.

    Regions are numpy arrays mapped at byte base addresses; accesses must
    be 8-byte aligned and fall entirely inside one region.
    """

    def __init__(self) -> None:
        self._regions: List[Tuple[int, np.ndarray]] = []

    def map_region(self, base: int, values: "np.ndarray") -> None:
        """Map a 1-D float64 array at byte address ``base``."""
        arr = np.ascontiguousarray(values, dtype=np.float64).ravel()
        end = base + arr.nbytes
        for rbase, rarr in self._regions:
            rend = rbase + rarr.nbytes
            if base < rend and rbase < end:
                raise SimulationError(
                    f"region [{base:#x}, {end:#x}) overlaps existing "
                    f"[{rbase:#x}, {rend:#x})"
                )
        self._regions.append((base, arr))

    def region_at(self, base: int) -> "np.ndarray":
        """The array mapped at exactly ``base`` (for result readback)."""
        for rbase, rarr in self._regions:
            if rbase == base:
                return rarr
        raise SimulationError(f"no region mapped at {base:#x}")

    def _locate(self, address: int, count: int) -> Tuple["np.ndarray", int]:
        if address % DOUBLE_BYTES:
            raise SimulationError(f"unaligned access at {address:#x}")
        for rbase, rarr in self._regions:
            if rbase <= address and address + count * DOUBLE_BYTES <= (
                rbase + rarr.nbytes
            ):
                return rarr, (address - rbase) // DOUBLE_BYTES
        raise SimulationError(
            f"access to unmapped address {address:#x} (x{count} doubles)"
        )

    def read(self, address: int, count: int) -> "np.ndarray":
        arr, idx = self._locate(address, count)
        return arr[idx : idx + count].copy()

    def write(self, address: int, values: "np.ndarray") -> None:
        arr, idx = self._locate(address, len(values))
        arr[idx : idx + len(values)] = values


@dataclass
class MachineState:
    """Architectural state: vector registers and pointer registers."""

    vregs: "np.ndarray" = field(
        default_factory=lambda: np.zeros(
            (NUM_VECTOR_REGS, LANES_PER_VECTOR), dtype=np.float64
        )
    )
    xregs: Dict[int, int] = field(default_factory=dict)

    def set_pointer(self, reg: XReg, address: int) -> None:
        self.xregs[reg.index] = address

    def pointer(self, reg: XReg) -> int:
        try:
            return self.xregs[reg.index]
        except KeyError:
            raise SimulationError(
                f"pointer register {reg} used before initialization"
            ) from None

    def v(self, reg: VReg) -> "np.ndarray":
        return self.vregs[reg.index]


class Executor:
    """Interprets programs against a :class:`MachineState` and
    :class:`Memory`."""

    def __init__(self, state: MachineState, memory: Memory) -> None:
        self.state = state
        self.memory = memory
        self.instructions_executed = 0

    def execute(self, instruction: Instruction) -> None:
        """Execute one instruction, updating machine state."""
        s = self.state
        if isinstance(instruction, Ldr):
            addr = s.pointer(instruction.base)
            s.vregs[instruction.dst.index] = self.memory.read(
                addr, LANES_PER_VECTOR
            )
            s.xregs[instruction.base.index] = (
                addr + instruction.post_increment
            )
        elif isinstance(instruction, Str):
            addr = s.pointer(instruction.base)
            self.memory.write(addr, s.vregs[instruction.src.index])
            s.xregs[instruction.base.index] = (
                addr + instruction.post_increment
            )
        elif isinstance(instruction, Fmla):
            scalar = s.vregs[instruction.multiplier.reg.index][
                instruction.multiplier.index
            ]
            s.vregs[instruction.acc.index] += (
                s.vregs[instruction.multiplicand.index] * scalar
            )
        elif isinstance(instruction, FmlaVec):
            s.vregs[instruction.acc.index] += (
                s.vregs[instruction.multiplicand.index]
                * s.vregs[instruction.multiplier.index]
            )
        elif isinstance(instruction, Faddp):
            first = s.vregs[instruction.first.index].sum()
            second = s.vregs[instruction.second.index].sum()
            s.vregs[instruction.dst.index][0] = first
            s.vregs[instruction.dst.index][1] = second
        elif isinstance(instruction, Prfm):
            pass  # prefetches have no architectural effect
        elif instruction.mnemonic is Mnemonic.NOP:
            pass
        else:  # pragma: no cover - the subset is closed
            raise SimulationError(f"cannot execute {instruction}")
        self.instructions_executed += 1

    def run(self, program: Program, times: int = 1) -> None:
        """Execute ``program`` ``times`` times back to back."""
        if times < 0:
            raise SimulationError("times must be non-negative")
        for _ in range(times):
            for instr in program:
                self.execute(instr)
