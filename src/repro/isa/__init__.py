"""A64 instruction-set subset: registers, instructions, assembler, programs."""

from repro.isa.assembler import format_program, parse_line, parse_program
from repro.isa.instructions import (
    Faddp,
    Fmla,
    FmlaVec,
    Instruction,
    Ldr,
    Mnemonic,
    Nop,
    PrefetchTarget,
    Prfm,
    Str,
)
from repro.isa.program import Program
from repro.isa.registers import (
    DOUBLE_BYTES,
    LANES_PER_VECTOR,
    NUM_GENERAL_REGS,
    NUM_VECTOR_REGS,
    VECTOR_REG_BYTES,
    VLane,
    VReg,
    XReg,
    all_vregs,
    parse_vreg,
    parse_xreg,
)

__all__ = [
    "Fmla",
    "FmlaVec",
    "Faddp",
    "Instruction",
    "Ldr",
    "Mnemonic",
    "Nop",
    "PrefetchTarget",
    "Prfm",
    "Str",
    "Program",
    "VLane",
    "VReg",
    "XReg",
    "all_vregs",
    "parse_vreg",
    "parse_xreg",
    "parse_line",
    "parse_program",
    "format_program",
    "NUM_VECTOR_REGS",
    "NUM_GENERAL_REGS",
    "VECTOR_REG_BYTES",
    "DOUBLE_BYTES",
    "LANES_PER_VECTOR",
]
