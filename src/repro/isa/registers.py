"""A64 register model.

The 64-bit ARMv8 ISA defines 31 general-purpose registers ``x0``-``x30`` and
32 SIMD/FP registers ``v0``-``v31``, each 128 bits wide. A ``v`` register
holds two float64 lanes, addressed in FMLA-by-element form as ``vN.d[0]`` and
``vN.d[1]``; full-width loads name the same register as ``qN``.

Only what the DGEMM register kernel needs is modeled: register identity,
class, lane addressing, and a register-file container used by the pipeline
simulator for dependence tracking.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import AssemblyError

NUM_VECTOR_REGS = 32
NUM_GENERAL_REGS = 31
VECTOR_REG_BYTES = 16
DOUBLE_BYTES = 8
LANES_PER_VECTOR = VECTOR_REG_BYTES // DOUBLE_BYTES

_VREG_RE = re.compile(r"^(?:v|q|d)(\d+)(?:\.\w+)?$")
_XREG_RE = re.compile(r"^x(\d+)$")


@dataclass(frozen=True, order=True)
class VReg:
    """A SIMD/FP vector register ``v0``..``v31``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_VECTOR_REGS:
            raise AssemblyError(f"vector register index {self.index} out of range")

    def __str__(self) -> str:
        return f"v{self.index}"

    @property
    def q_name(self) -> str:
        """The 128-bit load/store name of this register (``q``-form)."""
        return f"q{self.index}"

    def lane(self, lane: int) -> "VLane":
        """The float64 lane ``vN.d[lane]`` of this register."""
        return VLane(self, lane)

    def as_2d(self) -> str:
        """The full-vector arrangement name ``vN.2d``."""
        return f"v{self.index}.2d"


@dataclass(frozen=True, order=True)
class VLane:
    """One float64 lane ``vN.d[i]`` of a vector register."""

    reg: VReg
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < LANES_PER_VECTOR:
            raise AssemblyError(f"lane index {self.index} out of range")

    def __str__(self) -> str:
        return f"{self.reg}.d[{self.index}]"


@dataclass(frozen=True, order=True)
class XReg:
    """A general-purpose 64-bit register ``x0``..``x30``.

    In the register kernel these hold the packed-buffer pointers (the paper's
    snippet uses ``x14`` for A and ``x15`` for B).
    """

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_GENERAL_REGS:
            raise AssemblyError(f"general register index {self.index} out of range")

    def __str__(self) -> str:
        return f"x{self.index}"


def parse_vreg(text: str) -> VReg:
    """Parse ``v3``, ``q3``, ``d3``, ``v3.2d`` or ``v3.d`` into a :class:`VReg`."""
    m = _VREG_RE.match(text.strip())
    if not m:
        raise AssemblyError(f"not a vector register: {text!r}")
    return VReg(int(m.group(1)))


def parse_xreg(text: str) -> XReg:
    """Parse ``x14`` into an :class:`XReg`."""
    m = _XREG_RE.match(text.strip())
    if not m:
        raise AssemblyError(f"not a general register: {text!r}")
    return XReg(int(m.group(1)))


def all_vregs() -> Iterator[VReg]:
    """All 32 vector registers in index order."""
    for i in range(NUM_VECTOR_REGS):
        yield VReg(i)
