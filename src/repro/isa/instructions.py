"""A64 instruction subset used by the DGEMM register kernel.

The paper's kernel (Fig. 8) uses exactly four instruction kinds:

- ``ldr qN, [xM], #16`` — 128-bit load with post-index pointer update,
  fetching the next two packed float64 values of A or B;
- ``str qN, [xM], #16`` — 128-bit store (writing back a C tile);
- ``fmla vd.2d, vn.2d, vm.d[i]`` — NEON fused multiply-add by element:
  ``vd += vn * vm[i]`` on two float64 lanes (4 FLOPs);
- ``prfm PLDL1KEEP/[PLDL2KEEP], [xM, #off]`` — software prefetch into the
  L1 or L2 cache.

Each instruction reports the registers it reads and writes, which drives the
dependence analysis in :mod:`repro.pipeline` and the distance objectives of
the rotation/scheduling optimizers in :mod:`repro.kernels`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, Union

from repro.errors import AssemblyError
from repro.isa.registers import VLane, VReg, XReg

Reg = Union[VReg, XReg]


class PrefetchTarget(enum.Enum):
    """Prefetch operation kinds (A64 ``prfm`` <prfop> field)."""

    PLDL1KEEP = "PLDL1KEEP"
    PLDL2KEEP = "PLDL2KEEP"
    PLDL3KEEP = "PLDL3KEEP"

    @property
    def level(self) -> int:
        """Target cache level (1-based)."""
        return int(self.value[4])


class Mnemonic(enum.Enum):
    """Instruction kinds in the modeled subset."""

    LDR = "ldr"
    STR = "str"
    FMLA = "fmla"
    FADDP = "faddp"
    PRFM = "prfm"
    NOP = "nop"


@dataclass(frozen=True)
class Instruction:
    """Base class: every instruction knows its reads, writes and text form."""

    def reads(self) -> FrozenSet[Reg]:
        """Registers whose values this instruction consumes."""
        raise NotImplementedError

    def writes(self) -> FrozenSet[Reg]:
        """Registers this instruction defines."""
        raise NotImplementedError

    @property
    def mnemonic(self) -> Mnemonic:
        raise NotImplementedError

    @property
    def is_load(self) -> bool:
        return self.mnemonic is Mnemonic.LDR

    @property
    def is_store(self) -> bool:
        return self.mnemonic is Mnemonic.STR

    @property
    def is_fma(self) -> bool:
        return self.mnemonic is Mnemonic.FMLA

    @property
    def is_prefetch(self) -> bool:
        return self.mnemonic is Mnemonic.PRFM

    @property
    def flops(self) -> int:
        """FLOPs performed (two float64 lanes x mul+add for FMLA, else 0)."""
        return 0


@dataclass(frozen=True)
class Ldr(Instruction):
    """``ldr qN, [xM], #imm`` — post-indexed 128-bit load.

    Attributes:
        dst: Destination vector register.
        base: Base address register (updated by ``post_increment``).
        post_increment: Bytes added to ``base`` after the access.
        tag: Optional label of the buffer being read ("A", "B", "C").
    """

    dst: VReg
    base: XReg
    post_increment: int = 16
    tag: Optional[str] = field(default=None, compare=False)

    @property
    def mnemonic(self) -> Mnemonic:
        return Mnemonic.LDR

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.base})

    def writes(self) -> FrozenSet[Reg]:
        # The post-index form also writes back the base register.
        return frozenset({self.dst, self.base})

    def __str__(self) -> str:
        return f"ldr {self.dst.q_name}, [{self.base}], #{self.post_increment}"


@dataclass(frozen=True)
class Str(Instruction):
    """``str qN, [xM], #imm`` — post-indexed 128-bit store."""

    src: VReg
    base: XReg
    post_increment: int = 16
    tag: Optional[str] = field(default=None, compare=False)

    @property
    def mnemonic(self) -> Mnemonic:
        return Mnemonic.STR

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.src, self.base})

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.base})

    def __str__(self) -> str:
        return f"str {self.src.q_name}, [{self.base}], #{self.post_increment}"


@dataclass(frozen=True)
class Fmla(Instruction):
    """``fmla vd.2d, vn.2d, vm.d[i]`` — vector FMA by element.

    Computes ``vd[lane] += vn[lane] * vm.d[element]`` for both float64
    lanes: 2 multiplies + 2 adds = 4 FLOPs.
    """

    acc: VReg
    multiplicand: VReg
    multiplier: VLane

    def __post_init__(self) -> None:
        if self.acc == self.multiplicand or self.acc == self.multiplier.reg:
            raise AssemblyError(
                "fmla accumulator must differ from both source registers: "
                f"{self}"
            )

    @property
    def mnemonic(self) -> Mnemonic:
        return Mnemonic.FMLA

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.acc, self.multiplicand, self.multiplier.reg})

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.acc})

    @property
    def flops(self) -> int:
        return 4

    def __str__(self) -> str:
        return (
            f"fmla {self.acc.as_2d()}, {self.multiplicand.as_2d()}, "
            f"{self.multiplier}"
        )


@dataclass(frozen=True)
class FmlaVec(Instruction):
    """``fmla vd.2d, vn.2d, vm.2d`` — full-vector FMA.

    Computes ``vd[lane] += vn[lane] * vm[lane]`` on both float64 lanes
    (4 FLOPs). This is the form a k-vectorized kernel uses: the two lanes
    hold two consecutive k-iterations' partial products.
    """

    acc: VReg
    multiplicand: VReg
    multiplier: VReg

    def __post_init__(self) -> None:
        if self.acc in (self.multiplicand, self.multiplier):
            raise AssemblyError(
                f"fmla accumulator must differ from sources: {self}"
            )

    @property
    def mnemonic(self) -> Mnemonic:
        return Mnemonic.FMLA

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.acc, self.multiplicand, self.multiplier})

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.acc})

    @property
    def flops(self) -> int:
        return 4

    def __str__(self) -> str:
        return (
            f"fmla {self.acc.as_2d()}, {self.multiplicand.as_2d()}, "
            f"{self.multiplier.as_2d()}"
        )


@dataclass(frozen=True)
class Faddp(Instruction):
    """``faddp vd.2d, vn.2d, vm.2d`` — pairwise add.

    ``vd = [vn[0]+vn[1], vm[0]+vm[1]]``: reduces two registers of
    two-lane partial sums into one register of totals (2 FLOPs). Used by
    the k-vectorized kernel's epilogue to fold its partial sums before
    storing C.
    """

    dst: VReg
    first: VReg
    second: VReg

    @property
    def mnemonic(self) -> Mnemonic:
        return Mnemonic.FADDP

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.first, self.second})

    def writes(self) -> FrozenSet[Reg]:
        return frozenset({self.dst})

    @property
    def flops(self) -> int:
        return 2

    def __str__(self) -> str:
        return (
            f"faddp {self.dst.as_2d()}, {self.first.as_2d()}, "
            f"{self.second.as_2d()}"
        )


@dataclass(frozen=True)
class Prfm(Instruction):
    """``prfm <prfop>, [xM, #offset]`` — software prefetch."""

    target: PrefetchTarget
    base: XReg
    offset: int = 0
    tag: Optional[str] = field(default=None, compare=False)

    @property
    def mnemonic(self) -> Mnemonic:
        return Mnemonic.PRFM

    def reads(self) -> FrozenSet[Reg]:
        return frozenset({self.base})

    def writes(self) -> FrozenSet[Reg]:
        return frozenset()

    def __str__(self) -> str:
        return f"prfm {self.target.value}, [{self.base}, #{self.offset}]"


@dataclass(frozen=True)
class Nop(Instruction):
    """``nop`` — placeholder used by schedulers for padding experiments."""

    @property
    def mnemonic(self) -> Mnemonic:
        return Mnemonic.NOP

    def reads(self) -> FrozenSet[Reg]:
        return frozenset()

    def writes(self) -> FrozenSet[Reg]:
        return frozenset()

    def __str__(self) -> str:
        return "nop"
