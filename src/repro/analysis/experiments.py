"""Experiment runners — one per table/figure of the paper's evaluation.

Each function regenerates the data behind one exhibit and returns it as a
plain structure; ``benchmarks/`` wraps these in pytest-benchmark targets
and EXPERIMENTS.md records the outcomes against the published values.

The paper sweeps square matrices from 256 to 6400 in steps of 128; the
default sweep here uses steps of 256 to keep bench runtimes short without
changing any conclusion (pass ``step=128`` for the full grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import (
    CacheBlocking,
    goto_blocking,
    solve_cache_blocking,
)
from repro.blocking.register_blocking import RegisterBlockingProblem
from repro.kernels.kernel_spec import PAPER_KERNELS
from repro.kernels.rotation import paper_plan, solve_rotation
from repro.kernels.scheduling import schedule_body
from repro.kernels.variants import PAPER_COMPARISON, VARIANTS, get_variant
from repro.sim.gebp_cachesim import simulate_gebp_cache
from repro.sim.gemm_sim import GemmPerformance, GemmSimulator
from repro.sim.microbench import MicrobenchRow, run_microbench

DEFAULT_SIZES = tuple(range(256, 6401, 256))

#: Paper-published reference values for EXPERIMENTS.md comparisons.
PAPER_TABLE_V = {
    ("OpenBLAS-8x6", 1): (0.872, 0.863),
    ("OpenBLAS-8x4", 1): (0.846, 0.836),
    ("OpenBLAS-4x4", 1): (0.782, 0.776),
    ("ATLAS-5x5", 1): (0.809, 0.795),
    ("OpenBLAS-8x6", 8): (0.853, 0.832),
    ("OpenBLAS-8x4", 8): (0.810, 0.777),
    ("OpenBLAS-4x4", 8): (0.737, 0.723),
    ("ATLAS-5x5", 8): (0.792, 0.751),
}


def table1_rotation() -> Dict[str, List[int]]:
    """Table I: the 8x6 register-rotation assignment (paper's cycle)."""
    return {slot: regs for slot, regs in paper_plan().table()}


def fig5_surface() -> List[Tuple[int, int, float]]:
    """Fig. 5: gamma over (mr, nrf) with the optimal nr at each point."""
    return RegisterBlockingProblem().surface()


@dataclass(frozen=True)
class ScheduleReport:
    """Fig. 6/7 data: distances achieved by each allocation scheme."""

    rotation_distance_paper: int
    rotation_distance_solved: int
    schedule_distance_paper: int
    schedule_distance_solved: int


def fig7_schedule() -> ScheduleReport:
    """Figs. 6/7: rotation and load-scheduling distances for 8x6."""
    from repro.kernels.kernel_spec import KERNEL_8X6

    pp = paper_plan()
    sp = solve_rotation(KERNEL_8X6)
    return ScheduleReport(
        rotation_distance_paper=pp.min_distance,
        rotation_distance_solved=sp.min_distance,
        schedule_distance_paper=schedule_body(
            KERNEL_8X6, pp
        ).min_load_use_distance,
        schedule_distance_solved=schedule_body(
            KERNEL_8X6, sp
        ).min_load_use_distance,
    )


def fig8_codegen(kernel: str = "OpenBLAS-8x6") -> str:
    """Fig. 8: the generated register-kernel assembly listing."""
    return get_variant(kernel).body.to_text()


def table3_blocksizes(chip: ChipParams = XGENE) -> List[Tuple[str, str, str]]:
    """Table III: derived block sizes per kernel for 1 and 8 threads."""
    rows = []
    for mr, nr in ((8, 6), (8, 4), (4, 4)):
        serial = solve_cache_blocking(chip, mr, nr, threads=1)
        parallel = solve_cache_blocking(chip, mr, nr, threads=8)
        rows.append((f"{mr}x{nr}", str(serial), str(parallel)))
    return rows


def table4_microbench() -> List[MicrobenchRow]:
    """Table IV: efficiencies under varying LDR:FMLA ratios."""
    return run_microbench()


@dataclass
class EfficiencySummary:
    """One Table V cell group: peak and average efficiency."""

    kernel: str
    threads: int
    peak: float
    average: float
    paper_peak: float = float("nan")
    paper_average: float = float("nan")


def sweep(
    kernel: str,
    threads: int,
    sizes: Sequence[int] = DEFAULT_SIZES,
    sim: Optional[GemmSimulator] = None,
    blocking: Optional[CacheBlocking] = None,
) -> List[GemmPerformance]:
    """Square-matrix sweep for one kernel/thread configuration."""
    sim = sim or GemmSimulator()
    return [
        sim.simulate(kernel, s, s, s, threads=threads, blocking=blocking)
        for s in sizes
    ]


def table5_efficiency(
    sizes: Sequence[int] = DEFAULT_SIZES,
    sim: Optional[GemmSimulator] = None,
) -> List[EfficiencySummary]:
    """Table V: peak/average efficiency of the four implementations."""
    sim = sim or GemmSimulator()
    out = []
    for threads in (1, 8):
        for kernel in PAPER_COMPARISON:
            results = sweep(kernel, threads, sizes, sim)
            effs = [r.efficiency for r in results]
            paper = PAPER_TABLE_V.get((kernel, threads), (float("nan"),) * 2)
            out.append(
                EfficiencySummary(
                    kernel=kernel,
                    threads=threads,
                    peak=max(effs),
                    average=sum(effs) / len(effs),
                    paper_peak=paper[0],
                    paper_average=paper[1],
                )
            )
    return out


def fig11_serial_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, List[GemmPerformance]]:
    """Fig. 11: Gflops vs size, four implementations, one thread."""
    sim = GemmSimulator()
    return {k: sweep(k, 1, sizes, sim) for k in PAPER_COMPARISON}


def fig12_parallel_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, List[GemmPerformance]]:
    """Fig. 12: Gflops vs size, four implementations, eight threads."""
    sim = GemmSimulator()
    return {k: sweep(k, 8, sizes, sim) for k in PAPER_COMPARISON}


def fig13_rotation_ablation(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, Dict[str, List[GemmPerformance]]]:
    """Fig. 13: 8x6 with and without register rotation, 1 and 8 threads."""
    sim = GemmSimulator()
    return {
        "serial": {
            "OpenBLAS-8x6": sweep("OpenBLAS-8x6", 1, sizes, sim),
            "OpenBLAS-8x6w/oRR": sweep("OpenBLAS-8x6-noRR", 1, sizes, sim),
        },
        "parallel": {
            "OpenBLAS-8x6": sweep("OpenBLAS-8x6", 8, sizes, sim),
            "OpenBLAS-8x6w/oRR": sweep("OpenBLAS-8x6-noRR", 8, sizes, sim),
        },
    }


def fig14_scaling(
    sizes: Sequence[int] = DEFAULT_SIZES,
    thread_counts: Sequence[int] = (1, 2, 4, 8),
) -> Dict[int, List[GemmPerformance]]:
    """Fig. 14: 8x6 performance under 1/2/4/8 threads."""
    sim = GemmSimulator()
    return {t: sweep("OpenBLAS-8x6", t, sizes, sim) for t in thread_counts}


#: Table VI's explicit block-size configurations (kc, mc, nc).
TABLE_VI_SERIAL = ((512, 56, 1920), (320, 96, 1536))
TABLE_VI_PARALLEL = (
    (512, 24, 1792),
    (512, 24, 1920),
    (512, 56, 1792),
    (512, 56, 1920),
)


def table6_blocksize_sensitivity(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> List[Tuple[str, str, float, float]]:
    """Table VI: 8x6 efficiency under alternative kc x mc x nc choices."""
    sim = GemmSimulator()
    rows = []
    for threads, configs in ((1, TABLE_VI_SERIAL), (8, TABLE_VI_PARALLEL)):
        for kc, mc, nc in configs:
            blocking = CacheBlocking(
                mr=8, nr=6, kc=kc, mc=mc, nc=nc, k1=1, k2=2, k3=1
            )
            results = sweep(
                "OpenBLAS-8x6", threads, sizes, sim, blocking=blocking
            )
            effs = [r.efficiency for r in results]
            rows.append(
                (
                    "serial" if threads == 1 else "8 threads",
                    f"{kc}x{mc}x{nc}",
                    max(effs),
                    sum(effs) / len(effs),
                )
            )
    return rows


def fig15_l1_loads(
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> Dict[str, List[float]]:
    """Fig. 15: L1-dcache-load counts vs size for the OpenBLAS kernels."""
    sim = GemmSimulator()
    out: Dict[str, List[float]] = {}
    for threads in (1, 8):
        for kernel in ("OpenBLAS-8x6", "OpenBLAS-8x4", "OpenBLAS-4x4"):
            key = f"{kernel} ({threads}T)"
            out[key] = [
                sim.simulate(kernel, s, s, s, threads=threads).l1_loads
                for s in sizes
            ]
    return out


#: Table VII's published miss rates for reference.
PAPER_TABLE_VII = {
    ("8x6", 1): 0.052,
    ("8x6", 8): 0.036,
    ("8x4", 1): 0.043,
    ("8x4", 8): 0.032,
    ("4x4", 1): 0.057,
    ("4x4", 8): 0.050,
}


def table7_miss_rates(
    chip: ChipParams = XGENE,
    engine: str = "auto",
    seed: Optional[int] = None,
    nc_slice: Optional[int] = None,
) -> List[Tuple[str, int, float, float]]:
    """Table VII: L1 load miss rates from the event-accurate cache sim.

    ``engine`` selects the replay path (``"auto"``/``"batched"`` for the
    vectorized sweep, ``"scalar"`` for the per-access oracle); both are
    bit-identical, the batched one is just an order of magnitude faster.
    ``seed`` pins the victim RNG on RANDOM-replacement chips (it is what
    makes batched-vs-scalar comparisons meaningful there); ``nc_slice``
    truncates the replayed panel for fast differential tests.
    """
    rows = []
    for name, (mr, nr) in (("8x6", (8, 6)), ("8x4", (8, 4)), ("4x4", (4, 4))):
        spec = next(s for s in PAPER_KERNELS if s.name == name)
        for threads in (1, 8):
            blk = solve_cache_blocking(chip, mr, nr, threads=threads)
            result = simulate_gebp_cache(
                spec, blk, chip=chip, engine=engine, seed=seed,
                nc_slice=nc_slice,
            )
            rows.append(
                (
                    name,
                    threads,
                    result.l1_load_miss_rate,
                    PAPER_TABLE_VII[(name, threads)],
                )
            )
    return rows
