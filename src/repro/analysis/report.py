"""Plain-text table/series formatting for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append([
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [
        max(len(r[i]) for r in str_rows) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for idx, row in enumerate(str_rows):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append(sep)
    return "\n".join(lines)


def format_series(
    x: Sequence[object],
    series: Sequence[tuple],
    x_label: str = "x",
    title: Optional[str] = None,
) -> str:
    """Render (name, values) series against a shared x axis.

    Args:
        x: The x-axis values.
        series: ``(name, values)`` pairs, each values sequence aligned
            with ``x``.
        x_label: Header of the x column.
        title: Optional heading.
    """
    headers = [x_label] + [name for name, _ in series]
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv] + [vals[i] for _, vals in series])
    return format_table(headers, rows, title=title)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"
