"""Command-line interface.

Exposes the library's main entry points without writing Python::

    repro blocks --mr 8 --nr 6 --threads 8     # Table III derivation
    repro kernel --variant OpenBLAS-8x6        # Fig. 8 assembly
    repro simulate --kernel OpenBLAS-8x6 --size 4096 --threads 8
    repro microbench                           # Table IV ladder
    repro cachesim --kernel OpenBLAS-8x6       # cache replay, both engines
    repro timed --kernel OpenBLAS-8x6          # timed run, both engines
    repro pool --threads 4                     # worker-pool engine timing
    repro sweep --threads 8 --start 256 --stop 6400 --step 512
    repro verify --suite all --seed 0          # differential fuzz sweep
    repro verify --replay tests/cases/x.json   # re-run a shrunk case
    repro query --batch jobs.jsonl             # memoized query serving
    repro serve --warm xgene                   # pre-warm the result cache
    repro asym --machine big_little            # big.LITTLE partition/energy
    repro stencil --smoke                      # blocked-vs-unblocked stencil
    repro conv --smoke                         # direct-vs-im2col convolution
    repro report out.json                      # render a structured report
    repro report --diff baseline.json out.json # regression comparison

All subcommands print plain text and accept ``--json <path>`` to also
write a structured, schema-versioned :class:`~repro.obs.RunReport`
(engine selections, metric counters, stat-object snapshots) — the input
of ``repro report``. ``main`` returns a process exit code so it can be
unit-tested directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional

from repro._version import __version__
from repro.analysis.report import format_series, format_table
from repro.arch.presets import XGENE, get_preset, preset_names
from repro.blocking.cache_blocking import solve_cache_blocking
from repro.blocking.register_blocking import RegisterBlockingProblem
from repro.errors import ReproError
from repro.kernels.variants import VARIANTS, get_variant
from repro.obs import MetricsRegistry, RunReport
from repro.sim.gemm_sim import GemmSimulator
from repro.sim.microbench import run_microbench


def _wants_report(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "json", None))


def _emit_report(
    args: argparse.Namespace,
    command: str,
    params: Dict[str, Any],
    engines: Optional[Dict[str, Dict[str, Any]]] = None,
    metrics: Optional[MetricsRegistry] = None,
    stats: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a validated RunReport to ``args.json`` when requested."""
    if not _wants_report(args):
        return
    report = RunReport(
        command=command,
        created=time.strftime("%Y-%m-%dT%H:%M:%S"),
        params=params,
        engines=engines or {},
        metrics=metrics.as_dict() if metrics is not None else {},
        stats=stats or {},
    )
    report.write(args.json)
    print(f"wrote {args.json}")


def _cmd_blocks(args: argparse.Namespace) -> int:
    chip = XGENE
    if args.mr is None or args.nr is None:
        best = RegisterBlockingProblem.from_core(chip.core).solve()
        mr, nr = best.mr, best.nr
        print(f"register blocking: {mr}x{nr} (gamma {best.gamma:.3f}, "
              f"nrf {best.nrf})")
    else:
        mr, nr = args.mr, args.nr
    blk = solve_cache_blocking(chip, mr, nr, threads=args.threads)
    print(f"cache blocking for {args.threads} thread(s) on {chip.name}: "
          f"{blk}  (k1={blk.k1}, k2={blk.k2}, k3={blk.k3})")
    _emit_report(
        args, "blocks",
        params={"mr": mr, "nr": nr, "threads": args.threads},
        stats={"blocking": {
            "mr": blk.mr, "nr": blk.nr, "kc": blk.kc, "mc": blk.mc,
            "nc": blk.nc, "k1": blk.k1, "k2": blk.k2, "k3": blk.k3,
        }},
    )
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    kernel = get_variant(args.variant, kc=args.kc)
    body = kernel.body
    print(f"// {args.variant}: {len(body)} instructions per body "
          f"({body.num_fmla} fmla, {body.num_loads} ldr, "
          f"{body.num_prefetches} prfm), LDR:FMLA = "
          f"{body.ldr_fmla_ratio[0]}:{body.ldr_fmla_ratio[1]}")
    print(f"// rotation distance {kernel.plan.min_distance}, "
          f"schedule distance {kernel.schedule.min_load_use_distance}")
    print(body.to_text())
    _emit_report(
        args, "kernel",
        params={"variant": args.variant, "kc": args.kc},
        stats={"body": {
            "instructions": len(body),
            "fmla": body.num_fmla,
            "ldr": body.num_loads,
            "prfm": body.num_prefetches,
            "rotation_distance": kernel.plan.min_distance,
            "schedule_distance": kernel.schedule.min_load_use_distance,
        }},
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry() if _wants_report(args) else None
    sim = GemmSimulator(XGENE, metrics=metrics)
    m = args.m or args.size
    n = args.n or args.size
    k = args.k or args.size
    perf = sim.simulate(args.kernel, m, n, k, threads=args.threads)
    print(f"{args.kernel} on {m}x{n}x{k}, {args.threads} thread(s): "
          f"{perf.gflops:.2f} Gflops ({perf.efficiency:.1%} of "
          f"{XGENE.peak_flops_for(args.threads) / 1e9:.1f} Gflops peak)")
    print(f"blocking: {perf.blocking}")
    total = sum(v for k_, v in perf.breakdown.items()
                if k_ != "bandwidth_floor")
    for name, cycles in perf.breakdown.items():
        if name == "bandwidth_floor":
            continue
        print(f"  {name:10s} {cycles / max(total, 1):6.1%} of modeled cycles")
    _emit_report(
        args, "simulate",
        params={"kernel": args.kernel, "m": m, "n": n, "k": k,
                "threads": args.threads},
        engines={"model": {"requested": "analytic", "selected": "analytic",
                           "fallback_reason": None}},
        metrics=metrics,
        stats={"performance": {
            "cycles": perf.cycles,
            "flops": perf.flops,
            "gflops": perf.gflops,
            "efficiency": perf.efficiency,
            "l1_loads": perf.l1_loads,
            "breakdown": dict(perf.breakdown),
        }},
    )
    return 0


def _cmd_microbench(args: argparse.Namespace) -> int:
    rows = run_microbench()
    print(format_table(
        ["LDR:FMLA", "model %", "paper %"],
        [[r.ratio_label, r.model_efficiency * 100, r.paper_efficiency * 100]
         for r in rows],
        title="Table IV ladder",
    ))
    _emit_report(
        args, "microbench",
        params={},
        stats={"ladder": {
            r.ratio_label: {
                "model_efficiency": r.model_efficiency,
                "paper_efficiency": r.paper_efficiency,
            }
            for r in rows
        }},
    )
    return 0


def _cmd_pool(args: argparse.Namespace) -> int:
    """Exercise the persistent-pool parallel engine on real OS threads.

    Times a loop of small-matrix ``parallel_dgemm`` calls under the
    per-iteration thread-spawn baseline and under the persistent worker
    pool, then prints the pool's per-thread pack/GEBP counters — the
    engine's observability hook.
    """
    import time

    import numpy as np

    from repro.blocking.cache_blocking import CacheBlocking
    from repro.gemm import PoolStats, WorkerPool, parallel_dgemm

    if args.reps < 1:
        raise ReproError(f"--reps must be >= 1, got {args.reps}")
    if args.size < 1:
        raise ReproError(f"--size must be >= 1, got {args.size}")
    rng = np.random.default_rng(0)
    size = args.size
    a = np.asfortranarray(rng.standard_normal((size, size)))
    b = np.asfortranarray(rng.standard_normal((size, size)))
    c = np.asfortranarray(rng.standard_normal((size, size)))
    # Small blocks so the loop nest has many barrier steps — the regime
    # where engine overhead, not arithmetic, dominates.
    blk = CacheBlocking(mr=8, nr=6, kc=64, mc=24, nc=48, k1=1, k2=2, k3=1)

    def run_loop(pool) -> float:
        parallel_dgemm(a, b, c.copy(order="F"), threads=args.threads,
                       blocking=blk, use_os_threads=True, pool=pool)
        t0 = time.perf_counter()
        for _ in range(args.reps):
            parallel_dgemm(a, b, c.copy(order="F"), threads=args.threads,
                           blocking=blk, use_os_threads=True, pool=pool)
        return time.perf_counter() - t0

    spawn_s = run_loop("spawn")
    with WorkerPool(args.threads) as pool:
        pool_s = run_loop(pool)
        stats = PoolStats()
        parallel_dgemm(a, b, c.copy(order="F"), threads=args.threads,
                       blocking=blk, use_os_threads=True, pool=pool,
                       stats=stats)
    print(format_table(
        ["engine", "total s", "ms/call"],
        [["spawn-per-iteration", spawn_s, spawn_s / args.reps * 1e3],
         ["persistent pool", pool_s, pool_s / args.reps * 1e3]],
        title=f"{size}x{size}x{size}, {args.threads} threads, "
              f"{args.reps} calls",
    ))
    print(f"pool speedup: {spawn_s / pool_s:.2f}x over per-iteration "
          f"spawning ({stats.steps} barrier steps/call)")
    print(format_table(
        ["thread", "packA", "packB", "gebp",
         "packA ms", "packB ms", "gebp ms"],
        stats.summary_rows(),
        title="per-thread counters (one call)",
    ))
    from repro.obs import snapshot_pool_stats

    _emit_report(
        args, "pool",
        params={"threads": args.threads, "size": args.size,
                "reps": args.reps},
        engines={"pool": {"requested": "persistent",
                          "selected": "persistent",
                          "fallback_reason": None}},
        stats={
            "pool": snapshot_pool_stats(stats),
            "timing": {
                "spawn_seconds": spawn_s,
                "pool_seconds": pool_s,
                "speedup": spawn_s / pool_s,
            },
        },
    )
    return 0


def _cmd_cachesim(args: argparse.Namespace) -> int:
    """Replay a GEBP slice through the cache sim, timing both engines.

    Runs the scalar oracle and the vectorized batched engine on fresh
    identical hierarchies, checks their counters are bit-identical and
    prints throughput plus the Table VII miss-rate view.
    """
    import dataclasses
    import time

    from repro.memory.hierarchy import MemoryHierarchy
    from repro.sim.gebp_cachesim import gebp_traces, simulate_gebp_cache

    sim = GemmSimulator(XGENE)
    spec = VARIANTS[args.kernel]
    blk = sim.default_blocking(args.kernel, args.threads)
    warm, main_trace, _ = gebp_traces(
        spec, blk, chip=XGENE, nc_slice=args.nc_slice
    )
    line = XGENE.l1d.line_bytes
    accesses = warm.line_count(line) + main_trace.line_count(line)

    metrics = MetricsRegistry() if _wants_report(args) else None
    results = {}
    timings = {}
    hierarchies = {}
    for engine in ("scalar", "batched"):
        h = MemoryHierarchy(XGENE, seed=args.seed)
        hierarchies[engine] = h
        t0 = time.perf_counter()
        results[engine] = simulate_gebp_cache(
            spec, blk, chip=XGENE, hierarchy=h,
            nc_slice=args.nc_slice, engine=engine, metrics=metrics,
        )
        timings[engine] = time.perf_counter() - t0

    identical = dataclasses.astuple(results["scalar"]) == dataclasses.astuple(
        results["batched"]
    )
    print(f"{args.kernel}, {args.threads} thread(s), blocking {blk}")
    print(format_table(
        ["engine", "seconds", "accesses/s"],
        [[e, timings[e], accesses / timings[e]] for e in results],
        title=f"replay of {accesses} line accesses",
    ))
    print(f"speedup: {timings['scalar'] / timings['batched']:.1f}x, "
          f"counters bit-identical: {identical}")
    r = results["batched"]
    print(f"L1: {r.l1_loads} loads, {r.l1_load_misses} misses "
          f"({r.l1_load_miss_rate:.2%}); L2: {r.l2_loads} loads, "
          f"{r.l2_load_misses} misses; DRAM: {r.dram_accesses} lines")
    fallback = hierarchies["batched"].batched_fallback_accesses()
    if fallback:
        print(f"warning: {fallback} line accesses took the batched "
              f"engine's per-access scalar fallback (non-LRU replacement "
              f"levels)")
    from repro.obs import snapshot_gebp_cache_result, snapshot_hierarchy

    _emit_report(
        args, "cachesim",
        params={"kernel": args.kernel, "threads": args.threads,
                "nc_slice": args.nc_slice, "seed": args.seed},
        engines={
            e: {"requested": e, "selected": e, "fallback_reason": None}
            for e in results
        },
        metrics=metrics,
        stats={
            "result": snapshot_gebp_cache_result(r),
            "hierarchy": snapshot_hierarchy(hierarchies["batched"]),
            "identical": identical,
        },
    )
    if not identical:
        print("error: engines disagree", file=sys.stderr)
        return 1
    return 0


def _cmd_timed(args: argparse.Namespace) -> int:
    """Timing-functional kernel run, comparing execution engines.

    With ``--engine both`` (the default) runs one micro-tile of the
    chosen variant through the interpreted oracle and the compiled
    template engine, checks every observable (cycles, stall breakdown,
    load-latency histogram, C values) is bit-identical, and prints the
    timing detail plus engine throughput. With a single engine runs only
    that one — ``auto`` reports when (and why) it fell back to the
    interpreter on a non-compilable kernel.
    """
    import time

    import numpy as np

    metrics = MetricsRegistry() if _wants_report(args) else None
    sim = GemmSimulator(XGENE, metrics=metrics)
    engine_list = (
        ["interpreted", "compiled"]
        if args.engine == "both"
        else [args.engine]
    )
    runs = {}
    timings = {}
    for engine in engine_list:
        t0 = time.perf_counter()
        runs[engine] = sim.timed_kernel(
            args.kernel, kc=args.kc, engine=engine, hw_late=args.hw_late,
            seed=args.seed,
        )
        timings[engine] = time.perf_counter() - t0
    identical = True
    if args.engine == "both":
        ri, rc = runs["interpreted"], runs["compiled"]
        identical = (
            ri.pipeline == rc.pipeline
            and ri.load_latencies == rc.load_latencies
            and np.array_equal(ri.c_tile, rc.c_tile)
        )
    r = runs[engine_list[-1]]
    kc = args.kc or round(r.cycles / r.cycles_per_iteration)
    print(f"{args.kernel}, kc={kc}: {r.cycles} cycles "
          f"({r.cycles_per_iteration:.3f}/iter), "
          f"efficiency {r.efficiency:.1%}")
    p = r.pipeline
    print(f"stalls: raw {p.raw_stall_cycles}, structural "
          f"{p.structural_stall_cycles}, war {p.war_stall_cycles}; "
          f"ipc {p.ipc:.2f}")
    hist = ", ".join(
        f"{lat}cy x{cnt}" for lat, cnt in sorted(r.load_latencies.items())
    )
    print(f"load latencies: {hist}")
    print(format_table(
        ["engine", "seconds", "k-iters/s"],
        [[e, timings[e], kc / timings[e]] for e in runs],
        title="engine timing",
    ))
    if args.engine == "both":
        print(f"speedup: "
              f"{timings['interpreted'] / timings['compiled']:.1f}x, "
              f"bit-identical: {identical}")
    else:
        print(f"engine: {r.engine} (requested {args.engine})")
        if r.fallback_reason is not None:
            print(f"auto fell back to the interpreter: {r.fallback_reason}")
    for engine, run in runs.items():
        if run.batched_fallback_accesses:
            print(f"warning: {run.batched_fallback_accesses} cache "
                  f"accesses took the per-access scalar fallback inside "
                  f"the {engine} engine's batched hierarchy replay")
    from repro.obs import snapshot_timed_run

    _emit_report(
        args, "timed",
        params={"kernel": args.kernel, "kc": kc, "hw_late": args.hw_late,
                "engine": args.engine, "seed": args.seed},
        engines={
            e: {"requested": args.engine, "selected": run.engine,
                "fallback_reason": run.fallback_reason}
            for e, run in runs.items()
        },
        metrics=metrics,
        stats={
            "run": snapshot_timed_run(r),
            "identical": identical,
        },
    )
    if not identical:
        print("error: engines disagree", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry() if _wants_report(args) else None
    sim = GemmSimulator(XGENE, metrics=metrics)
    sizes = list(range(args.start, args.stop + 1, args.step))
    series = []
    for kernel in args.kernels:
        gfs = [
            sim.simulate(kernel, s, s, s, threads=args.threads).gflops
            for s in sizes
        ]
        series.append((kernel, gfs))
    print(format_series(sizes, series, x_label="size",
                        title=f"Gflops vs size ({args.threads} thread(s))"))
    _emit_report(
        args, "sweep",
        params={"kernels": list(args.kernels), "threads": args.threads,
                "start": args.start, "stop": args.stop, "step": args.step},
        metrics=metrics,
        stats={"gflops": {
            kernel: {str(s): gf for s, gf in zip(sizes, gfs)}
            for kernel, gfs in series
        }},
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    """Regenerate every paper exhibit into a results directory."""
    import pathlib

    from repro.analysis import (
        fig7_schedule,
        fig8_codegen,
        fig13_rotation_ablation,
        fig14_scaling,
        fig15_l1_loads,
        format_series,
        format_table,
        table1_rotation,
        table3_blocksizes,
        table4_microbench,
        table5_efficiency,
        table6_blocksize_sensitivity,
        table7_miss_rates,
        fig11_serial_sweep,
        fig12_parallel_sweep,
    )

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    sizes = tuple(range(args.start, args.stop + 1, args.step))

    def save(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"wrote {out / (name + '.txt')}")

    save("table1_rotation", format_table(
        ["slot"] + [f"#{i}" for i in range(8)],
        [[slot] + regs for slot, regs in table1_rotation().items()],
        title="Table I"))
    rep = fig7_schedule()
    save("fig7_schedule", format_table(
        ["scheme", "rotation", "schedule"],
        [["paper", rep.rotation_distance_paper, rep.schedule_distance_paper],
         ["solved", rep.rotation_distance_solved,
          rep.schedule_distance_solved]], title="Figs. 6/7"))
    save("fig8_codegen", fig8_codegen())
    save("table3_blocksizes", format_table(
        ["kernel", "1 thread", "8 threads"], table3_blocksizes(),
        title="Table III"))
    save("table4_microbench", format_table(
        ["ratio", "model %", "paper %"],
        [[r.ratio_label, r.model_efficiency * 100, r.paper_efficiency * 100]
         for r in table4_microbench()], title="Table IV"))
    save("table5_efficiency", format_table(
        ["impl", "T", "peak %", "paper %", "avg %", "paper avg %"],
        [[r.kernel, r.threads, r.peak * 100, r.paper_peak * 100,
          r.average * 100, r.paper_average * 100]
         for r in table5_efficiency(sizes=sizes)], title="Table V"))
    for name, data in (("fig11_serial_sweep", fig11_serial_sweep(sizes)),
                       ("fig12_parallel_sweep", fig12_parallel_sweep(sizes))):
        save(name, format_series(
            list(sizes),
            [(k, [r.gflops for r in v]) for k, v in data.items()],
            x_label="size", title=name))
    abl = fig13_rotation_ablation(sizes)
    blocks = []
    for setting, curves in abl.items():
        blocks.append(format_series(
            list(sizes),
            [(k, [r.gflops for r in v]) for k, v in curves.items()],
            x_label="size", title=f"Fig. 13 ({setting})"))
    save("fig13_rotation_ablation", "\n\n".join(blocks))
    scal = fig14_scaling(sizes)
    save("fig14_scaling", format_series(
        list(sizes),
        [(f"{t}T", [r.gflops for r in v]) for t, v in sorted(scal.items())],
        x_label="size", title="Fig. 14"))
    save("table6_blocksize_sensitivity", format_table(
        ["setting", "config", "peak %", "avg %"],
        [[s_, c, p * 100, a * 100]
         for s_, c, p, a in table6_blocksize_sensitivity(sizes=sizes)],
        title="Table VI"))
    loads = fig15_l1_loads(sizes)
    save("fig15_l1_loads", format_series(
        list(sizes),
        [(k, [x / 1e10 for x in v]) for k, v in loads.items()],
        x_label="size", title="Fig. 15 (x 10^10 loads)"))
    save("table7_miss_rates", format_table(
        ["kernel", "T", "model %", "paper %"],
        [[k, t, mr * 100, pr * 100] for k, t, mr, pr in table7_miss_rates()],
        title="Table VII"))
    print(f"all exhibits written to {out}/")
    _emit_report(
        args, "experiments",
        params={"out": str(out), "start": args.start, "stop": args.stop,
                "step": args.step},
        stats={"exhibits": {
            p.stem: True for p in sorted(out.glob("*.txt"))
        }},
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Differential verification: fuzz sweep, self-test, case replay.

    The default mode runs a seeded sweep of every selected oracle plus
    the mutation self-test, prints a per-oracle summary, and exits
    nonzero if any case mismatches or the self-test fails to catch its
    injected fault. ``--replay FILE`` instead re-runs one committed case
    file; ``--list`` just prints the registry.
    """
    from repro.verify import (
        BUDGETS,
        all_oracles,
        replay_case,
        run_suite,
        suites,
    )

    if args.list:
        print(format_table(
            ["oracle", "suite", "checks"],
            [[o.name, o.suite, o.description] for o in all_oracles()],
            title=f"registered oracles (suites: {', '.join(suites())})",
        ))
        return 0

    if args.replay is not None:
        outcome = replay_case(args.replay)
        status = "PASS" if outcome.ok else "FAIL"
        print(f"{args.replay}: oracle {outcome.oracle} -> {status}")
        for mismatch in outcome.mismatches[:10]:
            print(f"  {mismatch}")
        _emit_report(
            args, "verify",
            params={"replay": str(args.replay), "oracle": outcome.oracle},
            stats={"verify": {
                "replay": str(args.replay),
                "oracle": outcome.oracle,
                "passed": outcome.ok,
                "mismatches": outcome.mismatches[:10],
            }},
        )
        return 0 if outcome.ok else 1

    doc = run_suite(
        seed=args.seed,
        budget=args.budget,
        suite=args.suite,
        selftest=not args.no_selftest,
        shrink_dir=args.cases_dir,
    )
    cases = BUDGETS[args.budget]
    rows = []
    for name, entry in doc["oracles"].items():
        rows.append([
            name,
            entry["cases"],
            len(entry["failures"]),
            "pass" if entry["passed"] else "FAIL",
        ])
    print(format_table(
        ["oracle", "cases", "failures", "status"],
        rows,
        title=f"verify sweep: suite={args.suite} seed={args.seed} "
              f"budget={args.budget} ({cases} cases/oracle)",
    ))
    for name, entry in doc["oracles"].items():
        for failure in entry["failures"]:
            print(f"{name} case {failure['case_index']} mismatches:")
            for mismatch in failure["mismatches"][:5]:
                print(f"  {mismatch}")
            if "case_file" in failure:
                print(f"  shrunk repro written to {failure['case_file']}")
    if "selftest" in doc:
        caught = doc["selftest"]["passed"]
        print(f"mutation self-test: "
              f"{'fault caught by every oracle' if caught else 'FAILED'}")
    print(f"verify: {'PASS' if doc['passed'] else 'FAIL'}")
    _emit_report(
        args, "verify",
        params={"suite": args.suite, "seed": args.seed,
                "budget": args.budget},
        stats={"verify": doc},
    )
    return 0 if doc["passed"] else 1


def _load_batch(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL batch file (``-`` = stdin); blank/# lines skipped."""
    import json

    if path == "-":
        fh = sys.stdin
    else:
        try:
            fh = open(path)
        except OSError as exc:
            raise ReproError(f"cannot read batch file {path}: {exc}")
    try:
        docs = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                docs.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{lineno}: not a JSON query document: {exc}"
                )
        return docs
    finally:
        if fh is not sys.stdin:
            fh.close()


def _serve_engine(args: argparse.Namespace, metrics):
    """A QueryEngine (and its pool, or None) per the CLI options."""
    from repro.gemm.pool import WorkerPool
    from repro.serve import QueryEngine

    if args.threads < 1:
        raise ReproError(f"--threads must be >= 1, got {args.threads}")
    pool = WorkerPool(args.threads) if args.threads > 1 else None
    return QueryEngine(args.cache_dir, pool=pool, metrics=metrics), pool


def _cmd_query(args: argparse.Namespace) -> int:
    """Serve a batch of query documents through the memoized engine.

    Reads one JSON query per line from ``--batch``, answers each from
    the on-disk result cache (computing, deduplicating and persisting
    misses on the worker pool), and streams one RunReport-schema answer
    document per line to stdout (or ``--out``). The serving summary goes
    to stderr so piped answer streams stay clean. ``--expect-all-hits``
    exits nonzero unless every query was served from the cache — the
    hook CI uses to prove cache persistence across process runs.
    """
    docs = _load_batch(args.batch)
    metrics = MetricsRegistry() if _wants_report(args) else None
    engine, pool = _serve_engine(args, metrics)
    try:
        t0 = time.perf_counter()
        answers = engine.run_batch(docs)
        elapsed = time.perf_counter() - t0
    finally:
        if pool is not None:
            pool.close()
    out = open(args.out, "w") if args.out else sys.stdout
    try:
        for answer in answers:
            out.write(answer.to_json_line() + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    s = engine.stats
    rate = s.queries / elapsed if elapsed > 0 else float("inf")
    print(
        f"served {s.queries} queries in {elapsed:.3f}s ({rate:.0f}/s): "
        f"{s.hits} hits, {s.computed} computed, {s.deduped} deduped, "
        f"{s.errors} errors [cache {args.cache_dir}, "
        f"{args.threads} thread(s)]",
        file=sys.stderr,
    )
    _emit_report(
        args, "query",
        params={"batch": args.batch, "cache_dir": args.cache_dir,
                "threads": args.threads},
        metrics=metrics,
        stats={
            "serve": s.as_dict(),
            "timing": {
                "elapsed_seconds": elapsed,
                "queries_per_second": rate,
            },
        },
    )
    if args.expect_all_hits and s.hits != s.queries:
        print(
            f"error: expected all {s.queries} queries to hit the cache, "
            f"got {s.hits} hits",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Pre-warm the result cache with a preset's standing query set."""
    from repro.serve import ResultStore, warm_queries

    docs = warm_queries(args.warm)
    metrics = MetricsRegistry() if _wants_report(args) else None
    engine, pool = _serve_engine(args, metrics)
    try:
        t0 = time.perf_counter()
        engine.run_batch(docs)
        elapsed = time.perf_counter() - t0
    finally:
        if pool is not None:
            pool.close()
    s = engine.stats
    store = engine.store if isinstance(engine.store, ResultStore) else None
    print(f"warmed preset {args.warm!r}: {s.queries} queries in "
          f"{elapsed:.3f}s ({s.computed} computed, {s.hits} already "
          f"cached, {s.errors} errors)")
    if store is not None:
        print(f"cache {args.cache_dir}: {len(store)} entries, "
              f"{store.bytes_held()} bytes")
    _emit_report(
        args, "serve",
        params={"warm": args.warm, "cache_dir": args.cache_dir,
                "threads": args.threads},
        metrics=metrics,
        stats={
            "serve": s.as_dict(),
            "timing": {"elapsed_seconds": elapsed},
            "store": {
                "entries": len(store) if store is not None else 0,
                "bytes": store.bytes_held() if store is not None else 0,
            },
        },
    )
    return 1 if s.errors else 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Run the two-stage kernel search with persistent memoization."""
    from repro.gemm.pool import WorkerPool
    from repro.serve import ResultStore
    from repro.tune import tune_search

    if args.smoke:
        # CI budget: small tile pool, tight neighborhoods, fixed seed.
        args.max_tiles = min(args.max_tiles, 3)
        args.radius = min(args.radius, 1)
        args.seed = 0
    metrics = MetricsRegistry() if _wants_report(args) else None
    store = ResultStore(args.cache_dir) if args.cache_dir else None
    pool = WorkerPool(args.pool) if args.pool > 1 else None
    try:
        t0 = time.perf_counter()
        result = tune_search(
            machine=args.machine,
            threads=args.threads,
            problem_size=args.problem_size,
            max_tiles=args.max_tiles,
            top_k=args.top_k,
            radius=args.radius,
            bodies=args.bodies,
            seed=args.seed,
            store=store,
            pool=pool,
            metrics=metrics,
        )
        elapsed = time.perf_counter() - t0
    finally:
        if pool is not None:
            pool.close()
    win = result["winner"]
    cand = win["candidate"]
    space = result["space"]
    memo = result["memo"]
    hits = memo["analytic"]["hits"] + memo["timed"]["hits"]
    misses = memo["analytic"]["misses"] + memo["timed"]["misses"]
    print(f"tuned {result['machine']} in {elapsed:.3f}s: winner "
          f"{cand['mr']}x{cand['nr']} ({cand['rotation']} rotation, "
          f"{cand['schedule']} schedule) at "
          f"{cand['kc']}x{cand['mc']}x{cand['nc']}")
    print(f"  timed efficiency {win['timed']['efficiency']:.4f} "
          f"(analytic {win['analytic']['efficiency']:.4f})")
    print(f"  space: {space['enumerated']} candidates -> "
          f"{space['analytic_classes']} analytic classes -> "
          f"{space['timed_variants']} timed variants "
          f"(prune {result['stats']['prune_ratio']:.1f}x)")
    print(f"  memo: {hits} hits, {misses} computed"
          + (f" ({args.cache_dir})" if args.cache_dir else " (no store)"))
    _emit_report(
        args, "tune",
        params=dict(result["params"],
                    cache_dir=args.cache_dir or None, pool=args.pool),
        engines={
            "analytic": {"selected": "gemm-sim", "fallback_reason": None},
            "timed": {"selected": "compiled", "fallback_reason": None},
        },
        metrics=metrics,
        stats={
            "space": space,
            "prune_ratio": result["stats"]["prune_ratio"],
            "winner": win,
            "top": result["top"],
            "memo": memo,
            "timing": {"elapsed_seconds": elapsed},
        },
    )
    return 0


def _cmd_asym(args: argparse.Namespace) -> int:
    """The asymmetric-chip exhibit: class-aware partition + energy.

    Prices every placement of interest (each core class alone, all
    cores split symmetrically, all cores split by modeled class rate)
    and prints the performance-vs-energy frontier per size, plus the
    headline weighted-over-symmetric speedup.
    """
    from repro.sim.asym import asym_exhibit

    chip = get_preset(args.machine)
    doc = asym_exhibit(chip=chip, kernel=args.kernel, smoke=args.smoke)
    print(f"{doc['chip']}: " + ", ".join(
        f"{name} x{c['cores']} @ {c['frequency_hz'] / 1e9:.1f} GHz "
        f"({c['modeled_gflops_per_core']:.2f} Gflops/core modeled)"
        for name, c in doc["classes"].items()
    ))
    for entry in doc["sizes"]:
        rows = [
            [name, p["threads"], p["gflops"], p["watts"],
             p["gflops_per_watt"]]
            for name, p in entry["placements"].items()
        ]
        print(format_table(
            ["placement", "T", "Gflops", "W", "Gflops/W"], rows,
            title=f"size {entry['size']}",
        ))
        print(f"  weighted speedup over symmetric: "
              f"{entry['weighted_speedup']:.3f}x")
    _emit_report(
        args, "asym",
        params={"machine": args.machine, "kernel": args.kernel,
                "smoke": args.smoke},
        stats=doc,
    )
    return 0


def _workload_variant_rows(variants: Dict[str, Any]) -> List[List[Any]]:
    return [
        [name, v["l1_loads"], v["l1_load_misses"],
         f"{v['l1_load_miss_rate']:.4f}", v["dram_accesses"],
         v["cycles"], f"{v['gflops']:.3f}"]
        for name, v in variants.items()
    ]


def _cmd_stencil(args: argparse.Namespace) -> int:
    """The stencil exhibit: cache-blocked vs unblocked Jacobi sweeps.

    Proves the variants bit-identical, then prints the Table VII-style
    counter comparison — the blocked tile keeps its halo rows resident
    where the unblocked row-major sweep loses the up-arm reuse.
    """
    from repro.workloads.exhibit import stencil_exhibit

    chip = get_preset(args.machine)
    doc = stencil_exhibit(
        chip, height=args.height, width=args.width, radius=args.radius,
        iterations=args.iterations, seed=args.seed, smoke=args.smoke,
    )
    p = doc["params"]
    print(f"{doc['chip']}: {p['height']}x{p['width']} grid, radius "
          f"{p['radius']}, {p['iterations']} sweep(s), solved tile "
          f"{doc['block']['bi']}x{doc['block']['bj']}")
    print(format_table(
        ["variant", "L1 loads", "L1 misses", "miss rate", "DRAM",
         "cycles", "Gflops"],
        _workload_variant_rows(doc["variants"]),
        title="stencil: blocked vs unblocked",
    ))
    print(f"  bit-identical outputs: {doc['bit_identical']}")
    print(f"  unblocked/blocked miss-rate ratio: "
          f"{doc['miss_rate_ratio']:.3f}x")
    print(f"  blocked speedup: {doc['speedup']:.3f}x")
    _emit_report(
        args, "stencil",
        params={"machine": args.machine, **p},
        stats=doc,
    )
    return 0 if doc["bit_identical"] else 1


def _cmd_conv(args: argparse.Namespace) -> int:
    """The convolution exhibit: direct vs im2col lowering.

    Both lowerings drive the identical GEBP stream; im2col pays the
    patches-matrix round trip through DRAM. Proves both bit-equality
    contracts (lowering-vs-lowering, blocked-vs-unblocked) first.
    """
    from repro.workloads.exhibit import conv_exhibit

    chip = get_preset(args.machine)
    doc = conv_exhibit(
        chip, cin=args.cin, height=args.height, width=args.width,
        kh=args.kh, kw=args.kw, filters=args.filters, seed=args.seed,
        smoke=args.smoke,
    )
    p = doc["params"]
    g = doc["gemm_shape"]
    blk = doc["blocking"]
    print(f"{doc['chip']}: {p['cin']}x{p['height']}x{p['width']} image, "
          f"{p['filters']} {p['kh']}x{p['kw']} filters -> GEMM "
          f"{g['m']}x{g['k']}x{g['n']} at "
          f"mc={blk['mc']} kc={blk['kc']} nc={blk['nc']}")
    print(format_table(
        ["variant", "L1 loads", "L1 misses", "miss rate", "DRAM",
         "cycles", "Gflops"],
        _workload_variant_rows(doc["variants"]),
        title="conv: im2col vs direct",
    ))
    ok = doc["bit_identical"] and doc["bit_identical_unblocked"]
    print(f"  bit-identical lowerings: {doc['bit_identical']}; "
          f"vs unblocked: {doc['bit_identical_unblocked']}")
    print(f"  im2col/direct DRAM ratio: {doc['dram_ratio']:.3f}x")
    print(f"  direct speedup: {doc['speedup']:.3f}x")
    _emit_report(
        args, "conv",
        params={"machine": args.machine, **p},
        stats=doc,
    )
    return 0 if ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Render, validate, or diff structured run reports.

    ``repro report out.json`` renders a report; ``--validate`` checks it
    against the schema only; ``--diff BASELINE CURRENT`` runs the
    regression comparator and exits nonzero on regressions (suppress
    with ``--warn-only``).
    """
    import json

    from repro.obs import (
        compare_files,
        flatten,
        format_comparison,
        load_report_dict,
        validate_report,
    )

    if args.diff is not None:
        baseline_path, current_path = args.diff
        comp = compare_files(
            baseline_path, current_path, tolerance=args.tolerance
        )
        print(format_comparison(comp, baseline_path, current_path))
        if args.json:
            doc = {
                "baseline": baseline_path,
                "current": current_path,
                "tolerance": args.tolerance,
                "checked": comp.checked,
                "skipped": comp.skipped,
                "findings": [
                    {"path": f.path, "kind": f.kind, "note": f.note,
                     "baseline": f.baseline, "current": f.current}
                    for f in comp.findings
                ],
            }
            with open(args.json, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        if comp.regressions and not args.warn_only:
            return 1
        return 0

    if args.path is None:
        raise ReproError("report needs a file path or --diff A B")
    doc = load_report_dict(args.path)
    problems = validate_report(doc)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    if args.validate:
        print(f"{args.path}: valid (schema version "
              f"{doc['schema_version']})")
        return 0
    print(f"{doc['command']} report (schema {doc['schema_version']}, "
          f"created {doc.get('created') or 'n/a'})")
    if doc.get("params"):
        print("params: " + ", ".join(
            f"{k}={v}" for k, v in sorted(doc["params"].items())
        ))
    for slot, entry in sorted(doc.get("engines", {}).items()):
        line = (f"engine {slot}: requested {entry.get('requested', '?')}, "
                f"selected {entry.get('selected', '?')}")
        if entry.get("fallback_reason"):
            line += f" (fallback: {entry['fallback_reason']})"
        print(line)
    rows = [
        [path, value]
        for path, value in sorted(flatten(doc.get("stats", {})))
    ]
    if rows:
        print(format_table(["stat", "value"], rows, title="stats"))
    counters = doc.get("metrics", {}).get("counters", {})
    if counters:
        print(format_table(
            ["counter", "value"],
            [[k, v] for k, v in sorted(counters.items())],
            title="metric counters",
        ))
    spans = doc.get("metrics", {}).get("spans", {})
    if spans:
        print(format_table(
            ["span", "count", "seconds"],
            [[k, s.get("count", 0), s.get("seconds", 0.0)]
             for k, s in sorted(spans.items())],
            title="span timers",
        ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARMv8 DGEMM reproduction (ICPP 2015) toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_json(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--json", metavar="PATH", default=None,
            help="also write a structured RunReport document to PATH",
        )

    p = sub.add_parser("blocks", help="derive block sizes analytically")
    p.add_argument("--mr", type=int, default=None)
    p.add_argument("--nr", type=int, default=None)
    p.add_argument("--threads", type=int, default=1)
    add_json(p)
    p.set_defaults(func=_cmd_blocks)

    p = sub.add_parser("kernel", help="emit register-kernel assembly")
    p.add_argument("--variant", default="OpenBLAS-8x6",
                   choices=sorted(VARIANTS))
    p.add_argument("--kc", type=int, default=512)
    add_json(p)
    p.set_defaults(func=_cmd_kernel)

    p = sub.add_parser("simulate", help="predict DGEMM performance")
    p.add_argument("--kernel", default="OpenBLAS-8x6",
                   choices=sorted(VARIANTS))
    p.add_argument("--size", type=int, default=2048)
    p.add_argument("-m", type=int, default=None)
    p.add_argument("-n", type=int, default=None)
    p.add_argument("-k", type=int, default=None)
    p.add_argument("--threads", type=int, default=1)
    add_json(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("microbench", help="the Table IV LDR:FMLA ladder")
    add_json(p)
    p.set_defaults(func=_cmd_microbench)

    p = sub.add_parser(
        "experiments",
        help="regenerate every paper table/figure into a directory",
    )
    p.add_argument("--out", default="results")
    p.add_argument("--start", type=int, default=256)
    p.add_argument("--stop", type=int, default=6400)
    p.add_argument("--step", type=int, default=512)
    add_json(p)
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser(
        "pool",
        help="time the persistent worker pool vs per-iteration spawning "
             "and show per-thread counters",
    )
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--size", type=int, default=160)
    p.add_argument("--reps", type=int, default=10)
    add_json(p)
    p.set_defaults(func=_cmd_pool)

    p = sub.add_parser(
        "cachesim",
        help="event-accurate GEBP cache replay; times scalar vs batched "
             "engines and checks them bit-identical",
    )
    p.add_argument("--kernel", default="OpenBLAS-8x6",
                   choices=sorted(VARIANTS))
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--nc-slice", type=int, default=None)
    p.add_argument("--seed", type=int, default=0,
                   help="RANDOM-replacement victim RNG seed")
    add_json(p)
    p.set_defaults(func=_cmd_cachesim)

    p = sub.add_parser(
        "timed",
        help="timing-functional kernel run; times interpreted vs "
             "compiled engines and checks them bit-identical",
    )
    p.add_argument("--kernel", default="OpenBLAS-8x6",
                   choices=sorted(VARIANTS))
    p.add_argument("--kc", type=int, default=None)
    p.add_argument("--hw-late", type=float, default=0.25)
    p.add_argument("--engine", default="both",
                   choices=["both", "auto", "compiled", "interpreted"],
                   help="run both engines and cross-check (default), or "
                        "a single one; 'auto' reports its fallback reason")
    p.add_argument("--seed", type=int, default=0,
                   help="operand RNG seed")
    add_json(p)
    p.set_defaults(func=_cmd_timed)

    p = sub.add_parser("sweep", help="Gflops vs matrix size")
    p.add_argument("--kernels", nargs="+",
                   default=["OpenBLAS-8x6", "ATLAS-5x5"],
                   choices=sorted(VARIANTS))
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--start", type=int, default=256)
    p.add_argument("--stop", type=int, default=4096)
    p.add_argument("--step", type=int, default=512)
    add_json(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "verify",
        help="differential fuzz sweep of every fast/reference engine "
             "pair, with mutation self-test and case replay",
    )
    p.add_argument("--suite", default="all",
                   help="oracle suite to run ('all', or one of the "
                        "registered suites; see --list)")
    p.add_argument("--seed", type=int, default=0,
                   help="top-level seed deterministically deriving every "
                        "per-oracle case stream")
    p.add_argument("--budget", default="default",
                   choices=["smoke", "default", "deep"],
                   help="cases per oracle")
    p.add_argument("--replay", metavar="FILE", default=None,
                   help="re-run one committed case file instead of "
                        "sweeping")
    p.add_argument("--cases-dir", default="tests/cases",
                   help="where shrunk repro files for new failures are "
                        "written")
    p.add_argument("--no-selftest", action="store_true",
                   help="skip the comparator mutation self-test")
    p.add_argument("--list", action="store_true",
                   help="print the oracle registry and exit")
    add_json(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "query",
        help="serve JSONL query documents from the memoized result "
             "cache, computing misses concurrently on the worker pool",
    )
    p.add_argument("--batch", metavar="FILE", required=True,
                   help="JSONL file with one query document per line "
                        "('-' reads stdin)")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="result-store directory (created on demand)")
    p.add_argument("--threads", type=int, default=4,
                   help="worker-pool size for computing cache misses "
                        "(1 = compute inline)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the answer stream here instead of stdout")
    p.add_argument("--expect-all-hits", action="store_true",
                   help="exit nonzero unless every query was served "
                        "from the cache")
    add_json(p)
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "serve",
        help="pre-warm the result cache with a machine preset's "
             "standing query set",
    )
    p.add_argument("--warm", default="all",
                   choices=list(preset_names()) + ["all"],
                   help="which preset's warm query set to compute")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="result-store directory (created on demand)")
    p.add_argument("--threads", type=int, default=4,
                   help="worker-pool size for computing cache misses")
    add_json(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "tune",
        help="search register tiles, rotation schemes, schedules and "
             "blockings with the two-stage memoized autotuner",
    )
    p.add_argument("--machine", default="xgene",
                   choices=list(preset_names()),
                   help="machine preset to tune for")
    p.add_argument("--threads", type=int, default=1,
                   help="thread count the blocking solver targets")
    p.add_argument("--problem-size", type=int, default=2048,
                   help="square DGEMM size the analytic stage prices")
    p.add_argument("--max-tiles", type=int, default=4,
                   help="top-gamma register tiles to enumerate")
    p.add_argument("--top-k", type=int, default=12,
                   help="analytic classes surviving into the timed stage")
    p.add_argument("--radius", type=int, default=1,
                   help="blocking-neighborhood radius per axis")
    p.add_argument("--bodies", type=int, default=2,
                   help="unrolled bodies per timed panel depth")
    p.add_argument("--seed", type=int, default=0,
                   help="enumeration-order and timed-operand seed")
    p.add_argument("--pool", type=int, default=1,
                   help="worker-pool size for cache-missing evaluations "
                        "(1 = compute inline)")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="result-store directory for memoized evaluations "
                        "('' disables persistence)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny fixed-seed budget for CI")
    add_json(p)
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "asym",
        help="asymmetric-chip exhibit: class-aware partition vs the "
             "symmetric split, with the energy frontier",
    )
    p.add_argument("--machine", default="big_little",
                   choices=list(preset_names()),
                   help="machine preset to model")
    p.add_argument("--kernel", default="OpenBLAS-8x6",
                   choices=sorted(VARIANTS))
    p.add_argument("--smoke", action="store_true",
                   help="single-size CI budget")
    add_json(p)
    p.set_defaults(func=_cmd_asym)

    p = sub.add_parser(
        "stencil",
        help="stencil exhibit: cache-blocked vs unblocked Jacobi sweeps "
             "through the cache walk and the timed scoreboard",
    )
    p.add_argument("--machine", default="xgene",
                   choices=list(preset_names()),
                   help="machine preset to model")
    p.add_argument("--height", type=int, default=None,
                   help="grid rows (default 64, 32 with --smoke)")
    p.add_argument("--width", type=int, default=None,
                   help="grid columns (default 2048)")
    p.add_argument("--radius", type=int, default=1)
    p.add_argument("--iterations", type=int, default=2,
                   help="Jacobi sweeps")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true",
                   help="narrow-grid CI budget")
    add_json(p)
    p.set_defaults(func=_cmd_stencil)

    p = sub.add_parser(
        "conv",
        help="convolution exhibit: direct gather nest vs im2col + DGEMM "
             "at the solved blocking",
    )
    p.add_argument("--machine", default="xgene",
                   choices=list(preset_names()),
                   help="machine preset to model")
    p.add_argument("--cin", type=int, default=None,
                   help="input channels (default 3, 1 with --smoke)")
    p.add_argument("--height", type=int, default=None,
                   help="image rows (default 34, 18 with --smoke)")
    p.add_argument("--width", type=int, default=None,
                   help="image columns (default 34, 18 with --smoke)")
    p.add_argument("--kh", type=int, default=3, help="filter rows")
    p.add_argument("--kw", type=int, default=3, help="filter columns")
    p.add_argument("--filters", type=int, default=None,
                   help="output channels (default 16, 8 with --smoke)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true",
                   help="small-image CI budget")
    add_json(p)
    p.set_defaults(func=_cmd_conv)

    p = sub.add_parser(
        "report",
        help="render, validate, or diff structured run reports",
    )
    p.add_argument("path", nargs="?", default=None,
                   help="report file to render")
    p.add_argument("--validate", action="store_true",
                   help="only check the file against the schema")
    p.add_argument("--diff", nargs=2, metavar=("BASELINE", "CURRENT"),
                   default=None,
                   help="compare two reports; exit nonzero on regressions")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="relative tolerance for float comparisons")
    p.add_argument("--warn-only", action="store_true",
                   help="report regressions but exit 0")
    add_json(p)
    p.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
