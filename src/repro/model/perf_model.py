"""The Sec. III performance model.

Implements eqs. (1)-(6):

- eq. (1): ``T = F*mu + sum W_ij*nu_ij + sum M_ij*eta_ij``;
- eq. (3): ``T <= F*mu + (1+kappa)*W*pi`` after bounding per-level costs by
  ``pi = sum nu + sum eta`` and messages by ``M ~ kappa*W``;
- eq. (4)/(5): overlap-refined bound ``T <= F*(mu + (1+kappa)*pi*psi(gamma)/gamma)``;
- eq. (6): the performance lower bound ``Perf >= F/T_opt``.

The model is deliberately general: it takes per-level word/message costs and
an overlapping factor ``psi`` and exposes both the raw estimate and the
bound. The DGEMM-specific gammas come from :mod:`repro.model.ratios`; the
calibrated psi comes from :mod:`repro.pipeline.interference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.errors import BlockingError

#: Edge in the memory hierarchy: (from_level, to_level), 0 = registers.
Edge = Tuple[int, int]


@dataclass(frozen=True)
class CostModel:
    """Per-operation and per-edge costs of eq. (1).

    Attributes:
        mu: Seconds (or cycles) per floating-point operation.
        nu: Per-word transfer cost for each hierarchy edge (inverse
            bandwidth), e.g. ``{(1, 0): 0.1}`` for L1->register.
        eta: Per-message (cache line) cost for each edge (latency).
        words_per_message: Words per cache line; kappa = 1/words_per_message
            when every word of each line is used (the packed-data
            assumption of Sec. III).
    """

    mu: float
    nu: Mapping[Edge, float] = field(default_factory=dict)
    eta: Mapping[Edge, float] = field(default_factory=dict)
    words_per_message: int = 8

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise BlockingError("mu must be non-negative")
        if self.words_per_message < 1:
            raise BlockingError("words_per_message must be >= 1")
        for mapping in (self.nu, self.eta):
            for edge, cost in mapping.items():
                if cost < 0:
                    raise BlockingError(f"negative cost on edge {edge}")

    @property
    def kappa(self) -> float:
        """Message-to-word ratio under the packed-data assumption."""
        return 1.0 / self.words_per_message

    @property
    def pi(self) -> float:
        """``pi = sum nu_ij + sum eta_ij`` (Sec. III)."""
        return sum(self.nu.values()) + sum(self.eta.values())


def execution_time(
    model: CostModel,
    flops: float,
    words: Mapping[Edge, float],
    messages: Optional[Mapping[Edge, float]] = None,
) -> float:
    """Eq. (1): exact accounting of compute plus per-edge traffic.

    Args:
        model: Cost coefficients.
        flops: Number of floating-point operations ``F``.
        words: Words moved per edge ``W_ij``.
        messages: Messages per edge ``M_ij``; derived from ``words`` and
            ``words_per_message`` when omitted.
    """
    if flops < 0:
        raise BlockingError("flops must be non-negative")
    t = flops * model.mu
    for edge, w in words.items():
        if w < 0:
            raise BlockingError(f"negative word count on edge {edge}")
        t += w * model.nu.get(edge, 0.0)
    if messages is None:
        messages = {e: w / model.words_per_message for e, w in words.items()}
    for edge, m in messages.items():
        t += m * model.eta.get(edge, 0.0)
    return t


def time_upper_bound(model: CostModel, flops: float, total_words: float) -> float:
    """Eq. (3): ``T <= F*mu + (1+kappa)*W*pi`` (no overlap)."""
    if flops < 0 or total_words < 0:
        raise BlockingError("flops and words must be non-negative")
    return flops * model.mu + (1.0 + model.kappa) * total_words * model.pi


def gamma(flops: float, total_words: float) -> float:
    """Eq. (2): the compute-to-memory access ratio ``gamma = F / W``."""
    if total_words <= 0:
        raise BlockingError("total words must be positive")
    return flops / total_words


def overlapped_time_bound(
    model: CostModel,
    flops: float,
    total_words: float,
    psi: Callable[[float], float],
) -> float:
    """Eq. (5): ``T_opt <= F*(mu + (1+kappa)*pi*psi(gamma)/gamma)``."""
    g = gamma(flops, total_words)
    factor = psi(g)
    if not 0.0 <= factor <= 1.0:
        raise BlockingError(f"psi(gamma) must be in [0,1], got {factor}")
    return flops * (model.mu + (1.0 + model.kappa) * model.pi * factor / g)


def performance_lower_bound(
    model: CostModel,
    flops: float,
    total_words: float,
    psi: Callable[[float], float],
) -> float:
    """Eq. (6): ``Perf >= F / T_opt`` in flops per time unit.

    Larger gamma always yields a larger bound — the monotonicity that drives
    the whole paper ("maximize the compute-to-memory ratio at every level").
    """
    t = overlapped_time_bound(model, flops, total_words, psi)
    if t <= 0:
        raise BlockingError("non-positive time bound")
    return flops / t


def efficiency_bound(
    model: CostModel,
    g: float,
    psi: Callable[[float], float],
    peak_flops_per_time: float,
) -> float:
    """Peak-relative efficiency implied by eq. (6) for a given gamma.

    ``eff = (1/mu') / peak`` where ``1/mu' = 1/(mu + (1+kappa)*pi*psi(g)/g)``.
    """
    if g <= 0:
        raise BlockingError("gamma must be positive")
    if peak_flops_per_time <= 0:
        raise BlockingError("peak must be positive")
    per_flop = model.mu + (1.0 + model.kappa) * model.pi * psi(g) / g
    if per_flop <= 0:
        raise BlockingError("degenerate cost model")
    return (1.0 / per_flop) / peak_flops_per_time
