"""Roofline analysis — the paper's gamma in the classic roofline frame.

The compute-to-memory ratio gamma of Sec. III is an *arithmetic
intensity* (flops per word). The roofline model states that a kernel with
intensity I on a machine with peak P flops/s and bandwidth B words/s
attains at most ``min(P, I * B)``. This module computes rooflines for the
modeled chip at each memory level and places the paper's GEBP layers on
them, showing quantitatively why the blocked algorithm is compute-bound
(all of its per-level gammas sit far right of every ridge point) while
the unblocked triple loop is hopelessly bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.params import ChipParams
from repro.errors import BlockingError
from repro.model.ratios import gebp_ratio, gess_ratio, register_kernel_ratio


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on a roofline.

    Attributes:
        name: Label.
        intensity: Arithmetic intensity in flops/word (the paper's gamma).
        attainable_flops: min(peak, intensity * bandwidth).
        bound: ``"compute"`` or ``"bandwidth"``.
    """

    name: str
    intensity: float
    attainable_flops: float
    bound: str


@dataclass(frozen=True)
class Roofline:
    """A peak/bandwidth pair for one memory level.

    Attributes:
        level_name: e.g. ``"DRAM"`` or ``"L2->L1"``.
        peak_flops: Compute ceiling (flops/s).
        bandwidth_words: Transfer ceiling (float64 words/s).
        ridge_intensity: Intensity at which the two ceilings meet.
    """

    level_name: str
    peak_flops: float
    bandwidth_words: float

    @property
    def ridge_intensity(self) -> float:
        return self.peak_flops / self.bandwidth_words

    def attainable(self, intensity: float) -> float:
        """min(P, I*B) for a kernel of the given intensity."""
        if intensity <= 0:
            raise BlockingError("intensity must be positive")
        return min(self.peak_flops, intensity * self.bandwidth_words)

    def place(self, name: str, intensity: float) -> RooflinePoint:
        att = self.attainable(intensity)
        bound = "compute" if att >= self.peak_flops else "bandwidth"
        return RooflinePoint(
            name=name, intensity=intensity, attainable_flops=att,
            bound=bound,
        )


def dram_roofline(chip: ChipParams, threads: int = 1) -> Roofline:
    """The DRAM roofline for ``threads`` cores of ``chip``."""
    peak = chip.peak_flops_for(threads)
    bytes_per_s = (
        chip.dram.bandwidth_bytes_per_cycle
        * chip.dram.bridges
        * chip.core.frequency_hz
    )
    return Roofline(
        level_name="DRAM", peak_flops=peak, bandwidth_words=bytes_per_s / 8
    )


def l1_roofline(chip: ChipParams) -> Roofline:
    """The L1-to-register roofline of one core: one 16-byte load per
    cycle against the FMA peak — the ceiling the register kernel fights."""
    peak = chip.core.peak_flops
    words_per_s = (16 / 8) * chip.core.frequency_hz * chip.core.load_ports
    return Roofline(
        level_name="L1->R", peak_flops=peak, bandwidth_words=words_per_s
    )


def gemm_roofline_study(
    chip: ChipParams,
    mr: int = 8,
    nr: int = 6,
    kc: int = 512,
    mc: int = 56,
    threads: int = 1,
) -> Dict[str, List[RooflinePoint]]:
    """Place the GEBP layers and the naive algorithm on the chip's
    rooflines.

    The naive triple loop re-reads a row of A and a column of B per
    output element: intensity 2*k flops / (2*k + 2) words ~ 1 flop/word.
    Whole-problem DGEMM intensity against DRAM is ~n/6 words and is
    effectively unbounded — blocking's job is making the *inner levels*
    compute-bound, which the gammas show.
    """
    l1 = l1_roofline(chip)
    dram = dram_roofline(chip, threads)
    return {
        "L1->R": [
            l1.place("naive triple loop", 1.0),
            l1.place(f"register kernel {mr}x{nr}", register_kernel_ratio(mr, nr)),
            l1.place(f"GESS (kc={kc})", gess_ratio(mr, nr, kc)),
            l1.place(f"GEBP (mc={mc})", gebp_ratio(mr, nr, kc, mc)),
        ],
        "DRAM": [
            dram.place("naive triple loop", 1.0),
            # Blocked DGEMM touches each A element n/nc... conservatively,
            # per rank-kc pass: 2*m*nc*kc flops vs (m*kc + kc*nc + 2*m*nc)
            # words — quote the paper's blocking.
            dram.place(
                "blocked DGEMM (per GEPP)",
                2 * mc * 1920 * kc / (mc * kc + kc * 1920 + 2 * mc * 1920),
            ),
        ],
    }
