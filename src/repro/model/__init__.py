"""The paper's Sec. III performance model and layer gamma ratios."""

from repro.model.perf_model import (
    CostModel,
    efficiency_bound,
    execution_time,
    gamma,
    overlapped_time_bound,
    performance_lower_bound,
    time_upper_bound,
)
from repro.model.roofline import (
    Roofline,
    RooflinePoint,
    dram_roofline,
    gemm_roofline_study,
    l1_roofline,
)
from repro.model.ratios import (
    RatioBreakdown,
    gebp_ratio,
    gess_ratio,
    register_kernel_flops_per_update,
    register_kernel_ratio,
    register_kernel_words_per_update,
)

__all__ = [
    "Roofline",
    "RooflinePoint",
    "dram_roofline",
    "l1_roofline",
    "gemm_roofline_study",
    "CostModel",
    "execution_time",
    "time_upper_bound",
    "gamma",
    "overlapped_time_bound",
    "performance_lower_bound",
    "efficiency_bound",
    "register_kernel_ratio",
    "gess_ratio",
    "gebp_ratio",
    "RatioBreakdown",
    "register_kernel_words_per_update",
    "register_kernel_flops_per_update",
]
