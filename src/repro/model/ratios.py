"""Compute-to-memory access ratios (paper Sec. III and IV).

These are the closed-form gamma expressions the paper derives for each layer
of GEBP:

- eq. (7)/(8): the register kernel — ``gamma = 2 / (1/nr + 1/mr)``;
- eq. (14): GESS/GEBS — ``gamma = 2 / (2/nr + 1/mr + 2/kc)``;
- eq. (16): GEBP — ``gamma = 2 / (2/nr + 1/mr + 2/kc + 2/mc)``.

All are flops per word moved, with the word counts the paper attributes to
each layer (A reloaded per nr-column, B resident, C updated once per kc).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BlockingError


def _require_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise BlockingError(f"{name} must be positive, got {value}")


def register_kernel_ratio(mr: int, nr: int) -> float:
    """Eq. (8): compute-to-memory ratio of the register kernel.

    Per rank-1 update, ``2*mr*nr`` flops are performed while ``mr + nr``
    words move from the L1 cache to registers.
    """
    _require_positive(mr=mr, nr=nr)
    return 2.0 / (1.0 / nr + 1.0 / mr)


def gess_ratio(mr: int, nr: int, kc: int) -> float:
    """Eq. (14): compute-to-memory ratio of GESS (and GEBS).

    Adds the L2->L1 traffic of the A sliver and the C update amortized over
    ``kc`` rank-1 updates.
    """
    _require_positive(mr=mr, nr=nr, kc=kc)
    return 2.0 / (2.0 / nr + 1.0 / mr + 2.0 / kc)


def gebp_ratio(mr: int, nr: int, kc: int, mc: int) -> float:
    """Eq. (16): compute-to-memory ratio of the whole GEBP block-panel
    multiply, including the L3->L2 movement of the B panel amortized over
    ``mc`` rows."""
    _require_positive(mr=mr, nr=nr, kc=kc, mc=mc)
    return 2.0 / (2.0 / nr + 1.0 / mr + 2.0 / kc + 2.0 / mc)


@dataclass(frozen=True)
class RatioBreakdown:
    """All three layer ratios for one blocking configuration."""

    mr: int
    nr: int
    kc: int
    mc: int
    register_kernel: float
    gess: float
    gebp: float

    @staticmethod
    def for_blocking(mr: int, nr: int, kc: int, mc: int) -> "RatioBreakdown":
        return RatioBreakdown(
            mr=mr,
            nr=nr,
            kc=kc,
            mc=mc,
            register_kernel=register_kernel_ratio(mr, nr),
            gess=gess_ratio(mr, nr, kc),
            gebp=gebp_ratio(mr, nr, kc, mc),
        )


def register_kernel_words_per_update(mr: int, nr: int) -> int:
    """Words moved L1->R per rank-1 update: an mr-column of A plus an
    nr-row of B (eq. (7) denominator)."""
    _require_positive(mr=mr, nr=nr)
    return mr + nr


def register_kernel_flops_per_update(mr: int, nr: int) -> int:
    """Flops per rank-1 update: 2*mr*nr (eq. (7) numerator)."""
    _require_positive(mr=mr, nr=nr)
    return 2 * mr * nr
