"""Persistent worker pool for the parallel DGEMM engine.

The paper's multi-threaded DGEMM (Sec. IV-C) runs on a team of cores that
lives for the whole program: each ``(jj, kk)`` panel iteration dispatches
one slice of layer-3 work per core and joins at a barrier before the next
panel. Spawning OS threads per iteration — the seed implementation's
behaviour — costs orders of magnitude more than the barrier itself and
drowns the very scaling the paper measures.

:class:`WorkerPool` reproduces the real runtime structure: ``threads``
daemon workers are created once and reused across every panel iteration
and across ``parallel_dgemm`` calls. Each :meth:`WorkerPool.run` call is
one barrier-delimited step — task ``i`` executes on worker ``i``, the
caller blocks until every task finished, and worker exceptions are
re-raised in the caller. A process-wide shared pool is available through
:func:`get_shared_pool` so library entry points (``parallel_dgemm``,
``blas.gemm``, the CLI) amortize the thread creation over the process
lifetime.

:class:`PoolStats` is the engine's observability hook: per-logical-thread
pack/GEBP wall-clock counters plus the number of barrier steps, so a user
can see where each worker's time went (the per-core breakdown of Fig. 14
measured, not simulated).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import GemmError

Task = Callable[[], None]


@dataclass
class ThreadCounters:
    """Wall-clock/work counters of one logical thread."""

    pack_a_seconds: float = 0.0
    pack_b_seconds: float = 0.0
    gebp_seconds: float = 0.0
    pack_a_calls: int = 0
    pack_b_calls: int = 0
    gebp_calls: int = 0

    @property
    def busy_seconds(self) -> float:
        return self.pack_a_seconds + self.pack_b_seconds + self.gebp_seconds

    def reset(self) -> None:
        """Zero every counter in place (object identity is preserved)."""
        self.pack_a_seconds = 0.0
        self.pack_b_seconds = 0.0
        self.gebp_seconds = 0.0
        self.pack_a_calls = 0
        self.pack_b_calls = 0
        self.gebp_calls = 0

    def copy(self) -> "ThreadCounters":
        return ThreadCounters(
            pack_a_seconds=self.pack_a_seconds,
            pack_b_seconds=self.pack_b_seconds,
            gebp_seconds=self.gebp_seconds,
            pack_a_calls=self.pack_a_calls,
            pack_b_calls=self.pack_b_calls,
            gebp_calls=self.gebp_calls,
        )


@dataclass
class PoolStats:
    """Per-thread counters collected by the parallel engine.

    Only logical threads that actually received work appear in
    ``counters`` — surplus workers (``threads > ceil(m/mc)``) are never
    dispatched and therefore never show up, which is how benchmarks tell
    active cores from idle ones.

    Lifecycle contract: :meth:`reset` zeroes every
    :class:`ThreadCounters` *in place* and keeps it registered, so a
    reference obtained earlier from :meth:`thread` stays live and
    observes the post-reset counts instead of going stale. Entry
    creation, :meth:`reset` and the :meth:`snapshot` reads are
    lock-serialized, so :meth:`summary_rows` is stable under concurrent
    resets from other threads.
    """

    counters: Dict[int, ThreadCounters] = field(default_factory=dict)
    steps: int = 0
    calls: int = 0

    def __post_init__(self) -> None:
        # Not a dataclass field: excluded from __eq__/asdict on purpose.
        self._lock = threading.Lock()

    def thread(self, t: int) -> ThreadCounters:
        counters = self.counters.get(t)
        if counters is None:
            with self._lock:
                counters = self.counters.get(t)
                if counters is None:
                    counters = self.counters[t] = ThreadCounters()
        return counters

    @property
    def active_threads(self) -> List[int]:
        """Logical threads that performed any work, in id order."""
        return sorted(
            t for t, c in self.snapshot().items()
            if c.pack_a_calls or c.pack_b_calls or c.gebp_calls
        )

    def reset(self) -> None:
        """Zero all counters; existing :class:`ThreadCounters` references
        remain valid (see the class docstring for the contract)."""
        with self._lock:
            for counters in self.counters.values():
                counters.reset()
            self.steps = 0
            self.calls = 0

    def snapshot(self) -> Dict[int, ThreadCounters]:
        """A consistent point-in-time copy of the per-thread counters."""
        with self._lock:
            return {t: c.copy() for t, c in self.counters.items()}

    def summary_rows(self) -> List[List[object]]:
        """Rows for :func:`repro.analysis.report.format_table`.

        Built from a :meth:`snapshot`, so the rows are internally
        consistent even when another thread resets concurrently.
        """
        return [
            [
                t,
                c.pack_a_calls,
                c.pack_b_calls,
                c.gebp_calls,
                c.pack_a_seconds * 1e3,
                c.pack_b_seconds * 1e3,
                c.gebp_seconds * 1e3,
            ]
            for t, c in sorted(self.snapshot().items())
        ]


class WorkerPool:
    """A fixed team of daemon worker threads with barrier-step dispatch.

    One :meth:`run` call is one step: ``fns[i]`` executes on worker ``i``
    (``None`` entries leave that worker idle), and the call returns only
    after every submitted task completed — the per-``(jj, kk)`` barrier
    of the parallel loop nest. The pool is reused across steps and across
    DGEMM calls; :meth:`close` (or context-manager exit) shuts it down.
    """

    def __init__(self, threads: int, name: str = "gemm-worker"):
        if threads < 1:
            raise GemmError(f"pool needs at least 1 worker, got {threads}")
        self.threads = threads
        self._cond = threading.Condition()
        self._dispatch_lock = threading.Lock()
        self._generation = 0
        self._tasks: List[Optional[Task]] = [None] * threads
        self._pending = 0
        self._errors: List[BaseException] = []
        self._closed = False
        self.steps_dispatched = 0
        self._workers = []
        for t in range(threads):
            w = threading.Thread(
                target=self._worker_loop, args=(t,),
                name=f"{name}-{t}", daemon=True,
            )
            w.start()
            self._workers.append(w)

    @property
    def closed(self) -> bool:
        return self._closed

    def _worker_loop(self, t: int) -> None:
        seen = 0
        while True:
            with self._cond:
                while not self._closed and self._generation == seen:
                    self._cond.wait()
                if self._closed:
                    return
                seen = self._generation
                fn = self._tasks[t]
            if fn is None:
                continue
            try:
                fn()
            except BaseException as exc:  # propagate to the dispatcher
                with self._cond:
                    self._errors.append(exc)
                    self._pending -= 1
                    if self._pending == 0:
                        self._cond.notify_all()
            else:
                with self._cond:
                    self._pending -= 1
                    if self._pending == 0:
                        self._cond.notify_all()

    def run(self, fns: Sequence[Optional[Task]]) -> None:
        """Execute one barrier step: ``fns[i]`` on worker ``i``.

        Blocks until every non-``None`` task finished. The first worker
        exception (if any) is re-raised here after the barrier.
        """
        if self._closed:
            raise GemmError("worker pool is closed")
        if len(fns) > self.threads:
            raise GemmError(
                f"{len(fns)} tasks submitted to a {self.threads}-worker pool"
            )
        tasks: List[Optional[Task]] = list(fns)
        tasks.extend([None] * (self.threads - len(tasks)))
        n_active = sum(1 for fn in tasks if fn is not None)
        if n_active == 0:
            return
        with self._dispatch_lock:
            with self._cond:
                self._tasks = tasks
                self._errors = []
                self._pending = n_active
                self._generation += 1
                self.steps_dispatched += 1
                self._cond.notify_all()
                while self._pending > 0:
                    self._cond.wait()
                errors = list(self._errors)
        if errors:
            raise errors[0]

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for w in self._workers:
            w.join(timeout=1.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"WorkerPool(threads={self.threads}, {state}, "
            f"steps={self.steps_dispatched})"
        )


_shared_pool: Optional[WorkerPool] = None
_shared_pool_lock = threading.Lock()


def get_shared_pool(threads: int) -> WorkerPool:
    """The process-wide pool, grown (never shrunk) to ``threads`` workers.

    Created on first use and reused by every subsequent caller, so the
    thread-creation cost is paid once per process rather than once per
    panel iteration.
    """
    global _shared_pool
    with _shared_pool_lock:
        if (
            _shared_pool is None
            or _shared_pool.closed
            or _shared_pool.threads < threads
        ):
            if _shared_pool is not None and not _shared_pool.closed:
                _shared_pool.close()
            _shared_pool = WorkerPool(threads)
        return _shared_pool


def close_shared_pool() -> None:
    """Tear down the process-wide pool (tests / interpreter shutdown)."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is not None:
            _shared_pool.close()
            _shared_pool = None
