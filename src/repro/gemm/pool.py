"""Persistent worker pool for the parallel DGEMM engine and job serving.

The paper's multi-threaded DGEMM (Sec. IV-C) runs on a team of cores that
lives for the whole program: each ``(jj, kk)`` panel iteration dispatches
one slice of layer-3 work per core and joins at a barrier before the next
panel. Spawning OS threads per iteration — the seed implementation's
behaviour — costs orders of magnitude more than the barrier itself and
drowns the very scaling the paper measures.

:class:`WorkerPool` reproduces the real runtime structure: ``threads``
daemon workers are created once and reused across every panel iteration
and across ``parallel_dgemm`` calls. Each :meth:`WorkerPool.run` call is
one barrier-delimited step — task ``i`` executes on worker ``i``, the
caller blocks until every task finished, and worker exceptions are
re-raised in the caller. A process-wide shared pool is available through
:func:`get_shared_pool` so library entry points (``parallel_dgemm``,
``blas.gemm``, the CLI) amortize the thread creation over the process
lifetime.

Beyond barrier steps, the pool is a general job executor: :meth:`submit`
hands an arbitrary callable to whichever worker frees up first and
returns a :class:`Job` handle; :meth:`run_jobs` is the submit-all /
collect-in-order convenience. The query-serving layer
(:mod:`repro.serve`) dispatches cache misses this way, so simulate,
cachesim and timed queries run concurrently on the same threads that
serve GEBP barrier steps. Barrier steps keep priority: a worker always
prefers its pending step task over the shared job queue.

The shared pool grows **in place** (:meth:`grow`): existing holders keep
a valid reference while new workers are added, so a thread mid-``run()``
can never observe its pool being closed underneath it.

:class:`PoolStats` is the engine's observability hook: per-logical-thread
pack/GEBP wall-clock counters plus the number of barrier steps, so a user
can see where each worker's time went (the per-core breakdown of Fig. 14
measured, not simulated).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import GemmError

Task = Callable[[], None]


@dataclass
class ThreadCounters:
    """Wall-clock/work counters of one logical thread."""

    pack_a_seconds: float = 0.0
    pack_b_seconds: float = 0.0
    gebp_seconds: float = 0.0
    pack_a_calls: int = 0
    pack_b_calls: int = 0
    gebp_calls: int = 0

    @property
    def busy_seconds(self) -> float:
        return self.pack_a_seconds + self.pack_b_seconds + self.gebp_seconds

    def reset(self) -> None:
        """Zero every counter in place (object identity is preserved)."""
        self.pack_a_seconds = 0.0
        self.pack_b_seconds = 0.0
        self.gebp_seconds = 0.0
        self.pack_a_calls = 0
        self.pack_b_calls = 0
        self.gebp_calls = 0

    def copy(self) -> "ThreadCounters":
        return ThreadCounters(
            pack_a_seconds=self.pack_a_seconds,
            pack_b_seconds=self.pack_b_seconds,
            gebp_seconds=self.gebp_seconds,
            pack_a_calls=self.pack_a_calls,
            pack_b_calls=self.pack_b_calls,
            gebp_calls=self.gebp_calls,
        )


@dataclass
class PoolStats:
    """Per-thread counters collected by the parallel engine.

    Only logical threads that actually received work appear in
    ``counters`` — surplus workers (``threads > ceil(m/mc)``) are never
    dispatched and therefore never show up, which is how benchmarks tell
    active cores from idle ones.

    Lifecycle contract: :meth:`reset` zeroes every
    :class:`ThreadCounters` *in place* and keeps it registered, so a
    reference obtained earlier from :meth:`thread` stays live and
    observes the post-reset counts instead of going stale. Entry
    creation, :meth:`reset` and the :meth:`snapshot` reads are
    lock-serialized, so :meth:`summary_rows` is stable under concurrent
    resets from other threads.
    """

    counters: Dict[int, ThreadCounters] = field(default_factory=dict)
    steps: int = 0
    calls: int = 0
    #: Core-class name per logical thread (asymmetric chips only).
    thread_class: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Not a dataclass field: excluded from __eq__/asdict on purpose.
        self._lock = threading.Lock()

    def thread(self, t: int) -> ThreadCounters:
        counters = self.counters.get(t)
        if counters is None:
            with self._lock:
                counters = self.counters.get(t)
                if counters is None:
                    counters = self.counters[t] = ThreadCounters()
        return counters

    @property
    def active_threads(self) -> List[int]:
        """Logical threads that performed any work, in id order."""
        return sorted(
            t for t, c in self.snapshot().items()
            if c.pack_a_calls or c.pack_b_calls or c.gebp_calls
        )

    def assign_classes(self, mapping: Dict[int, str]) -> None:
        """Record the core class of each logical thread (lock-serialized)."""
        with self._lock:
            self.thread_class.update(mapping)

    def class_busy_seconds(self) -> Dict[str, float]:
        """Busy seconds per core class; unclassified threads → ``"all"``."""
        totals: Dict[str, float] = {}
        for t, c in self.snapshot().items():
            name = self.thread_class.get(t, "all")
            totals[name] = totals.get(name, 0.0) + c.busy_seconds
        return totals

    def record_call(self) -> None:
        """Count one engine call, serialized with resets and snapshots.

        The parallel engine calls this instead of bumping ``calls``
        directly: a bare ``stats.calls += 1`` is a read-modify-write that
        loses increments when concurrent callers share one
        :class:`PoolStats`.
        """
        with self._lock:
            self.calls += 1

    def reset(self) -> None:
        """Zero all counters; existing :class:`ThreadCounters` references
        remain valid (see the class docstring for the contract)."""
        with self._lock:
            for counters in self.counters.values():
                counters.reset()
            self.steps = 0
            self.calls = 0

    def snapshot(self) -> Dict[int, ThreadCounters]:
        """A consistent point-in-time copy of the per-thread counters."""
        with self._lock:
            return {t: c.copy() for t, c in self.counters.items()}

    def summary_rows(self) -> List[List[object]]:
        """Rows for :func:`repro.analysis.report.format_table`.

        Built from a :meth:`snapshot`, so the rows are internally
        consistent even when another thread resets concurrently.
        """
        return [
            [
                t,
                c.pack_a_calls,
                c.pack_b_calls,
                c.gebp_calls,
                c.pack_a_seconds * 1e3,
                c.pack_b_seconds * 1e3,
                c.gebp_seconds * 1e3,
            ]
            for t, c in sorted(self.snapshot().items())
        ]


class Job:
    """Handle to one callable submitted via :meth:`WorkerPool.submit`.

    A minimal future: :meth:`result` blocks until a worker finished the
    job and returns its value (or re-raises its exception in the
    caller). Handles are single-assignment — a job runs exactly once.
    """

    __slots__ = ("_cond", "_done", "_result", "_exc")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._done = False
        self._result: Any = None
        self._exc: Optional[BaseException] = None

    def _finish(
        self, result: Any, exc: Optional[BaseException]
    ) -> None:
        with self._cond:
            self._result = result
            self._exc = exc
            self._done = True
            self._cond.notify_all()

    def done(self) -> bool:
        with self._cond:
            return self._done

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's return value; blocks until it finished.

        Re-raises the job's exception if it failed; raises
        :class:`GemmError` on timeout.
        """
        with self._cond:
            if not self._cond.wait_for(lambda: self._done, timeout):
                raise GemmError(
                    f"timed out after {timeout}s waiting for job"
                )
            if self._exc is not None:
                raise self._exc
            return self._result


class WorkerPool:
    """A team of daemon worker threads: barrier steps and general jobs.

    One :meth:`run` call is one step: ``fns[i]`` executes on worker ``i``
    (``None`` entries leave that worker idle), and the call returns only
    after every submitted task completed — the per-``(jj, kk)`` barrier
    of the parallel loop nest. :meth:`submit` instead enqueues one
    callable for whichever worker frees up first and returns a
    :class:`Job` handle — the dispatch mode of the query-serving layer.
    The pool is reused across steps, jobs and DGEMM calls; :meth:`grow`
    adds workers in place, and :meth:`close` (or context-manager exit)
    shuts it down.
    """

    def __init__(self, threads: int, name: str = "gemm-worker"):
        if threads < 1:
            raise GemmError(f"pool needs at least 1 worker, got {threads}")
        self.threads = threads
        self._name = name
        self._cond = threading.Condition()
        self._dispatch_lock = threading.Lock()
        self._generation = 0
        self._tasks: List[Optional[Task]] = [None] * threads
        self._pending = 0
        self._errors: List[BaseException] = []
        self._jobs: Deque[Tuple[Job, Callable[[], Any]]] = deque()
        self._closed = False
        self.steps_dispatched = 0
        self.jobs_dispatched = 0
        self._workers: List[threading.Thread] = []
        with self._cond:
            self._spawn_workers(0, threads, start_generation=0)

    def _spawn_workers(
        self, start: int, stop: int, start_generation: int
    ) -> None:
        """Start workers ``start..stop``; caller holds ``_cond``."""
        for t in range(start, stop):
            w = threading.Thread(
                target=self._worker_loop, args=(t, start_generation),
                name=f"{self._name}-{t}", daemon=True,
            )
            w.start()
            self._workers.append(w)

    @property
    def closed(self) -> bool:
        return self._closed

    def _worker_loop(self, t: int, seen: int) -> None:
        """Worker ``t``'s service loop.

        ``seen`` starts at the generation current when the worker was
        created, so workers added by :meth:`grow` never pick up the task
        slot of a step dispatched before they existed.
        """
        while True:
            job: Optional[Tuple[Job, Callable[[], Any]]] = None
            fn: Optional[Task] = None
            with self._cond:
                while (
                    not self._closed
                    and self._generation == seen
                    and not self._jobs
                ):
                    self._cond.wait()
                if self._closed:
                    return
                if self._generation != seen:
                    # Barrier steps outrank queued jobs: the DGEMM inner
                    # loop's latency budget is tighter than any query's.
                    seen = self._generation
                    fn = self._tasks[t]
                else:
                    job = self._jobs.popleft()
            if job is not None:
                handle, work = job
                try:
                    value = work()
                except BaseException as exc:
                    handle._finish(None, exc)
                else:
                    handle._finish(value, None)
                continue
            if fn is None:
                continue
            try:
                fn()
            except BaseException as exc:  # propagate to the dispatcher
                with self._cond:
                    self._errors.append(exc)
                    self._pending -= 1
                    if self._pending == 0:
                        self._cond.notify_all()
            else:
                with self._cond:
                    self._pending -= 1
                    if self._pending == 0:
                        self._cond.notify_all()

    def run(self, fns: Sequence[Optional[Task]]) -> None:
        """Execute one barrier step: ``fns[i]`` on worker ``i``.

        Blocks until every non-``None`` task finished. The first worker
        exception (if any) is re-raised here after the barrier.
        """
        if self._closed:
            raise GemmError("worker pool is closed")
        if len(fns) > self.threads:
            raise GemmError(
                f"{len(fns)} tasks submitted to a {self.threads}-worker pool"
            )
        submitted: List[Optional[Task]] = list(fns)
        n_active = sum(1 for fn in submitted if fn is not None)
        if n_active == 0:
            return
        with self._dispatch_lock:
            with self._cond:
                if self._closed:
                    raise GemmError("worker pool is closed")
                # Pad under the lock: self.threads can only have grown
                # since the length check above.
                tasks = submitted + [None] * (self.threads - len(submitted))
                self._tasks = tasks
                self._errors = []
                self._pending = n_active
                self._generation += 1
                self.steps_dispatched += 1
                self._cond.notify_all()
                while self._pending > 0:
                    self._cond.wait()
                errors = list(self._errors)
        if errors:
            raise errors[0]

    # -- general job dispatch (the serving layer's entry point) --------------

    def submit(self, fn: Callable[[], Any]) -> Job:
        """Enqueue ``fn`` for the first free worker; returns its handle.

        Jobs interleave with barrier steps on the same workers; a worker
        between steps drains the job queue in FIFO order.
        """
        if fn is None:
            raise GemmError("cannot submit None as a job")
        handle = Job()
        with self._cond:
            if self._closed:
                raise GemmError("worker pool is closed")
            self._jobs.append((handle, fn))
            self.jobs_dispatched += 1
            self._cond.notify_all()
        return handle

    def run_jobs(self, fns: Sequence[Callable[[], Any]]) -> List[Any]:
        """Submit every callable and collect results in submission order.

        The first job exception (in submission order) is re-raised after
        every job finished — mirroring :meth:`run`'s barrier contract.
        """
        handles = [self.submit(fn) for fn in fns]
        results: List[Any] = []
        first_exc: Optional[BaseException] = None
        for handle in handles:
            try:
                results.append(handle.result())
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
                results.append(None)
        if first_exc is not None:
            raise first_exc
        return results

    def grow(self, threads: int) -> None:
        """Add workers so the pool serves at least ``threads`` (in place).

        Safe for concurrent holders: growth quiesces behind the dispatch
        lock (waiting out any in-flight barrier step) and never closes or
        replaces anything, so a reference obtained earlier stays valid
        and simply sees more workers. Shrinking is not supported; a
        smaller ``threads`` is a no-op.
        """
        if threads <= self.threads:
            return
        with self._dispatch_lock:
            with self._cond:
                if self._closed:
                    raise GemmError("cannot grow a closed worker pool")
                if threads <= self.threads:
                    return
                old = self.threads
                self._tasks = self._tasks + [None] * (threads - old)
                self._spawn_workers(
                    old, threads, start_generation=self._generation
                )
                self.threads = threads

    def close(self, timeout: float = 1.0) -> None:
        """Shut the workers down (idempotent).

        Jobs still queued (never started) fail their handles with
        :class:`GemmError`. A worker that does not join within
        ``timeout`` seconds — e.g. wedged inside a task — is detected
        and reported by name in a raised :class:`GemmError`; the pool is
        left closed (unusable) on that path too.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            orphaned = list(self._jobs)
            self._jobs.clear()
            self._cond.notify_all()
        for handle, _fn in orphaned:
            handle._finish(
                None, GemmError("worker pool closed before job ran")
            )
        stuck = []
        for w in self._workers:
            w.join(timeout=timeout)
            if w.is_alive():
                stuck.append(w.name)
        if stuck:
            raise GemmError(
                f"worker(s) failed to join within {timeout:.1f}s: "
                + ", ".join(stuck)
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"WorkerPool(threads={self.threads}, {state}, "
            f"steps={self.steps_dispatched}, jobs={self.jobs_dispatched})"
        )


_shared_pool: Optional[WorkerPool] = None
_shared_pool_lock = threading.Lock()


def get_shared_pool(threads: int) -> WorkerPool:
    """The process-wide pool, grown (never shrunk) to ``threads`` workers.

    Created on first use and reused by every subsequent caller, so the
    thread-creation cost is paid once per process rather than once per
    panel iteration. Growth happens **in place** via
    :meth:`WorkerPool.grow`: the pool object identity is stable across
    grows, so a holder that obtained the pool earlier — possibly mid-
    ``run()`` on another thread — is never handed a closed pool.
    """
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None or _shared_pool.closed:
            _shared_pool = WorkerPool(threads)
        elif _shared_pool.threads < threads:
            _shared_pool.grow(threads)
        return _shared_pool


def close_shared_pool() -> None:
    """Tear down the process-wide pool (tests / interpreter shutdown)."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is not None:
            _shared_pool.close()
            _shared_pool = None
