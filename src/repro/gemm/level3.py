"""Further Level-3 BLAS routines layered on the blocked GEMM.

The GotoBLAS papers the paper builds on ([5], [6]) show that all of
Level-3 BLAS reduces to GEMM plus small amounts of specialized work. This
module implements the canonical cases the blocked LU and friends need:

- ``trsm``: triangular solve with multiple right-hand sides, blocked so
  that the bulk of the flops run through :func:`repro.gemm.driver.dgemm`
  rank updates;
- ``symm``: symmetric matrix multiply, reduced to GEMM directly;
- ``trmm``: triangular matrix multiply, blocked like ``trsm``.

All follow BLAS calling conventions for the supported flag subset and are
validated against dense numpy references.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blocking.cache_blocking import CacheBlocking
from repro.errors import GemmError
from repro.gemm.driver import dgemm


def _check_flag(name: str, value: str, allowed: str) -> str:
    v = value.upper()
    if v not in allowed:
        raise GemmError(
            f"{name} must be one of {sorted(allowed)}, got {value!r}"
        )
    return v


def _unblocked_trsm_lower(
    a: "np.ndarray", b: "np.ndarray", unit: bool
) -> None:
    """Solve L X = B in place for lower-triangular L (forward subst.)."""
    n = a.shape[0]
    for i in range(n):
        if i:
            b[i, :] -= a[i, :i] @ b[:i, :]
        if not unit:
            b[i, :] /= a[i, i]


def _unblocked_trsm_upper(
    a: "np.ndarray", b: "np.ndarray", unit: bool
) -> None:
    """Solve U X = B in place for upper-triangular U (back subst.)."""
    n = a.shape[0]
    for i in range(n - 1, -1, -1):
        if i < n - 1:
            b[i, :] -= a[i, i + 1 :] @ b[i + 1 :, :]
        if not unit:
            b[i, :] /= a[i, i]


def trsm(
    side: str,
    uplo: str,
    diag: str,
    alpha: float,
    a: "np.ndarray",
    b: "np.ndarray",
    nb: int = 64,
    blocking: Optional[CacheBlocking] = None,
) -> "np.ndarray":
    """Blocked triangular solve: ``X`` with ``op(A) X = alpha B``.

    Supported subset: ``side='L'`` (left solves), ``uplo`` in
    ``{'L','U'}``, ``diag`` in ``{'U','N'}`` (unit / non-unit diagonal),
    no transpose. The off-diagonal updates — all but O(n*nb) of the
    flops — are rank-nb DGEMM calls.

    Args:
        side: ``'L'`` only (solve from the left).
        uplo: Which triangle of A holds the operator.
        diag: ``'U'`` for an implicit unit diagonal.
        alpha: Scalar applied to B.
        a: ``n x n`` triangular matrix (full storage, other triangle
            ignored).
        b: ``n x m`` right-hand sides (not modified).
        nb: Diagonal block size.
        blocking: GEMM blocking for the updates.

    Returns:
        The solution X.
    """
    side = _check_flag("side", side, "L")
    uplo = _check_flag("uplo", uplo, "LU")
    diag = _check_flag("diag", diag, "UN")
    a = np.asarray(a, dtype=np.float64)
    n, n2 = a.shape
    if n != n2:
        raise GemmError("A must be square")
    x = np.array(b, dtype=np.float64, order="F")
    if x.ndim != 2 or x.shape[0] != n:
        raise GemmError("B must be n x m")
    if nb < 1:
        raise GemmError("nb must be >= 1")
    if alpha != 1.0:
        x *= alpha
    unit = diag == "U"

    if uplo == "L":
        for j in range(0, n, nb):
            jb = min(nb, n - j)
            _unblocked_trsm_lower(a[j : j + jb, j : j + jb],
                                  x[j : j + jb, :], unit)
            if j + jb < n:
                # B2 -= A21 @ X1: the GEMM bulk.
                dgemm(
                    np.asfortranarray(a[j + jb :, j : j + jb]),
                    np.asfortranarray(x[j : j + jb, :]),
                    x[j + jb :, :],
                    alpha=-1.0,
                    beta=1.0,
                    blocking=blocking,
                )
    else:
        for j in range(n - (n % nb or nb), -1, -nb):
            jb = min(nb, n - j)
            _unblocked_trsm_upper(a[j : j + jb, j : j + jb],
                                  x[j : j + jb, :], unit)
            if j > 0:
                dgemm(
                    np.asfortranarray(a[:j, j : j + jb]),
                    np.asfortranarray(x[j : j + jb, :]),
                    x[:j, :],
                    alpha=-1.0,
                    beta=1.0,
                    blocking=blocking,
                )
    return x


def symm(
    side: str,
    uplo: str,
    alpha: float,
    a: "np.ndarray",
    b: "np.ndarray",
    beta: float,
    c: "np.ndarray",
    blocking: Optional[CacheBlocking] = None,
) -> "np.ndarray":
    """Symmetric multiply: ``C := alpha*A@B + beta*C`` (side='L') or
    ``alpha*B@A + beta*C`` (side='R'), with only the ``uplo`` triangle of
    A referenced — the other triangle is reconstructed by symmetry and
    the product reduces to one GEMM."""
    side = _check_flag("side", side, "LR")
    uplo = _check_flag("uplo", uplo, "LU")
    a = np.asarray(a, dtype=np.float64)
    if a.shape[0] != a.shape[1]:
        raise GemmError("A must be square")
    tri = np.tril(a) if uplo == "L" else np.triu(a)
    full = tri + tri.T - np.diag(np.diag(a))
    full = np.asfortranarray(full)
    b = np.asfortranarray(np.asarray(b, dtype=np.float64))
    if side == "L":
        return dgemm(full, b, c, alpha=alpha, beta=beta, blocking=blocking)
    return dgemm(b, full, c, alpha=alpha, beta=beta, blocking=blocking)


def trmm(
    side: str,
    uplo: str,
    diag: str,
    alpha: float,
    a: "np.ndarray",
    b: "np.ndarray",
    nb: int = 64,
    blocking: Optional[CacheBlocking] = None,
) -> "np.ndarray":
    """Blocked triangular multiply: ``alpha * op(A) @ B`` with triangular
    A (side='L', no transpose). Off-diagonal contributions run through
    DGEMM."""
    side = _check_flag("side", side, "L")
    uplo = _check_flag("uplo", uplo, "LU")
    diag = _check_flag("diag", diag, "UN")
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n):
        raise GemmError("A must be square")
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != n:
        raise GemmError("B must be n x m")
    out = np.zeros_like(b, order="F")
    unit = diag == "U"

    for j in range(0, n, nb):
        jb = min(nb, n - j)
        # Diagonal block (triangular) times its B rows — small and direct.
        diag_block = a[j : j + jb, j : j + jb]
        tri = np.tril(diag_block) if uplo == "L" else np.triu(diag_block)
        if unit:
            tri = tri - np.diag(np.diag(tri)) + np.eye(jb)
        out[j : j + jb, :] += tri @ b[j : j + jb, :]
        # Off-diagonal panel times B — the GEMM bulk.
        if uplo == "L" and j > 0:
            dgemm(
                np.asfortranarray(a[j : j + jb, :j]),
                np.asfortranarray(b[:j, :]),
                out[j : j + jb, :],
                alpha=1.0,
                beta=1.0,
                blocking=blocking,
            )
        elif uplo == "U" and j + jb < n:
            dgemm(
                np.asfortranarray(a[j : j + jb, j + jb :]),
                np.asfortranarray(b[j + jb :, :]),
                out[j : j + jb, :],
                alpha=1.0,
                beta=1.0,
                blocking=blocking,
            )
    if alpha != 1.0:
        out *= alpha
    return out
