"""Single-precision GEMM (SGEMM) — a natural extension of the paper.

The paper targets DGEMM, but everything in its method is parameterized by
the element size: with float32, each 128-bit NEON register holds **four**
lanes, so

- the lane constraint (11) becomes "multiples of 4";
- the register budget (9) admits a larger tile — the analytic optimum on
  the A64 register file is **12x8** with gamma = 9.6 (vs 8x6 / 6.857 for
  DGEMM), derivable from the same
  :class:`~repro.blocking.RegisterBlockingProblem` with
  ``element_size=4``;
- the cache constraints (15)/(17)/(18) yield proportionally deeper kc.

``sgemm`` runs the same packed Goto loop nest in float32;
``sgemm_blocking`` derives the single-precision block sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import CacheBlocking, solve_cache_blocking
from repro.blocking.register_blocking import (
    RegisterBlocking,
    RegisterBlockingProblem,
)
from repro.errors import GemmError
from repro.gemm.gebp import gebp
from repro.gemm.packing import pack_a, pack_b
from repro.gemm.trace import GemmTrace

FLOAT32_BYTES = 4


def sgemm_register_blocking(
    chip: ChipParams = XGENE,
) -> RegisterBlocking:
    """The float32 register-blocking optimum (12x8, gamma 9.6 on A64)."""
    problem = RegisterBlockingProblem.from_core(
        chip.core, element_size=FLOAT32_BYTES
    )
    return problem.solve()


def sgemm_blocking(
    chip: ChipParams = XGENE, threads: int = 1
) -> CacheBlocking:
    """Derived cache blocking for single precision."""
    reg = sgemm_register_blocking(chip)
    return solve_cache_blocking(
        chip, reg.mr, reg.nr, threads=threads, element_size=FLOAT32_BYTES
    )


def sgemm(
    a: "np.ndarray",
    b: "np.ndarray",
    c: "np.ndarray",
    alpha: float = 1.0,
    beta: float = 1.0,
    blocking: Optional[CacheBlocking] = None,
    trace: Optional[GemmTrace] = None,
) -> "np.ndarray":
    """Blocked, packed SGEMM: ``C := alpha*A@B + beta*C`` in float32."""
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    c_arr = np.asarray(c)
    if c_arr.dtype != np.float32 or not c_arr.flags.writeable:
        c_arr = np.array(c_arr, dtype=np.float32)
    if a.ndim != 2 or b.ndim != 2 or c_arr.ndim != 2:
        raise GemmError("A, B and C must be 2-D")
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or c_arr.shape != (m, n):
        raise GemmError("nonconformant SGEMM operands")
    blk = blocking or sgemm_blocking()
    if trace is not None:
        trace.m, trace.n, trace.k, trace.threads = m, n, k, 1

    if alpha == 0.0 or k == 0:
        if beta == 0.0:
            c_arr[:] = np.float32(0.0)
        else:
            c_arr *= np.float32(beta)
        return c_arr

    for jj in range(0, n, blk.nc):
        ncur = min(blk.nc, n - jj)
        first_k = True
        for kk in range(0, k, blk.kc):
            kcur = min(blk.kc, k - kk)
            if first_k and beta != 1.0:
                if beta == 0.0:
                    c_arr[:, jj : jj + ncur] = np.float32(0.0)
                else:
                    c_arr[:, jj : jj + ncur] *= np.float32(beta)
            b_panel = b[kk : kk + kcur, jj : jj + ncur]
            packed_b = pack_b(
                b_panel if alpha == 1.0 else np.float32(alpha) * b_panel,
                blk.nr,
                dtype=np.float32,
            )
            if trace is not None:
                trace.record_pack("B", kcur, ncur)
            for ii in range(0, m, blk.mc):
                mcur = min(blk.mc, m - ii)
                packed_a = pack_a(
                    a[ii : ii + mcur, kk : kk + kcur], blk.mr,
                    dtype=np.float32,
                )
                if trace is not None:
                    trace.record_pack("A", mcur, kcur)
                    trace.record_gebp(mcur, kcur, ncur, beta_pass=first_k)
                gebp(
                    packed_a,
                    packed_b,
                    c_arr[ii : ii + mcur, jj : jj + ncur],
                    blk.mr,
                    blk.nr,
                )
            first_k = False
    return c_arr
