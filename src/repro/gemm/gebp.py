"""GEBP — the inner kernel (paper Fig. 2, layers 4-7).

``gebp`` multiplies a packed ``mc x kc`` block of A with a packed
``kc x nc`` panel of B and accumulates into the corresponding ``mc x nc``
panel of C. The loop structure follows the paper exactly:

- layer 5 (GEBS): over the panel's ``kc x nr`` B slivers;
- layer 6 (GESS, the BLIS micro-kernel): over the block's ``mr x kc`` A
  slivers;
- layer 7: the rank-1-update register kernel, realized functionally as one
  small matrix product ``C_tile += a_sliver^T @ b_sliver`` — mathematically
  the same sequence of kc rank-1 updates the assembly kernel performs.

Edge tiles (when mc % mr or nc % nr is nonzero) are handled through the
zero padding introduced by packing; only the valid C sub-tile is written
back.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GemmError


def gess(
    a_sliver: "np.ndarray",
    b_sliver: "np.ndarray",
    c_tile: "np.ndarray",
) -> None:
    """Layer-7 micro-kernel: ``c_tile += a_sliver^T @ b_sliver``.

    Args:
        a_sliver: Packed A sliver, shape ``(kc, mr)``.
        b_sliver: Packed B sliver, shape ``(kc, nr)``.
        c_tile: C tile view, shape ``(mr' <= mr, nr' <= nr)`` — the valid
            region; padded rows/columns of the slivers multiply into
            discarded space.
    """
    if a_sliver.shape[0] != b_sliver.shape[0]:
        raise GemmError(
            f"kc mismatch: A sliver {a_sliver.shape}, B sliver {b_sliver.shape}"
        )
    mrv, nrv = c_tile.shape
    c_tile += a_sliver[:, :mrv].T @ b_sliver[:, :nrv]


def gebp(
    packed_a: "np.ndarray",
    packed_b: "np.ndarray",
    c_panel: "np.ndarray",
    mr: int,
    nr: int,
) -> None:
    """Block-panel multiply: ``c_panel += A_block @ B_panel``.

    Args:
        packed_a: Output of :func:`repro.gemm.packing.pack_a`, shape
            ``(n_a_slivers, kc, mr)``.
        packed_b: Output of :func:`repro.gemm.packing.pack_b`, shape
            ``(n_b_slivers, kc, nr)``.
        c_panel: Writable view of C, shape ``(mc, nc)``.
        mr, nr: Register tile sizes the buffers were packed with.
    """
    na, kc_a, mr_p = packed_a.shape
    nb, kc_b, nr_p = packed_b.shape
    if (mr_p, nr_p) != (mr, nr):
        raise GemmError("packed buffers do not match the register tile")
    if kc_a != kc_b:
        raise GemmError("packed buffers disagree on kc")
    mc, nc = c_panel.shape
    if na != -(-mc // mr) or nb != -(-nc // nr):
        raise GemmError("packed buffers do not cover the C panel")

    # Layer 5: loop over B slivers (j), layer 6: over A slivers (i).
    for j in range(nb):
        jlo, jhi = j * nr, min((j + 1) * nr, nc)
        b_sliver = packed_b[j]
        for i in range(na):
            ilo, ihi = i * mr, min((i + 1) * mr, mc)
            gess(packed_a[i], b_sliver, c_panel[ilo:ihi, jlo:jhi])
