"""Execution-trace instrumentation for the GEMM driver.

The driver optionally records every structural event of the Goto loop nest
(B-panel packs, A-block packs, GEBP calls with their true edge-trimmed
sizes, micro-kernel invocations). The simulator consumes this trace to cost
exactly the work the functional implementation performed — including the
ragged boundary tiles that shape the small-size ramp of Figs. 11/12/14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class PackEvent:
    """One packing operation.

    Attributes:
        operand: ``"A"`` or ``"B"``.
        rows, cols: Shape of the packed sub-matrix (pre-padding).
        thread: Executing thread id.
    """

    operand: str
    rows: int
    cols: int
    thread: int = 0


@dataclass(frozen=True)
class GebpEvent:
    """One GEBP call: an (mc x kc) block times a (kc x nc) panel.

    Sizes are the actual, possibly edge-trimmed extents.
    """

    mc: int
    kc: int
    nc: int
    thread: int = 0
    beta_pass: bool = False


@dataclass
class GemmTrace:
    """Accumulated events of one DGEMM execution."""

    m: int = 0
    n: int = 0
    k: int = 0
    threads: int = 1
    packs: List[PackEvent] = field(default_factory=list)
    gebps: List[GebpEvent] = field(default_factory=list)

    def record_pack(self, operand: str, rows: int, cols: int, thread: int = 0) -> None:
        self.packs.append(PackEvent(operand, rows, cols, thread))

    def record_gebp(
        self, mc: int, kc: int, nc: int, thread: int = 0, beta_pass: bool = False
    ) -> None:
        self.gebps.append(GebpEvent(mc, kc, nc, thread, beta_pass))

    @property
    def flops(self) -> int:
        """Useful flops implied by the GEBP events (2*m*k*n each)."""
        return sum(2 * e.mc * e.kc * e.nc for e in self.gebps)

    @property
    def packed_a_elements(self) -> int:
        return sum(p.rows * p.cols for p in self.packs if p.operand == "A")

    @property
    def packed_b_elements(self) -> int:
        return sum(p.rows * p.cols for p in self.packs if p.operand == "B")

    def events_for_thread(self, thread: int) -> Tuple[List[PackEvent], List[GebpEvent]]:
        return (
            [p for p in self.packs if p.thread == thread],
            [g for g in self.gebps if g.thread == thread],
        )
