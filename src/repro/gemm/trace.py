"""Execution-trace instrumentation for the GEMM driver.

The driver optionally records every structural event of the Goto loop nest
(B-panel packs, A-block packs, GEBP calls with their true edge-trimmed
sizes, micro-kernel invocations). The simulator consumes this trace to cost
exactly the work the functional implementation performed — including the
ragged boundary tiles that shape the small-size ramp of Figs. 11/12/14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class PackEvent:
    """One packing operation.

    Attributes:
        operand: ``"A"`` or ``"B"``.
        rows, cols: Shape of the packed sub-matrix (pre-padding).
        thread: Executing thread id.
    """

    operand: str
    rows: int
    cols: int
    thread: int = 0


@dataclass(frozen=True)
class GebpEvent:
    """One GEBP call: an (mc x kc) block times a (kc x nc) panel.

    Sizes are the actual, possibly edge-trimmed extents.
    """

    mc: int
    kc: int
    nc: int
    thread: int = 0
    beta_pass: bool = False


@dataclass
class GemmTrace:
    """Accumulated events of one DGEMM execution.

    A trace instance is not itself thread-safe: the parallel engine gives
    every worker a private per-step buffer (also a ``GemmTrace``) and
    merges the buffers through :meth:`absorb` in logical-thread order
    after each barrier, so the final event sequence is deterministic and
    identical to sequential execution regardless of OS-thread timing.
    """

    m: int = 0
    n: int = 0
    k: int = 0
    threads: int = 1
    packs: List[PackEvent] = field(default_factory=list)
    gebps: List[GebpEvent] = field(default_factory=list)
    #: Core-class name per logical thread (filled by the parallel engine
    #: when the chip declares clusters; empty on symmetric chips).
    thread_classes: Dict[int, str] = field(default_factory=dict)

    def record_pack(self, operand: str, rows: int, cols: int, thread: int = 0) -> None:
        self.packs.append(PackEvent(operand, rows, cols, thread))

    def record_gebp(
        self, mc: int, kc: int, nc: int, thread: int = 0, beta_pass: bool = False
    ) -> None:
        self.gebps.append(GebpEvent(mc, kc, nc, thread, beta_pass))

    def absorb(self, other: "GemmTrace") -> None:
        """Append ``other``'s events (a per-thread buffer) to this trace."""
        self.packs.extend(other.packs)
        self.gebps.extend(other.gebps)

    @property
    def flops(self) -> int:
        """Useful flops implied by the GEBP events (2*m*k*n each)."""
        return sum(2 * e.mc * e.kc * e.nc for e in self.gebps)

    def class_flops(self) -> Dict[str, int]:
        """Useful flops per core class, from :attr:`thread_classes`.

        Threads without a recorded class (symmetric chips, old traces)
        are attributed to ``"all"``.
        """
        totals: Dict[str, int] = {}
        for e in self.gebps:
            name = self.thread_classes.get(e.thread, "all")
            totals[name] = totals.get(name, 0) + 2 * e.mc * e.kc * e.nc
        return totals

    @property
    def packed_a_elements(self) -> int:
        return sum(p.rows * p.cols for p in self.packs if p.operand == "A")

    @property
    def packed_b_elements(self) -> int:
        return sum(p.rows * p.cols for p in self.packs if p.operand == "B")

    @property
    def active_threads(self) -> List[int]:
        """Thread ids that performed any GEBP work, in id order.

        With ``threads > ceil(m/mc)`` the surplus workers receive no row
        blocks; they are never dispatched and must not be counted as
        active cores when deriving per-core efficiency from a trace.
        """
        return sorted({g.thread for g in self.gebps})

    def events_for_thread(self, thread: int) -> Tuple[List[PackEvent], List[GebpEvent]]:
        return (
            [p for p in self.packs if p.thread == thread],
            [g for g in self.gebps if g.thread == thread],
        )
