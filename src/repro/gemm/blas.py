"""BLAS-style DGEMM interface with transpose support.

The paper implements the BLAS ``dgemm`` entry point inside OpenBLAS; this
module provides the same calling convention on top of the blocked driver:

    C := alpha * op(A) @ op(B) + beta * C,   op in {identity, transpose}

Transposition costs nothing extra structurally: the packing routines read
through strided views, so ``op(A)`` simply changes which axis packing
walks — exactly how OpenBLAS's packing kernels handle the ``TRANSA``
cases.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.blocking.cache_blocking import CacheBlocking
from repro.errors import GemmError
from repro.gemm.driver import dgemm
from repro.gemm.parallel import parallel_dgemm
from repro.gemm.pool import PoolStats, WorkerPool
from repro.gemm.trace import GemmTrace
from repro.gemm.workspace import GemmWorkspace

_VALID_TRANS = {"N", "n", "T", "t"}


def _op(trans: str, matrix: "np.ndarray") -> "np.ndarray":
    if trans not in _VALID_TRANS:
        raise GemmError(
            f"trans must be one of 'N'/'T', got {trans!r} "
            "(conjugate transpose is meaningless for real DGEMM)"
        )
    return matrix.T if trans in ("T", "t") else matrix


def gemm(
    transa: str,
    transb: str,
    alpha: float,
    a: "np.ndarray",
    b: "np.ndarray",
    beta: float,
    c: "np.ndarray",
    blocking: Optional[CacheBlocking] = None,
    threads: int = 1,
    trace: Optional[GemmTrace] = None,
    use_os_threads: bool = False,
    pool: Union[None, str, WorkerPool] = None,
    workspace: Optional[GemmWorkspace] = None,
    stats: Optional[PoolStats] = None,
) -> "np.ndarray":
    """BLAS-convention GEMM: ``C := alpha*op(A)@op(B) + beta*C``.

    Args:
        transa, transb: ``'N'`` or ``'T'`` per operand.
        alpha, beta: Scalars.
        a, b, c: Operands; shapes must be conformant *after* applying the
            transposes (``op(A)`` is M x K, ``op(B)`` is K x N, C is
            M x N).
        blocking: Optional block sizes.
        threads: Worker count (> 1 uses the layer-3 parallel driver).
        trace: Optional structural trace.
        use_os_threads: Run partitions on real OS threads via the
            persistent worker pool (wall-clock mode; identical numerics).
        pool: Worker-pool selection, forwarded to
            :func:`~repro.gemm.parallel.parallel_dgemm`.
        workspace: Packed-buffer cache, forwarded to the drivers.
        stats: Optional per-thread timing counters
            (:class:`~repro.gemm.pool.PoolStats`).

    Returns:
        The updated C.
    """
    a_eff = _op(transa, np.asarray(a, dtype=np.float64))
    b_eff = _op(transb, np.asarray(b, dtype=np.float64))
    if threads == 1:
        return dgemm(
            a_eff, b_eff, c, alpha=alpha, beta=beta, blocking=blocking,
            trace=trace, workspace=workspace,
        )
    return parallel_dgemm(
        a_eff, b_eff, c, threads=threads, alpha=alpha, beta=beta,
        blocking=blocking, trace=trace, use_os_threads=use_os_threads,
        pool=pool, workspace=workspace, stats=stats,
    )


def syrk(
    uplo: str,
    trans: str,
    alpha: float,
    a: "np.ndarray",
    beta: float,
    c: "np.ndarray",
    blocking: Optional[CacheBlocking] = None,
) -> "np.ndarray":
    """Symmetric rank-k update built on the blocked GEMM:
    ``C := alpha*op(A)@op(A)^T + beta*C`` with only the ``uplo`` triangle
    of C referenced/updated (the other triangle is mirrored on return).

    Level-3 BLAS routines reduce to GEMM — the layering argument of the
    GotoBLAS papers; ``syrk`` is included as the canonical example.
    """
    if uplo not in {"U", "u", "L", "l"}:
        raise GemmError("uplo must be 'U' or 'L'")
    a_eff = _op(trans, np.asarray(a, dtype=np.float64))
    n = a_eff.shape[0]
    if c.shape != (n, n):
        raise GemmError(f"C must be {n}x{n}, got {c.shape}")
    full = gemm("N", "T", alpha, a_eff, a_eff, beta, c, blocking=blocking)
    # Mirror the computed triangle so the result is exactly symmetric.
    if uplo in ("U", "u"):
        tri = np.triu(full)
        return tri + np.triu(full, 1).T
    tri = np.tril(full)
    return tri + np.tril(full, -1).T
