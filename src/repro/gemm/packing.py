"""Packing of A blocks and B panels (paper Sec. II-C, Fig. 3).

OpenBLAS packs operands into contiguous buffers so the register kernel
streams them with unit stride:

- ``pack_a`` extracts an ``mc x kc`` block of A as a sequence of
  ``mr x kc`` *slivers*; within a sliver, each k-column's mr elements are
  contiguous (the kernel's ``ldr q, [x14], #16`` order). Partial slivers at
  the bottom edge are zero-padded to mr rows.
- ``pack_b`` extracts a ``kc x nc`` panel of B as a sequence of
  ``kc x nr`` slivers; within a sliver, each k-row's nr elements are
  contiguous (the ``x15`` stream). Partial slivers are zero-padded to nr
  columns.

Both return 3-D arrays indexed ``[sliver, k, within-sliver]`` whose memory
layout is exactly the packed buffer (C-contiguous), so flattening them
yields the byte stream the simulated kernel would read.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GemmError


def _as_2d_float(name: str, m: "np.ndarray", dtype=np.float64) -> np.ndarray:
    arr = np.asarray(m, dtype=dtype)
    if arr.ndim != 2:
        raise GemmError(f"{name} must be 2-D, got shape {arr.shape}")
    return arr


def num_slivers(extent: int, r: int) -> int:
    """Number of r-wide slivers covering ``extent`` rows/columns."""
    if extent < 0 or r <= 0:
        raise GemmError("extent must be >= 0 and sliver width positive")
    return -(-extent // r)


def _packed_out(
    out: Optional["np.ndarray"],
    shape: Tuple[int, int, int],
    dtype,
    pad: int,
) -> np.ndarray:
    """Validate/prepare a destination buffer for a packing routine.

    A fresh buffer is allocated zeroed; a reused one only has its final
    sliver's ``pad`` padding lanes re-zeroed (every other element is
    overwritten by the pack), so buffer reuse is exact even when the
    previous contents were garbage.
    """
    if out is None:
        return np.zeros(shape, dtype=dtype)
    if out.shape != shape or out.dtype != np.dtype(dtype):
        raise GemmError(
            f"out buffer has shape {out.shape}/{out.dtype}, "
            f"packing needs {shape}/{np.dtype(dtype)}"
        )
    if pad:
        out[-1, :, shape[2] - pad:] = 0.0
    return out


def pack_a(
    a_block: "np.ndarray",
    mr: int,
    dtype=np.float64,
    out: Optional["np.ndarray"] = None,
) -> np.ndarray:
    """Pack an ``mc x kc`` block of A into mr-row slivers.

    Args:
        a_block: The ``mc x kc`` source block.
        mr: Register-tile rows (sliver height).
        dtype: Packed element type.
        out: Optional destination of shape ``(ceil(mc/mr), kc, mr)``;
            overwritten completely (padding included) and returned,
            avoiding the per-call allocation.

    Returns:
        Array of shape ``(ceil(mc/mr), kc, mr)``: ``out[s, k, i]`` is
        ``A[s*mr + i, k]`` (zero where padded).
    """
    a_block = _as_2d_float("A block", a_block, dtype)
    mc, kc = a_block.shape
    if mr <= 0:
        raise GemmError("mr must be positive")
    ns = num_slivers(mc, mr)
    out = _packed_out(out, (ns, kc, mr), dtype, (-mc) % mr)
    for s in range(ns):
        lo, hi = s * mr, min((s + 1) * mr, mc)
        # out[s, k, i] = A[lo+i, k] -> transpose of the block rows.
        out[s, :, : hi - lo] = a_block[lo:hi, :].T
    return out


def pack_b(
    b_panel: "np.ndarray",
    nr: int,
    dtype=np.float64,
    out: Optional["np.ndarray"] = None,
) -> np.ndarray:
    """Pack a ``kc x nc`` panel of B into nr-column slivers.

    Args:
        b_panel: The ``kc x nc`` source panel.
        nr: Register-tile columns (sliver width).
        dtype: Packed element type.
        out: Optional destination of shape ``(ceil(nc/nr), kc, nr)``;
            overwritten completely (padding included) and returned,
            avoiding the per-call allocation.

    Returns:
        Array of shape ``(ceil(nc/nr), kc, nr)``: ``out[s, k, j]`` is
        ``B[k, s*nr + j]`` (zero where padded).
    """
    b_panel = _as_2d_float("B panel", b_panel, dtype)
    kc, nc = b_panel.shape
    if nr <= 0:
        raise GemmError("nr must be positive")
    ns = num_slivers(nc, nr)
    out = _packed_out(out, (ns, kc, nr), dtype, (-nc) % nr)
    for s in range(ns):
        lo, hi = s * nr, min((s + 1) * nr, nc)
        out[s, :, : hi - lo] = b_panel[:, lo:hi]
    return out


def packed_a_bytes(mc: int, kc: int, mr: int, element_size: int = 8) -> int:
    """Size of the packed A buffer in bytes (padding included)."""
    return num_slivers(mc, mr) * kc * mr * element_size


def packed_b_bytes(kc: int, nc: int, nr: int, element_size: int = 8) -> int:
    """Size of the packed B buffer in bytes (padding included)."""
    return num_slivers(nc, nr) * kc * nr * element_size


def unpack_a(packed: "np.ndarray", mc: int) -> np.ndarray:
    """Inverse of :func:`pack_a` (drops padding); for testing."""
    ns, kc, mr = packed.shape
    out = np.zeros((mc, kc), dtype=np.float64)
    for s in range(ns):
        lo, hi = s * mr, min((s + 1) * mr, mc)
        out[lo:hi, :] = packed[s, :, : hi - lo].T
    return out


def unpack_b(packed: "np.ndarray", nc: int) -> np.ndarray:
    """Inverse of :func:`pack_b` (drops padding); for testing."""
    ns, kc, nr = packed.shape
    out = np.zeros((kc, nc), dtype=np.float64)
    for s in range(ns):
        lo, hi = s * nr, min((s + 1) * nr, nc)
        out[:, lo:hi] = packed[s, :, : hi - lo]
    return out
