"""Multi-threaded DGEMM — layer-3 parallelization (paper Sec. IV-C, Fig. 9).

The paper parallelizes the third loop: every thread receives a different
``mc x kc`` block of A while all threads share the same packed ``kc x nc``
panel of B, which maximizes locality in the shared L3 (where the B panel
lives). The M dimension is therefore divided round-robin in mc-sized chunks
across threads. The ``axis="n"`` ablation parallelizes the first loop
instead: each thread owns whole column panels and packs its own private B.

Both axes run on one partitioning/execution core:

- work is split into **barrier-delimited steps** — for ``axis="m"`` one
  step per ``(jj, kk)`` panel iteration (the shared B panel is packed
  before the step, every thread then walks its A blocks); for
  ``axis="n"`` a single step in which each thread processes its private
  column panels end to end;
- each step's per-thread closures execute either **inline** (the default:
  simulated workers — sequential, deterministic, the mode the performance
  simulator traces) or on **real OS threads** via the persistent
  :class:`~repro.gemm.pool.WorkerPool` (numpy releases the GIL inside the
  micro-kernel products, and thread creation is paid once per process
  instead of once per panel iteration);
- packed buffers come from a :class:`~repro.gemm.workspace.GemmWorkspace`
  (shared B panel, per-thread A slivers), so steady-state iterations
  allocate nothing;
- trace events go to per-thread buffers merged in logical-thread order
  after each barrier, making :class:`~repro.gemm.trace.GemmTrace`
  collection race-free and bit-identical between threaded and sequential
  execution;
- threads whose assignment is empty (``threads > ceil(m/mc)``) are never
  dispatched at all.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import CacheBlocking, solve_cache_blocking
from repro.errors import GemmError
from repro.gemm.driver import _validate_operands
from repro.gemm.gebp import gebp
from repro.gemm.packing import pack_a, pack_b
from repro.gemm.pool import PoolStats, WorkerPool, get_shared_pool
from repro.gemm.trace import GemmTrace
from repro.gemm.workspace import GemmWorkspace, get_shared_workspace
from repro.obs.metrics import MetricsRegistry

_clock = time.perf_counter

#: Executor: runs one step's per-thread task closures to completion.
_Executor = Callable[[Sequence[Callable[[], None]]], None]


def apportion_blocks(count: int, weights: Sequence[float]) -> List[int]:
    """Split ``count`` indivisible blocks proportionally to ``weights``.

    Deterministic largest-remainder apportionment (Hamilton's method):
    every thread gets the floor of its exact quota, and the leftover
    blocks go to the largest fractional remainders, ties broken towards
    the lower thread index. The result sums to ``count`` exactly.

    This is the Catalán-style static schedule for asymmetric chips: with
    weights proportional to per-class modeled throughput, every class
    finishes its share at (modeled) the same time.
    """
    if not weights:
        raise GemmError("apportion_blocks needs at least one weight")
    total = float(sum(weights))
    if total <= 0 or any(w < 0 for w in weights):
        raise GemmError("weights must be non-negative with a positive sum")
    quotas = [count * w / total for w in weights]
    counts = [int(q) for q in quotas]
    leftover = count - sum(counts)
    order = sorted(
        range(len(weights)), key=lambda t: (counts[t] - quotas[t], t)
    )
    for t in order[:leftover]:
        counts[t] += 1
    return counts


def _thread_row_blocks(
    m: int,
    mc: int,
    threads: int,
    weights: Optional[Sequence[float]] = None,
) -> List[List[int]]:
    """Assignment of mc-sized row blocks to threads.

    Without ``weights`` (the symmetric default) blocks go round-robin —
    the historical schedule, unchanged. With ``weights`` (one per
    thread) each thread receives a contiguous run of blocks sized by
    :func:`apportion_blocks`, so faster core classes sweep more of the
    M dimension per panel iteration.
    """
    blocks = list(range(0, m, mc))
    if weights is None:
        return [blocks[t::threads] for t in range(threads)]
    if len(weights) != threads:
        raise GemmError(
            f"got {len(weights)} weights for {threads} threads"
        )
    counts = apportion_blocks(len(blocks), weights)
    out: List[List[int]] = []
    start = 0
    for c in counts:
        out.append(blocks[start : start + c])
        start += c
    return out


def _inline_execute(tasks: Sequence[Callable[[], None]]) -> None:
    """Simulated workers: run the step's tasks sequentially, in order."""
    for task in tasks:
        task()


def _spawn_execute(tasks: Sequence[Callable[[], None]]) -> None:
    """Legacy engine: spawn/join one OS thread per task, every step.

    Kept as the measured baseline for the pool's overhead benchmark
    (``benchmarks/bench_pool_overhead.py``); select with ``pool="spawn"``.
    """
    if len(tasks) == 1:
        tasks[0]()
        return
    errors: List[BaseException] = []

    def trap(task: Callable[[], None]) -> None:
        try:
            task()
        except BaseException as exc:
            errors.append(exc)

    workers = [threading.Thread(target=trap, args=(t,)) for t in tasks]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    if errors:
        raise errors[0]


def _resolve_executor(
    use_os_threads: bool,
    threads: int,
    pool: Union[None, str, WorkerPool],
) -> _Executor:
    """Pick the step executor for this call.

    Inline unless OS threads are requested; with OS threads the shared
    persistent pool is used by default, an explicit :class:`WorkerPool`
    when given, or per-step spawning for ``pool="spawn"`` (the overhead
    baseline).

    The ``pool`` argument is validated before the inline shortcut: a
    typo'd string or wrong type is an error even when ``threads == 1``
    or OS threads are off, instead of being silently accepted.
    """
    if pool is not None and not isinstance(pool, (str, WorkerPool)):
        raise GemmError(
            "pool must be None, 'spawn', or a WorkerPool, "
            f"got {pool!r}"
        )
    if isinstance(pool, str) and pool != "spawn":
        raise GemmError(
            f"pool must be None, 'spawn', or a WorkerPool, got {pool!r}"
        )
    if not use_os_threads or threads == 1:
        return _inline_execute
    if pool == "spawn":
        return _spawn_execute
    if pool is None:
        pool = get_shared_pool(threads)
    if pool.threads < threads:
        raise GemmError(
            f"pool has {pool.threads} workers, call needs {threads}"
        )
    return pool.run


def parallel_dgemm(
    a: "np.ndarray",
    b: "np.ndarray",
    c: "np.ndarray",
    threads: int,
    alpha: float = 1.0,
    beta: float = 1.0,
    blocking: Optional[CacheBlocking] = None,
    chip: ChipParams = XGENE,
    trace: Optional[GemmTrace] = None,
    use_os_threads: bool = False,
    axis: str = "m",
    pool: Union[None, str, WorkerPool] = None,
    workspace: Optional[GemmWorkspace] = None,
    stats: Optional[PoolStats] = None,
    metrics: Optional[MetricsRegistry] = None,
    partition: str = "auto",
) -> "np.ndarray":
    """Layer-3-parallel DGEMM: ``C := alpha * A @ B + beta * C``.

    Args:
        a, b, c: Column-major float64 operands (``M x K``, ``K x N``,
            ``M x N``).
        threads: Number of workers (1..chip.cores).
        alpha, beta: BLAS scalars.
        blocking: Block sizes; derived for ``threads`` on ``chip`` when
            omitted (the paper's eq. (19)/(20) adjustment).
        chip: Architecture used for blocking derivation and trace metadata.
        trace: Optional structural trace collector (thread-safe: events
            are buffered per thread and merged deterministically).
        use_os_threads: Execute partitions on real OS threads (identical
            numerics; useful only for wall-clock timing). Honoured by
            both axes.
        axis: ``"m"`` parallelizes the third loop over A blocks (the
            paper's Fig. 9 choice — one shared B panel in the L3);
            ``"n"`` parallelizes the first loop over column panels (the
            ablation: every thread owns a private B panel, overflowing
            the shared L3).
        pool: OS-thread engine selection: ``None`` uses the persistent
            process-wide :class:`~repro.gemm.pool.WorkerPool`; an
            explicit pool instance is used as given; ``"spawn"`` spawns
            threads per step (the legacy baseline). Ignored without
            ``use_os_threads``.
        workspace: Packed-buffer cache; defaults to the process-wide
            :class:`~repro.gemm.workspace.GemmWorkspace`, so steady-state
            panel iterations (and repeated calls) allocate nothing.
        stats: Optional :class:`~repro.gemm.pool.PoolStats` receiving
            per-thread pack/GEBP wall-clock counters and step counts.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving call counters and a whole-call span timer. ``None``
            (the default) adds no work to the hot loops.
        partition: Row-block schedule for ``axis="m"``: ``"symmetric"``
            is the historical round-robin split; ``"weighted"`` assigns
            contiguous runs of mc-slabs proportional to each thread's
            core-class peak throughput (the Catalán-style schedule for
            big.LITTLE chips); ``"auto"`` (default) picks weighted on
            asymmetric chips and symmetric otherwise, so symmetric-chip
            behaviour is bit-for-bit unchanged. The ``axis="n"``
            ablation always distributes panels round-robin.

    Returns:
        The updated C.
    """
    if axis not in ("m", "n"):
        raise GemmError("axis must be 'm' (layer 3) or 'n' (layer 1)")
    if partition not in ("auto", "symmetric", "weighted"):
        raise GemmError(
            "partition must be 'auto', 'symmetric' or 'weighted', "
            f"got {partition!r}"
        )
    if not 1 <= threads <= chip.cores:
        raise GemmError(f"threads {threads} out of range 1..{chip.cores}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c_arr = np.asarray(c)
    if c_arr.dtype != np.float64 or not c_arr.flags.writeable:
        c_arr = np.array(c_arr, dtype=np.float64)
    _validate_operands(a, b, c_arr)
    blk = blocking or solve_cache_blocking(chip, 8, 6, threads=threads)
    m, k = a.shape
    _, n = b.shape
    if trace is not None:
        trace.m, trace.n, trace.k, trace.threads = m, n, k, threads

    if alpha == 0.0 or k == 0:
        if beta == 0.0:
            c_arr[:] = 0.0
        else:
            c_arr *= beta
        return c_arr

    ws = workspace if workspace is not None else get_shared_workspace()
    executor = _resolve_executor(use_os_threads, threads, pool)
    if stats is not None:
        stats.record_call()

    weighted = partition == "weighted" or (
        partition == "auto" and chip.is_asymmetric
    )
    weights: Optional[List[float]] = None
    if chip.clusters or weighted:
        clusters = chip.core_clusters
        placement = chip.thread_clusters(threads)
        classes = {t: clusters[ci].name for t, ci in enumerate(placement)}
        if trace is not None:
            trace.thread_classes.update(classes)
        if stats is not None:
            stats.assign_classes(classes)
        if weighted:
            weights = [clusters[ci].core.peak_flops for ci in placement]

    run = _run_axis_m if axis == "m" else _run_axis_n
    if metrics is not None:
        metrics.inc("parallel.calls")
        metrics.inc(f"parallel.axis.{axis}")
        metrics.set_gauge("parallel.threads", threads)
        metrics.observe("parallel.flops", 2.0 * m * n * k)
        with metrics.span("parallel.dgemm"):
            run(
                a, b, c_arr, threads, alpha, beta, blk, trace, ws,
                stats, executor, weights,
            )
    else:
        run(
            a, b, c_arr, threads, alpha, beta, blk, trace, ws, stats,
            executor, weights,
        )
    return c_arr


def _run_axis_m(
    a: "np.ndarray",
    b: "np.ndarray",
    c_arr: "np.ndarray",
    threads: int,
    alpha: float,
    beta: float,
    blk: CacheBlocking,
    trace: Optional[GemmTrace],
    ws: GemmWorkspace,
    stats: Optional[PoolStats],
    executor: _Executor,
    weights: Optional[Sequence[float]] = None,
) -> None:
    """Layer-3 split: one barrier step per (jj, kk) panel iteration."""
    m, k = a.shape
    _, n = b.shape
    assignments = _thread_row_blocks(m, blk.mc, threads, weights)
    active = [t for t in range(threads) if assignments[t]]

    for jj in range(0, n, blk.nc):
        ncur = min(blk.nc, n - jj)
        first_k = True
        for kk in range(0, k, blk.kc):
            kcur = min(blk.kc, k - kk)
            if first_k and beta != 1.0:
                if beta == 0.0:
                    c_arr[:, jj : jj + ncur] = 0.0
                else:
                    c_arr[:, jj : jj + ncur] *= beta
            # The shared B panel, packed before the step (the paper packs
            # it cooperatively; trace/stats attribute it to thread 0).
            t0 = _clock() if stats is not None else 0.0
            packed_b = pack_b(
                b[kk : kk + kcur, jj : jj + ncur],
                blk.nr,
                out=ws.b_buffer(kcur, ncur, blk.nr),
            )
            if alpha != 1.0:
                packed_b *= alpha
            if stats is not None:
                counters = stats.thread(0)
                counters.pack_b_seconds += _clock() - t0
                counters.pack_b_calls += 1
            if trace is not None:
                trace.record_pack("B", kcur, ncur, thread=0)

            local: Optional[Dict[int, GemmTrace]] = (
                {t: GemmTrace() for t in active}
                if trace is not None
                else None
            )

            def make_task(t: int) -> Callable[[], None]:
                lt = local[t] if local is not None else None
                counters = stats.thread(t) if stats is not None else None
                blocks = assignments[t]

                def task() -> None:
                    for ii in blocks:
                        mcur = min(blk.mc, m - ii)
                        if counters is not None:
                            t0 = _clock()
                        packed_a = pack_a(
                            a[ii : ii + mcur, kk : kk + kcur],
                            blk.mr,
                            out=ws.a_buffer(t, mcur, kcur, blk.mr),
                        )
                        if counters is not None:
                            counters.pack_a_seconds += _clock() - t0
                            counters.pack_a_calls += 1
                        if lt is not None:
                            lt.record_pack("A", mcur, kcur, thread=t)
                            lt.record_gebp(
                                mcur, kcur, ncur, thread=t, beta_pass=first_k
                            )
                        if counters is not None:
                            t0 = _clock()
                        gebp(
                            packed_a,
                            packed_b,
                            c_arr[ii : ii + mcur, jj : jj + ncur],
                            blk.mr,
                            blk.nr,
                        )
                        if counters is not None:
                            counters.gebp_seconds += _clock() - t0
                            counters.gebp_calls += 1

                return task

            # Surplus workers (empty assignment) are never dispatched.
            executor([make_task(t) for t in active])
            if stats is not None:
                stats.steps += 1
            if local is not None:
                for t in active:
                    trace.absorb(local[t])
            first_k = False


def _run_axis_n(
    a: "np.ndarray",
    b: "np.ndarray",
    c_arr: "np.ndarray",
    threads: int,
    alpha: float,
    beta: float,
    blk: CacheBlocking,
    trace: Optional[GemmTrace],
    ws: GemmWorkspace,
    stats: Optional[PoolStats],
    executor: _Executor,
    weights: Optional[Sequence[float]] = None,
) -> None:
    """Layer-1 split (the Fig. 9 ablation): column panels are distributed
    round-robin across threads, each thread packing its own private B
    panel and walking all of A — one barrier step for the whole call,
    since no state is shared between threads. ``weights`` is accepted
    for signature parity with the layer-3 split but ignored: the
    ablation deliberately keeps the naive symmetric schedule."""
    m, k = a.shape
    _, n = b.shape
    col_blocks = list(range(0, n, blk.nc))
    assignments = [col_blocks[t::threads] for t in range(threads)]
    active = [t for t in range(threads) if assignments[t]]
    local: Optional[Dict[int, GemmTrace]] = (
        {t: GemmTrace() for t in active} if trace is not None else None
    )

    def make_task(t: int) -> Callable[[], None]:
        lt = local[t] if local is not None else None
        counters = stats.thread(t) if stats is not None else None
        panels = assignments[t]

        def task() -> None:
            for jj in panels:
                ncur = min(blk.nc, n - jj)
                first_k = True
                for kk in range(0, k, blk.kc):
                    kcur = min(blk.kc, k - kk)
                    if first_k and beta != 1.0:
                        # This thread owns all of columns jj:jj+ncur.
                        if beta == 0.0:
                            c_arr[:, jj : jj + ncur] = 0.0
                        else:
                            c_arr[:, jj : jj + ncur] *= beta
                    if counters is not None:
                        t0 = _clock()
                    packed_b = pack_b(
                        b[kk : kk + kcur, jj : jj + ncur],
                        blk.nr,
                        out=ws.b_buffer(kcur, ncur, blk.nr, thread=t),
                    )
                    if alpha != 1.0:
                        packed_b *= alpha
                    if counters is not None:
                        counters.pack_b_seconds += _clock() - t0
                        counters.pack_b_calls += 1
                    if lt is not None:
                        lt.record_pack("B", kcur, ncur, thread=t)
                    for ii in range(0, m, blk.mc):
                        mcur = min(blk.mc, m - ii)
                        if counters is not None:
                            t0 = _clock()
                        packed_a = pack_a(
                            a[ii : ii + mcur, kk : kk + kcur],
                            blk.mr,
                            out=ws.a_buffer(t, mcur, kcur, blk.mr),
                        )
                        if counters is not None:
                            counters.pack_a_seconds += _clock() - t0
                            counters.pack_a_calls += 1
                        if lt is not None:
                            lt.record_pack("A", mcur, kcur, thread=t)
                            lt.record_gebp(
                                mcur, kcur, ncur, thread=t, beta_pass=first_k
                            )
                        if counters is not None:
                            t0 = _clock()
                        gebp(
                            packed_a,
                            packed_b,
                            c_arr[ii : ii + mcur, jj : jj + ncur],
                            blk.mr,
                            blk.nr,
                        )
                        if counters is not None:
                            counters.gebp_seconds += _clock() - t0
                            counters.gebp_calls += 1
                    first_k = False

        return task

    executor([make_task(t) for t in active])
    if stats is not None:
        stats.steps += 1
    if local is not None:
        for t in active:
            trace.absorb(local[t])
