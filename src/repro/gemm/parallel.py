"""Multi-threaded DGEMM — layer-3 parallelization (paper Sec. IV-C, Fig. 9).

The paper parallelizes the third loop: every thread receives a different
``mc x kc`` block of A while all threads share the same packed ``kc x nc``
panel of B, which maximizes locality in the shared L3 (where the B panel
lives). The M dimension is therefore divided round-robin in mc-sized chunks
across threads.

Threads here are *simulated workers*: partitions execute sequentially (the
numerical result is identical and deterministic), while the per-thread work
split is recorded in the trace so the performance simulator can cost each
core's share and apply the shared-cache and bandwidth effects. A real
``threading``-based execution mode is available for wall-clock use, since
numpy releases the GIL inside the micro-kernel products.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import CacheBlocking, solve_cache_blocking
from repro.errors import GemmError
from repro.gemm.driver import _validate_operands
from repro.gemm.gebp import gebp
from repro.gemm.packing import pack_a, pack_b
from repro.gemm.trace import GemmTrace


def _thread_row_blocks(m: int, mc: int, threads: int) -> List[List[int]]:
    """Round-robin assignment of mc-sized row blocks to threads."""
    blocks = list(range(0, m, mc))
    return [blocks[t::threads] for t in range(threads)]


def parallel_dgemm(
    a: "np.ndarray",
    b: "np.ndarray",
    c: "np.ndarray",
    threads: int,
    alpha: float = 1.0,
    beta: float = 1.0,
    blocking: Optional[CacheBlocking] = None,
    chip: ChipParams = XGENE,
    trace: Optional[GemmTrace] = None,
    use_os_threads: bool = False,
    axis: str = "m",
) -> "np.ndarray":
    """Layer-3-parallel DGEMM: ``C := alpha * A @ B + beta * C``.

    Args:
        a, b, c: Column-major float64 operands (``M x K``, ``K x N``,
            ``M x N``).
        threads: Number of workers (1..chip.cores).
        alpha, beta: BLAS scalars.
        blocking: Block sizes; derived for ``threads`` on ``chip`` when
            omitted (the paper's eq. (19)/(20) adjustment).
        chip: Architecture used for blocking derivation and trace metadata.
        trace: Optional structural trace collector.
        use_os_threads: Execute partitions on real OS threads (identical
            numerics; useful only for wall-clock timing).
        axis: ``"m"`` parallelizes the third loop over A blocks (the
            paper's Fig. 9 choice — one shared B panel in the L3);
            ``"n"`` parallelizes the first loop over column panels (the
            ablation: every thread owns a private B panel, overflowing
            the shared L3).

    Returns:
        The updated C.
    """
    if axis not in ("m", "n"):
        raise GemmError("axis must be 'm' (layer 3) or 'n' (layer 1)")
    if axis == "n":
        return _parallel_dgemm_axis_n(
            a, b, c, threads, alpha, beta, blocking, chip, trace
        )
    if not 1 <= threads <= chip.cores:
        raise GemmError(f"threads {threads} out of range 1..{chip.cores}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c_arr = np.asarray(c)
    if c_arr.dtype != np.float64 or not c_arr.flags.writeable:
        c_arr = np.array(c_arr, dtype=np.float64)
    _validate_operands(a, b, c_arr)
    blk = blocking or solve_cache_blocking(
        chip, 8, 6, threads=threads
    )
    m, k = a.shape
    _, n = b.shape
    if trace is not None:
        trace.m, trace.n, trace.k, trace.threads = m, n, k, threads

    if alpha == 0.0 or k == 0:
        if beta == 0.0:
            c_arr[:] = 0.0
        else:
            c_arr *= beta
        return c_arr

    assignments = _thread_row_blocks(m, blk.mc, threads)

    for jj in range(0, n, blk.nc):
        ncur = min(blk.nc, n - jj)
        first_k = True
        for kk in range(0, k, blk.kc):
            kcur = min(blk.kc, k - kk)
            if first_k and beta != 1.0:
                if beta == 0.0:
                    c_arr[:, jj : jj + ncur] = 0.0
                else:
                    c_arr[:, jj : jj + ncur] *= beta
            b_panel = b[kk : kk + kcur, jj : jj + ncur]
            packed_b = pack_b(
                b_panel if alpha == 1.0 else alpha * b_panel, blk.nr
            )
            if trace is not None:
                # B is packed cooperatively; attribute to thread 0.
                trace.record_pack("B", kcur, ncur, thread=0)

            def work(t: int) -> None:
                for ii in assignments[t]:
                    mcur = min(blk.mc, m - ii)
                    packed_a = pack_a(
                        a[ii : ii + mcur, kk : kk + kcur], blk.mr
                    )
                    if trace is not None:
                        trace.record_pack("A", mcur, kcur, thread=t)
                        trace.record_gebp(
                            mcur, kcur, ncur, thread=t, beta_pass=first_k
                        )
                    gebp(
                        packed_a,
                        packed_b,
                        c_arr[ii : ii + mcur, jj : jj + ncur],
                        blk.mr,
                        blk.nr,
                    )

            if use_os_threads and threads > 1:
                workers = [
                    threading.Thread(target=work, args=(t,))
                    for t in range(threads)
                ]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
            else:
                for t in range(threads):
                    work(t)
            first_k = False
    return c_arr


def _parallel_dgemm_axis_n(
    a: "np.ndarray",
    b: "np.ndarray",
    c: "np.ndarray",
    threads: int,
    alpha: float,
    beta: float,
    blocking: Optional[CacheBlocking],
    chip: ChipParams,
    trace: Optional[GemmTrace],
) -> "np.ndarray":
    """Layer-1 parallelization (the Fig. 9 ablation): column panels are
    distributed round-robin across threads, each thread packing its own
    B panel and walking all of A. Numerically identical; the locality
    difference shows up only on the simulated chip."""
    if not 1 <= threads <= chip.cores:
        raise GemmError(f"threads {threads} out of range 1..{chip.cores}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c_arr = np.asarray(c)
    if c_arr.dtype != np.float64 or not c_arr.flags.writeable:
        c_arr = np.array(c_arr, dtype=np.float64)
    _validate_operands(a, b, c_arr)
    blk = blocking or solve_cache_blocking(chip, 8, 6, threads=threads)
    m, k = a.shape
    _, n = b.shape
    if trace is not None:
        trace.m, trace.n, trace.k, trace.threads = m, n, k, threads

    if alpha == 0.0 or k == 0:
        if beta == 0.0:
            c_arr[:] = 0.0
        else:
            c_arr *= beta
        return c_arr

    col_blocks = list(range(0, n, blk.nc))
    for t in range(threads):
        for jj in col_blocks[t::threads]:
            ncur = min(blk.nc, n - jj)
            first_k = True
            for kk in range(0, k, blk.kc):
                kcur = min(blk.kc, k - kk)
                if first_k and beta != 1.0:
                    if beta == 0.0:
                        c_arr[:, jj : jj + ncur] = 0.0
                    else:
                        c_arr[:, jj : jj + ncur] *= beta
                b_panel = b[kk : kk + kcur, jj : jj + ncur]
                packed_b = pack_b(
                    b_panel if alpha == 1.0 else alpha * b_panel, blk.nr
                )
                if trace is not None:
                    trace.record_pack("B", kcur, ncur, thread=t)
                for ii in range(0, m, blk.mc):
                    mcur = min(blk.mc, m - ii)
                    packed_a = pack_a(
                        a[ii : ii + mcur, kk : kk + kcur], blk.mr
                    )
                    if trace is not None:
                        trace.record_pack("A", mcur, kcur, thread=t)
                        trace.record_gebp(
                            mcur, kcur, ncur, thread=t, beta_pass=first_k
                        )
                    gebp(
                        packed_a,
                        packed_b,
                        c_arr[ii : ii + mcur, jj : jj + ncur],
                        blk.mr,
                        blk.nr,
                    )
                first_k = False
    return c_arr
