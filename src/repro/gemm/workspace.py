"""Reusable packed-buffer workspace for the DGEMM drivers.

OpenBLAS allocates its packing buffers once (the ``sa``/``sb`` workspace
of ``level3_thread.c``) and reuses them for every panel iteration of every
GEMM call; the seed implementation instead allocated a fresh packed array
per ``pack_a``/``pack_b`` call — one allocation per A block and B panel,
thousands per mid-sized multiply.

:class:`GemmWorkspace` caches those buffers between iterations and between
calls:

- one **shared B panel** buffer per shape (the layer-3 split's single
  ``kc x nc`` panel all threads read from the L3);
- **per-thread A sliver** buffers (each worker packs its own ``mc x kc``
  block into its private L2), keyed by logical thread id so OS-thread
  workers never alias each other;
- per-thread B buffers for the layer-1 (``axis="n"``) split, where every
  thread owns a private panel.

Buffers are handed to :func:`repro.gemm.packing.pack_a` /
:func:`~repro.gemm.packing.pack_b` through their ``out=`` parameter, which
overwrites the buffer completely (padding included), so reuse is exact.
Distinct shapes (the ragged edge blocks of a non-multiple problem size)
get distinct cache slots; memory held is bounded by the blocking sizes
and is visible through :attr:`GemmWorkspace.bytes_held`.

A workspace may be shared by the worker threads of one DGEMM call (slot
keys are disjoint per thread), but not by two *concurrent* DGEMM calls —
give each concurrent caller its own instance.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.gemm.packing import num_slivers

_Key = Tuple[object, ...]


class GemmWorkspace:
    """Cache of packed A/B buffers reused across panel iterations."""

    def __init__(self) -> None:
        self._buffers: Dict[_Key, np.ndarray] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _get(self, key: _Key, shape: Tuple[int, ...]) -> np.ndarray:
        full_key = key + shape
        with self._lock:
            buf = self._buffers.get(full_key)
            if buf is None:
                self.misses += 1
                buf = np.empty(shape, dtype=np.float64)
                self._buffers[full_key] = buf
            else:
                self.hits += 1
        return buf

    def a_buffer(self, thread: int, mc: int, kc: int, mr: int) -> np.ndarray:
        """The packed-A buffer of logical ``thread`` for an mc x kc block."""
        return self._get(("A", thread), (num_slivers(mc, mr), kc, mr))

    def b_buffer(
        self, kc: int, nc: int, nr: int, thread: Optional[int] = None
    ) -> np.ndarray:
        """A packed-B panel buffer: shared (``thread=None``, the layer-3
        split) or private to ``thread`` (the layer-1 split)."""
        return self._get(("B", thread), (num_slivers(nc, nr), kc, nr))

    @property
    def bytes_held(self) -> int:
        with self._lock:
            return sum(buf.nbytes for buf in self._buffers.values())

    @property
    def num_buffers(self) -> int:
        with self._lock:
            return len(self._buffers)

    def clear(self) -> None:
        with self._lock:
            self._buffers.clear()
            self.hits = 0
            self.misses = 0

    def __repr__(self) -> str:
        return (
            f"GemmWorkspace(buffers={self.num_buffers}, "
            f"bytes={self.bytes_held}, hits={self.hits}, "
            f"misses={self.misses})"
        )


_shared_workspace: Optional[GemmWorkspace] = None
_shared_workspace_lock = threading.Lock()


def get_shared_workspace() -> GemmWorkspace:
    """The process-wide workspace used by the library entry points."""
    global _shared_workspace
    with _shared_workspace_lock:
        if _shared_workspace is None:
            _shared_workspace = GemmWorkspace()
        return _shared_workspace
