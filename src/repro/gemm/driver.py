"""The DGEMM driver — layers 1-3 of the Goto algorithm (paper Fig. 2).

``dgemm`` computes ``C := alpha * A @ B + beta * C`` for column-major
float64 matrices through the exact blocking/packing structure of the paper:

- layer 1: partition C and B into ``nc``-column panels (loop ``jj``);
- layer 2: partition A into ``kc``-deep column panels and B into ``kc x nc``
  row panels (loop ``kk``) — C is updated by a sequence of rank-kc GEPPs,
  with ``beta`` applied on the first one;
- layer 3: partition each A panel into ``mc x kc`` blocks (loop ``ii``) —
  GEPP becomes a series of GEBP calls.

B panels are packed once per (jj, kk) iteration; A blocks once per
(jj, kk, ii). The optional :class:`~repro.gemm.trace.GemmTrace` records the
loop structure for the performance simulator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blocking.cache_blocking import CacheBlocking
from repro.errors import GemmError
from repro.gemm.gebp import gebp
from repro.gemm.packing import pack_a, pack_b
from repro.gemm.trace import GemmTrace
from repro.gemm.workspace import GemmWorkspace

#: The paper's headline configuration (Table III, serial).
DEFAULT_BLOCKING = CacheBlocking(
    mr=8, nr=6, kc=512, mc=56, nc=1920, k1=1, k2=2, k3=1
)


def _validate_operands(
    a: "np.ndarray", b: "np.ndarray", c: "np.ndarray"
) -> None:
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise GemmError("A, B and C must be 2-D")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise GemmError(f"inner dimensions differ: A is {a.shape}, B is {b.shape}")
    if c.shape != (m, n):
        raise GemmError(f"C has shape {c.shape}, expected {(m, n)}")


def dgemm(
    a: "np.ndarray",
    b: "np.ndarray",
    c: "np.ndarray",
    alpha: float = 1.0,
    beta: float = 1.0,
    blocking: Optional[CacheBlocking] = None,
    trace: Optional[GemmTrace] = None,
    workspace: Optional["GemmWorkspace"] = None,
) -> "np.ndarray":
    """Blocked, packed DGEMM: ``C := alpha * A @ B + beta * C``.

    Args:
        a: ``M x K`` matrix.
        b: ``K x N`` matrix.
        c: ``M x N`` matrix, updated in place (a float64 copy is made and
            returned if ``c`` is not float64/writable).
        alpha, beta: Scalars of the BLAS interface.
        blocking: Block sizes; defaults to the paper's 8x6 serial blocking.
        trace: Optional structural trace collector.
        workspace: Optional :class:`~repro.gemm.workspace.GemmWorkspace`
            whose cached buffers replace the per-iteration packed-array
            allocations (numerics are unchanged).

    Returns:
        The updated C (same object as ``c`` when possible).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c_arr = np.asarray(c)
    if c_arr.dtype != np.float64 or not c_arr.flags.writeable:
        c_arr = np.array(c_arr, dtype=np.float64)
    _validate_operands(a, b, c_arr)
    blk = blocking or DEFAULT_BLOCKING
    m, k = a.shape
    _, n = b.shape

    if trace is not None:
        trace.m, trace.n, trace.k, trace.threads = m, n, k, 1

    if alpha == 0.0 or k == 0:
        if beta == 0.0:
            c_arr[:] = 0.0
        else:
            c_arr *= beta
        return c_arr

    # Layer 1: jj over N in steps of nc.
    for jj in range(0, n, blk.nc):
        ncur = min(blk.nc, n - jj)
        # Layer 2: kk over K in steps of kc.
        first_k = True
        for kk in range(0, k, blk.kc):
            kcur = min(blk.kc, k - kk)
            if first_k and beta != 1.0:
                if beta == 0.0:
                    # BLAS semantics: beta = 0 overwrites C without
                    # reading it (NaN/Inf in C must not leak through).
                    c_arr[:, jj : jj + ncur] = 0.0
                else:
                    c_arr[:, jj : jj + ncur] *= beta
            # Pack the kc x nc panel of B (alpha folded into B once).
            b_panel = b[kk : kk + kcur, jj : jj + ncur]
            packed_b = pack_b(
                b_panel,
                blk.nr,
                out=None if workspace is None
                else workspace.b_buffer(kcur, ncur, blk.nr),
            )
            if alpha != 1.0:
                packed_b *= alpha
            if trace is not None:
                trace.record_pack("B", kcur, ncur)
            # Layer 3: ii over M in steps of mc.
            for ii in range(0, m, blk.mc):
                mcur = min(blk.mc, m - ii)
                packed_a = pack_a(
                    a[ii : ii + mcur, kk : kk + kcur],
                    blk.mr,
                    out=None if workspace is None
                    else workspace.a_buffer(0, mcur, kcur, blk.mr),
                )
                if trace is not None:
                    trace.record_pack("A", mcur, kcur)
                    trace.record_gebp(
                        mcur, kcur, ncur, beta_pass=first_k
                    )
                gebp(
                    packed_a,
                    packed_b,
                    c_arr[ii : ii + mcur, jj : jj + ncur],
                    blk.mr,
                    blk.nr,
                )
            first_k = False
    return c_arr
