"""Reference GEMM implementations for validation.

``naive_dgemm`` is the textbook triple loop (netlib-style, Sec. II-B's
"reference implementation ... performs poorly"); ``numpy_dgemm`` delegates
to ``numpy``'s BLAS. Both exist to validate the blocked implementation and
to serve as the unoptimized baseline in examples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GemmError


def naive_dgemm(
    a: "np.ndarray",
    b: "np.ndarray",
    c: "np.ndarray",
    alpha: float = 1.0,
    beta: float = 1.0,
) -> "np.ndarray":
    """Triple-loop ``C := alpha*A@B + beta*C`` (for small test matrices)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    out = np.array(c, dtype=np.float64)
    m, k = a.shape
    k2, n = b.shape
    if k != k2 or out.shape != (m, n):
        raise GemmError("shape mismatch")
    for j in range(n):
        for i in range(m):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * b[p, j]
            out[i, j] = alpha * acc + beta * out[i, j]
    return out


def numpy_dgemm(
    a: "np.ndarray",
    b: "np.ndarray",
    c: "np.ndarray",
    alpha: float = 1.0,
    beta: float = 1.0,
) -> "np.ndarray":
    """``numpy``-backed reference."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    return alpha * (a @ b) + beta * c
