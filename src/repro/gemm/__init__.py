"""Functional Goto-algorithm DGEMM (blocking, packing, GEBP, parallel)."""

from repro.gemm.driver import DEFAULT_BLOCKING, dgemm
from repro.gemm.gebp import gebp, gess
from repro.gemm.packing import (
    num_slivers,
    pack_a,
    pack_b,
    packed_a_bytes,
    packed_b_bytes,
    unpack_a,
    unpack_b,
)
from repro.gemm.parallel import apportion_blocks, parallel_dgemm
from repro.gemm.pool import (
    Job,
    PoolStats,
    ThreadCounters,
    WorkerPool,
    close_shared_pool,
    get_shared_pool,
)
from repro.gemm.workspace import GemmWorkspace, get_shared_workspace
from repro.gemm.blas import gemm, syrk
from repro.gemm.level3 import symm, trmm, trsm
from repro.gemm.reference import naive_dgemm, numpy_dgemm
from repro.gemm.sgemm import sgemm, sgemm_blocking, sgemm_register_blocking
from repro.gemm.trace import GebpEvent, GemmTrace, PackEvent

__all__ = [
    "dgemm",
    "parallel_dgemm",
    "apportion_blocks",
    "WorkerPool",
    "Job",
    "PoolStats",
    "ThreadCounters",
    "get_shared_pool",
    "close_shared_pool",
    "GemmWorkspace",
    "get_shared_workspace",
    "DEFAULT_BLOCKING",
    "gebp",
    "gess",
    "pack_a",
    "pack_b",
    "unpack_a",
    "unpack_b",
    "num_slivers",
    "packed_a_bytes",
    "packed_b_bytes",
    "naive_dgemm",
    "gemm",
    "syrk",
    "trsm",
    "symm",
    "trmm",
    "sgemm",
    "sgemm_blocking",
    "sgemm_register_blocking",
    "numpy_dgemm",
    "GemmTrace",
    "PackEvent",
    "GebpEvent",
]
