"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single except clause while letting genuine
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ArchitectureError(ReproError):
    """An architecture description is inconsistent or unsupported."""


class AssemblyError(ReproError):
    """A textual A64 instruction could not be parsed or encoded."""


class RegisterAllocationError(ReproError):
    """Register allocation / rotation could not satisfy its constraints."""


class SchedulingError(ReproError):
    """Instruction scheduling could not satisfy its constraints."""


class BlockingError(ReproError):
    """Analytic block-size selection has no feasible solution."""


class SimulationError(ReproError):
    """The machine simulator was driven into an invalid state."""


class GemmError(ReproError):
    """Invalid operands or configuration for a GEMM call."""
