"""The asymmetric-partitioning exhibit (Catalán et al., big.LITTLE).

The paper's Sec. IV-C parallelization assumes symmetric cores: every
thread receives the same number of mc-slabs per panel iteration. On an
asymmetric chip that schedule is bound by the LITTLE class — the big
cores finish their equal share early and idle at the barrier. The
Catalán et al. follow-ups show that a static *architecture-aware*
partition (work proportional to per-class throughput) recovers most of
the lost performance, and that the energy story is just as interesting:
LITTLE-only runs win Gflops/W while weighted all-core runs win Gflops.

This module reproduces both headlines on the modeled chips:

- :func:`class_rates` prices each core class with its own
  :class:`~repro.sim.gemm_sim.GemmSimulator` (per-cluster register-kernel
  upper bound x per-core peak);
- :func:`partition_model` turns a placement + slab apportionment into
  modeled Gflops and energy (event energies + per-cycle idle charge at
  the barrier);
- :func:`asym_exhibit` compares the symmetric round-robin split against
  the weighted Catalán-style split on every placement of interest and
  emits the performance-vs-energy frontier, as a RunReport-ready stats
  document.

The integer mc-slab granularity is kept honest: the model apportions
whole slabs exactly like the functional engine
(:func:`repro.gemm.parallel.apportion_blocks`), so a size too small to
show the weighted win shows a tie here too, not an idealized speedup.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.arch.params import ChipParams
from repro.arch.presets import BIG_LITTLE
from repro.blocking.cache_blocking import (
    solve_cache_blocking,
    solve_class_blockings,
)
from repro.errors import SimulationError
from repro.gemm.parallel import apportion_blocks
from repro.sim.gemm_sim import GemmSimulator

_PJ = 1e-12

#: Exhibit problem sizes (M = N = K); chosen so the full run shows the
#: weighted win at realistic slab counts and the ramp below it.
EXHIBIT_SIZES = (1024, 2048, 4096)
SMOKE_SIZES = (4096,)


def class_rates(
    chip: ChipParams, kernel: str = "OpenBLAS-8x6"
) -> Dict[str, float]:
    """Modeled per-core flop/s of each core class.

    Each cluster is priced in isolation (:meth:`ChipParams.cluster_view`)
    so the register-kernel upper bound reflects that class's core; the
    rate is the bound times the class core's peak.
    """
    rates: Dict[str, float] = {}
    for index, cluster in enumerate(chip.core_clusters):
        sim = GemmSimulator(chip.cluster_view(index))
        spec = sim._resolve(kernel)
        rates[cluster.name] = (
            cluster.core.peak_flops * sim.kernel_upper_bound(spec)
        )
    return rates


def _placement(chip: ChipParams, config: str) -> List[int]:
    """Cluster index per thread for a named placement.

    ``"all"`` fills every core (fastest class first); a cluster name
    uses only that class's cores.
    """
    clusters = chip.core_clusters
    if config == "all":
        return list(chip.thread_clusters(chip.cores))
    for index, cluster in enumerate(clusters):
        if cluster.name == config:
            return [index] * cluster.cores
    raise SimulationError(
        f"unknown placement {config!r}; known: all, "
        + ", ".join(c.name for c in clusters)
    )


def partition_model(
    chip: ChipParams,
    m: int,
    n: int,
    k: int,
    placement: Sequence[int],
    weighted: bool,
    kernel: str = "OpenBLAS-8x6",
    rates: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Model one static partition: Gflops, energy, per-thread shares.

    The M dimension is cut into mc-slabs with the engine's solved
    blocking; slab counts per thread come from
    :func:`~repro.gemm.parallel.apportion_blocks` with equal weights
    (``weighted=False``, the paper's symmetric split arranged
    contiguously) or per-class modeled rates (``weighted=True``, the
    Catalán-style split). Chip time is the slowest thread; energy is
    the event-energy model plus the idle charge for every thread's wait
    at the final barrier.
    """
    clusters = chip.core_clusters
    threads = len(placement)
    if threads < 1:
        raise SimulationError("placement must contain at least one thread")
    sim = GemmSimulator(chip)
    spec = sim._resolve(kernel)
    if rates is None:
        rates = class_rates(chip, kernel)
    blk = solve_cache_blocking(chip, spec.mr, spec.nr, threads=min(
        threads, chip.cores))
    slabs = math.ceil(m / blk.mc)
    per_thread_rate = [rates[clusters[ci].name] for ci in placement]
    weights = per_thread_rate if weighted else [1.0] * threads
    counts = apportion_blocks(slabs, weights)

    flops = 2.0 * m * n * k
    flops_t = [flops * c / slabs for c in counts]
    busy_t = [f / r for f, r in zip(flops_t, per_thread_rate)]
    seconds = max(busy_t)

    fma_j = load_j = idle_j = 0.0
    for ci, f_t, b_t in zip(placement, flops_t, busy_t):
        core = clusters[ci].core
        lanes = core.doubles_per_register
        fma_j += (
            f_t / (core.flops_per_fma * lanes) * core.fma_energy_pj * _PJ
        )
        load_j += (
            f_t / spec.flops_per_group * spec.ldr_per_group
            * core.load_energy_pj * _PJ
        )
        idle_j += (
            (seconds - b_t) * core.frequency_hz * core.idle_energy_pj * _PJ
        )
    # Off-chip traffic: same panel-revisit accounting as the cycle model.
    n_jj = math.ceil(n / blk.nc)
    n_kk = math.ceil(k / blk.kc)
    bytes_total = 8.0 * (m * k * n_jj + k * n + 2 * m * n * n_kk)
    last_level = chip.cache_levels[-1]
    miss_j = (
        bytes_total / last_level.line_bytes
        * last_level.miss_energy_pj * _PJ
    )

    joules = fma_j + load_j + idle_j + miss_j
    gflops = flops / seconds / 1e9
    watts = joules / seconds
    class_slabs: Dict[str, int] = {}
    for ci, c in zip(placement, counts):
        name = clusters[ci].name
        class_slabs[name] = class_slabs.get(name, 0) + c
    return {
        "threads": threads,
        "weighted": weighted,
        "slabs": slabs,
        "counts": counts,
        "class_slabs": class_slabs,
        "seconds": seconds,
        "gflops": gflops,
        "joules": joules,
        "watts": watts,
        "gflops_per_watt": gflops / watts if watts > 0 else float("inf"),
        "energy_breakdown": {
            "fma": fma_j, "load": load_j, "miss": miss_j, "idle": idle_j,
        },
    }


def asym_exhibit(
    chip: ChipParams = BIG_LITTLE,
    kernel: str = "OpenBLAS-8x6",
    sizes: Optional[Sequence[int]] = None,
    smoke: bool = False,
) -> Dict[str, Any]:
    """The full exhibit document (RunReport ``stats`` payload).

    For each size: symmetric vs weighted all-core Gflops (the headline
    ratio) and the performance-vs-energy frontier over the placements of
    interest (each class alone, all cores symmetric, all cores
    weighted).
    """
    if sizes is None:
        sizes = SMOKE_SIZES if smoke else EXHIBIT_SIZES
    rates = class_rates(chip, kernel)
    clusters = chip.core_clusters
    blockings = {
        name: {
            "kc": blk.kc, "mc": blk.mc, "nc": blk.nc,
            "k1": blk.k1, "k2": blk.k2, "k3": blk.k3,
        }
        for name, blk in solve_class_blockings(
            chip, *_tile(kernel), threads=chip.cores
        ).items()
    }
    sizes_doc: List[Dict[str, Any]] = []
    for size in sizes:
        placements: Dict[str, Dict[str, Any]] = {}
        for cluster in clusters:
            placements[f"{cluster.name}-only"] = partition_model(
                chip, size, size, size,
                _placement(chip, cluster.name), weighted=False,
                kernel=kernel, rates=rates,
            )
        all_threads = _placement(chip, "all")
        placements["all-symmetric"] = partition_model(
            chip, size, size, size, all_threads, weighted=False,
            kernel=kernel, rates=rates,
        )
        placements["all-weighted"] = partition_model(
            chip, size, size, size, all_threads, weighted=True,
            kernel=kernel, rates=rates,
        )
        symmetric = placements["all-symmetric"]["gflops"]
        weighted = placements["all-weighted"]["gflops"]
        sizes_doc.append({
            "size": size,
            "placements": placements,
            "weighted_speedup": weighted / symmetric,
        })
    return {
        "chip": chip.name,
        "kernel": kernel,
        "asymmetric": chip.is_asymmetric,
        "classes": {
            c.name: {
                "cores": c.cores,
                "frequency_hz": c.core.frequency_hz,
                "peak_gflops_per_core": c.core.peak_flops / 1e9,
                "modeled_gflops_per_core": rates[c.name] / 1e9,
            }
            for c in clusters
        },
        "class_blockings": blockings,
        "sizes": sizes_doc,
    }


def _tile(kernel: str) -> "tuple[int, int]":
    """The (mr, nr) register tile of a registered kernel variant."""
    from repro.kernels.variants import VARIANTS

    spec = VARIANTS[kernel]
    return spec.mr, spec.nr
