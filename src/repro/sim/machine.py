"""The assembled simulated machine — a convenience facade.

Bundles the pieces the rest of :mod:`repro.sim` composes by hand: the
multi-core cache hierarchy of Fig. 1, one scoreboard core model per core,
a sequential hardware prefetcher per core, and per-core TLBs when enabled.
Useful for exploratory work and as the single place that owns the
chip-to-simulation wiring.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.errors import SimulationError
from repro.kernels.codegen import GeneratedKernel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetcher import SequentialPrefetcher
from repro.pipeline.scoreboard import ScoreboardCore


class SimulatedMachine:
    """One chip's worth of simulation state.

    Args:
        chip: Architecture description.
        with_tlb: Model per-core TLBs.
        hw_prefetch_late: Lateness of the hardware prefetchers.
    """

    def __init__(
        self,
        chip: ChipParams = XGENE,
        with_tlb: bool = False,
        hw_prefetch_late: float = 0.25,
    ) -> None:
        self.chip = chip
        self.hierarchy = MemoryHierarchy(chip, with_tlb=with_tlb)
        self.cores: List[ScoreboardCore] = [
            ScoreboardCore(chip.core) for _ in range(chip.cores)
        ]
        self.prefetchers: List[SequentialPrefetcher] = [
            SequentialPrefetcher(self.hierarchy, c, late_rate=hw_prefetch_late)
            for c in range(chip.cores)
        ]

    def core(self, index: int) -> ScoreboardCore:
        """The scoreboard model of core ``index``."""
        if not 0 <= index < self.chip.cores:
            raise SimulationError(f"core {index} out of range")
        return self.cores[index]

    def prefetcher(self, index: int) -> SequentialPrefetcher:
        if not 0 <= index < self.chip.cores:
            raise SimulationError(f"core {index} out of range")
        return self.prefetchers[index]

    def run_kernel(
        self,
        kernel: GeneratedKernel,
        a_sliver: "np.ndarray",
        b_sliver: "np.ndarray",
        c_tile: Optional["np.ndarray"] = None,
        core_id: int = 0,
    ):
        """Timing-functional micro-tile run on this machine's hierarchy.

        Returns a :class:`~repro.sim.timed_executor.TimedRun`; the
        machine's caches retain the run's footprint, so consecutive calls
        model warm-cache behaviour.
        """
        from repro.sim.timed_executor import run_timed_micro_tile

        return run_timed_micro_tile(
            kernel,
            a_sliver,
            b_sliver,
            c_tile,
            chip=self.chip,
            hierarchy=self.hierarchy,
            core_id=core_id,
        )

    def reset(self) -> None:
        """Flush caches and statistics."""
        self.hierarchy.flush()
        self.hierarchy.reset_stats()
