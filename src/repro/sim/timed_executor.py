"""Timing-functional simulation of generated kernels.

Runs a generated register kernel the way silicon would: every dynamic
instruction is executed *functionally* (producing the numeric result) and
*timed* against the machine — loads walk the cache hierarchy at their
actual addresses (software prefetches install lines; the hardware
sequential prefetcher observes the streams), and the resulting per-load
latencies feed the scoreboard's dependence-and-issue model.

This is the most detailed level of the simulator stack:

- the cost model (:mod:`repro.sim.gemm_sim`) prices structure analytically;
- the cache replay (:mod:`repro.sim.gebp_cachesim`) is event-accurate in
  addresses but not in time;
- this module is event-accurate in both values and time, at micro-tile
  scale — and is what validates the other two
  (``tests/test_timed_executor.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.errors import SimulationError
from repro.isa.executor import Executor, MachineState, Memory
from repro.isa.instructions import Instruction, Ldr, Prfm
from repro.isa.registers import DOUBLE_BYTES
from repro.kernels.codegen import (
    A_POINTER,
    B_POINTER,
    C_POINTER,
    GeneratedKernel,
)
from repro.kernels.compiled import (
    CompiledKernel,
    compilability,
    compile_kernel,
)
from repro.kernels.execute import (
    A_BASE,
    B_BASE,
    C_BASE,
    _body_load_targets,
    padded_stream_widths,
)
from repro.kernels.kernel_spec import KernelStyle
from repro.memory.batch import warm_region
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetcher import SequentialPrefetcher
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.scoreboard import PipelineResult, ScoreboardCore

#: Execution engines for the timed entry points. ``auto`` compiles when
#: the kernel supports it (see :func:`repro.kernels.compiled.compilability`)
#: and falls back to the interpreter otherwise; ``compiled`` raises on
#: non-compilable kernels; ``interpreted`` always takes the oracle path.
TIMED_ENGINES = ("auto", "compiled", "interpreted")


def _stream_widths(kernel) -> Tuple[int, int]:
    """Doubles per k-iteration of the packed A/B streams in the timed
    address space: dense for k-vectorized packing, lane-padded for the
    by-element layout (see :func:`padded_stream_widths`)."""
    spec = kernel.spec
    if spec.style is KernelStyle.K_VECTORIZED:
        return spec.mr, spec.nr
    return padded_stream_widths(spec)


def fallback_reason_slug(reason: str) -> str:
    """Metric-label slug of a :func:`compilability` reason: the part
    before the first colon, lowercased and hyphenated."""
    head = reason.split(":", 1)[0].strip().lower()
    return "-".join(head.split())


def engine_selection(
    kernel: GeneratedKernel, engine: str
) -> Tuple[str, Optional[str]]:
    """What ``engine`` resolves to for ``kernel``, without compiling.

    Returns ``(selected, fallback_reason)``: the engine that will actually
    run (``"compiled"`` or ``"interpreted"``) and, when ``engine="auto"``
    fell back to the interpreter, the :func:`compilability` reason —
    ``None`` otherwise. ``engine="compiled"`` on a non-compilable kernel
    raises, exactly like the run entry points.
    """
    if engine not in TIMED_ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; choose from {TIMED_ENGINES}"
        )
    if engine == "interpreted":
        return "interpreted", None
    reason = compilability(kernel)
    if reason is None:
        return "compiled", None
    if engine == "compiled":
        raise SimulationError(f"kernel does not compile: {reason}")
    return "interpreted", reason


def _resolve_engine(
    kernel: GeneratedKernel, engine: str
) -> Tuple[Optional[CompiledKernel], str, Optional[str]]:
    """The compiled kernel to use (``None`` for the interpreted path),
    plus the selection and fallback reason from :func:`engine_selection`."""
    selected, reason = engine_selection(kernel, engine)
    if selected == "compiled":
        return compile_kernel(kernel), selected, None
    return None, selected, reason


@dataclass
class TimedRun:
    """Result of a timing-functional micro-tile run.

    Attributes:
        c_tile: The computed ``mr x nr`` C tile.
        cycles: Scoreboard cycles for the whole run (prologue + bodies +
            epilogue).
        cycles_per_iteration: Steady-state cycles per k-iteration.
        efficiency: Fraction of the core's FMA peak achieved.
        pipeline: Full scoreboard result.
        load_latencies: Latency histogram of the kernel's demand loads
            (cycles -> count).
        engine: The engine that actually ran (``"compiled"`` or
            ``"interpreted"`` — never ``"auto"``).
        fallback_reason: When ``engine="auto"`` was requested but the
            kernel is not compilable, the :func:`~repro.kernels.compiled.
            compilability` reason the interpreter was chosen for;
            ``None`` otherwise.
        batched_fallback_accesses: Cache accesses the compiled engine's
            batched hierarchy replay had to serve through the per-access
            scalar path (non-LRU replacement policies); 0 on the
            interpreted engine and on fully batched replays.
    """

    c_tile: "np.ndarray"
    cycles: int
    cycles_per_iteration: float
    efficiency: float
    pipeline: PipelineResult
    load_latencies: Dict[int, int]
    engine: str = "interpreted"
    fallback_reason: Optional[str] = None
    batched_fallback_accesses: int = 0


def run_timed_micro_tile(
    kernel: GeneratedKernel,
    a_sliver: "np.ndarray",
    b_sliver: "np.ndarray",
    c_tile: Optional["np.ndarray"] = None,
    chip: ChipParams = XGENE,
    hierarchy: Optional[MemoryHierarchy] = None,
    core_id: int = 0,
    hw_late: float = 0.25,
    warm_l2: bool = True,
    timing_bases: Optional[Dict[int, int]] = None,
    engine: str = "auto",
    metrics: Optional[MetricsRegistry] = None,
) -> TimedRun:
    """Execute and time one micro-tile (GESS) on the simulated machine.

    Args:
        kernel: Generated even-tile kernel.
        a_sliver: Packed A sliver ``(kc, mr)``.
        b_sliver: Packed B sliver ``(kc, nr)``.
        c_tile: Initial C tile.
        chip: Architecture.
        hierarchy: Shared hierarchy (fresh private one when omitted).
        core_id: Executing core.
        hw_late: Hardware-prefetcher lateness.
        warm_l2: Pre-install the packed buffers in L2/L3 (GEBP's
            precondition: packing already wrote them there).
        timing_bases: Optional map from pointer-register index to the
            byte address the stream occupies *in the timed address
            space* — lets a caller (e.g. :func:`run_timed_gebp`) place
            many slivers at their true offsets inside shared packed
            buffers while each tile's functional memory stays local.
        engine: One of :data:`TIMED_ENGINES`. The compiled engine
            replays precompiled value/address/issue templates and is
            bit-identical to the interpreter on the C tile, the pipeline
            counters and the load-latency histogram.
        metrics: Optional registry to record engine selection, cycle and
            load counters into. ``None`` (the default) costs nothing.
    """
    spec = kernel.spec
    mr, nr = spec.mr, spec.nr
    kc = a_sliver.shape[0]
    unroll = kernel.plan.unroll
    if kc % unroll:
        raise SimulationError(f"kc={kc} must be a multiple of {unroll}")
    compiled, selected, fallback_reason = _resolve_engine(kernel, engine)
    if metrics is not None:
        metrics.inc("timed.micro_tiles")
        metrics.inc(f"timed.engine.{selected}")
        if fallback_reason is not None:
            metrics.inc("timed.auto_fallbacks")
            metrics.inc(
                "timed.auto_fallbacks."
                + fallback_reason_slug(fallback_reason)
            )

    # ---- timing state -----------------------------------------------------
    h = hierarchy or MemoryHierarchy(chip)
    line = chip.l1d.line_bytes
    wa, wb = _stream_widths(kernel)
    if warm_l2:
        _warm_micro_tile_l2(
            h, core_id, chip, kc, unroll, wa, wb, line,
            memoizable=hierarchy is None,
        )

    if compiled is not None:
        run = _run_compiled_micro_tile(
            compiled, a_sliver, b_sliver, c_tile, chip, h, core_id,
            hw_late, timing_bases,
        )
        if metrics is not None:
            metrics.inc("timed.cycles", run.cycles)
            metrics.inc("timed.demand_loads", sum(run.load_latencies.values()))
        return run

    if spec.style is KernelStyle.K_VECTORIZED:
        return _run_interpreted_kvec(
            kernel, a_sliver, b_sliver, c_tile, chip, h, core_id,
            hw_late, timing_bases, fallback_reason, metrics,
        )

    # ---- functional state (same layout as kernels.execute) ---------------
    memory = Memory()
    a_padded = np.zeros((kc + unroll, wa))
    a_padded[:kc, :mr] = a_sliver
    b_padded = np.zeros((kc + unroll, wb))
    b_padded[:kc, :nr] = b_sliver
    memory.map_region(A_BASE, a_padded)
    memory.map_region(B_BASE, b_padded)
    c0 = np.zeros((mr, nr)) if c_tile is None else np.asarray(c_tile, float)
    c_padded = np.zeros((wa, nr))
    c_padded[:mr, :] = c0
    memory.map_region(C_BASE, c_padded.T.copy())

    state = MachineState()
    executor = Executor(state, memory)

    prefetcher = SequentialPrefetcher(h, core_id, late_rate=hw_late)

    # ---- build the dynamic stream, executing functionally and recording
    # each load's latency from the hierarchy --------------------------------
    stream: List[Instruction] = []
    latencies: List[int] = []
    histogram: Dict[int, int] = {}
    functional_bases = {
        A_POINTER.index: A_BASE,
        B_POINTER.index: B_BASE,
        C_POINTER.index: C_BASE,
    }

    def timed_address(base_reg_index: int, addr: int) -> int:
        if timing_bases is None or base_reg_index not in timing_bases:
            return addr
        return timing_bases[base_reg_index] + (
            addr - functional_bases[base_reg_index]
        )

    def step(instr: Instruction) -> None:
        lat = 0
        if isinstance(instr, Ldr):
            addr = timed_address(
                instr.base.index, state.pointer(instr.base)
            )
            res = h.access_line(core_id, addr // chip.l1d.line_bytes)
            lat = res.latency_cycles
            tag = instr.tag or ""
            if tag in ("A", "B"):
                prefetcher.observe(addr // chip.l1d.line_bytes, tag)
            histogram[lat] = histogram.get(lat, 0) + 1
        elif isinstance(instr, Prfm):
            addr = timed_address(
                instr.base.index, state.pointer(instr.base) + instr.offset
            )
            h.prefetch_line(
                core_id, addr // chip.l1d.line_bytes, instr.target.level
            )
        executor.execute(instr)
        stream.append(instr)
        latencies.append(lat)

    # Prologue: C tile loads.
    state.set_pointer(C_POINTER, C_BASE)
    for instr in kernel.prologue:
        step(instr)

    # Preload + stream pointers (same rules as functional execution).
    targets, preload = _body_load_targets(kernel)
    plan = kernel.plan
    for slot in preload:
        reg = plan.register_for(slot, 0)
        idx = int(slot[1:])
        src = a_padded if slot[0] == "A" else b_padded
        state.vregs[reg][:] = src[0, 2 * idx : 2 * idx + 2]
    first = {"A": None, "B": None}
    for _i, slot, k_off in targets:
        s = slot[0]
        if first[s] is None:
            width = wa if s == "A" else wb
            base = A_BASE if s == "A" else B_BASE
            first[s] = base + (k_off * width + 2 * int(slot[1:])) * DOUBLE_BYTES
    if first["A"] is not None:
        state.set_pointer(A_POINTER, first["A"])
    if first["B"] is not None:
        state.set_pointer(B_POINTER, first["B"])

    for _body in range(kc // unroll):
        for instr in kernel.body:
            step(instr)

    state.set_pointer(C_POINTER, C_BASE)
    for instr in kernel.epilogue:
        step(instr)

    # ---- time the recorded stream on the scoreboard -----------------------
    core = ScoreboardCore(chip.core)
    result = core.run(
        stream, latency_fn=lambda _instr, i: latencies[i]
    )

    flops = kc * spec.flops_per_iter
    peak = chip.core.flops_per_cycle
    if metrics is not None:
        metrics.inc("timed.cycles", result.cycles)
        metrics.inc("timed.demand_loads", sum(histogram.values()))
    return TimedRun(
        c_tile=memory.region_at(C_BASE).reshape(nr, wa).T[:mr, :].copy(),
        cycles=result.cycles,
        cycles_per_iteration=result.cycles / kc,
        efficiency=(flops / result.cycles) / peak,
        pipeline=result,
        load_latencies=histogram,
        engine="interpreted",
        fallback_reason=fallback_reason,
    )


#: Warm-state snapshots for the micro-tile precondition (packed A/B in
#: the module L2), keyed by everything the warm stream depends on. Only
#: consulted for freshly created hierarchies, whose pre-warm state is
#: pristine by construction — restoring the snapshot is then bit-identical
#: to replaying the warm stream into the fresh hierarchy.
_WARM_MEMO: Dict[tuple, dict] = {}
_WARM_MEMO_LIMIT = 16


def _warm_micro_tile_l2(
    h: MemoryHierarchy,
    core_id: int,
    chip: ChipParams,
    kc: int,
    unroll: int,
    wa: int,
    wb: int,
    line: int,
    memoizable: bool,
) -> None:
    """Establish GEBP's precondition (packed buffers L2-resident) and
    zero the stats, restoring a memoized snapshot when possible."""
    key = (chip, core_id, kc, unroll, wa, wb, line)
    if memoizable:
        snap = _WARM_MEMO.get(key)
        if snap is not None:
            h.restore(snap)
            return
    module_l2 = h.l2[h.module_of(core_id)]
    warm_region(module_l2, A_BASE, (kc + unroll) * wa * DOUBLE_BYTES, line)
    warm_region(module_l2, B_BASE, (kc + unroll) * wb * DOUBLE_BYTES, line)
    h.reset_stats()
    if memoizable:
        if len(_WARM_MEMO) >= _WARM_MEMO_LIMIT:
            _WARM_MEMO.clear()
        _WARM_MEMO[key] = h.snapshot()


def _run_interpreted_kvec(
    kernel,
    a_sliver: "np.ndarray",
    b_sliver: "np.ndarray",
    c_tile: Optional["np.ndarray"],
    chip: ChipParams,
    h: MemoryHierarchy,
    core_id: int,
    hw_late: float,
    timing_bases: Optional[Dict[int, int]],
    fallback_reason: Optional[str],
    metrics: Optional[MetricsRegistry],
) -> TimedRun:
    """The interpreted path for k-vectorized kernels.

    Mirrors :func:`repro.kernels.atlas.execute_atlas_micro_tile` but in
    the timed address space: the preamble's A/B loads are timed and
    observed by the hardware prefetcher exactly like body loads, the
    epilogue's ``faddp``/``str`` pairs go through the scoreboard, and C
    is a store-only stream (the tile starts at zero in registers and the
    initial C is added after readback — ATLAS's beta handling).
    """
    spec = kernel.spec
    mr, nr = spec.mr, spec.nr
    kc = a_sliver.shape[0]
    unroll = kernel.plan.unroll
    groups = kc // unroll
    c_rows = 2 * spec.a_regs_per_copy

    ga = a_sliver.reshape(groups, unroll, mr).transpose(0, 2, 1)
    gb = b_sliver.reshape(groups, unroll, nr).transpose(0, 2, 1)

    memory = Memory()
    # One padding group of zeros: the last body pass preloads past the end.
    memory.map_region(
        A_BASE, np.vstack([ga.reshape(-1, 2), np.zeros((mr, 2))])
    )
    memory.map_region(
        B_BASE, np.vstack([gb.reshape(-1, 2), np.zeros((nr, 2))])
    )
    c0 = np.zeros((mr, nr)) if c_tile is None else np.asarray(c_tile, float)
    memory.map_region(C_BASE, np.zeros((c_rows, nr)).T.copy())

    state = MachineState()
    executor = Executor(state, memory)
    prefetcher = SequentialPrefetcher(h, core_id, late_rate=hw_late)

    stream: List[Instruction] = []
    latencies: List[int] = []
    histogram: Dict[int, int] = {}
    functional_bases = {
        A_POINTER.index: A_BASE,
        B_POINTER.index: B_BASE,
        C_POINTER.index: C_BASE,
    }

    def timed_address(base_reg_index: int, addr: int) -> int:
        if timing_bases is None or base_reg_index not in timing_bases:
            return addr
        return timing_bases[base_reg_index] + (
            addr - functional_bases[base_reg_index]
        )

    def step(instr: Instruction) -> None:
        lat = 0
        if isinstance(instr, Ldr):
            addr = timed_address(
                instr.base.index, state.pointer(instr.base)
            )
            res = h.access_line(core_id, addr // chip.l1d.line_bytes)
            lat = res.latency_cycles
            tag = instr.tag or ""
            if tag in ("A", "B"):
                prefetcher.observe(addr // chip.l1d.line_bytes, tag)
            histogram[lat] = histogram.get(lat, 0) + 1
        elif isinstance(instr, Prfm):
            addr = timed_address(
                instr.base.index, state.pointer(instr.base) + instr.offset
            )
            h.prefetch_line(
                core_id, addr // chip.l1d.line_bytes, instr.target.level
            )
        executor.execute(instr)
        stream.append(instr)
        latencies.append(lat)

    state.set_pointer(A_POINTER, A_BASE)
    state.set_pointer(B_POINTER, B_BASE)
    for instr in kernel.prologue:
        step(instr)
    for _g in range(groups):
        for instr in kernel.body:
            step(instr)
    # The scratch register must be zero for the last row-pair's faddp.
    state.vregs[0][:] = 0.0
    state.set_pointer(C_POINTER, C_BASE)
    for instr in kernel.epilogue:
        step(instr)

    core = ScoreboardCore(chip.core)
    result = core.run(stream, latency_fn=lambda _instr, i: latencies[i])

    flops = kc * spec.flops_per_iter
    peak = chip.core.flops_per_cycle
    if metrics is not None:
        metrics.inc("timed.cycles", result.cycles)
        metrics.inc("timed.demand_loads", sum(histogram.values()))
    stored = memory.region_at(C_BASE).reshape(nr, c_rows).T
    return TimedRun(
        c_tile=c0 + stored[:mr, :],
        cycles=result.cycles,
        cycles_per_iteration=result.cycles / kc,
        efficiency=(flops / result.cycles) / peak,
        pipeline=result,
        load_latencies=histogram,
        engine="interpreted",
        fallback_reason=fallback_reason,
    )


def _run_compiled_micro_tile(
    compiled: CompiledKernel,
    a_sliver: "np.ndarray",
    b_sliver: "np.ndarray",
    c_tile: Optional["np.ndarray"],
    chip: ChipParams,
    h: MemoryHierarchy,
    core_id: int,
    hw_late: float,
    timing_bases: Optional[Dict[int, int]],
) -> TimedRun:
    """The compiled replay of one micro-tile (see ``engine="compiled"``).

    Values, addresses and issue timing all come from per-kernel templates:
    the C tile from the ordered accumulation, the load latencies from one
    batched hierarchy replay of the relocated tile trace, the pipeline
    counters from the template scoreboard. Bit-identical to the
    interpreted path by construction (and by differential test).
    """
    kernel = compiled.kernel
    spec = kernel.spec
    kc = a_sliver.shape[0]
    n_bodies = kc // kernel.plan.unroll
    line = chip.l1d.line_bytes

    bases = timing_bases or {}
    trace = compiled.tile_trace(
        n_bodies,
        bases.get(A_POINTER.index, A_BASE),
        bases.get(B_POINTER.index, B_BASE),
        bases.get(C_POINTER.index, C_BASE),
        hw_late,
        line,
    )
    fallback0 = h.batched_fallback_accesses()
    _levels, lat_arr = h.run_batch_levels(core_id, trace)
    fallback = h.batched_fallback_accesses() - fallback0
    latencies = [int(x) for x in lat_arr]
    values, counts = np.unique(lat_arr, return_counts=True)
    histogram = {int(v): int(n) for v, n in zip(values, counts)}

    core = ScoreboardCore(chip.core)
    result = core.run_compiled(
        compiled.segments(n_bodies),
        latencies,
        memo=compiled.memo_for(chip.core),
    )

    flops = kc * spec.flops_per_iter
    peak = chip.core.flops_per_cycle
    return TimedRun(
        c_tile=compiled.compute_tile(a_sliver, b_sliver, c_tile),
        cycles=result.cycles,
        cycles_per_iteration=result.cycles / kc,
        efficiency=(flops / result.cycles) / peak,
        pipeline=result,
        load_latencies=histogram,
        engine="compiled",
        fallback_reason=None,
        batched_fallback_accesses=fallback,
    )


@dataclass
class GebpTimedRun:
    """Result of a timed full-GEBP run.

    Attributes:
        c_panel: The computed ``mc x nc`` C panel.
        cycles: Total cycles across all micro-tiles.
        cycles_per_iteration: Average cycles per k-iteration.
        efficiency: Fraction of the core's FMA peak (padding counted as
            overhead, so ragged panels show their real cost).
        tile_cycles: Per-(i, j) micro-tile cycle counts.
        engine: The engine every micro-tile ran on (``"compiled"`` or
            ``"interpreted"`` — never ``"auto"``).
        fallback_reason: Why ``engine="auto"`` fell back to the
            interpreter, or ``None``.
    """

    c_panel: "np.ndarray"
    cycles: int
    cycles_per_iteration: float
    efficiency: float
    tile_cycles: List[int]
    engine: str = "interpreted"
    fallback_reason: Optional[str] = None


def run_timed_gebp_dual(
    kernel: GeneratedKernel,
    packed_a0: "np.ndarray",
    packed_a1: "np.ndarray",
    packed_b: "np.ndarray",
    chip: ChipParams = XGENE,
    cores: Tuple[int, int] = (0, 1),
    hw_late: float = 0.25,
    hierarchy: Optional[MemoryHierarchy] = None,
    engine: str = "auto",
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[GebpTimedRun, GebpTimedRun]:
    """Two cores of one module run their GEBPs interleaved tile-by-tile.

    This is the eq.-(19) experiment at instruction level: each core owns
    its packed A block, both share the packed B panel, and both A blocks
    compete for the *same physical L2*. With the serial mc the two blocks
    overflow it and the A streams fall back to L3/DRAM latencies (visible
    in the load histograms); with the parallel mc they coexist — the
    Table VI phenomenon reproduced cycle by cycle.

    Args:
        kernel: Generated even-tile kernel (both cores run it).
        packed_a0, packed_a1: Each core's packed A block ``(na, kc, mr)``.
        packed_b: The shared packed B panel ``(nb, kc, nr)``.
        chip: Architecture.
        cores: The two core ids; must live on one module.
        hw_late: Hardware-prefetcher lateness.
        hierarchy: Pass a fresh hierarchy to inspect its statistics
            afterwards (the shared L2's miss counts are where the
            overflow shows; the run's timing is optimistic because the
            timed executor treats prefetches as always timely).
        engine: One of :data:`TIMED_ENGINES`, forwarded to every
            micro-tile run.

    Returns:
        One :class:`GebpTimedRun` per core (C panels start at zero).
    """
    spec = kernel.spec
    mr, nr = spec.mr, spec.nr
    selected, fallback_reason = engine_selection(kernel, engine)
    if packed_a0.shape != packed_a1.shape:
        raise SimulationError("both cores need equally-shaped A blocks")
    na, kc, _ = packed_a0.shape
    nb = packed_b.shape[0]
    h = hierarchy or MemoryHierarchy(chip)
    if h.module_of(cores[0]) != h.module_of(cores[1]):
        raise SimulationError("cores must share a module (and its L2)")

    line = chip.l1d.line_bytes
    elem = 8
    wa, wb = _stream_widths(kernel)
    a_sliver_bytes = kc * wa * elem
    b_sliver_bytes = kc * wb * elem
    a_bases = {cores[0]: A_BASE, cores[1]: A_BASE + (1 << 26)}
    module_l2 = h.l2[h.module_of(cores[0])]
    for cid in cores:
        warm_region(module_l2, a_bases[cid], na * a_sliver_bytes, line)
    if h.l3 is not None:
        warm_region(h.l3, B_BASE, nb * b_sliver_bytes, line)
    h.reset_stats()

    mc, nc = na * mr, nb * nr
    panels = {cid: np.zeros((mc, nc)) for cid in cores}
    cycles = {cid: [] for cid in cores}
    c_bases = {cores[0]: 0x4000000, cores[1]: 0x5000000}
    packed = {cores[0]: packed_a0, cores[1]: packed_a1}

    for j in range(nb):
        for i in range(na):
            for cid in cores:
                tile = panels[cid][
                    i * mr : (i + 1) * mr, j * nr : (j + 1) * nr
                ]
                bases = {
                    A_POINTER.index: a_bases[cid] + i * a_sliver_bytes,
                    B_POINTER.index: B_BASE + j * b_sliver_bytes,
                    C_POINTER.index: c_bases[cid]
                    + (j * nr * mc + i * mr) * elem,
                }
                run = run_timed_micro_tile(
                    kernel,
                    packed[cid][i],
                    packed_b[j],
                    tile,
                    chip=chip,
                    hierarchy=h,
                    core_id=cid,
                    hw_late=hw_late,
                    warm_l2=False,
                    timing_bases=bases,
                    engine=engine,
                    metrics=metrics,
                )
                panels[cid][
                    i * mr : (i + 1) * mr, j * nr : (j + 1) * nr
                ] = run.c_tile
                cycles[cid].append(run.cycles)

    iters = na * nb * kc
    flops = 2 * mc * nc * kc
    out = []
    for cid in cores:
        total = sum(cycles[cid])
        out.append(
            GebpTimedRun(
                c_panel=panels[cid],
                cycles=total,
                cycles_per_iteration=total / iters,
                efficiency=(flops / total) / chip.core.flops_per_cycle,
                tile_cycles=cycles[cid],
                engine=selected,
                fallback_reason=fallback_reason,
            )
        )
    return out[0], out[1]


def run_timed_gebp(
    kernel: GeneratedKernel,
    packed_a: "np.ndarray",
    packed_b: "np.ndarray",
    c_panel: Optional["np.ndarray"] = None,
    chip: ChipParams = XGENE,
    core_id: int = 0,
    hw_late: float = 0.25,
    engine: str = "auto",
    metrics: Optional[MetricsRegistry] = None,
) -> GebpTimedRun:
    """Execute and time a whole GEBP (layers 5-7) on one simulated core.

    The packed buffers live at their true offsets in the timed address
    space — A slivers consecutive in one L2-resident block, B slivers
    consecutive in one panel — so cross-tile cache reuse (the B sliver
    surviving across the A-sliver loop, A slivers evicting each other) is
    captured exactly.

    Args:
        kernel: Generated even-tile kernel.
        packed_a: Output of :func:`repro.gemm.packing.pack_a`,
            ``(na, kc, mr)``.
        packed_b: Output of :func:`repro.gemm.packing.pack_b`,
            ``(nb, kc, nr)``.
        c_panel: Initial ``na*mr x nb*nr`` C panel (zeros when omitted).
        chip: Architecture.
        core_id: Executing core.
        hw_late: Hardware-prefetcher lateness.
        engine: One of :data:`TIMED_ENGINES`, forwarded to every
            micro-tile run.
    """
    spec = kernel.spec
    mr, nr = spec.mr, spec.nr
    na, kc, mr_in = packed_a.shape
    nb, kc_b, nr_in = packed_b.shape
    if (mr_in, nr_in) != (mr, nr) or kc != kc_b:
        raise SimulationError("packed buffers do not match the kernel")
    selected, fallback_reason = engine_selection(kernel, engine)
    mc, nc = na * mr, nb * nr
    if c_panel is None:
        c_panel = np.zeros((mc, nc))
    c_panel = np.array(c_panel, dtype=np.float64)
    if c_panel.shape != (mc, nc):
        raise SimulationError(f"C panel must be {mc}x{nc}")

    h = MemoryHierarchy(chip)
    # GEBP's precondition: packing placed A in the L2 and B in the L3.
    line = chip.l1d.line_bytes
    elem = 8
    wa, wb = _stream_widths(kernel)
    a_bytes_per_sliver = kc * wa * elem
    b_bytes_per_sliver = kc * wb * elem
    warm_region(
        h.l2[h.module_of(core_id)], A_BASE, na * a_bytes_per_sliver, line
    )
    if h.l3 is not None:
        warm_region(h.l3, B_BASE, nb * b_bytes_per_sliver, line)
    h.reset_stats()

    tile_cycles: List[int] = []
    c_base_panel = 0x2000000
    for j in range(nb):
        for i in range(na):
            tile = c_panel[i * mr : (i + 1) * mr, j * nr : (j + 1) * nr]
            bases = {
                A_POINTER.index: A_BASE + i * a_bytes_per_sliver,
                B_POINTER.index: B_BASE + j * b_bytes_per_sliver,
                C_POINTER.index: c_base_panel
                + (j * nr * mc + i * mr) * elem,
            }
            run = run_timed_micro_tile(
                kernel,
                packed_a[i],
                packed_b[j],
                tile,
                chip=chip,
                hierarchy=h,
                core_id=core_id,
                hw_late=hw_late,
                warm_l2=False,
                timing_bases=bases,
                engine=engine,
                metrics=metrics,
            )
            c_panel[i * mr : (i + 1) * mr, j * nr : (j + 1) * nr] = run.c_tile
            tile_cycles.append(run.cycles)

    total = sum(tile_cycles)
    iters = na * nb * kc
    flops = 2 * mc * nc * kc
    return GebpTimedRun(
        c_panel=c_panel,
        cycles=total,
        cycles_per_iteration=total / iters,
        efficiency=(flops / total) / chip.core.flops_per_cycle,
        tile_cycles=tile_cycles,
        engine=selected,
        fallback_reason=fallback_reason,
    )
