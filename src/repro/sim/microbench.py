"""LDR:FMLA micro-benchmark (paper Sec. V-A, Table IV).

The paper measures the efficiency of instruction mixes whose data stays in
the L1 cache, for varying LDR:FMLA ratios, and uses the results as upper
bounds for the DGEMM kernels. We regenerate the experiment two ways:

- **structural**: build the mix as an actual instruction stream
  (independent FMLAs, loads evenly interleaved, exactly as the paper
  describes) and run it through the scoreboard core — this gives the
  *structural* bound (FMA-pipe and port limits only);
- **calibrated**: apply the interference model, which adds the empirical
  L1-port/issue contention the scoreboard's clean port model cannot see.

``run_microbench`` returns both, so Table IV's bench shows model vs paper
side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.errors import SimulationError
from repro.isa.instructions import Fmla, Instruction, Ldr
from repro.isa.registers import VLane, VReg, XReg
from repro.pipeline.interference import LoadInterferenceModel
from repro.pipeline.scoreboard import ScoreboardCore

#: The ratios of the paper's Table IV, in its column order.
TABLE_IV_RATIOS: Tuple[Tuple[int, int], ...] = (
    (1, 1),
    (1, 2),
    (6, 16),
    (1, 3),
    (7, 24),
    (1, 4),
    (1, 5),
)

#: The paper's measured efficiencies for those ratios.
TABLE_IV_PAPER = {
    (1, 1): 0.630,
    (1, 2): 0.809,
    (6, 16): 0.877,
    (1, 3): 0.887,
    (7, 24): 0.915,
    (1, 4): 0.942,
    (1, 5): 0.952,
}


def build_mix(loads: int, fmas: int, length: int = 120) -> List[Instruction]:
    """An independent, evenly-interleaved LDR/FMLA stream.

    Instructions are data-independent ("the instructions are independent
    and evenly distributed, to avoid any effect of instruction latency"),
    cycling destination registers so no RAW chains form.
    """
    if loads < 0 or fmas <= 0:
        raise SimulationError("need fmas > 0 and loads >= 0")
    total_units = loads + fmas
    reps = max(1, length // total_units)
    stream: List[Instruction] = []
    acc = 8  # accumulators rotate through v8..v31
    ldst = 0  # load destinations rotate through v0..v3
    for _ in range(reps):
        # Spread loads evenly among the FMLAs of one unit.
        positions = {
            int(i * fmas / loads): None for i in range(loads)
        } if loads else {}
        for f in range(fmas):
            if f in positions:
                stream.append(
                    Ldr(dst=VReg(ldst % 4), base=XReg(14 + ldst % 2))
                )
                ldst += 1
            stream.append(
                Fmla(
                    acc=VReg(8 + acc % 24),
                    multiplicand=VReg(4),
                    multiplier=VLane(VReg(5), acc % 2),
                )
            )
            acc += 1
        # Any loads not placed inside (loads > fmas) trail the unit.
        for _extra in range(max(0, loads - fmas)):
            stream.append(Ldr(dst=VReg(ldst % 4), base=XReg(14 + ldst % 2)))
            ldst += 1
    return stream


@dataclass(frozen=True)
class MicrobenchRow:
    """One Table IV row.

    Attributes:
        loads, fmas: The LDR:FMLA ratio.
        structural_efficiency: Scoreboard-only bound.
        model_efficiency: Calibrated interference-model efficiency.
        paper_efficiency: Published value (None for non-paper ratios).
    """

    loads: int
    fmas: int
    structural_efficiency: float
    model_efficiency: float
    paper_efficiency: float = float("nan")

    @property
    def ratio_label(self) -> str:
        return f"{self.loads}:{self.fmas}"


def run_microbench(
    ratios: Sequence[Tuple[int, int]] = TABLE_IV_RATIOS,
    chip: ChipParams = XGENE,
    interference: LoadInterferenceModel = None,
) -> List[MicrobenchRow]:
    """Regenerate the Table IV ladder."""
    interference = interference or LoadInterferenceModel()
    core = ScoreboardCore(chip.core)
    rows = []
    for loads, fmas in ratios:
        mix = build_mix(loads, fmas)
        per_pass = core.steady_state_cycles_per_iteration(mix)
        flops = sum(i.flops for i in mix)
        structural = (flops / per_pass) / chip.core.flops_per_cycle
        model = interference.efficiency(loads, fmas)
        rows.append(
            MicrobenchRow(
                loads=loads,
                fmas=fmas,
                structural_efficiency=structural,
                model_efficiency=model,
                paper_efficiency=TABLE_IV_PAPER.get((loads, fmas), float("nan")),
            )
        )
    return rows
