"""Performance simulation: microbench, residency analysis, GEMM cost model."""

from repro.sim.cache_fit import (
    Residency,
    StreamCosts,
    analyze_residency,
    fill_latency,
    stream_costs,
)
from repro.sim.gebp_cachesim import (
    ENGINES,
    GebpCacheResult,
    gebp_traces,
    simulate_gebp_cache,
)
from repro.sim.gemm_sim import GemmPerformance, GemmSimulator
from repro.sim.machine import SimulatedMachine
from repro.sim.microbench import (
    TABLE_IV_PAPER,
    TABLE_IV_RATIOS,
    MicrobenchRow,
    build_mix,
    run_microbench,
)
from repro.sim.params import DEFAULT_SIM_PARAMS, SimParams
from repro.sim.synthetic_trace import micro_tiles, synthesize_trace
from repro.sim.timed_executor import (
    TIMED_ENGINES,
    GebpTimedRun,
    TimedRun,
    run_timed_gebp,
    run_timed_gebp_dual,
    run_timed_micro_tile,
)

__all__ = [
    "GemmSimulator",
    "SimulatedMachine",
    "GemmPerformance",
    "SimParams",
    "DEFAULT_SIM_PARAMS",
    "Residency",
    "StreamCosts",
    "analyze_residency",
    "stream_costs",
    "fill_latency",
    "simulate_gebp_cache",
    "gebp_traces",
    "ENGINES",
    "GebpCacheResult",
    "run_microbench",
    "build_mix",
    "MicrobenchRow",
    "TABLE_IV_RATIOS",
    "TABLE_IV_PAPER",
    "synthesize_trace",
    "TimedRun",
    "GebpTimedRun",
    "TIMED_ENGINES",
    "run_timed_gebp",
    "run_timed_gebp_dual",
    "run_timed_micro_tile",
    "micro_tiles",
]
