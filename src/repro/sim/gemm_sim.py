"""The composed DGEMM performance model.

Predicts cycles (hence Gflops and efficiency) for a kernel variant, a
blocking, a problem size and a thread count on the modeled chip, by pricing
the structural trace of the actual Goto loop nest:

1. **Register kernel** — per update group, the calibrated interference
   model gives the FMA-pipe cycles including the partially-overlapped
   L1-to-register loads (this alone reproduces the Table IV upper bounds).
2. **Stream fills** — the residency analysis decides which cache level
   feeds the A/B streams under the given blocking, sharing and problem
   size; exposed fill latency is charged per k-iteration, attenuated by
   the kernel's prefetch-hide class (rotated kernels hide more than the
   static or register-starved ones — the Fig. 13 mechanism).
3. **C updates** — each micro-tile's C loads cannot overlap compute
   (Sec. IV-B); stores can and are only counted as traffic.
4. **Packing** — every pack event is a streaming copy at a fixed
   cycles-per-word cost, charged to the packing thread.
5. **Parallel composition** — per-thread cycles are summed from that
   thread's events; chip time is the slowest thread plus barrier costs,
   bounded below by the DRAM-bandwidth time of the total off-chip traffic.

Edge effects need no special casing: the synthetic trace carries the real
(clamped) block extents, and padded register tiles execute at full-tile
cost, which is exactly what the zero-padded packed buffers do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import (
    CacheBlocking,
    goto_blocking,
    solve_cache_blocking,
)
from repro.errors import SimulationError
from repro.gemm.trace import GemmTrace
from repro.kernels.kernel_spec import KernelSpec
from repro.kernels.variants import VARIANTS
from repro.obs.metrics import MetricsRegistry
from repro.sim.cache_fit import Residency, analyze_residency, stream_costs
from repro.sim.energy import dgemm_energy
from repro.sim.gebp_cachesim import GebpCacheResult, simulate_gebp_cache
from repro.sim.params import DEFAULT_SIM_PARAMS, SimParams
from repro.sim.synthetic_trace import micro_tiles, synthesize_trace


@dataclass(frozen=True)
class GemmPerformance:
    """Predicted performance of one DGEMM execution.

    Attributes:
        kernel: Variant name.
        m, n, k: Problem sizes.
        threads: Worker count.
        cycles: Chip cycles from start to finish.
        flops: Useful floating-point operations (2*m*n*k).
        gflops: Achieved Gflop/s.
        efficiency: Fraction of the peak of ``threads`` cores.
        l1_loads: Retired 128-bit L1 loads (the Fig. 15 counter).
        breakdown: Cycle shares by component (diagnostic).
        blocking: The blocking used.
        joules: Modeled energy of the execution (simple event-energy
            model, :mod:`repro.sim.energy`).
        gflops_per_watt: Modeled energy efficiency.
        energy_breakdown: Joules by component (diagnostic).
    """

    kernel: str
    m: int
    n: int
    k: int
    threads: int
    cycles: float
    flops: int
    gflops: float
    efficiency: float
    l1_loads: float
    breakdown: Dict[str, float]
    blocking: CacheBlocking
    joules: float = 0.0
    gflops_per_watt: float = 0.0
    energy_breakdown: Dict[str, float] = field(default_factory=dict)


class GemmSimulator:
    """Cost model for DGEMM on the simulated chip.

    Args:
        chip: Architecture description.
        params: Calibration constants (see :mod:`repro.sim.params`).
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when set, :meth:`simulate`, :meth:`cache_sim` and
            :meth:`timed_kernel` record counters and span timings into it
            (and forward it to the engines they wrap). ``None`` adds no
            work.
    """

    def __init__(
        self,
        chip: ChipParams = XGENE,
        params: SimParams = DEFAULT_SIM_PARAMS,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.chip = chip
        self.params = params
        self.metrics = metrics

    # -- kernel resolution -----------------------------------------------------

    def _resolve(self, kernel) -> KernelSpec:
        """Accept a registered variant name or a :class:`KernelSpec`.

        Passing a spec directly lets search layers (:mod:`repro.tune`)
        price arbitrary enumerated tiles without registering them in
        :data:`~repro.kernels.variants.VARIANTS`.
        """
        if isinstance(kernel, KernelSpec):
            return kernel
        try:
            return VARIANTS[kernel]
        except KeyError:
            raise SimulationError(
                f"unknown kernel {kernel!r}; choose from {sorted(VARIANTS)}"
            ) from None

    @staticmethod
    def _label(kernel) -> str:
        return kernel.name if isinstance(kernel, KernelSpec) else kernel

    def default_blocking(
        self, kernel, threads: int
    ) -> CacheBlocking:
        """The blocking each implementation would choose.

        OpenBLAS variants use the paper's associativity-aware engine;
        ATLAS uses the half-cache heuristic its auto-tuner approximates.
        """
        spec = self._resolve(kernel)
        if self._label(kernel).startswith("ATLAS"):
            return goto_blocking(self.chip, spec.mr, spec.nr, threads=threads)
        return solve_cache_blocking(
            self.chip, spec.mr, spec.nr, threads=threads
        )

    def _window_limited(self, spec: KernelSpec) -> bool:
        return (not spec.rotated) or spec.preload_window_limited

    # -- event-accurate cache replay ---------------------------------------------

    def cache_sim(
        self,
        kernel: str,
        threads: int = 1,
        blocking: Optional[CacheBlocking] = None,
        engine: str = "auto",
        **kwargs,
    ) -> GebpCacheResult:
        """Event-accurate cache replay of one GEBP slice for ``kernel``.

        Complements :meth:`simulate`'s analytic model with the
        set-associative simulator behind Table VII. ``blocking`` defaults
        to :meth:`default_blocking` for ``threads``; remaining keyword
        arguments (``core``, ``hierarchy``, ``nc_slice``, prefetch
        knobs, ``seed``) pass through to
        :func:`repro.sim.gebp_cachesim.simulate_gebp_cache`.
        """
        spec = self._resolve(kernel)
        blk = blocking or self.default_blocking(kernel, threads)
        kwargs.setdefault("metrics", self.metrics)
        return simulate_gebp_cache(
            spec, blk, chip=self.chip, engine=engine, **kwargs
        )

    def timed_kernel(
        self,
        kernel: str,
        kc: Optional[int] = None,
        engine: str = "auto",
        hw_late: float = 0.25,
        seed: int = 0,
    ):
        """Timing-functional run of one micro-tile of ``kernel``.

        The deepest level of the simulator stack: the generated kernel is
        executed instruction by instruction (or via the bit-identical
        compiled engine) against the cache hierarchy and scoreboard,
        giving measured — not modeled — cycles, stalls and load-latency
        histograms. ``kc`` defaults to the kernel's solved blocking depth
        rounded to the unroll; operands are seeded random slivers.

        Args:
            kernel: Variant name from :data:`repro.kernels.VARIANTS`.
            kc: Blocking depth (multiple of the kernel's unroll).
            engine: ``auto`` | ``compiled`` | ``interpreted`` (see
                :data:`repro.sim.timed_executor.TIMED_ENGINES`).
            hw_late: Hardware-prefetcher lateness.
            seed: Operand RNG seed.

        Returns:
            A :class:`repro.sim.timed_executor.TimedRun`.
        """
        import numpy as np

        from repro.kernels.variants import get_variant
        from repro.sim.timed_executor import run_timed_micro_tile

        spec = self._resolve(kernel)
        generated = get_variant(kernel)
        if kc is None:
            blk = self.default_blocking(kernel, threads=1)
            unroll = generated.plan.unroll
            kc = max(unroll, (blk.kc // unroll) * unroll)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((kc, spec.mr))
        b = rng.standard_normal((kc, spec.nr))
        return run_timed_micro_tile(
            generated, a, b, chip=self.chip, engine=engine, hw_late=hw_late,
            metrics=self.metrics,
        )

    # -- per-iteration kernel cost ----------------------------------------------

    def kernel_group_cycles(self, spec: KernelSpec) -> float:
        """Interference-model cycles of one update group (L1-resident)."""
        return self.params.interference.cycles(
            spec.ldr_per_group, spec.fmla_per_group
        )

    def kernel_upper_bound(self, spec: KernelSpec) -> float:
        """The Table-IV-style efficiency upper bound of the register
        kernel (91.5% for 8x6)."""
        core = self.chip.core
        peak_per_group = spec.flops_per_group / core.flops_per_cycle
        return peak_per_group / self.kernel_group_cycles(spec)

    # -- main entry point --------------------------------------------------------

    def simulate(
        self,
        kernel,
        m: int,
        n: int,
        k: int,
        threads: int = 1,
        blocking: Optional[CacheBlocking] = None,
        trace: Optional[GemmTrace] = None,
        prefetch: bool = True,
        parallel_axis: str = "m",
    ) -> GemmPerformance:
        """Predict one DGEMM execution.

        Args:
            kernel: Variant name from :data:`repro.kernels.VARIANTS`, or a
                :class:`KernelSpec` for an unregistered candidate tile
                (the performance record is labeled with ``spec.name``).
            m, n, k: Problem sizes.
            threads: Worker count (1..chip.cores).
            blocking: Override block sizes (Table VI's experiment).
            trace: Use a pre-recorded structural trace instead of
                synthesizing one (e.g. from the functional implementation).
            prefetch: Software prefetching enabled.
            parallel_axis: ``"m"`` (the paper's layer-3 split, one shared
                B panel) or ``"n"`` (layer-1 split, one B panel per
                thread — the Fig. 9 ablation).
        """
        if not 1 <= threads <= self.chip.cores:
            raise SimulationError(f"threads {threads} out of range")
        if min(m, n, k) <= 0:
            raise SimulationError("m, n, k must be positive")
        if parallel_axis not in ("m", "n"):
            raise SimulationError("parallel_axis must be 'm' or 'n'")
        spec = self._resolve(kernel)
        label = self._label(kernel)
        blk = blocking or self.default_blocking(kernel, threads)
        if trace is None:
            trace = synthesize_trace(m, n, k, blk, threads, axis=parallel_axis)
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("gemm_sim.simulations")
            metrics.observe("gemm_sim.gebp_events", len(trace.gebps))
            with metrics.span("gemm_sim.simulate"):
                return self._simulate_priced(
                    label, m, n, k, threads, blk, trace, spec, prefetch,
                    parallel_axis,
                )
        return self._simulate_priced(
            label, m, n, k, threads, blk, trace, spec, prefetch,
            parallel_axis,
        )

    def _simulate_priced(
        self,
        kernel: str,
        m: int,
        n: int,
        k: int,
        threads: int,
        blk: CacheBlocking,
        trace: GemmTrace,
        spec: KernelSpec,
        prefetch: bool,
        parallel_axis: str,
    ) -> GemmPerformance:
        """Price a resolved (blocking, trace) pair — see :meth:`simulate`."""

        hide = self.params.hide_fraction(
            self._window_limited(spec), prefetching=prefetch
        )
        group_cycles = self.kernel_group_cycles(spec)
        kg = spec.k_iters_per_group

        # Cache residency/stream costs per distinct GEBP shape.
        cost_cache: Dict[Tuple[int, int, int], Tuple[float, float]] = {}

        def event_costs(mcur: int, kcur: int, ncur: int) -> Tuple[float, float]:
            key = (mcur, kcur, ncur)
            if key not in cost_cache:
                eff_blk = CacheBlocking(
                    mr=blk.mr, nr=blk.nr,
                    kc=kcur, mc=mcur, nc=ncur,
                    k1=blk.k1, k2=blk.k2, k3=blk.k3,
                )
                res = analyze_residency(
                    self.chip, eff_blk, threads=threads, m=m, n=n,
                    b_panels=threads if parallel_axis == "n" else 1,
                )
                sc = stream_costs(
                    self.chip, spec, eff_blk, res, hide,
                    hide_b=self.params.prefetch_hide_b_stream,
                )
                l2_sharers = max(1, math.ceil(threads / self.chip.modules))
                a_lines = spec.mr * 8 / self.chip.l1d.line_bytes
                contention = (
                    a_lines
                    * self.params.l2_contention_cycles_per_line
                    * (l2_sharers - 1)
                )
                per_iter_fill = sc.a_fill + sc.b_fill + contention
                per_tile_c = sc.c_update * kcur
                cost_cache[key] = (per_iter_fill, per_tile_c)
            return cost_cache[key]

        per_thread: Dict[int, float] = {t: 0.0 for t in range(threads)}
        kernel_cycles = 0.0
        fill_cycles = 0.0
        c_cycles = 0.0
        l1_loads = 0.0

        for ev in trace.gebps:
            tiles = micro_tiles(ev.mc, ev.nc, spec.mr, spec.nr)
            groups = math.ceil(ev.kc / kg)
            per_iter_fill, per_tile_c = event_costs(ev.mc, ev.kc, ev.nc)
            kc_part = tiles * groups * group_cycles
            fl_part = tiles * ev.kc * per_iter_fill
            c_part = tiles * per_tile_c
            per_thread[ev.thread] += kc_part + fl_part + c_part
            kernel_cycles += kc_part
            fill_cycles += fl_part
            c_cycles += c_part
            l1_loads += tiles * (
                groups * spec.ldr_per_group + spec.mr * spec.nr / 2.0
            )

        # Packing: B packs are cooperative (split across threads), A packs
        # belong to their thread. Each pack streams its words once.
        pack_cycles = 0.0
        for p in trace.packs:
            words = p.rows * p.cols
            cyc = words * self.params.pack_cycles_per_word
            if p.operand == "B" and threads > 1 and parallel_axis == "m":
                share = cyc / threads
                for t in range(threads):
                    per_thread[t] += share
            else:
                per_thread[p.thread] += cyc
            pack_cycles += cyc
            l1_loads += words / 2.0  # packing reads count as q-loads

        # Synchronization: one barrier per (jj, kk) segment.
        n_segments = math.ceil(n / blk.nc) * math.ceil(k / blk.kc)
        barrier = (
            self.params.barrier_cycles * n_segments if threads > 1 else 0.0
        )

        compute_cycles = max(per_thread.values()) + barrier

        # DRAM bandwidth floor on total off-chip traffic.
        n_jj = math.ceil(n / blk.nc)
        n_kk = math.ceil(k / blk.kc)
        words_a = m * k * n_jj           # A re-read per column panel
        words_b = k * n                  # B read once
        words_c = 2 * m * n * n_kk       # C read+write per rank-kc pass
        bytes_total = 8 * (words_a + words_b + words_c)
        bw = self.chip.dram.bandwidth_bytes_per_cycle * self.chip.dram.bridges
        bw_cycles = bytes_total / bw

        cycles = max(compute_cycles, bw_cycles)
        flops = 2 * m * n * k
        seconds = cycles / self.chip.core.frequency_hz
        gflops = flops / seconds / 1e9
        eff = gflops * 1e9 / self.chip.peak_flops_for(threads)

        energy = dgemm_energy(
            self.chip,
            flops=flops,
            l1_loads=l1_loads,
            bytes_offchip=bytes_total,
            cycles=cycles,
            per_thread_cycles=per_thread.values(),
        )

        return GemmPerformance(
            kernel=kernel,
            m=m,
            n=n,
            k=k,
            threads=threads,
            cycles=cycles,
            flops=flops,
            gflops=gflops,
            efficiency=eff,
            l1_loads=l1_loads,
            breakdown={
                "kernel": kernel_cycles,
                "fill": fill_cycles,
                "c_update": c_cycles,
                "pack": pack_cycles,
                "barrier": barrier,
                "bandwidth_floor": bw_cycles,
            },
            blocking=blk,
            joules=energy.joules,
            gflops_per_watt=energy.gflops_per_watt,
            energy_breakdown=energy.breakdown,
        )
