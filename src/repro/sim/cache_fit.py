"""Residency analysis: where each GEBP stream lives in the hierarchy.

This is the analytic core that makes block-size choices matter. Given a
blocking, a thread placement and the chip's cache geometry, it decides —
with the same way-reservation arithmetic as eqs. (15)/(17)-(20) — whether:

- the ``kc x nr`` B sliver stays resident in L1,
- the (possibly shared) ``mc x kc`` A block(s) stay resident in L2,
- the ``kc x nc`` B panel (plus all threads' A blocks) stays resident
  in L3,

and converts any violation into the cache level each stream actually
streams from. :func:`stream_costs` then prices the per-k-iteration fill
traffic of the A stream, B stream and C tile updates.

The conclusions are validated against the event-accurate cache simulator
in the test suite (``tests/test_sim_cachefit.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch.params import ChipParams
from repro.blocking.cache_blocking import CacheBlocking
from repro.errors import SimulationError
from repro.kernels.kernel_spec import KernelSpec


@dataclass(frozen=True)
class Residency:
    """Deepest level each stream is served from (1=L1 ... 4=DRAM).

    Attributes:
        b_sliver_level: Level feeding B-sliver reads of the register
            kernel (1 when the sliver stays L1-resident).
        a_block_level: Level feeding the A-sliver stream (2 when the
            block stays L2-resident).
        b_panel_level: Level feeding B-panel reads during GEBS
            (3 when the panel stays L3-resident).
        c_level: Level feeding C tile loads.
    """

    b_sliver_level: int
    a_block_level: int
    b_panel_level: int
    c_level: int


def _fits_with_reservation(
    cache_size: int, ways: int, small_bytes: int, large_bytes: int
) -> bool:
    """Eq. (15)-style test: does ``large`` fit in the ways left after
    reserving enough ways for ``small``?"""
    way_bytes = cache_size // ways
    k = max(1, math.ceil(small_bytes / way_bytes))
    if k >= ways:
        return False
    return large_bytes <= (ways - k) * way_bytes


def analyze_residency(
    chip: ChipParams,
    blocking: CacheBlocking,
    threads: int = 1,
    m: int = 0,
    n: int = 0,
    element_size: int = 8,
    b_panels: int = 1,
) -> Residency:
    """Classify the GEBP streams' home levels for a blocking + placement.

    Args:
        chip: Architecture.
        blocking: The (mr, nr, kc, mc, nc) configuration under test.
        threads: Threads executing; determines L2/L3 sharing per the
            paper's placement (threads spread over modules first).
        m, n: Optional problem extents; when given, effective block sizes
            are clamped (a 256-wide problem never fills a 1920-wide panel).
        b_panels: Distinct B panels simultaneously live in the L3 —
            1 under the paper's layer-3 parallelization (one shared
            panel), ``threads`` under the layer-1 ablation.
    """
    if not 1 <= threads <= chip.cores:
        raise SimulationError(f"threads {threads} out of range")
    mc = min(blocking.mc, m) if m else blocking.mc
    nc = min(blocking.nc, n) if n else blocking.nc
    kc, nr = blocking.kc, blocking.nr

    # L1: B sliver vs (C tile + two A columns), eq. (15).
    l1 = chip.l1d
    small1 = (blocking.mr * nr + 2 * blocking.mr) * element_size
    b_sliver_fits = _fits_with_reservation(
        l1.size_bytes, l1.ways, small1, kc * nr * element_size
    )

    # L2: sharers' A blocks vs their B slivers, eq. (17)/(19).
    l2_sharers = max(1, math.ceil(threads / chip.modules))
    l2 = chip.l2
    a_block_fits = _fits_with_reservation(
        l2.size_bytes,
        l2.ways,
        l2_sharers * kc * nr * element_size,
        l2_sharers * mc * kc * element_size,
    )

    # L3: B panel vs all threads' A blocks, eq. (18)/(20).
    if chip.l3 is None:
        b_panel_fits = False
        c_level = 3  # DRAM in a two-level hierarchy
    else:
        l3 = chip.l3
        b_panel_fits = _fits_with_reservation(
            l3.size_bytes,
            l3.ways,
            threads * mc * kc * element_size,
            max(1, b_panels) * kc * nc * element_size,
        )
        c_level = len(chip.cache_levels) + 1  # C streams from DRAM

    levels = len(chip.cache_levels)
    return Residency(
        b_sliver_level=1 if b_sliver_fits else 2,
        a_block_level=2 if a_block_fits else min(3, levels),
        b_panel_level=min(3, levels) if b_panel_fits else levels + 1,
        c_level=c_level,
    )


@dataclass(frozen=True)
class StreamCosts:
    """Non-overlapped fill cycles per k-iteration, by stream.

    All values are already divided down to one k-iteration of one
    micro-tile, so the simulator can simply add them to the register
    kernel's per-iteration cost.
    """

    a_fill: float
    b_fill: float
    c_update: float

    @property
    def total(self) -> float:
        return self.a_fill + self.b_fill + self.c_update


def fill_latency(chip: ChipParams, level: int) -> int:
    """Load-to-use latency of serving a line from ``level`` (1-based;
    one past the last cache level = DRAM)."""
    levels = chip.cache_levels
    if 1 <= level <= len(levels):
        return levels[level - 1].latency_cycles
    return chip.dram.latency_cycles


def stream_costs(
    chip: ChipParams,
    spec: KernelSpec,
    blocking: CacheBlocking,
    residency: Residency,
    hide: float,
    hide_b: Optional[float] = None,
    element_size: int = 8,
) -> StreamCosts:
    """Price the per-k-iteration fill traffic implied by ``residency``.

    - A stream: ``mr`` words per iteration arrive from
      ``a_block_level``; a fraction ``hide`` of the fill latency is
      covered by prefetch/scheduling.
    - B stream: if the sliver is L1-resident it is fetched once per GEBS
      pass and amortized over the ``mc/mr`` micro-tiles that reuse it;
      otherwise it is refetched every iteration. Its fills are attenuated
      by ``hide_b`` (PREFB looks a whole sliver ahead).
    - C: each micro-tile loads and stores ``mr x nr`` elements; loads
      cannot overlap with compute (Sec. IV-B), stores can. Amortized over
      the tile's ``kc`` iterations.
    """
    if not 0.0 <= hide <= 1.0:
        raise SimulationError("hide fraction must be in [0, 1]")
    if hide_b is None:
        hide_b = hide
    if not 0.0 <= hide_b <= 1.0:
        raise SimulationError("hide_b fraction must be in [0, 1]")
    line = chip.l1d.line_bytes
    l1_lat = chip.l1d.latency_cycles

    # A stream: lines per k-iteration.
    a_lines = spec.mr * element_size / line
    a_cost_line = max(0, fill_latency(chip, residency.a_block_level) - l1_lat)
    a_fill = a_lines * a_cost_line * (1.0 - hide)

    # B stream.
    b_lines = spec.nr * element_size / line
    if residency.b_sliver_level == 1:
        reuse = max(1, blocking.mc // spec.mr)
        b_cost_line = max(
            0, fill_latency(chip, residency.b_panel_level) - l1_lat
        )
        b_fill = b_lines * b_cost_line * (1.0 - hide_b) / reuse
    else:
        b_cost_line = max(0, fill_latency(chip, 2) - l1_lat)
        b_fill = b_lines * b_cost_line * (1.0 - hide_b)

    # C tile updates.
    qloads = spec.mr * spec.nr / 2.0  # 128-bit loads covering the tile
    c_lat = fill_latency(chip, residency.c_level)
    per_tile = c_lat + (qloads - 1) * 1.0  # first load full, rest pipeline
    c_update = per_tile / blocking.kc

    return StreamCosts(a_fill=a_fill, b_fill=b_fill, c_update=c_update)
