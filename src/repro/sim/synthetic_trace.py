"""Structural GEMM traces without executing any arithmetic.

Replicates the loop structure of :func:`repro.gemm.driver.dgemm` and
:func:`repro.gemm.parallel.parallel_dgemm` — the same jj/kk/ii partitioning,
the same packing events, the same round-robin thread assignment — producing
the identical :class:`~repro.gemm.trace.GemmTrace` those functions record,
at negligible cost. The sweeps of Figs. 11/12/14 use these; tests assert
byte-for-byte agreement with traces recorded by the real implementation.
"""

from __future__ import annotations

from repro.blocking.cache_blocking import CacheBlocking
from repro.errors import GemmError
from repro.gemm.trace import GemmTrace


def synthesize_trace(
    m: int,
    n: int,
    k: int,
    blocking: CacheBlocking,
    threads: int = 1,
    axis: str = "m",
) -> GemmTrace:
    """Build the structural trace of one DGEMM execution.

    Args:
        m, n, k: Problem sizes.
        blocking: Block sizes in effect.
        threads: Worker count (1 reproduces the serial driver's trace).
        axis: Parallelization axis, matching
            :func:`repro.gemm.parallel.parallel_dgemm` — ``"m"`` (the
            paper's layer-3 split) or ``"n"`` (the layer-1 ablation).
    """
    if min(m, n, k) < 0 or threads < 1:
        raise GemmError("sizes must be non-negative and threads >= 1")
    if axis not in ("m", "n"):
        raise GemmError("axis must be 'm' or 'n'")
    trace = GemmTrace(m=m, n=n, k=k, threads=threads)
    if m == 0 or n == 0 or k == 0:
        return trace

    if axis == "n" and threads > 1:
        col_blocks = list(range(0, n, blocking.nc))
        for t in range(threads):
            for jj in col_blocks[t::threads]:
                ncur = min(blocking.nc, n - jj)
                first_k = True
                for kk in range(0, k, blocking.kc):
                    kcur = min(blocking.kc, k - kk)
                    trace.record_pack("B", kcur, ncur, thread=t)
                    for ii in range(0, m, blocking.mc):
                        mcur = min(blocking.mc, m - ii)
                        trace.record_pack("A", mcur, kcur, thread=t)
                        trace.record_gebp(
                            mcur, kcur, ncur, thread=t, beta_pass=first_k
                        )
                    first_k = False
        return trace

    row_blocks = list(range(0, m, blocking.mc))
    assignment = {
        t: row_blocks[t::threads] for t in range(threads)
    }

    for jj in range(0, n, blocking.nc):
        ncur = min(blocking.nc, n - jj)
        first_k = True
        for kk in range(0, k, blocking.kc):
            kcur = min(blocking.kc, k - kk)
            trace.record_pack("B", kcur, ncur, thread=0)
            if threads == 1:
                for ii in row_blocks:
                    mcur = min(blocking.mc, m - ii)
                    trace.record_pack("A", mcur, kcur)
                    trace.record_gebp(mcur, kcur, ncur, beta_pass=first_k)
            else:
                for t in range(threads):
                    for ii in assignment[t]:
                        mcur = min(blocking.mc, m - ii)
                        trace.record_pack("A", mcur, kcur, thread=t)
                        trace.record_gebp(
                            mcur, kcur, ncur, thread=t, beta_pass=first_k
                        )
            first_k = False
    return trace


def micro_tiles(mcur: int, ncur: int, mr: int, nr: int) -> int:
    """Number of (padded) register tiles covering an mcur x ncur panel."""
    return (-(-mcur // mr)) * (-(-ncur // nr))
