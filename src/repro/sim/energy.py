"""A simple DGEMM energy model.

Complements the cycle model with first-order energy accounting in the
style of the Catalán et al. big.LITTLE studies: total energy is the sum
of event energies — one charge per vector FMA instruction, per retired
L1 load, per off-chip line transfer — plus a per-cycle idle charge for
every cycle a core spends waiting on load imbalance or barriers. The
per-event energies live on :class:`~repro.arch.params.CoreParams` and
:class:`~repro.arch.params.CacheParams`, so a LITTLE core is cheap per
flop but slow, a big core is fast but expensive, and the interesting
trade-off (performance vs. Gflops/W frontier) falls out of the same
architecture description the cycle model already consumes.

The model is deliberately coarse — no DVFS, no race-to-idle, uniform
off-chip charge at the last cache level's fill energy — but it is a pure
function of the chip parameters, which keeps it deterministic and lets
the exhibit compare partition strategies on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.arch.params import ChipParams, CoreParams
from repro.errors import SimulationError

_PJ = 1e-12


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting of one DGEMM execution.

    Attributes:
        joules: Total energy.
        watts: Average power over the execution.
        gflops_per_watt: Energy efficiency (= Gflops / watts).
        breakdown: Joules by component (``fma``, ``load``, ``miss``,
            ``idle``).
    """

    joules: float
    watts: float
    gflops_per_watt: float
    breakdown: Dict[str, float]


def dgemm_energy(
    chip: ChipParams,
    flops: float,
    l1_loads: float,
    bytes_offchip: float,
    cycles: float,
    per_thread_cycles: Optional[Iterable[float]] = None,
    core: Optional[CoreParams] = None,
) -> EnergyEstimate:
    """First-order energy of one DGEMM execution on ``chip``.

    Args:
        chip: Architecture description; supplies the per-event energies
            and the off-chip line size.
        flops: Useful floating-point operations performed.
        l1_loads: Retired L1 load instructions.
        bytes_offchip: Total off-chip (DRAM) traffic in bytes, charged
            at the last cache level's per-line miss energy.
        cycles: Chip cycles from start to finish.
        per_thread_cycles: Busy cycles of each participating thread;
            every thread's shortfall against ``cycles`` is charged at
            the idle rate. Omitted: no idle charge (serial runs).
        core: Core class doing the arithmetic; defaults to the chip's
            flat (lead-cluster) core. Asymmetry-aware callers split the
            work per class and call once per class instead.

    Returns:
        An :class:`EnergyEstimate`; ``gflops_per_watt`` is infinite for
        a zero-energy execution only when flops were performed.
    """
    if cycles <= 0:
        raise SimulationError("cycles must be positive")
    c = core if core is not None else chip.core
    lanes = c.doubles_per_register
    vector_fmas = flops / (c.flops_per_fma * lanes)
    fma_j = vector_fmas * c.fma_energy_pj * _PJ
    load_j = l1_loads * c.load_energy_pj * _PJ
    last_level = chip.cache_levels[-1]
    lines = bytes_offchip / last_level.line_bytes
    miss_j = lines * last_level.miss_energy_pj * _PJ
    idle_j = 0.0
    if per_thread_cycles is not None:
        for busy in per_thread_cycles:
            idle_j += max(0.0, cycles - busy) * c.idle_energy_pj * _PJ
    joules = fma_j + load_j + miss_j + idle_j
    seconds = cycles / c.frequency_hz
    watts = joules / seconds
    gflops = flops / seconds / 1e9
    gflops_per_watt = gflops / watts if watts > 0 else float("inf")
    return EnergyEstimate(
        joules=joules,
        watts=watts,
        gflops_per_watt=gflops_per_watt,
        breakdown={
            "fma": fma_j,
            "load": load_j,
            "miss": miss_j,
            "idle": idle_j,
        },
    )
