"""Event-accurate cache simulation of GEBP (Table VII, Fig. 15 validation).

Replays the exact memory-access sequence of one GEBP call — packed-A
sliver loads, packed-B sliver loads, C tile read-modify-writes, and the
kernel's software prefetches — through the set-associative hierarchy of
:mod:`repro.memory`. Every 128-bit ``ldr`` of the register kernel becomes
one demand access, so the L1 counters correspond directly to the paper's
``L1-dcache-loads`` and ``L1-dcache-load-miss`` perf events.

Two prefetch mechanisms act on the streams, as on the real core:

- **software** (``PLDL1KEEP``/``PLDL2KEEP``): issued by the kernel at the
  PREFA/PREFB distances. Best-effort — dropped when the load queue is
  full, modeled by a deterministic drop pattern at rate ``prefetch_drop``.
- **hardware**: the core's tagged sequential prefetcher. Both the packed
  A and packed B streams are perfectly sequential inside the k-loop, so
  on every transition to a new line the next line is pulled in, except
  when the prefetch is late/dropped (rate ``hw_late``). Without this the
  B sliver cannot survive the A stream under true LRU — the residency
  the paper's eq. (15) assumes is delivered jointly by the reservation
  arithmetic and the sequential prefetcher.

With the default rates the measured miss rates land in the paper's
3-6% band (Table VII).

Cost is bounded by simulating a slice of the panel (``nc_slice`` columns)
after a warm-up pass; miss *rates* are steady-state after one sliver.

Both prefetch streams are pure functions of the demand addresses — the
drop patterns are deterministic and the sequential prefetcher only looks
at line transitions — so the whole access sequence is compiled **once per
GEBP shape** into a pair of :class:`~repro.memory.batch.BatchTrace`
objects (warm-up and main loop) and replayed through either engine:

- ``engine="batched"`` (and ``"auto"``): the vectorized
  :meth:`~repro.memory.hierarchy.MemoryHierarchy.run_batch` sweep.
- ``engine="scalar"``: per-access :func:`~repro.memory.trace.run_trace`,
  kept as the bit-identical differential-testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import CacheBlocking
from repro.errors import SimulationError
from repro.kernels.kernel_spec import KernelSpec
from repro.memory.batch import BatchTrace
from repro.memory.cache import CODE_LOAD, CODE_PREFETCH, CODE_STORE
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetcher import DropPattern, SequentialPrefetcher
from repro.memory.trace import run_trace
from repro.obs.metrics import MetricsRegistry

QWORD = 16

#: Backwards-compatible alias (tests exercise the pattern through here).
_DropPattern = DropPattern

#: Valid values for ``simulate_gebp_cache``'s ``engine`` argument.
ENGINES = ("auto", "batched", "scalar")

#: Warm-state snapshots carried across adjacent sweep points (see
#: ``simulate_gebp_cache(incremental=...)``). Keyed by everything that
#: determines the warm-up stream and the hierarchy it replays into —
#: the warm trace is independent of ``nc``-prefix position, so entries
#: hold ``(warm_rows_replayed, snapshot)`` and a sweep point whose warm
#: trace extends a cached one replays only the delta rows.
_WARM_MEMO: Dict[tuple, Tuple[int, dict]] = {}
_WARM_MEMO_LIMIT = 32


def clear_warm_memo() -> None:
    """Drop all carried warm-state snapshots (test-isolation hook)."""
    _WARM_MEMO.clear()


@dataclass(frozen=True)
class GebpCacheResult:
    """Cache behaviour of one simulated GEBP slice.

    Attributes:
        l1_loads: Demand 128-bit loads seen by the L1.
        l1_load_misses: Demand load misses.
        l1_load_miss_rate: The Table VII metric.
        l2_loads, l2_load_misses: Same, one level down.
        dram_accesses: Lines fetched from memory.
        kernel_loads: Loads issued by the register kernel alone.
    """

    l1_loads: int
    l1_load_misses: int
    l1_load_miss_rate: float
    l2_loads: int
    l2_load_misses: int
    dram_accesses: int
    kernel_loads: int


@lru_cache(maxsize=64)
def _gebp_trace(
    mr: int,
    nr: int,
    kc: int,
    mc: int,
    nc: int,
    line: int,
    prefetch: bool,
    prefetch_drop: float,
    hw_late: float,
    prefa_bytes: int,
) -> Tuple[BatchTrace, BatchTrace, int]:
    """Compile the GEBP access stream for one shape, at address base 0.

    Returns ``(warm, main, kernel_loads)``: the warm-up stores that model
    packing having written the A block / B panel, and the main-loop stream
    with demand loads, C updates and both prefetch streams interleaved in
    issue order. Addresses start at 0; callers relocate per core via
    :meth:`BatchTrace.shifted`. Cached per shape — the sweeps replay the
    same streams at every point.
    """
    a_base = 0
    b_base = 1 << 28
    c_base = 1 << 29
    elem = 8

    na = -(-mc // mr)
    nb = -(-nc // nr)

    warm_rows: List[Tuple[int, int, int, int]] = []
    for off in range(0, na * kc * mr * elem, line):
        warm_rows.append((a_base + off, 1, CODE_STORE, 1))
    for off in range(0, nb * kc * nr * elem, line):
        warm_rows.append((b_base + off, 1, CODE_STORE, 1))

    rows: List[Tuple[int, int, int, int]] = []
    drop = DropPattern(prefetch_drop if prefetch else 1.0)
    hw = SequentialPrefetcher(
        None,
        0,
        late_rate=hw_late,
        install=lambda ln, level: rows.append(
            (ln * line, 1, CODE_PREFETCH, level)
        ),
    )

    a_qloads_per_iter = -(-mr * elem // QWORD)
    b_qloads_per_iter = -(-nr * elem // QWORD)
    kernel_loads = 0

    def demand(addr: int, stream: Optional[str] = None) -> None:
        rows.append((addr, 1, CODE_LOAD, 1))
        if stream is not None:
            hw.observe(addr // line, stream)

    for j in range(nb):
        b_sliver = b_base + j * kc * nr * elem
        for i in range(na):
            a_sliver = a_base + i * kc * mr * elem
            # C tile load (column-major panel with leading dimension mc).
            for col in range(nr):
                c_col = c_base + (j * nr + col) * mc * elem + i * mr * elem
                for off in range(0, mr * elem, QWORD):
                    demand(c_col + off)
            # The k-loop.
            for k in range(kc):
                a_addr = a_sliver + k * mr * elem
                b_addr = b_sliver + k * nr * elem
                for q in range(a_qloads_per_iter):
                    demand(a_addr + q * QWORD, "A")
                    kernel_loads += 1
                for q in range(b_qloads_per_iter):
                    demand(b_addr + q * QWORD, "B")
                    kernel_loads += 1
                if prefetch:
                    pf_a = a_addr + prefa_bytes
                    if pf_a < a_sliver + kc * mr * elem and not drop.dropped():
                        rows.append(
                            ((pf_a // line) * line, 1, CODE_PREFETCH, 1)
                        )
            # C tile store.
            for col in range(nr):
                c_col = c_base + (j * nr + col) * mc * elem + i * mr * elem
                for off in range(0, mr * elem, QWORD):
                    rows.append((c_col + off, 1, CODE_STORE, 1))
        if prefetch:
            # PLDL2KEEP: pull the next sliver toward the L2.
            nxt = b_base + ((j + 1) % nb) * kc * nr * elem
            for off in range(0, kc * nr * elem, line):
                rows.append((((nxt + off) // line) * line, 1, CODE_PREFETCH, 2))

    return (
        BatchTrace.from_rows(warm_rows),
        BatchTrace.from_rows(rows),
        kernel_loads,
    )


def gebp_traces(
    spec: KernelSpec,
    blocking: CacheBlocking,
    chip: ChipParams = XGENE,
    core: int = 0,
    nc_slice: Optional[int] = None,
    prefetch: bool = True,
    prefetch_drop: float = 0.35,
    hw_late: float = 0.25,
    prefa_bytes: int = 1024,
) -> Tuple[BatchTrace, BatchTrace, int]:
    """The ``(warm, main, kernel_loads)`` streams one GEBP replay issues.

    Relocated to ``core``'s private address region; the underlying
    base-0 compilation is shared across cores and sweep points.
    """
    nc = nc_slice if nc_slice is not None else min(blocking.nc, 6 * spec.nr)
    warm, main, kernel_loads = _gebp_trace(
        spec.mr,
        spec.nr,
        blocking.kc,
        blocking.mc,
        nc,
        chip.l1d.line_bytes,
        bool(prefetch),
        float(prefetch_drop),
        float(hw_late),
        int(prefa_bytes),
    )
    offset = core * (1 << 30)
    return warm.shifted(offset), main.shifted(offset), kernel_loads


def simulate_gebp_cache(
    spec: KernelSpec,
    blocking: CacheBlocking,
    chip: ChipParams = XGENE,
    core: int = 0,
    hierarchy: Optional[MemoryHierarchy] = None,
    nc_slice: Optional[int] = None,
    prefetch: bool = True,
    prefetch_drop: float = 0.35,
    hw_late: float = 0.25,
    prefa_bytes: int = 1024,
    engine: str = "auto",
    seed: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    incremental: bool = True,
) -> GebpCacheResult:
    """Replay one GEBP's access stream through the cache hierarchy.

    Args:
        spec: Register kernel shape.
        blocking: Block sizes (mc, kc used in full; nc possibly sliced).
        chip: Architecture.
        core: Executing core id.
        hierarchy: Shared hierarchy for multi-thread experiments; a fresh
            private one is created when omitted.
        nc_slice: Columns of the B panel to replay (default
            ``min(nc, 6*nr)`` — steady state is reached within a sliver).
        prefetch: Software prefetching enabled.
        prefetch_drop: Fraction of software prefetches dropped.
        hw_late: Fraction of hardware sequential prefetches that arrive
            too late to cover the demand access.
        prefa_bytes: A-stream prefetch distance.
        engine: ``"auto"``/``"batched"`` for the vectorized sweep,
            ``"scalar"`` for the per-access oracle. Both produce
            bit-identical counters.
        seed: RANDOM-replacement seed for a freshly created hierarchy
            (ignored when ``hierarchy`` is passed in).
        metrics: Optional registry receiving replay counters and span
            timings; ``None`` (the default) costs nothing.
        incremental: Reuse the post-warm-up hierarchy state across calls
            that share a warm stream (same kernel shape, ``kc``/``mc``,
            chip, seed, core and engine): an exact match restores a
            snapshot instead of re-replaying the warm-up; a call whose
            warm trace extends a cached one (larger ``nc``) restores and
            replays only the delta rows. Bit-identical to a cold start
            by construction (the ``sweep.incremental`` oracle pins it);
            only applies when ``hierarchy`` is omitted.
    """
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    h = hierarchy or MemoryHierarchy(chip, seed=seed)
    warm, main, kernel_loads = gebp_traces(
        spec,
        blocking,
        chip=chip,
        core=core,
        nc_slice=nc_slice,
        prefetch=prefetch,
        prefetch_drop=prefetch_drop,
        hw_late=hw_late,
        prefa_bytes=prefa_bytes,
    )

    selected = "scalar" if engine == "scalar" else "batched"
    if metrics is not None:
        metrics.inc("cachesim.replays")
        metrics.inc(f"cachesim.engine.{selected}")
        metrics.observe("cachesim.trace_records", len(main))
        span = metrics.span("cachesim.replay")
    else:
        span = None

    def _replay(trace: BatchTrace) -> None:
        if selected == "scalar":
            run_trace(h, core, trace)
        else:
            h.run_batch(core, trace)

    # Warm the L2/L3 the way GEBP's preconditions state: the packed A
    # block resides in L2, the packed B panel in L3. Packing itself wrote
    # them, which is what installs them. With ``incremental``, the
    # post-warm-up state is snapshotted and carried to the next sweep
    # point sharing the stream: warm rows are A stores (nc-independent)
    # followed by B stores (growing with nc), so adjacent points' warm
    # traces are literal prefixes of each other and a restore plus a
    # delta replay reproduces the cold-start state bit-exactly.
    memo_key = None
    if incremental and hierarchy is None:
        memo_key = (
            chip,
            seed,
            core,
            selected,
            spec.mr,
            spec.nr,
            blocking.kc,
            blocking.mc,
            chip.l1d.line_bytes,
        )
    cached = _WARM_MEMO.get(memo_key) if memo_key is not None else None
    n_warm = len(warm)
    if cached is not None and cached[0] <= n_warm:
        # Refresh recency: dict order is the LRU order, so a hit moves
        # the entry to the back and eviction below pops the front.
        _WARM_MEMO[memo_key] = _WARM_MEMO.pop(memo_key)
        cached_rows, snap = cached
        h.restore(snap)  # snapshot taken post-reset: stats are zero
        if cached_rows < n_warm:
            _replay(BatchTrace(warm.records[cached_rows:]))
            h.reset_stats()
        if metrics is not None:
            metrics.inc("cachesim.warm_restores")
    else:
        _replay(warm)
        h.reset_stats()
    if memo_key is not None and (cached is None or cached[0] != n_warm):
        _WARM_MEMO.pop(memo_key, None)
        while len(_WARM_MEMO) >= _WARM_MEMO_LIMIT:
            # Evict the least-recently-used entry only, keeping the hot
            # tail of the sweep intact (a wholesale clear() here used to
            # nuke every carried snapshot the moment the 33rd distinct
            # shape appeared).
            _WARM_MEMO.pop(next(iter(_WARM_MEMO)))
            if metrics is not None:
                metrics.inc("cachesim.warm_evictions")
        _WARM_MEMO[memo_key] = (n_warm, h.snapshot())

    if span is not None:
        with span:
            _replay(main)
    else:
        _replay(main)

    l1 = h.l1_stats(core)
    l2 = h.l2_stats(h.module_of(core))
    return GebpCacheResult(
        l1_loads=l1.loads,
        l1_load_misses=l1.load_misses,
        l1_load_miss_rate=l1.load_miss_rate,
        l2_loads=l2.loads,
        l2_load_misses=l2.load_misses,
        dram_accesses=h.dram_accesses,
        kernel_loads=kernel_loads,
    )
