"""Event-accurate cache simulation of GEBP (Table VII, Fig. 15 validation).

Replays the exact memory-access sequence of one GEBP call — packed-A
sliver loads, packed-B sliver loads, C tile read-modify-writes, and the
kernel's software prefetches — through the set-associative hierarchy of
:mod:`repro.memory`. Every 128-bit ``ldr`` of the register kernel becomes
one demand access, so the L1 counters correspond directly to the paper's
``L1-dcache-loads`` and ``L1-dcache-load-miss`` perf events.

Two prefetch mechanisms act on the streams, as on the real core:

- **software** (``PLDL1KEEP``/``PLDL2KEEP``): issued by the kernel at the
  PREFA/PREFB distances. Best-effort — dropped when the load queue is
  full, modeled by a deterministic drop pattern at rate ``prefetch_drop``.
- **hardware**: the core's tagged sequential prefetcher. Both the packed
  A and packed B streams are perfectly sequential inside the k-loop, so
  on every transition to a new line the next line is pulled in, except
  when the prefetch is late/dropped (rate ``hw_late``). Without this the
  B sliver cannot survive the A stream under true LRU — the residency
  the paper's eq. (15) assumes is delivered jointly by the reservation
  arithmetic and the sequential prefetcher.

With the default rates the measured miss rates land in the paper's
3-6% band (Table VII).

Cost is bounded by simulating a slice of the panel (``nc_slice`` columns)
after a warm-up pass; miss *rates* are steady-state after one sliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import CacheBlocking
from repro.errors import SimulationError
from repro.kernels.kernel_spec import KernelSpec
from repro.memory.cache import KIND_LOAD, KIND_STORE
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetcher import DropPattern, SequentialPrefetcher

QWORD = 16

#: Backwards-compatible alias (tests exercise the pattern through here).
_DropPattern = DropPattern


@dataclass(frozen=True)
class GebpCacheResult:
    """Cache behaviour of one simulated GEBP slice.

    Attributes:
        l1_loads: Demand 128-bit loads seen by the L1.
        l1_load_misses: Demand load misses.
        l1_load_miss_rate: The Table VII metric.
        l2_loads, l2_load_misses: Same, one level down.
        dram_accesses: Lines fetched from memory.
        kernel_loads: Loads issued by the register kernel alone.
    """

    l1_loads: int
    l1_load_misses: int
    l1_load_miss_rate: float
    l2_loads: int
    l2_load_misses: int
    dram_accesses: int
    kernel_loads: int


def simulate_gebp_cache(
    spec: KernelSpec,
    blocking: CacheBlocking,
    chip: ChipParams = XGENE,
    core: int = 0,
    hierarchy: Optional[MemoryHierarchy] = None,
    nc_slice: Optional[int] = None,
    prefetch: bool = True,
    prefetch_drop: float = 0.35,
    hw_late: float = 0.25,
    prefa_bytes: int = 1024,
) -> GebpCacheResult:
    """Replay one GEBP's access stream through the cache hierarchy.

    Args:
        spec: Register kernel shape.
        blocking: Block sizes (mc, kc used in full; nc possibly sliced).
        chip: Architecture.
        core: Executing core id.
        hierarchy: Shared hierarchy for multi-thread experiments; a fresh
            private one is created when omitted.
        nc_slice: Columns of the B panel to replay (default
            ``min(nc, 6*nr)`` — steady state is reached within a sliver).
        prefetch: Software prefetching enabled.
        prefetch_drop: Fraction of software prefetches dropped.
        hw_late: Fraction of hardware sequential prefetches that arrive
            too late to cover the demand access.
        prefa_bytes: A-stream prefetch distance.
    """
    h = hierarchy or MemoryHierarchy(chip)
    drop = DropPattern(prefetch_drop if prefetch else 1.0)
    hw = SequentialPrefetcher(h, core, late_rate=hw_late)
    mr, nr, kc, mc = spec.mr, spec.nr, blocking.kc, blocking.mc
    nc = nc_slice if nc_slice is not None else min(blocking.nc, 6 * nr)
    line = chip.l1d.line_bytes

    # Disjoint address regions per core (packed buffers + C panel).
    base = core * (1 << 30)
    a_base = base
    b_base = base + (1 << 28)
    c_base = base + (1 << 29)
    elem = 8

    na = -(-mc // mr)
    nb = -(-nc // nr)

    # Warm the L2/L3 the way GEBP's preconditions state: the packed A
    # block resides in L2, the packed B panel in L3. Packing itself wrote
    # them, which is what installs them.
    for off in range(0, na * kc * mr * elem, line):
        h.access_line(core, (a_base + off) // line, KIND_STORE)
    for off in range(0, nb * kc * nr * elem, line):
        h.access_line(core, (b_base + off) // line, KIND_STORE)
    h.reset_stats()

    a_qloads_per_iter = -(-mr * elem // QWORD)
    b_qloads_per_iter = -(-nr * elem // QWORD)
    kernel_loads = 0

    def demand(addr: int, stream: Optional[str] = None) -> None:
        ln = addr // line
        h.access_line(core, ln, KIND_LOAD)
        if stream is not None:
            hw.observe(ln, stream)

    for j in range(nb):
        b_sliver = b_base + j * kc * nr * elem
        for i in range(na):
            a_sliver = a_base + i * kc * mr * elem
            # C tile load (column-major panel with leading dimension mc).
            for col in range(nr):
                c_col = c_base + (j * nr + col) * mc * elem + i * mr * elem
                for off in range(0, mr * elem, QWORD):
                    demand(c_col + off)
            # The k-loop.
            for k in range(kc):
                a_addr = a_sliver + k * mr * elem
                b_addr = b_sliver + k * nr * elem
                for q in range(a_qloads_per_iter):
                    demand(a_addr + q * QWORD, "A")
                    kernel_loads += 1
                for q in range(b_qloads_per_iter):
                    demand(b_addr + q * QWORD, "B")
                    kernel_loads += 1
                if prefetch:
                    pf_a = a_addr + prefa_bytes
                    if pf_a < a_sliver + kc * mr * elem and not drop.dropped():
                        h.prefetch_line(core, pf_a // line, 1)
            # C tile store.
            for col in range(nr):
                c_col = c_base + (j * nr + col) * mc * elem + i * mr * elem
                for off in range(0, mr * elem, QWORD):
                    h.access_line(core, (c_col + off) // line, KIND_STORE)
        if prefetch:
            # PLDL2KEEP: pull the next sliver toward the L2.
            nxt = b_base + ((j + 1) % nb) * kc * nr * elem
            for off in range(0, kc * nr * elem, line):
                h.prefetch_line(core, (nxt + off) // line, 2)

    l1 = h.l1_stats(core)
    l2 = h.l2_stats(h.module_of(core))
    return GebpCacheResult(
        l1_loads=l1.loads,
        l1_load_misses=l1.load_misses,
        l1_load_miss_rate=l1.load_miss_rate,
        l2_loads=l2.loads,
        l2_load_misses=l2.load_misses,
        dram_accesses=h.dram_accesses,
        kernel_loads=kernel_loads,
    )
