"""Calibration constants of the performance simulator.

The simulator follows the paper's own methodology: structural quantities
(instruction counts, traffic, residency) are derived exactly from the
algorithm and the architecture, while a handful of overlap coefficients —
the paper's psi — are calibrated once against the paper's published
micro-benchmarks and then held fixed for *every* experiment. Nothing here
is tuned per kernel, per block size or per thread count; all of those
dimensions must emerge from the structural model.

Provenance of each constant:

- load interference (lam, sigma): fitted to Table IV (see
  :mod:`repro.pipeline.interference`);
- ``prefetch_hide_full``: residual fill exposure of a fully-windowed
  prefetch stream; chosen so the serial 8x6 lands near its Table IV upper
  bound minus the paper's observed ~4pp gap;
- ``prefetch_hide_partial``: exposure when the scheduling window is shorter
  than the L2 fill latency (the unrotated kernel of Fig. 13 and the
  register-starved ATLAS kernel);
- ``pack_cycles_per_word``: streaming copy cost of packing (read + write,
  partially overlapped);
- ``barrier_cycles``: per-synchronization cost of the layer-3 parallel
  loop's join.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline.interference import LoadInterferenceModel


@dataclass(frozen=True)
class SimParams:
    """Tunables of :class:`repro.sim.gemm_sim.GemmSimulator`.

    Attributes:
        interference: Calibrated LDR/FMLA overlap model (Table IV).
        prefetch_hide_full: Fraction of a line-fill's latency hidden when
            the kernel's load-use window covers the fill (rotated kernels
            with prefetching).
        prefetch_hide_partial: Hidden fraction when the window is too
            short (static register assignment, register-starved kernels).
        prefetch_hide_none: Hidden fraction with prefetching disabled.
        prefetch_hide_b_stream: Hidden fraction for the B-panel stream,
            whose ``PLDL2KEEP`` lookahead is a whole kc x nr sliver
            (PREFB = 24 KB for the 8x6 blocking) — long enough to cover
            even DRAM fills, unlike the A stream's two-iteration PREFA.
        pack_cycles_per_word: Cycles per float64 word moved by packing.
        barrier_cycles: Cycles per parallel-loop synchronization point.
        l2_contention_cycles_per_line: Extra cycles per A-stream line when
            another thread shares the L2 (bank/port interleaving of two
            streams) — the mechanism behind the paper's observation that
            parallel runs lose more efficiency on the low-gamma kernels
            (they pull more lines per flop through the shared cache).
        c_update_pipelining: Per-extra-load cycles while filling a C tile
            (the first load pays full latency; the rest pipeline).
    """

    interference: LoadInterferenceModel = field(
        default_factory=LoadInterferenceModel
    )
    prefetch_hide_full: float = 0.88
    prefetch_hide_partial: float = 0.70
    prefetch_hide_none: float = 0.40
    prefetch_hide_b_stream: float = 0.99
    pack_cycles_per_word: float = 2.0
    barrier_cycles: float = 5000.0
    l2_contention_cycles_per_line: float = 2.2
    c_update_pipelining: float = 1.0

    def hide_fraction(
        self, window_limited: bool, prefetching: bool = True
    ) -> float:
        """Hidden fraction of stream-fill latency for a kernel class."""
        if not prefetching:
            return self.prefetch_hide_none
        return (
            self.prefetch_hide_partial
            if window_limited
            else self.prefetch_hide_full
        )


DEFAULT_SIM_PARAMS = SimParams()
