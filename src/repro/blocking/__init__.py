"""Analytic block-size engine (paper Sec. IV) and empirical auto-tuning."""

from repro.blocking.autotune import TuneResult, autotune, best_blocking

from repro.blocking.cache_blocking import (
    CacheBlocking,
    goto_blocking,
    solve_cache_blocking,
    solve_kc,
    solve_mc,
    solve_nc,
)
from repro.blocking.prefetch import (
    DEFAULT_ALPHA_PREA,
    DEFAULT_UNROLL,
    PrefetchPlan,
    plan_prefetch,
)
from repro.blocking.register_blocking import (
    RegisterBlocking,
    RegisterBlockingProblem,
)

__all__ = [
    "autotune",
    "best_blocking",
    "TuneResult",
    "RegisterBlocking",
    "RegisterBlockingProblem",
    "CacheBlocking",
    "solve_cache_blocking",
    "solve_kc",
    "solve_mc",
    "solve_nc",
    "goto_blocking",
    "PrefetchPlan",
    "plan_prefetch",
    "DEFAULT_ALPHA_PREA",
    "DEFAULT_UNROLL",
]
