"""Simulator-driven block-size auto-tuning (the paper's future-work item).

The paper closes with "we also plan to apply auto-tuning to generate a
highly optimized GEBP". This module provides an ATLAS-style empirical
search, with the simulated chip standing in for timing runs: candidate
(mr, nr) register tiles come from the analytic feasibility constraints,
and for each tile a neighborhood of (kc, mc, nc) values around the
analytic solution is scored by the DGEMM cost model.

The headline result — reproduced in ``tests/test_autotune.py`` and
``benchmarks/bench_ablation_autotune.py`` — is that the search lands on
the paper's analytic answer (8x6 with 512x56x1920 serial), confirming the
theory-guided derivation empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import CacheBlocking, solve_cache_blocking
from repro.blocking.register_blocking import RegisterBlockingProblem
from repro.errors import BlockingError


@dataclass(frozen=True)
class TuneResult:
    """One scored configuration."""

    kernel: str
    blocking: CacheBlocking
    efficiency: float


def _candidate_tiles(
    chip: ChipParams, max_candidates: int
) -> List[Tuple[int, int]]:
    problem = RegisterBlockingProblem.from_core(chip.core)
    tiles = sorted(
        problem.feasible_tiles(), key=lambda t: t.gamma, reverse=True
    )
    seen = []
    for t in tiles:
        if (t.mr, t.nr) not in seen:
            seen.append((t.mr, t.nr))
        if len(seen) >= max_candidates:
            break
    return seen


def _neighborhood(value: int, step: int, multiple: int) -> List[int]:
    """The analytic value plus one step either side, floored to a
    multiple and deduplicated."""
    out = []
    for v in (value - step, value, value + step):
        v = max(multiple, (v // multiple) * multiple)
        if v not in out:
            out.append(v)
    return out


def autotune(
    chip: ChipParams = XGENE,
    threads: int = 1,
    problem_size: int = 2048,
    max_tiles: int = 4,
    kernel_name: str = "OpenBLAS-8x6",
) -> List[TuneResult]:
    """Empirically search block sizes on the simulated chip.

    Args:
        chip: Architecture to tune for.
        threads: Thread count of the target configuration.
        problem_size: Square DGEMM size used for scoring.
        max_tiles: How many top-gamma register tiles to explore.
        kernel_name: Cost-model kernel identity used for scoring (the
            interference mix follows the tile's own shape through the
            blocking; the hide class follows this variant).

    Returns:
        All scored configurations, best first.
    """
    from repro.sim.gemm_sim import GemmSimulator  # lazy: avoid cycle

    if problem_size < 64:
        raise BlockingError("problem_size too small to be meaningful")
    sim = GemmSimulator(chip)
    results: List[TuneResult] = []
    for mr, nr in _candidate_tiles(chip, max_tiles):
        try:
            base = solve_cache_blocking(chip, mr, nr, threads=threads)
        except BlockingError:
            continue
        for kc in _neighborhood(base.kc, 128, 64):
            for mc in _neighborhood(base.mc, 2 * mr, mr):
                for nc in _neighborhood(base.nc, 16 * nr, nr):
                    blk = CacheBlocking(
                        mr=mr, nr=nr, kc=kc, mc=mc, nc=nc,
                        k1=base.k1, k2=base.k2, k3=base.k3,
                    )
                    perf = sim.simulate(
                        kernel_name,
                        problem_size,
                        problem_size,
                        problem_size,
                        threads=threads,
                        blocking=blk,
                    )
                    results.append(
                        TuneResult(
                            kernel=f"{mr}x{nr}",
                            blocking=blk,
                            efficiency=perf.efficiency,
                        )
                    )
    if not results:
        raise BlockingError("no feasible configuration found")
    results.sort(key=lambda r: r.efficiency, reverse=True)
    return results


def best_blocking(
    chip: ChipParams = XGENE, threads: int = 1, problem_size: int = 2048
) -> CacheBlocking:
    """The auto-tuner's winning configuration."""
    return autotune(chip, threads=threads, problem_size=problem_size)[0].blocking
