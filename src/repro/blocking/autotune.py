"""Simulator-driven block-size auto-tuning (the paper's future-work item).

The paper closes with "we also plan to apply auto-tuning to generate a
highly optimized GEBP". This module provides an ATLAS-style empirical
search, with the simulated chip standing in for timing runs: candidate
(mr, nr) register tiles come from the analytic feasibility constraints,
and for each tile a neighborhood of (kc, mc, nc) values around the
analytic solution is scored by the DGEMM cost model.

The headline result — reproduced in ``tests/test_tune.py`` and
``benchmarks/bench_ablation_autotune.py`` — is that the search lands on
the paper's analytic answer (8x6 with 512x56x1920 serial), confirming the
theory-guided derivation empirically.

This module is deliberately a leaf (it imports only ``arch`` and the
sibling ``blocking`` solvers); the full kernel-synthesis search in
:mod:`repro.tune` builds its candidate space from the public
:func:`candidate_tiles` and :func:`neighborhood` helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.arch.params import ChipParams
from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import CacheBlocking, solve_cache_blocking
from repro.blocking.register_blocking import RegisterBlockingProblem
from repro.errors import BlockingError
from repro.kernels.kernel_spec import KernelSpec


@dataclass(frozen=True)
class TuneResult:
    """One scored configuration."""

    kernel: str
    blocking: CacheBlocking
    efficiency: float


#: Signature of a pluggable scoring hook for :func:`autotune`:
#: ``score(kernel_name, problem_size, threads, blocking) -> efficiency``.
ScoreFn = Callable[[str, int, int, CacheBlocking], float]


def candidate_tiles(
    chip: ChipParams,
    max_candidates: Optional[int] = None,
    require_codegen: bool = False,
) -> List[Tuple[int, int]]:
    """Distinct feasible (mr, nr) register tiles, best first.

    Tiles come from the eq. (8)-(11) feasibility enumeration and are
    ordered by the same tie-breakers the analytic solver uses: gamma
    descending, then cache-line-aligned mr, then larger mr. Each (mr, nr)
    pair appears exactly once regardless of how many nrf choices make it
    feasible.

    Args:
        chip: Architecture whose register file bounds the enumeration.
        max_candidates: Keep only the first N tiles (``None`` = all).
        require_codegen: Additionally require that the code generator can
            realize the tile — ``KernelSpec(mr, nr)`` must fit the
            register file with its rotation pool. Eq. (9) alone admits
            tiles like 12x4 whose C block leaves no room for the
            rotation registers.

    Returns:
        Deduplicated (mr, nr) list, best candidate first.
    """
    problem = RegisterBlockingProblem.from_core(chip.core)
    nf = chip.core.fp_registers
    line_doubles = chip.l1d.line_bytes // 8

    def sort_key(t):
        return (t.gamma, t.mr % line_doubles == 0, t.mr)

    seen: Set[Tuple[int, int]] = set()
    out: List[Tuple[int, int]] = []
    for t in sorted(problem.feasible_tiles(), key=sort_key, reverse=True):
        pair = (t.mr, t.nr)
        if pair in seen:
            continue
        if require_codegen and not KernelSpec(t.mr, t.nr).fits_register_file(nf):
            continue
        seen.add(pair)
        out.append(pair)
        if max_candidates is not None and len(out) >= max_candidates:
            break
    return out


def neighborhood(
    value: int, step: int, multiple: int, radius: int = 1
) -> List[int]:
    """The analytic value plus ``radius`` steps either side, floored to a
    multiple and deduplicated (center first, then outward)."""
    if radius < 0:
        raise BlockingError("neighborhood radius must be >= 0")
    seen: Set[int] = set()
    out: List[int] = []
    offsets = [0]
    for r in range(1, radius + 1):
        offsets.extend((-r, r))
    for off in offsets:
        v = max(multiple, ((value + off * step) // multiple) * multiple)
        if v not in seen:
            seen.add(v)
            out.append(v)
    return out


def _candidate_tiles(chip: ChipParams, max_candidates: int) -> List[Tuple[int, int]]:
    # Backward-compatible private alias kept for older callers.
    return candidate_tiles(chip, max_candidates)


def _neighborhood(value: int, step: int, multiple: int) -> List[int]:
    # Backward-compatible private alias kept for older callers.
    return neighborhood(value, step, multiple)


def autotune(
    chip: ChipParams = XGENE,
    threads: int = 1,
    problem_size: int = 2048,
    max_tiles: int = 4,
    kernel_name: str = "OpenBLAS-8x6",
    score: Optional[ScoreFn] = None,
) -> List[TuneResult]:
    """Empirically search block sizes on the simulated chip.

    Every distinct configuration is scored exactly once: both the (mr, nr)
    candidate list and the (kc, mc, nc) neighborhood grid are deduplicated
    before scoring, so a counting evaluator sees no repeats even when
    neighborhoods collapse (small caches flooring several neighbors to the
    same multiple).

    Args:
        chip: Architecture to tune for.
        threads: Thread count of the target configuration.
        problem_size: Square DGEMM size used for scoring.
        max_tiles: How many top-gamma register tiles to explore.
        kernel_name: Cost-model kernel identity used for scoring (the
            interference mix follows the tile's own shape through the
            blocking; the hide class follows this variant).
        score: Optional scoring hook
            ``score(kernel_name, problem_size, threads, blocking)`` that
            replaces the built-in cost-model call; used by tests and by
            search layers that bring their own evaluator.

    Returns:
        All scored configurations, best first (efficiency descending,
        enumeration order as the deterministic tie-break).
    """
    if problem_size < 64:
        raise BlockingError("problem_size too small to be meaningful")
    if score is None:
        from repro.sim.gemm_sim import GemmSimulator  # lazy: avoid cycle

        sim = GemmSimulator(chip)

        def score(name: str, size: int, thr: int, blk: CacheBlocking) -> float:
            return sim.simulate(name, size, size, size, threads=thr,
                                blocking=blk).efficiency

    results: List[TuneResult] = []
    scored: Set[Tuple[int, ...]] = set()
    for mr, nr in candidate_tiles(chip, max_tiles):
        try:
            base = solve_cache_blocking(chip, mr, nr, threads=threads)
        except BlockingError:
            continue
        for kc in neighborhood(base.kc, 128, 64):
            for mc in neighborhood(base.mc, 2 * mr, mr):
                for nc in neighborhood(base.nc, 16 * nr, nr):
                    config = (mr, nr, kc, mc, nc, base.k1, base.k2, base.k3)
                    if config in scored:
                        continue
                    scored.add(config)
                    blk = CacheBlocking(
                        mr=mr, nr=nr, kc=kc, mc=mc, nc=nc,
                        k1=base.k1, k2=base.k2, k3=base.k3,
                    )
                    results.append(
                        TuneResult(
                            kernel=f"{mr}x{nr}",
                            blocking=blk,
                            efficiency=score(
                                kernel_name, problem_size, threads, blk
                            ),
                        )
                    )
    if not results:
        raise BlockingError("no feasible configuration found")
    results.sort(key=lambda r: r.efficiency, reverse=True)
    return results


def best_blocking(
    chip: ChipParams = XGENE, threads: int = 1, problem_size: int = 2048
) -> CacheBlocking:
    """The auto-tuner's winning configuration."""
    return autotune(chip, threads=threads, problem_size=problem_size)[0].blocking
