"""Register block size selection (paper Sec. IV-A, eqs. (8)-(11), Fig. 5).

The optimization problem: choose the register tile ``mr x nr`` (and the
number of reused preload registers ``nrf``) to maximize the register-kernel
compute-to-memory ratio

    gamma = 2 / (1/nr + 1/mr)                                   (8)

subject to the register-file budget

    (mr*nr + 2*mr + 2*nr) * element_size <= (nf + nrf) * pf     (9)

(the C tile stays resident; A and B are double-buffered across iterations,
with ``nrf`` registers reused between consecutive unrolled copies),

    0 <= nrf * pf <= (mr + nr) * element_size                   (10)

and the NEON lane constraint

    mr = 2i, nr = 2j                                            (11)

For the ARMv8 parameters (nf=32, pf=16, element=8) the optimum is
gamma = 48/7 = 6.857 at (mr, nr, nrf) = (8, 6, 6) or (6, 8, 6); the paper
picks 8x6 because an 8-double A sub-sliver is exactly one 64-byte cache
line, which makes prefetching A convenient (Sec. IV-A). The same
tie-breaker is applied here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.arch.params import CoreParams
from repro.errors import BlockingError
from repro.model.ratios import register_kernel_ratio


@dataclass(frozen=True)
class RegisterBlocking:
    """A feasible register tile.

    Attributes:
        mr: Rows of the C register tile (A sub-sliver length).
        nr: Columns of the C register tile (B sub-sliver length).
        nrf: Registers reused for preloading between unrolled copies.
        gamma: Compute-to-memory ratio 2/(1/nr + 1/mr).
    """

    mr: int
    nr: int
    nrf: int
    gamma: float

    @property
    def c_registers(self) -> int:
        """Vector registers holding the C tile (2 doubles per register)."""
        return (self.mr * self.nr + 1) // 2

    @property
    def ab_registers(self) -> int:
        """Vector registers cycling the A and B elements (8 for 8x6)."""
        return (self.mr + self.nr + 1) // 2


@dataclass(frozen=True)
class RegisterBlockingProblem:
    """Problem parameters for eqs. (8)-(11).

    Attributes:
        nf: Number of architectural FP registers (A64: 32).
        pf: FP register width in bytes (NEON: 16).
        element_size: Matrix element size in bytes (float64: 8).
        line_bytes: Cache line size, used only by the 8x6-vs-6x8
            tie-breaker.
        max_mr: Search bound for mr (and nr).
    """

    nf: int = 32
    pf: int = 16
    element_size: int = 8
    line_bytes: int = 64
    max_mr: int = 16

    def __post_init__(self) -> None:
        if min(self.nf, self.pf, self.element_size, self.line_bytes) <= 0:
            raise BlockingError("all problem parameters must be positive")

    @classmethod
    def from_core(
        cls, core: CoreParams, element_size: int = 8, line_bytes: int = 64
    ) -> "RegisterBlockingProblem":
        """Build the problem from a core description."""
        return cls(
            nf=core.fp_registers,
            pf=core.fp_register_bytes,
            element_size=element_size,
            line_bytes=line_bytes,
        )

    # -- constraints ---------------------------------------------------------

    def max_nrf(self, mr: int, nr: int) -> int:
        """Largest nrf allowed by eq. (10)."""
        return ((mr + nr) * self.element_size) // self.pf

    def register_budget_ok(self, mr: int, nr: int, nrf: int) -> bool:
        """Eq. (9)."""
        need = (mr * nr + 2 * mr + 2 * nr) * self.element_size
        return need <= (self.nf + nrf) * self.pf

    def lanes_ok(self, mr: int, nr: int) -> bool:
        """Eq. (11): tile sides must be multiples of the vector lane count."""
        lanes = max(1, self.pf // self.element_size)
        return mr % lanes == 0 and nr % lanes == 0

    def is_feasible(self, mr: int, nr: int, nrf: int) -> bool:
        """All three constraints at once."""
        if mr <= 0 or nr <= 0 or nrf < 0:
            return False
        return (
            self.lanes_ok(mr, nr)
            and nrf <= self.max_nrf(mr, nr)
            and self.register_budget_ok(mr, nr, nrf)
        )

    # -- search ---------------------------------------------------------------

    def feasible_tiles(self) -> Iterator[RegisterBlocking]:
        """Every feasible (mr, nr) with the *minimal* sufficient nrf.

        The paper phrases the choice as "it suffices to set nrf = 6": the
        smallest number of reused registers that satisfies the budget (9)
        is reported, since reusing fewer registers gives the scheduler more
        freedom.
        """
        lanes = max(1, self.pf // self.element_size)
        for mr in range(lanes, self.max_mr + 1, lanes):
            for nr in range(lanes, self.max_mr + 1, lanes):
                for nrf in range(0, self.max_nrf(mr, nr) + 1):
                    if self.is_feasible(mr, nr, nrf):
                        yield RegisterBlocking(
                            mr=mr,
                            nr=nr,
                            nrf=nrf,
                            gamma=register_kernel_ratio(mr, nr),
                        )
                        break

    def best_nr_for(self, mr: int, nrf: int) -> Optional[int]:
        """Largest feasible nr for fixed (mr, nrf) — the Fig. 5 surface's
        inner maximization."""
        lanes = max(1, self.pf // self.element_size)
        if mr <= 0 or mr % lanes or nrf < 0:
            return None
        best = None
        for nr in range(lanes, self.max_mr + 1, lanes):
            if nrf <= self.max_nrf(mr, nr) and self.register_budget_ok(
                mr, nr, nrf
            ):
                best = nr
        return best

    def solve(self) -> RegisterBlocking:
        """The gamma-maximizing tile with the paper's tie-breakers.

        Ties on gamma are broken by (1) preferring an mr whose A sub-sliver
        is a whole number of cache lines (prefetch convenience), then (2)
        the larger mr.
        """
        candidates = list(self.feasible_tiles())
        if not candidates:
            raise BlockingError("no feasible register tile")

        def sort_key(t: RegisterBlocking) -> Tuple[float, int, int]:
            line_aligned = int(
                (t.mr * self.element_size) % self.line_bytes == 0
            )
            return (t.gamma, line_aligned, t.mr)

        return max(candidates, key=sort_key)

    def surface(
        self, mr_range: Optional[range] = None, nrf_range: Optional[range] = None
    ) -> List[Tuple[int, int, float]]:
        """The Fig. 5 surface: (mr, nrf, gamma of the best nr) triples.

        Infeasible points carry gamma 0.0, matching the figure's floor.
        """
        lanes = max(1, self.pf // self.element_size)
        mr_range = mr_range or range(lanes, self.max_mr + 1, lanes)
        nrf_range = nrf_range or range(0, 9)
        points: List[Tuple[int, int, float]] = []
        for mr in mr_range:
            for nrf in nrf_range:
                nr = self.best_nr_for(mr, nrf)
                g = register_kernel_ratio(mr, nr) if nr else 0.0
                points.append((mr, nrf, g))
        return points
