"""Prefetch distance selection (paper Sec. IV-B, final part).

Two software-prefetch streams exist in GEBP:

- **B** (``PLDL2KEEP``): while the *current* kc x nr sliver of B multiplies
  the last slivers of A, the *next* sliver of B is prefetched into the L2
  cache. The distance is a whole sliver ahead:
  ``PREFB = kc * nr * element_size`` (24576 bytes for the 8x6 blocking).

- **A** (``PLDL1KEEP``): each mr x 1 column sub-sliver of A must be in the
  L1 cache when consumed, so A is prefetched a short distance ahead:
  ``PREFA = alpha_prea * unroll * mr * element_size`` (2 * 8 * 8 * 8 = 1024
  bytes), i.e. two unrolled loop bodies ahead of the consumption point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BlockingError

#: The paper's lookahead factor for the A stream.
DEFAULT_ALPHA_PREA = 2
#: The register kernel is unrolled by this factor (Table I).
DEFAULT_UNROLL = 8


@dataclass(frozen=True)
class PrefetchPlan:
    """Prefetch distances for the GEBP inner kernel.

    Attributes:
        prefa_bytes: Lookahead for the A stream (into L1).
        prefb_bytes: Lookahead for the B stream (into L2).
        unroll: Register-kernel unroll factor.
    """

    prefa_bytes: int
    prefb_bytes: int
    unroll: int = DEFAULT_UNROLL


def plan_prefetch(
    mr: int,
    nr: int,
    kc: int,
    element_size: int = 8,
    alpha_prea: int = DEFAULT_ALPHA_PREA,
    unroll: int = DEFAULT_UNROLL,
) -> PrefetchPlan:
    """Compute the paper's PREFA/PREFB distances for a blocking."""
    if min(mr, nr, kc, element_size, alpha_prea, unroll) <= 0:
        raise BlockingError("all prefetch parameters must be positive")
    return PrefetchPlan(
        prefa_bytes=alpha_prea * unroll * mr * element_size,
        prefb_bytes=kc * nr * element_size,
        unroll=unroll,
    )
