"""Cache block size selection (paper Sec. IV-B/IV-C, eqs. (15)-(20)).

For each cache level the paper reserves ``k`` of the ``assoc`` ways for the
"small" resident datum and the remaining ``assoc - k`` ways for the "large"
one, choosing the smallest integer ``k`` that fits the small side — which
maximizes the large side and hence the layer's compute-to-memory ratio:

- L1 (eq. 15):  small = one mr x nr C tile plus two A columns;
                large = the kc x nr sliver of B           -> determines kc;
- L2 (eq. 17):  small = the kc x nr B sliver;
                large = the mc x kc block of A            -> determines mc;
- L3 (eq. 18):  small = the mc x kc A block;
                large = the kc x nc panel of B            -> determines nc.

In the multi-threaded setting (eqs. 19/20) the per-cache factors grow with
the number of threads sharing each level: ``threads_per_module`` blocks of A
share an L2 and all ``threads`` blocks of A share the L3.

Derived sizes are floored to a whole number of cache lines of elements
(8 float64 per 64-byte line), which keeps packed slivers line-aligned for
prefetching; with this rule the engine reproduces every entry of the
paper's Table III exactly, including the 8-thread cases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.params import CacheParams, ChipParams
from repro.errors import BlockingError


@dataclass(frozen=True)
class CacheBlocking:
    """A full blocking configuration for the Goto loop nest.

    Attributes:
        mr, nr: Register tile (from :mod:`repro.blocking.register_blocking`).
        kc: Depth of one rank-k update (L1-determined).
        mc: Rows of an A block (L2-determined).
        nc: Columns of a B panel (L3-determined).
        k1, k2, k3: Ways reserved for the small datum at L1/L2/L3.
    """

    mr: int
    nr: int
    kc: int
    mc: int
    nc: int
    k1: int
    k2: int
    k3: int

    def __str__(self) -> str:
        return (
            f"{self.mr}x{self.nr}x{self.kc}x{self.mc}x{self.nc}"
        )

    @property
    def label(self) -> str:
        """Short kernel label like ``8x6``."""
        return f"{self.mr}x{self.nr}"


def _floor_to(value: int, multiple: int) -> int:
    if multiple <= 0:
        raise BlockingError("multiple must be positive")
    return (value // multiple) * multiple


def _reserve_ways(cache: CacheParams, small_bytes: int) -> int:
    """Smallest k with ``small_bytes <= k * way_bytes`` (0 < k < assoc)."""
    k = max(1, math.ceil(small_bytes / cache.way_bytes))
    if k >= cache.ways:
        raise BlockingError(
            f"{cache.name}: resident datum of {small_bytes} B does not "
            f"leave a way free ({cache.ways} ways of {cache.way_bytes} B)"
        )
    return k


def solve_kc(
    l1: CacheParams,
    mr: int,
    nr: int,
    element_size: int = 8,
    max_kc: Optional[int] = None,
) -> "tuple[int, int]":
    """Eq. (15): the largest kc such that a kc x nr sliver of B occupies at
    most ``assoc1 - k1`` ways of the L1 cache, where k1 ways hold the C tile
    and two A columns. Returns ``(kc, k1)``."""
    small = (mr * nr + 2 * mr) * element_size
    k1 = _reserve_ways(l1, small)
    budget = (l1.ways - k1) * l1.way_bytes
    kc = budget // (nr * element_size)
    if max_kc is not None:
        kc = min(kc, max_kc)
    if kc < 1:
        raise BlockingError("no feasible kc: L1 too small for this tile")
    return kc, k1


def solve_mc(
    l2: CacheParams,
    kc: int,
    nr: int,
    mr: int,
    element_size: int = 8,
    sharers: int = 1,
    line_elements: int = 8,
) -> "tuple[int, int]":
    """Eq. (17) (serial) / eq. (19) (shared L2): the largest mc such that
    ``sharers`` A blocks of mc x kc fill at most ``assoc2 - k2`` ways, where
    k2 ways hold the sharers' kc x nr B slivers. Returns ``(mc, k2)``."""
    if sharers < 1:
        raise BlockingError("sharers must be >= 1")
    small = sharers * kc * nr * element_size
    k2 = _reserve_ways(l2, small)
    budget = (l2.ways - k2) * l2.way_bytes
    mc = budget // (sharers * kc * element_size)
    mc = _floor_to(mc, max(line_elements, mr) if mr <= line_elements else mr)
    if mc < mr:
        raise BlockingError("no feasible mc: L2 too small for this kc")
    return mc, k2


def solve_nc(
    l3: CacheParams,
    kc: int,
    mc: int,
    element_size: int = 8,
    sharers: int = 1,
    line_elements: int = 8,
) -> "tuple[int, int]":
    """Eq. (18) (serial) / eq. (20) (shared L3): the largest nc such that a
    kc x nc panel of B fills at most ``assoc3 - k3`` ways, where k3 ways
    hold the ``sharers`` mc x kc A blocks. Returns ``(nc, k3)``."""
    if sharers < 1:
        raise BlockingError("sharers must be >= 1")
    small = sharers * mc * kc * element_size
    k3 = _reserve_ways(l3, small)
    budget = (l3.ways - k3) * l3.way_bytes
    nc = budget // (kc * element_size)
    nc = _floor_to(nc, line_elements)
    if nc < 1:
        raise BlockingError("no feasible nc: L3 too small for this blocking")
    return nc, k3


def solve_cache_blocking(
    chip: ChipParams,
    mr: int,
    nr: int,
    threads: int = 1,
    element_size: int = 8,
    kc_override: Optional[int] = None,
) -> CacheBlocking:
    """Derive (kc, mc, nc) for ``mr x nr`` on ``chip`` with ``threads``
    threads.

    Thread placement follows the paper (Sec. V): threads spread across
    modules first, so with t <= modules each thread owns a whole L2 and the
    L2 constraint is the serial one; with more threads,
    ``ceil(t / modules)`` threads share each L2. All t threads share the L3
    (each contributes its own A block, eq. (20)).

    Args:
        chip: Architecture description.
        mr, nr: Register tile.
        threads: Number of DGEMM threads (1..chip.cores).
        element_size: Bytes per matrix element.
        kc_override: Force kc (used when reproducing the paper's 8x4/4x4
            configurations, which share kc = 768).
    """
    if not 1 <= threads <= chip.cores:
        raise BlockingError(
            f"threads {threads} out of range 1..{chip.cores}"
        )
    line_elements = chip.l1d.line_bytes // element_size

    kc, k1 = solve_kc(chip.l1d, mr, nr, element_size)
    if kc_override is not None:
        kc = kc_override

    l2_sharers = max(1, math.ceil(threads / chip.modules))
    mc, k2 = solve_mc(
        chip.l2, kc, nr, mr, element_size, sharers=l2_sharers,
        line_elements=line_elements,
    )

    if chip.l3 is None:
        # Two-level hierarchy: B panels stream from DRAM; bound nc only by
        # a pragmatic multiple of nr (no L3 residency constraint).
        nc, k3 = 1024 - 1024 % nr, 0
    else:
        nc, k3 = solve_nc(
            chip.l3, kc, mc, element_size, sharers=threads,
            line_elements=line_elements,
        )
    return CacheBlocking(
        mr=mr, nr=nr, kc=kc, mc=mc, nc=nc, k1=k1, k2=k2, k3=k3
    )


def solve_class_blockings(
    chip: ChipParams,
    mr: int,
    nr: int,
    threads: Optional[int] = None,
    element_size: int = 8,
    kc_override: Optional[int] = None,
) -> Dict[str, CacheBlocking]:
    """Per-core-class (kc, mc, nc) on a possibly asymmetric chip.

    Each class solves eqs. (15)/(17)/(19) against its *own* L1/L2
    geometry — a LITTLE cluster with a 16 KB L1 gets a smaller kc than
    its big sibling — while eq. (20) for nc charges the shared L3 with
    one A block per active thread chip-wide, whatever class it runs on.

    Args:
        chip: Architecture description (symmetric chips yield one entry
            named after their single synthesized class, ``"all"``).
        mr, nr: Register tile.
        threads: Active threads chip-wide; defaults to ``chip.cores``.
            Threads occupy clusters in declaration order (the placement
            of :meth:`~repro.arch.params.ChipParams.thread_clusters`);
            classes left empty are omitted from the result.
        element_size: Bytes per matrix element.
        kc_override: Force every class's kc (paper-reproduction knob).

    Returns:
        Mapping of cluster name to its :class:`CacheBlocking`.
    """
    total = chip.cores if threads is None else threads
    if not 1 <= total <= chip.cores:
        raise BlockingError(
            f"threads {total} out of range 1..{chip.cores}"
        )
    placement = chip.thread_clusters(total)
    per_cluster = {
        index: placement.count(index) for index in set(placement)
    }
    out: Dict[str, CacheBlocking] = {}
    for index, cluster in enumerate(chip.core_clusters):
        t_c = per_cluster.get(index, 0)
        if t_c == 0:
            continue
        line_elements = cluster.l1d.line_bytes // element_size
        kc, k1 = solve_kc(cluster.l1d, mr, nr, element_size)
        if kc_override is not None:
            kc = kc_override
        l2_sharers = max(1, math.ceil(t_c / cluster.modules))
        mc, k2 = solve_mc(
            cluster.l2, kc, nr, mr, element_size, sharers=l2_sharers,
            line_elements=line_elements,
        )
        if chip.l3 is None:
            nc, k3 = 1024 - 1024 % nr, 0
        else:
            nc, k3 = solve_nc(
                chip.l3, kc, mc, element_size, sharers=total,
                line_elements=line_elements,
            )
        out[cluster.name] = CacheBlocking(
            mr=mr, nr=nr, kc=kc, mc=mc, nc=nc, k1=k1, k2=k2, k3=k3
        )
    return out


def goto_blocking(
    chip: ChipParams,
    mr: int,
    nr: int,
    element_size: int = 8,
    threads: int = 1,
) -> CacheBlocking:
    """The half-cache heuristic of Goto & van de Geijn [5], used by the
    paper's Table VI as the comparison point: an mc x kc block of A fills
    about half the L2 and a kc x nr sliver of B about half the L1 — set
    associativity and replacement are ignored. When ``threads`` share an
    L2, the per-thread A block shrinks proportionally (the rule ATLAS's
    auto-tuner approximates empirically).

    Sizes are floored to multiples of 64 elements (kc) and the register
    tile (mc, nc) to stay implementation-friendly.
    """
    half_l1 = chip.l1d.size_bytes // 2
    kc = _floor_to(half_l1 // (nr * element_size), 64)
    l2_sharers = max(1, -(-threads // chip.modules))
    half_l2 = chip.l2.size_bytes // (2 * l2_sharers)
    mc = _floor_to(max(mr, (half_l2 // (kc * element_size)) * 2 - mr), mr)
    if chip.l3 is not None:
        nc = _floor_to(
            (chip.l3.size_bytes * 3 // 4) // (kc * element_size), 2 * nr
        )
    else:
        nc = 1024 - 1024 % nr
    return CacheBlocking(
        mr=mr, nr=nr, kc=kc, mc=mc, nc=nc, k1=0, k2=0, k3=0
    )
