"""Architecture descriptions for the simulated ARMv8 machine."""

from repro.arch.params import (
    CacheParams,
    ChipParams,
    CoreClusterParams,
    CoreParams,
    DramParams,
    ReplacementPolicy,
    TlbParams,
    WritePolicy,
)
from repro.arch.presets import (
    BIG_LITTLE,
    KB,
    MB,
    MOBILE_SOC,
    PRESETS,
    XGENE,
    get_preset,
    preset_names,
    single_core,
)

__all__ = [
    "CacheParams",
    "ChipParams",
    "CoreClusterParams",
    "CoreParams",
    "DramParams",
    "ReplacementPolicy",
    "TlbParams",
    "WritePolicy",
    "XGENE",
    "MOBILE_SOC",
    "BIG_LITTLE",
    "PRESETS",
    "get_preset",
    "preset_names",
    "KB",
    "MB",
    "single_core",
]
