"""Architecture descriptions for the simulated ARMv8 machine."""

from repro.arch.params import (
    CacheParams,
    ChipParams,
    CoreParams,
    DramParams,
    ReplacementPolicy,
    TlbParams,
    WritePolicy,
)
from repro.arch.presets import KB, MB, MOBILE_SOC, XGENE, single_core

__all__ = [
    "CacheParams",
    "ChipParams",
    "CoreParams",
    "DramParams",
    "ReplacementPolicy",
    "TlbParams",
    "WritePolicy",
    "XGENE",
    "MOBILE_SOC",
    "KB",
    "MB",
    "single_core",
]
