"""Preset chip descriptions.

:data:`XGENE` mirrors the evaluation platform of the paper (Fig. 1 and
Table II): an eight-core 64-bit ARMv8 chip at 2.4 GHz, one FMA pipeline per
core (4.8 Gflops/core peak), 32 KB 4-way L1D per core, 256 KB 16-way L2 per
dual-core module, and an 8 MB 16-way L3 shared by all four modules. Cache
lines are 64 bytes throughout and all caches are LRU — the associativity and
replacement facts the paper's block-size constraints (15), (17), (18) rely
on.
"""

from __future__ import annotations

from repro.arch.params import (
    CacheParams,
    ChipParams,
    CoreParams,
    DramParams,
    ReplacementPolicy,
    TlbParams,
)

KB = 1024
MB = 1024 * 1024

#: The paper's X-Gene-class 64-bit ARMv8 eight-core processor.
XGENE = ChipParams(
    name="armv8-xgene-8core",
    cores=8,
    cores_per_module=2,
    core=CoreParams(
        issue_width=4,
        fma_pipes=1,
        load_ports=1,
        fma_latency=5,
        fma_throughput_cycles=2,
        load_latency=4,
        fp_registers=32,
        fp_register_bytes=16,
        rename_registers=8,
        frequency_hz=2.4e9,
    ),
    l1d=CacheParams(
        name="L1D",
        size_bytes=32 * KB,
        line_bytes=64,
        ways=4,
        latency_cycles=4,
        replacement=ReplacementPolicy.LRU,
        shared_by=1,
    ),
    l2=CacheParams(
        name="L2",
        size_bytes=256 * KB,
        line_bytes=64,
        ways=16,
        latency_cycles=12,
        replacement=ReplacementPolicy.LRU,
        shared_by=2,
    ),
    l3=CacheParams(
        name="L3",
        size_bytes=8 * MB,
        line_bytes=64,
        ways=16,
        latency_cycles=40,
        replacement=ReplacementPolicy.LRU,
        shared_by=8,
    ),
    dram=DramParams(
        latency_cycles=180,
        bandwidth_bytes_per_cycle=16.0,
        bridges=2,
    ),
    tlb=TlbParams(entries=512, page_bytes=4096, miss_penalty_cycles=30),
)


#: A little-core mobile SoC: four 2-issue cores, private 512 KB L2s and
#: no L3 — exercises the two-level-hierarchy paths (B panels stream from
#: DRAM; eq. (18) has no cache to bind nc).
MOBILE_SOC = ChipParams(
    name="armv8-mobile-4core",
    cores=4,
    cores_per_module=1,
    core=CoreParams(
        issue_width=2,
        fma_pipes=1,
        load_ports=1,
        fma_latency=5,
        fma_throughput_cycles=2,
        load_latency=3,
        fp_registers=32,
        fp_register_bytes=16,
        frequency_hz=1.8e9,
    ),
    l1d=CacheParams(
        name="L1D", size_bytes=32 * KB, line_bytes=64, ways=4,
        latency_cycles=3, shared_by=1,
    ),
    l2=CacheParams(
        name="L2", size_bytes=512 * KB, line_bytes=64, ways=16,
        latency_cycles=14, shared_by=1,
    ),
    l3=None,
    dram=DramParams(
        latency_cycles=150, bandwidth_bytes_per_cycle=8.0, bridges=1
    ),
)


def single_core(chip: ChipParams = XGENE) -> ChipParams:
    """A one-core view of ``chip`` with the same per-core cache geometry.

    Useful for serial experiments: the L2 and L3 keep their sizes but are
    private, matching the paper's serial setting where one thread owns the
    whole hierarchy.
    """
    return ChipParams(
        name=f"{chip.name}-1core",
        cores=1,
        cores_per_module=1,
        core=chip.core,
        l1d=chip.l1d,
        l2=CacheParams(
            name=chip.l2.name,
            size_bytes=chip.l2.size_bytes,
            line_bytes=chip.l2.line_bytes,
            ways=chip.l2.ways,
            latency_cycles=chip.l2.latency_cycles,
            replacement=chip.l2.replacement,
            write_policy=chip.l2.write_policy,
            shared_by=1,
        ),
        l3=None
        if chip.l3 is None
        else CacheParams(
            name=chip.l3.name,
            size_bytes=chip.l3.size_bytes,
            line_bytes=chip.l3.line_bytes,
            ways=chip.l3.ways,
            latency_cycles=chip.l3.latency_cycles,
            replacement=chip.l3.replacement,
            write_policy=chip.l3.write_policy,
            shared_by=1,
        ),
        dram=chip.dram,
        tlb=chip.tlb,
    )
