"""Preset chip descriptions.

:data:`XGENE` mirrors the evaluation platform of the paper (Fig. 1 and
Table II): an eight-core 64-bit ARMv8 chip at 2.4 GHz, one FMA pipeline per
core (4.8 Gflops/core peak), 32 KB 4-way L1D per core, 256 KB 16-way L2 per
dual-core module, and an 8 MB 16-way L3 shared by all four modules. Cache
lines are 64 bytes throughout and all caches are LRU — the associativity and
replacement facts the paper's block-size constraints (15), (17), (18) rely
on.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.arch.params import (
    CacheParams,
    ChipParams,
    CoreClusterParams,
    CoreParams,
    DramParams,
    ReplacementPolicy,
    TlbParams,
)
from repro.errors import ArchitectureError

KB = 1024
MB = 1024 * 1024

#: The paper's X-Gene-class 64-bit ARMv8 eight-core processor.
XGENE = ChipParams(
    name="armv8-xgene-8core",
    cores=8,
    cores_per_module=2,
    core=CoreParams(
        issue_width=4,
        fma_pipes=1,
        load_ports=1,
        fma_latency=5,
        fma_throughput_cycles=2,
        load_latency=4,
        fp_registers=32,
        fp_register_bytes=16,
        rename_registers=8,
        frequency_hz=2.4e9,
    ),
    l1d=CacheParams(
        name="L1D",
        size_bytes=32 * KB,
        line_bytes=64,
        ways=4,
        latency_cycles=4,
        replacement=ReplacementPolicy.LRU,
        shared_by=1,
    ),
    l2=CacheParams(
        name="L2",
        size_bytes=256 * KB,
        line_bytes=64,
        ways=16,
        latency_cycles=12,
        replacement=ReplacementPolicy.LRU,
        shared_by=2,
    ),
    l3=CacheParams(
        name="L3",
        size_bytes=8 * MB,
        line_bytes=64,
        ways=16,
        latency_cycles=40,
        replacement=ReplacementPolicy.LRU,
        shared_by=8,
    ),
    dram=DramParams(
        latency_cycles=180,
        bandwidth_bytes_per_cycle=16.0,
        bridges=2,
    ),
    tlb=TlbParams(entries=512, page_bytes=4096, miss_penalty_cycles=30),
)


#: A little-core mobile SoC: four 2-issue cores, private 512 KB L2s and
#: no L3 — exercises the two-level-hierarchy paths (B panels stream from
#: DRAM; eq. (18) has no cache to bind nc).
MOBILE_SOC = ChipParams(
    name="armv8-mobile-4core",
    cores=4,
    cores_per_module=1,
    core=CoreParams(
        issue_width=2,
        fma_pipes=1,
        load_ports=1,
        fma_latency=5,
        fma_throughput_cycles=2,
        load_latency=3,
        fp_registers=32,
        fp_register_bytes=16,
        frequency_hz=1.8e9,
    ),
    l1d=CacheParams(
        name="L1D", size_bytes=32 * KB, line_bytes=64, ways=4,
        latency_cycles=3, shared_by=1,
    ),
    l2=CacheParams(
        name="L2", size_bytes=512 * KB, line_bytes=64, ways=16,
        latency_cycles=14, shared_by=1,
    ),
    l3=None,
    dram=DramParams(
        latency_cycles=150, bandwidth_bytes_per_cycle=8.0, bridges=1
    ),
    # No TLB on purpose: the mobile preset exercises the "TLB not
    # modeled" path end to end (timed runs skip TLB effects and
    # RunReports surface ``tlb_modeled: false``). Adding one here would
    # change every committed mobile baseline, so the omission is part of
    # the preset's contract.
)


_BIG_CLUSTER = CoreClusterParams(
    name="big",
    cores=2,
    cores_per_module=2,
    core=CoreParams(
        issue_width=4,
        fma_pipes=1,
        load_ports=1,
        fma_latency=5,
        fma_throughput_cycles=2,
        load_latency=4,
        fp_registers=32,
        fp_register_bytes=16,
        rename_registers=8,
        frequency_hz=2.4e9,
        fma_energy_pj=45.0,
        load_energy_pj=25.0,
        idle_energy_pj=150.0,
    ),
    l1d=CacheParams(
        name="L1D", size_bytes=32 * KB, line_bytes=64, ways=4,
        latency_cycles=4, shared_by=1, miss_energy_pj=50.0,
    ),
    l2=CacheParams(
        name="L2", size_bytes=1 * MB, line_bytes=64, ways=16,
        latency_cycles=14, shared_by=2, miss_energy_pj=300.0,
    ),
)

_LITTLE_CLUSTER = CoreClusterParams(
    name="LITTLE",
    cores=4,
    cores_per_module=2,
    core=CoreParams(
        issue_width=2,
        fma_pipes=1,
        load_ports=1,
        fma_latency=4,
        fma_throughput_cycles=2,
        load_latency=3,
        fp_registers=32,
        fp_register_bytes=16,
        rename_registers=4,
        frequency_hz=1.3e9,
        fma_energy_pj=15.0,
        load_energy_pj=8.0,
        idle_energy_pj=40.0,
    ),
    l1d=CacheParams(
        name="L1D", size_bytes=16 * KB, line_bytes=64, ways=4,
        latency_cycles=3, shared_by=1, miss_energy_pj=30.0,
    ),
    l2=CacheParams(
        name="L2", size_bytes=256 * KB, line_bytes=64, ways=16,
        latency_cycles=10, shared_by=2, miss_energy_pj=250.0,
    ),
)

#: An asymmetric big.LITTLE chip in the style of the Catalán et al.
#: platforms: two out-of-order big cores (X-Gene-class, 2.4 GHz) plus
#: four in-order LITTLE cores (1.3 GHz), each class with its own L1/L2
#: geometry, all six cores sharing a 4 MB L3. The flat fields mirror the
#: big cluster so symmetric consumers see the lead class.
BIG_LITTLE = ChipParams(
    name="armv8-biglittle-2p4e",
    cores=6,
    cores_per_module=2,
    core=_BIG_CLUSTER.core,
    l1d=_BIG_CLUSTER.l1d,
    l2=_BIG_CLUSTER.l2,
    l3=CacheParams(
        name="L3", size_bytes=4 * MB, line_bytes=64, ways=16,
        latency_cycles=38, shared_by=6, miss_energy_pj=2000.0,
    ),
    dram=DramParams(
        latency_cycles=160, bandwidth_bytes_per_cycle=12.0, bridges=1
    ),
    tlb=TlbParams(entries=512, page_bytes=4096, miss_penalty_cycles=30),
    clusters=(_BIG_CLUSTER, _LITTLE_CLUSTER),
)


#: Registry of named machine presets. Every layer that accepts a preset
#: name (CLI choices, serve queries, tune search, verify oracles) derives
#: its list from here, so a new preset appears everywhere at once.
PRESETS = {
    "xgene": XGENE,
    "mobile": MOBILE_SOC,
    "big_little": BIG_LITTLE,
}


def preset_names() -> Tuple[str, ...]:
    """The registered preset names, in registration order."""
    return tuple(PRESETS)


def get_preset(name: str) -> ChipParams:
    """Look up a preset chip by name, raising on unknown names."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ArchitectureError(
            f"unknown machine preset {name!r}; "
            f"known: {', '.join(PRESETS)}"
        ) from None


def single_core(chip: ChipParams = XGENE) -> ChipParams:
    """A one-core view of ``chip`` with the same per-core cache geometry.

    Useful for serial experiments: the L2 and L3 keep their sizes but are
    private, matching the paper's serial setting where one thread owns the
    whole hierarchy. Uses :func:`dataclasses.replace` so every cache field
    — including ones added after this helper was written — survives the
    copy; an asymmetric chip collapses to one core of its lead cluster.
    """
    return ChipParams(
        name=f"{chip.name}-1core",
        cores=1,
        cores_per_module=1,
        core=chip.core,
        l1d=chip.l1d,
        l2=replace(chip.l2, shared_by=1),
        l3=None if chip.l3 is None else replace(chip.l3, shared_by=1),
        dram=chip.dram,
        tlb=chip.tlb,
    )
