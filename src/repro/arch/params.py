"""Architecture parameter descriptions.

These dataclasses capture everything the paper's analytic machinery consumes:
cache geometry (size, associativity, line size, replacement policy, sharing),
core resources (issue width, FMA pipes, register file), and chip topology
(cores grouped into dual-core modules sharing an L2, modules sharing an L3).

Every formula in Sections III and IV of the paper — the compute-to-memory
ratios (7)/(8)/(14)/(16) and the block-size constraints (9)-(11), (15),
(17)-(20) — is a pure function of these parameters, which is what makes the
block-size engine architecture-agnostic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ArchitectureError


class ReplacementPolicy(enum.Enum):
    """Cache replacement policies supported by the simulator."""

    LRU = "lru"
    RANDOM = "random"
    PLRU = "plru"  # tree pseudo-LRU


class WritePolicy(enum.Enum):
    """Cache write policies supported by the simulator."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


@dataclass(frozen=True)
class CacheParams:
    """Geometry and behaviour of one cache level.

    Attributes:
        name: Human-readable level name ("L1D", "L2", "L3").
        size_bytes: Total capacity in bytes.
        line_bytes: Cache line size in bytes.
        ways: Set associativity (number of ways).
        latency_cycles: Load-to-use latency on a hit, in core cycles.
        replacement: Replacement policy.
        write_policy: Write policy (the paper's caches are write-back).
        shared_by: Number of cores that share one instance of this cache.
    """

    name: str
    size_bytes: int
    line_bytes: int
    ways: int
    latency_cycles: int
    replacement: ReplacementPolicy = ReplacementPolicy.LRU
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    shared_by: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ArchitectureError(
                f"{self.name}: size, line size and ways must be positive"
            )
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ArchitectureError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"line_bytes*ways = {self.line_bytes * self.ways}"
            )
        if self.latency_cycles < 0:
            raise ArchitectureError(f"{self.name}: negative latency")
        if self.shared_by < 1:
            raise ArchitectureError(f"{self.name}: shared_by must be >= 1")

    @property
    def num_sets(self) -> int:
        """Number of sets: size / (line * ways)."""
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        """Total number of lines in the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def way_bytes(self) -> int:
        """Capacity of a single way in bytes (= size / ways)."""
        return self.size_bytes // self.ways

    def lines_for(self, nbytes: int) -> int:
        """Number of cache lines needed to hold ``nbytes`` contiguous bytes."""
        if nbytes < 0:
            raise ArchitectureError("nbytes must be non-negative")
        return -(-nbytes // self.line_bytes)


@dataclass(frozen=True)
class CoreParams:
    """Resources of one core.

    Attributes:
        issue_width: Instructions issued per cycle (X-Gene: 4).
        fma_pipes: Number of FP pipelines supporting FMA (X-Gene: 1).
        load_ports: Number of load/store ports usable per cycle.
        fma_latency: FMA result latency in cycles.
        fma_throughput_cycles: Inverse throughput of one vector FMLA — a new
            FMLA starts on a pipe every this many cycles. The X-Gene core
            peaks at 4.8 Gflops at 2.4 GHz (paper Sec. II-A), i.e. 2 flops
            per cycle, so a 4-flop vector FMLA issues every 2 cycles.
        load_latency: L1-hit load-to-use latency in cycles.
        fp_registers: Number of architectural FP/SIMD registers (A64: 32).
        fp_register_bytes: Width of each FP register in bytes (NEON: 16).
        rename_registers: Physical FP registers available for renaming beyond
            the architectural file. The paper stresses ARMv8 has fewer than
            x86, motivating software register rotation.
        frequency_hz: Core clock (X-Gene: 2.4 GHz).
        flops_per_fma: FLOPs counted per scalar FMA lane (mul+add = 2).
    """

    issue_width: int = 4
    fma_pipes: int = 1
    load_ports: int = 1
    fma_latency: int = 5
    fma_throughput_cycles: int = 2
    load_latency: int = 4
    fp_registers: int = 32
    fp_register_bytes: int = 16
    rename_registers: int = 8
    frequency_hz: float = 2.4e9
    flops_per_fma: int = 2

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ArchitectureError("issue_width must be >= 1")
        if self.fma_throughput_cycles < 1:
            raise ArchitectureError("fma_throughput_cycles must be >= 1")
        if self.fma_pipes < 1 or self.load_ports < 1:
            raise ArchitectureError("fma_pipes and load_ports must be >= 1")
        if self.fp_registers < 2:
            raise ArchitectureError("need at least 2 FP registers")
        if self.fp_register_bytes not in (8, 16, 32, 64):
            raise ArchitectureError(
                f"unsupported FP register width {self.fp_register_bytes}"
            )
        if self.frequency_hz <= 0:
            raise ArchitectureError("frequency must be positive")

    @property
    def doubles_per_register(self) -> int:
        """How many float64 values fit in one FP register (NEON 128-bit: 2)."""
        return self.fp_register_bytes // 8

    @property
    def flops_per_cycle(self) -> float:
        """Peak double-precision FLOPs per cycle of one core."""
        lanes = self.doubles_per_register
        return (
            self.fma_pipes * lanes * self.flops_per_fma
            / self.fma_throughput_cycles
        )

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of one core.

        One vector FMA every ``fma_throughput_cycles`` on each FMA pipe,
        each operating on a full register of float64 lanes, two FLOPs per
        lane. For the X-Gene parameters this is 4.8 Gflops.
        """
        return self.frequency_hz * self.flops_per_cycle


@dataclass(frozen=True)
class DramParams:
    """Main-memory timing.

    Attributes:
        latency_cycles: Access latency seen by a core, in core cycles.
        bandwidth_bytes_per_cycle: Sustainable bandwidth per memory bridge.
        bridges: Number of memory bridges (X-Gene: 2, Fig. 1).
    """

    latency_cycles: int = 180
    bandwidth_bytes_per_cycle: float = 16.0
    bridges: int = 2

    def __post_init__(self) -> None:
        if self.latency_cycles <= 0 or self.bandwidth_bytes_per_cycle <= 0:
            raise ArchitectureError("DRAM latency/bandwidth must be positive")
        if self.bridges < 1:
            raise ArchitectureError("need at least one memory bridge")


@dataclass(frozen=True)
class TlbParams:
    """TLB geometry (the paper's future-work item, modeled here).

    Attributes:
        entries: Number of TLB entries.
        page_bytes: Page size in bytes.
        miss_penalty_cycles: Cycles charged per TLB miss (walk cost).
    """

    entries: int = 512
    page_bytes: int = 4096
    miss_penalty_cycles: int = 30

    def __post_init__(self) -> None:
        if self.entries < 1 or self.page_bytes < 1:
            raise ArchitectureError("TLB entries/page size must be positive")


@dataclass(frozen=True)
class ChipParams:
    """A whole multi-core chip.

    Attributes:
        name: Chip name.
        cores: Total number of cores.
        cores_per_module: Cores per dual-core module sharing an L2.
        core: Core resource description.
        l1d: Per-core L1 data cache.
        l2: Per-module L2 cache.
        l3: Chip-wide L3 cache (``None`` for two-level hierarchies).
        dram: Main-memory timing.
        tlb: Optional TLB description.
    """

    name: str
    cores: int
    cores_per_module: int
    core: CoreParams
    l1d: CacheParams
    l2: CacheParams
    l3: Optional[CacheParams]
    dram: DramParams = field(default_factory=DramParams)
    tlb: Optional[TlbParams] = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ArchitectureError("chip needs at least one core")
        if self.cores_per_module < 1 or self.cores % self.cores_per_module:
            raise ArchitectureError(
                f"{self.cores} cores do not divide into modules of "
                f"{self.cores_per_module}"
            )
        if self.l1d.shared_by != 1:
            raise ArchitectureError("L1D must be private to a core")
        if self.l2.shared_by != self.cores_per_module:
            raise ArchitectureError(
                "L2 shared_by must equal cores_per_module"
            )
        if self.l3 is not None and self.l3.shared_by != self.cores:
            raise ArchitectureError("L3 must be shared by all cores")

    @property
    def modules(self) -> int:
        """Number of dual-core (in general, multi-core) modules."""
        return self.cores // self.cores_per_module

    @property
    def cache_levels(self) -> Tuple[CacheParams, ...]:
        """The cache levels from fastest to slowest, omitting a missing L3."""
        levels = [self.l1d, self.l2]
        if self.l3 is not None:
            levels.append(self.l3)
        return tuple(levels)

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of the whole chip."""
        return self.core.peak_flops * self.cores

    def peak_flops_for(self, threads: int) -> float:
        """Peak double-precision FLOP/s for ``threads`` single-thread cores."""
        if not 1 <= threads <= self.cores:
            raise ArchitectureError(
                f"thread count {threads} out of range 1..{self.cores}"
            )
        return self.core.peak_flops * threads
