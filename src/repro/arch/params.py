"""Architecture parameter descriptions.

These dataclasses capture everything the paper's analytic machinery consumes:
cache geometry (size, associativity, line size, replacement policy, sharing),
core resources (issue width, FMA pipes, register file), and chip topology
(cores grouped into dual-core modules sharing an L2, modules sharing an L3).

Every formula in Sections III and IV of the paper — the compute-to-memory
ratios (7)/(8)/(14)/(16) and the block-size constraints (9)-(11), (15),
(17)-(20) — is a pure function of these parameters, which is what makes the
block-size engine architecture-agnostic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ArchitectureError


class ReplacementPolicy(enum.Enum):
    """Cache replacement policies supported by the simulator."""

    LRU = "lru"
    RANDOM = "random"
    PLRU = "plru"  # tree pseudo-LRU


class WritePolicy(enum.Enum):
    """Cache write policies supported by the simulator."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


@dataclass(frozen=True)
class CacheParams:
    """Geometry and behaviour of one cache level.

    Attributes:
        name: Human-readable level name ("L1D", "L2", "L3").
        size_bytes: Total capacity in bytes.
        line_bytes: Cache line size in bytes.
        ways: Set associativity (number of ways).
        latency_cycles: Load-to-use latency on a hit, in core cycles.
        replacement: Replacement policy.
        write_policy: Write policy (the paper's caches are write-back).
        shared_by: Number of cores that share one instance of this cache.
        miss_energy_pj: Energy in picojoules charged per miss at this level
            (the cost of filling one line from the level below). Feeds the
            simple energy model on timed/simulated results.
    """

    name: str
    size_bytes: int
    line_bytes: int
    ways: int
    latency_cycles: int
    replacement: ReplacementPolicy = ReplacementPolicy.LRU
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    shared_by: int = 1
    miss_energy_pj: float = 200.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ArchitectureError(
                f"{self.name}: size, line size and ways must be positive"
            )
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ArchitectureError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"line_bytes*ways = {self.line_bytes * self.ways}"
            )
        if self.latency_cycles < 0:
            raise ArchitectureError(f"{self.name}: negative latency")
        if self.shared_by < 1:
            raise ArchitectureError(f"{self.name}: shared_by must be >= 1")
        if self.miss_energy_pj < 0:
            raise ArchitectureError(
                f"{self.name}: miss_energy_pj must be non-negative"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets: size / (line * ways)."""
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def num_lines(self) -> int:
        """Total number of lines in the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def way_bytes(self) -> int:
        """Capacity of a single way in bytes (= size / ways)."""
        return self.size_bytes // self.ways

    def lines_for(self, nbytes: int) -> int:
        """Number of cache lines needed to hold ``nbytes`` contiguous bytes."""
        if nbytes < 0:
            raise ArchitectureError("nbytes must be non-negative")
        return -(-nbytes // self.line_bytes)


@dataclass(frozen=True)
class CoreParams:
    """Resources of one core.

    Attributes:
        issue_width: Instructions issued per cycle (X-Gene: 4).
        fma_pipes: Number of FP pipelines supporting FMA (X-Gene: 1).
        load_ports: Number of load/store ports usable per cycle.
        fma_latency: FMA result latency in cycles.
        fma_throughput_cycles: Inverse throughput of one vector FMLA — a new
            FMLA starts on a pipe every this many cycles. The X-Gene core
            peaks at 4.8 Gflops at 2.4 GHz (paper Sec. II-A), i.e. 2 flops
            per cycle, so a 4-flop vector FMLA issues every 2 cycles.
        load_latency: L1-hit load-to-use latency in cycles.
        fp_registers: Number of architectural FP/SIMD registers (A64: 32).
        fp_register_bytes: Width of each FP register in bytes (NEON: 16).
        rename_registers: Physical FP registers available for renaming beyond
            the architectural file. The paper stresses ARMv8 has fewer than
            x86, motivating software register rotation.
        frequency_hz: Core clock (X-Gene: 2.4 GHz).
        flops_per_fma: FLOPs counted per scalar FMA lane (mul+add = 2).
        fma_energy_pj: Energy per vector FMA instruction, in picojoules.
        load_energy_pj: Energy per L1 load access, in picojoules.
        idle_energy_pj: Energy per cycle a core spends waiting (load
            imbalance, barriers), in picojoules. Big out-of-order cores
            burn more static power per idle cycle than LITTLE in-order
            ones, which is what makes the energy frontier interesting.
    """

    issue_width: int = 4
    fma_pipes: int = 1
    load_ports: int = 1
    fma_latency: int = 5
    fma_throughput_cycles: int = 2
    load_latency: int = 4
    fp_registers: int = 32
    fp_register_bytes: int = 16
    rename_registers: int = 8
    frequency_hz: float = 2.4e9
    flops_per_fma: int = 2
    fma_energy_pj: float = 40.0
    load_energy_pj: float = 20.0
    idle_energy_pj: float = 100.0

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ArchitectureError("issue_width must be >= 1")
        if self.fma_throughput_cycles < 1:
            raise ArchitectureError("fma_throughput_cycles must be >= 1")
        if self.fma_pipes < 1 or self.load_ports < 1:
            raise ArchitectureError("fma_pipes and load_ports must be >= 1")
        if self.fp_registers < 2:
            raise ArchitectureError("need at least 2 FP registers")
        if self.fp_register_bytes not in (8, 16, 32, 64):
            raise ArchitectureError(
                f"unsupported FP register width {self.fp_register_bytes}"
            )
        if self.frequency_hz <= 0:
            raise ArchitectureError("frequency must be positive")
        if min(self.fma_energy_pj, self.load_energy_pj,
               self.idle_energy_pj) < 0:
            raise ArchitectureError("per-event energies must be non-negative")

    @property
    def doubles_per_register(self) -> int:
        """How many float64 values fit in one FP register (NEON 128-bit: 2)."""
        return self.fp_register_bytes // 8

    @property
    def flops_per_cycle(self) -> float:
        """Peak double-precision FLOPs per cycle of one core."""
        lanes = self.doubles_per_register
        return (
            self.fma_pipes * lanes * self.flops_per_fma
            / self.fma_throughput_cycles
        )

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of one core.

        One vector FMA every ``fma_throughput_cycles`` on each FMA pipe,
        each operating on a full register of float64 lanes, two FLOPs per
        lane. For the X-Gene parameters this is 4.8 Gflops.
        """
        return self.frequency_hz * self.flops_per_cycle


@dataclass(frozen=True)
class DramParams:
    """Main-memory timing.

    Attributes:
        latency_cycles: Access latency seen by a core, in core cycles.
        bandwidth_bytes_per_cycle: Sustainable bandwidth per memory bridge.
        bridges: Number of memory bridges (X-Gene: 2, Fig. 1).
    """

    latency_cycles: int = 180
    bandwidth_bytes_per_cycle: float = 16.0
    bridges: int = 2

    def __post_init__(self) -> None:
        if self.latency_cycles <= 0 or self.bandwidth_bytes_per_cycle <= 0:
            raise ArchitectureError("DRAM latency/bandwidth must be positive")
        if self.bridges < 1:
            raise ArchitectureError("need at least one memory bridge")


@dataclass(frozen=True)
class TlbParams:
    """TLB geometry (the paper's future-work item, modeled here).

    Attributes:
        entries: Number of TLB entries.
        page_bytes: Page size in bytes.
        miss_penalty_cycles: Cycles charged per TLB miss (walk cost).
    """

    entries: int = 512
    page_bytes: int = 4096
    miss_penalty_cycles: int = 30

    def __post_init__(self) -> None:
        if self.entries < 1 or self.page_bytes < 1:
            raise ArchitectureError("TLB entries/page size must be positive")


@dataclass(frozen=True)
class CoreClusterParams:
    """One homogeneous core class inside a (possibly asymmetric) chip.

    A cluster bundles a core description with the cache geometry that is
    private to the class: per-core L1D and the per-module L2 its modules
    share. A symmetric chip is the trivial special case of one cluster
    covering every core; a big.LITTLE chip declares one cluster per class.

    Attributes:
        name: Class name ("big", "LITTLE", ...).
        cores: Number of cores in this class.
        cores_per_module: Cores per L2-sharing module within the class.
        core: Core resources of this class.
        l1d: Per-core L1 data cache of this class.
        l2: Per-module L2 cache of this class.
    """

    name: str
    cores: int
    cores_per_module: int
    core: CoreParams
    l1d: CacheParams
    l2: CacheParams

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ArchitectureError(f"cluster {self.name}: needs >= 1 core")
        if self.cores_per_module < 1 or self.cores % self.cores_per_module:
            raise ArchitectureError(
                f"cluster {self.name}: {self.cores} cores do not divide "
                f"into modules of {self.cores_per_module}"
            )
        if self.l1d.shared_by != 1:
            raise ArchitectureError(
                f"cluster {self.name}: L1D must be private to a core"
            )
        if self.l2.shared_by != self.cores_per_module:
            raise ArchitectureError(
                f"cluster {self.name}: L2 shared_by must equal "
                "cores_per_module"
            )

    @property
    def modules(self) -> int:
        """Number of L2-sharing modules in this class."""
        return self.cores // self.cores_per_module

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of the whole class."""
        return self.core.peak_flops * self.cores


@dataclass(frozen=True)
class ChipParams:
    """A whole multi-core chip.

    Attributes:
        name: Chip name.
        cores: Total number of cores.
        cores_per_module: Cores per dual-core module sharing an L2.
        core: Core resource description.
        l1d: Per-core L1 data cache.
        l2: Per-module L2 cache.
        l3: Chip-wide L3 cache (``None`` for two-level hierarchies).
        dram: Main-memory timing.
        tlb: Optional TLB description.
        clusters: Optional core classes for asymmetric (big.LITTLE) chips.
            Empty means the chip is symmetric and fully described by the
            flat fields above — the historical form, unchanged. When set,
            the flat ``core``/``l1d``/``l2``/``cores_per_module`` fields
            must mirror the first (fastest) cluster so that every existing
            symmetric consumer keeps working against the lead class.
    """

    name: str
    cores: int
    cores_per_module: int
    core: CoreParams
    l1d: CacheParams
    l2: CacheParams
    l3: Optional[CacheParams]
    dram: DramParams = field(default_factory=DramParams)
    tlb: Optional[TlbParams] = None
    clusters: Tuple[CoreClusterParams, ...] = ()

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ArchitectureError("chip needs at least one core")
        if self.clusters:
            total = sum(c.cores for c in self.clusters)
            if total != self.cores:
                raise ArchitectureError(
                    f"cluster cores sum to {total}, chip declares "
                    f"{self.cores}"
                )
            lead = self.clusters[0]
            if (self.core != lead.core or self.l1d != lead.l1d
                    or self.l2 != lead.l2
                    or self.cores_per_module != lead.cores_per_module):
                raise ArchitectureError(
                    "flat core/l1d/l2/cores_per_module fields must mirror "
                    "the first cluster"
                )
        elif self.cores_per_module < 1 or self.cores % self.cores_per_module:
            raise ArchitectureError(
                f"{self.cores} cores do not divide into modules of "
                f"{self.cores_per_module}"
            )
        if self.l1d.shared_by != 1:
            raise ArchitectureError("L1D must be private to a core")
        if self.l2.shared_by != self.cores_per_module:
            raise ArchitectureError(
                "L2 shared_by must equal cores_per_module"
            )
        if self.l3 is not None and self.l3.shared_by != self.cores:
            raise ArchitectureError("L3 must be shared by all cores")

    @property
    def is_asymmetric(self) -> bool:
        """Whether the chip declares more than one core class."""
        return len(self.clusters) > 1

    @property
    def core_clusters(self) -> Tuple[CoreClusterParams, ...]:
        """The core classes; a symmetric chip synthesizes a single one."""
        if self.clusters:
            return self.clusters
        return (
            CoreClusterParams(
                name="all",
                cores=self.cores,
                cores_per_module=self.cores_per_module,
                core=self.core,
                l1d=self.l1d,
                l2=self.l2,
            ),
        )

    def thread_clusters(self, threads: int) -> Tuple[int, ...]:
        """Cluster index for each of ``threads`` logical threads.

        Threads fill the clusters in declaration order (fastest class
        first), one thread per core, matching how an asymmetry-aware
        runtime would pin them.
        """
        if not 1 <= threads <= self.cores:
            raise ArchitectureError(
                f"thread count {threads} out of range 1..{self.cores}"
            )
        mapping = []
        for index, cluster in enumerate(self.core_clusters):
            take = min(cluster.cores, threads - len(mapping))
            mapping.extend([index] * take)
            if len(mapping) == threads:
                break
        return tuple(mapping)

    def cluster_view(self, index: int) -> "ChipParams":
        """A symmetric chip describing only cluster ``index``.

        The shared L3 (if any) is re-declared as shared by just this
        cluster's cores so the view passes the symmetric invariants; the
        analytic machinery can then price one class in isolation.
        """
        clusters = self.core_clusters
        if not 0 <= index < len(clusters):
            raise ArchitectureError(
                f"cluster index {index} out of range 0..{len(clusters) - 1}"
            )
        cluster = clusters[index]
        l3 = None
        if self.l3 is not None:
            l3 = replace(self.l3, shared_by=cluster.cores)
        return ChipParams(
            name=f"{self.name}:{cluster.name}",
            cores=cluster.cores,
            cores_per_module=cluster.cores_per_module,
            core=cluster.core,
            l1d=cluster.l1d,
            l2=cluster.l2,
            l3=l3,
            dram=self.dram,
            tlb=self.tlb,
        )

    @property
    def modules(self) -> int:
        """Number of dual-core (in general, multi-core) modules."""
        if self.clusters:
            return sum(c.modules for c in self.clusters)
        return self.cores // self.cores_per_module

    @property
    def cache_levels(self) -> Tuple[CacheParams, ...]:
        """The cache levels from fastest to slowest, omitting a missing L3."""
        levels = [self.l1d, self.l2]
        if self.l3 is not None:
            levels.append(self.l3)
        return tuple(levels)

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of the whole chip."""
        if self.clusters:
            return sum(c.peak_flops for c in self.clusters)
        return self.core.peak_flops * self.cores

    def peak_flops_for(self, threads: int) -> float:
        """Peak double-precision FLOP/s for ``threads`` single-thread cores.

        On an asymmetric chip threads occupy the fastest class first (the
        same placement as :meth:`thread_clusters`), so the peak is the sum
        of the occupied cores' individual peaks.
        """
        if not 1 <= threads <= self.cores:
            raise ArchitectureError(
                f"thread count {threads} out of range 1..{self.cores}"
            )
        if self.clusters:
            clusters = self.core_clusters
            return sum(
                clusters[index].core.peak_flops
                for index in self.thread_clusters(threads)
            )
        return self.core.peak_flops * threads
