"""Core pipeline simulation: scoreboard model and calibrated overlap model."""

from repro.pipeline.interference import (
    DEFAULT_LAMBDA,
    DEFAULT_SIGMA,
    LoadInterferenceModel,
)
from repro.pipeline.scoreboard import (
    PipelineResult,
    ScoreboardCore,
    ScoreboardTemplate,
)

__all__ = [
    "ScoreboardCore",
    "ScoreboardTemplate",
    "PipelineResult",
    "LoadInterferenceModel",
    "DEFAULT_LAMBDA",
    "DEFAULT_SIGMA",
]
