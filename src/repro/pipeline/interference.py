"""Calibrated load/FMA interference (overlap) model.

The paper's Sec. III model bounds execution time as
``T <= F*mu + (1+kappa)*W*pi*psi(gamma)`` where ``psi`` is a monotonically
decreasing *overlapping factor* of the compute-to-memory ratio ``gamma``.
The paper determines the realized overlap empirically, by
micro-benchmarking LDR:FMLA mixes whose data stays in the L1 cache
(Table IV), and treats the resulting efficiencies as upper bounds for the
DGEMM implementations.

We do the same. :class:`LoadInterferenceModel` expresses the non-overlapped
cost of one 128-bit load as ``lam * x**sigma`` core cycles, where
``x = L / (L + F)`` is the load density of the instruction mix. The two
constants are calibrated once against the published Table IV ladder
(lam = 2.0 core cycles = 1 FMLA slot, sigma = 0.77 reproduce all seven
published points within ~1.4 percentage points); they are architecture
constants of the modeled
chip, not per-experiment fudge factors — every kernel variant, block size
and thread count is evaluated through the same two numbers.

In the paper's notation: ``gamma = flops/words = 2*FMLA/LDR`` for this ISA
(each FMLA is 4 flops, each LDR moves 2 words), ``x = 2/(2+gamma)``, and
``psi(gamma) = x**sigma`` — decreasing in gamma exactly as required, with
``psi -> 1`` as ``gamma -> 0`` (for lam = 1) and ``psi -> 0`` as
``gamma -> inf``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

#: Default calibration (see module docstring). ``lam`` is expressed in real
#: core cycles; one vector FMLA occupies the FMA pipe for
#: ``fma_occupancy = 2`` cycles on this core (4.8 Gflops at 2.4 GHz), so a
#: per-load stall of 2 cycles at density 1 equals one full FMLA slot.
DEFAULT_LAMBDA = 2.0
DEFAULT_SIGMA = 0.77
DEFAULT_FMA_OCCUPANCY = 2.0


@dataclass(frozen=True)
class LoadInterferenceModel:
    """Non-overlapped load cost as a function of instruction-mix density.

    Attributes:
        lam: Peak per-load stall in core cycles (at load density 1).
        sigma: Density exponent; higher means overlap improves faster as
            loads become sparser.
        fma_occupancy: Core cycles one vector FMLA occupies the FMA pipe.
    """

    lam: float = DEFAULT_LAMBDA
    sigma: float = DEFAULT_SIGMA
    fma_occupancy: float = DEFAULT_FMA_OCCUPANCY

    def load_density(self, loads: float, fmas: float) -> float:
        """Load density ``x = L / (L + F)`` of a mix."""
        if loads < 0 or fmas < 0 or loads + fmas == 0:
            raise SimulationError("need a non-empty, non-negative mix")
        return loads / (loads + fmas)

    def stall_per_load(self, loads: float, fmas: float) -> float:
        """Non-overlapped FMA-pipe cycles charged per load."""
        if loads == 0:
            return 0.0
        return self.lam * self.load_density(loads, fmas) ** self.sigma

    def cycles(self, loads: float, fmas: float) -> float:
        """Total core cycles for a mix: compute + non-overlapped loads."""
        return fmas * self.fma_occupancy + loads * self.stall_per_load(
            loads, fmas
        )

    def efficiency(self, loads: float, fmas: float) -> float:
        """Fraction of FMA peak achieved by the mix (Table IV's metric)."""
        if fmas == 0:
            return 0.0
        return fmas * self.fma_occupancy / self.cycles(loads, fmas)

    def efficiency_from_gamma(self, gamma: float) -> float:
        """Efficiency as a function of the compute-to-memory ratio.

        ``gamma`` is flops per word moved from L1 to registers, eq. (8) of
        the paper. For this ISA ``gamma = 2*F/L``, so ``L/F = 2/gamma``.
        """
        if gamma <= 0:
            raise SimulationError("gamma must be positive")
        loads_per_fma = 2.0 / gamma
        return self.efficiency(loads_per_fma, 1.0)

    def psi(self, gamma: float) -> float:
        """The paper's overlapping factor psi(gamma) (Sec. III, eq. (4)).

        Normalized so that ``psi -> lam/fma_occupancy = 1`` as
        ``gamma -> 0`` and ``psi -> 0`` as ``gamma -> inf``.
        """
        if gamma <= 0:
            raise SimulationError("gamma must be positive")
        x = 2.0 / (2.0 + gamma)
        return self.lam * x**self.sigma / self.fma_occupancy
