"""In-order-issue scoreboard simulator for one ARMv8 core.

Models the structural and data constraints the paper's instruction
scheduling targets (Sec. IV-A):

- issue width (X-Gene: 4 instructions/cycle, in program order);
- one FMA pipe (one ``fmla`` starts per cycle) and one load port;
- RAW hazards: an instruction cannot issue until every producer of a
  register it reads has completed (FMA latency, load latency);
- WAR hazards: optionally enforced. By default they are *not* enforced,
  mirroring the paper's finding that register renaming hides WAR latency
  (Sec. V-A); a finite rename pool can be modeled, in which case a write
  that would overwrite a register still being read by an in-flight older
  instruction stalls once the pool is exhausted.

The simulator executes a straight-line program (optionally repeated to reach
steady state) and reports total cycles plus a breakdown of stall causes.
This is what validates the rotation distance-7 / schedule distance-9 results
and quantifies the Fig. 13 no-rotation penalty.

Two execution paths produce bit-identical results:

- :meth:`ScoreboardCore.run` — the per-instruction reference interpreter;
- :meth:`ScoreboardCore.run_compiled` — the template engine behind the
  compiled timed-execution path. A program is compiled once into a
  :class:`ScoreboardTemplate` (register reads/writes as index tuples, pipe
  classes, static latencies); whole template executions then advance
  through a memo keyed on the normalized scoreboard state at the template
  boundary plus the execution's per-load latencies. In steady state —
  where the register kernel spends nearly all of its iterations — every
  body is one dictionary hit instead of hundreds of interpreted issue
  steps; irregular iterations (cold caches, latency transients) fall back
  to the same scalar stepping the memo entries are recorded from, so the
  compiled path is exact by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.params import CoreParams
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.registers import VReg, XReg


@dataclass
class PipelineResult:
    """Outcome of simulating a program on the scoreboard core.

    Attributes:
        cycles: Total cycles from first issue to last completion.
        issue_cycles: Cycles on which at least one instruction issued.
        raw_stall_cycles: Cycles lost waiting on RAW dependences.
        structural_stall_cycles: Cycles lost to pipe/port conflicts.
        war_stall_cycles: Cycles lost to WAR hazards (rename-pool pressure).
        instructions: Number of instructions executed.
        flops: FLOPs performed.
    """

    cycles: int
    issue_cycles: int
    raw_stall_cycles: int
    structural_stall_cycles: int
    war_stall_cycles: int
    instructions: int
    flops: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def flops_per_cycle(self) -> float:
        return self.flops / self.cycles if self.cycles else 0.0

    def efficiency(self, core: CoreParams) -> float:
        """Fraction of the core's peak FLOP rate achieved."""
        peak = core.flops_per_cycle
        return self.flops_per_cycle / peak if peak else 0.0


#: Instruction-class codes used by :class:`ScoreboardTemplate`.
_FMLA, _FADDP, _LDR, _STR, _PRFM, _NOP = range(6)

_CODE_OF = {
    Mnemonic.FMLA: _FMLA,
    Mnemonic.FADDP: _FADDP,
    Mnemonic.LDR: _LDR,
    Mnemonic.STR: _STR,
    Mnemonic.PRFM: _PRFM,
    Mnemonic.NOP: _NOP,
}


def _encode_reg(reg: object) -> int:
    """Registers as small ints: VReg n -> n, XReg n -> 32 + n."""
    if isinstance(reg, VReg):
        return reg.index
    if isinstance(reg, XReg):
        return 32 + reg.index
    raise SimulationError(f"cannot encode register {reg!r}")


class ScoreboardTemplate:
    """A program lowered to per-instruction issue metadata.

    Compiling hoists everything :meth:`ScoreboardCore.run` recomputes per
    dynamic instruction — ``reads()``/``writes()`` frozensets, mnemonic
    dispatch, flop counts — into flat tuples walked by the compiled
    stepper. Templates are core-independent; static latencies are resolved
    by the executing :class:`ScoreboardCore`.

    Attributes:
        codes: Per-instruction class code (FMLA/FADDP/LDR/STR/PRFM/NOP).
        reads: Per-instruction tuple of encoded source registers.
        writes: Per-instruction tuple of ``(encoded_reg, is_xreg)`` pairs.
        flops: Per-instruction flop counts.
        load_positions: Indices of the LDR instructions, in program order.
        regs: Sorted universe of encoded registers the program touches.
    """

    __slots__ = (
        "codes", "reads", "writes", "flops", "load_positions", "regs",
        "size", "total_flops", "n_loads",
    )

    def __init__(self, instructions: Sequence[Instruction]) -> None:
        codes: List[int] = []
        reads: List[Tuple[int, ...]] = []
        writes: List[Tuple[Tuple[int, bool], ...]] = []
        flops: List[int] = []
        load_positions: List[int] = []
        universe = set()
        for idx, instr in enumerate(instructions):
            code = _CODE_OF[instr.mnemonic]
            codes.append(code)
            r = tuple(sorted(_encode_reg(x) for x in instr.reads()))
            w = tuple(
                sorted(
                    (_encode_reg(x), isinstance(x, XReg))
                    for x in instr.writes()
                )
            )
            reads.append(r)
            writes.append(w)
            flops.append(instr.flops)
            universe.update(r)
            universe.update(rid for rid, _ in w)
            if code == _LDR:
                load_positions.append(idx)
        self.codes = tuple(codes)
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.flops = tuple(flops)
        self.load_positions = tuple(load_positions)
        self.regs = tuple(sorted(universe))
        self.size = len(codes)
        self.total_flops = sum(flops)
        self.n_loads = len(load_positions)

    def __len__(self) -> int:
        return self.size


class _CompiledState:
    """Mutable scoreboard state threaded through compiled stepping."""

    __slots__ = (
        "cycle", "issued", "load_used", "store_used", "any_issued",
        "ready", "last_read", "fma_free", "raw", "structural", "war",
        "issue_cycles", "last_completion", "flops",
    )

    def __init__(self, fma_pipes: int) -> None:
        self.cycle = 0
        self.issued = 0
        self.load_used = 0
        self.store_used = 0
        self.any_issued = False
        self.ready: Dict[int, int] = {}
        self.last_read: Dict[int, int] = {}
        self.fma_free = [0] * fma_pipes
        self.raw = 0
        self.structural = 0
        self.war = 0
        self.issue_cycles = 0
        self.last_completion = 0
        self.flops = 0

    def signature(
        self, universe: Tuple[int, ...], enforce_war: bool
    ) -> Tuple:
        """Normalized (cycle-relative) state at a template boundary.

        Register-ready and pipe-free times at or before the current cycle
        are all behaviourally equivalent (every comparison is ``> cycle``),
        so they clamp to 0; FMA pipes are symmetric, so their relative
        free times are sorted. Two states with equal signatures evolve
        identically under the same instruction template and latencies.
        """
        c = self.cycle
        ready = self.ready
        sig_ready = tuple(
            rel if (rel := ready.get(r, 0) - c) > 0 else 0 for r in universe
        )
        sig_war = ()
        if enforce_war:
            last = self.last_read
            sig_war = tuple(
                rel if (rel := last.get(r, 0) - c) > 0 else 0
                for r in universe
            )
        return (
            self.issued,
            self.load_used,
            self.store_used,
            self.any_issued,
            sig_ready,
            tuple(sorted(max(f - c, 0) for f in self.fma_free)),
            sig_war,
        )

    def restore(
        self, sig: Tuple, universe: Tuple[int, ...], enforce_war: bool
    ) -> None:
        """Re-enter the state class described by ``sig`` at the current
        cycle (inverse of :meth:`signature` up to equivalence)."""
        c = self.cycle
        issued, load_used, store_used, any_issued, ready, fma, war = sig
        self.issued = issued
        self.load_used = load_used
        self.store_used = store_used
        self.any_issued = any_issued
        self.ready = {r: c + rel for r, rel in zip(universe, ready)}
        self.fma_free = [c + rel for rel in fma]
        if enforce_war:
            self.last_read = {r: c + rel for r, rel in zip(universe, war)}


class ScoreboardCore:
    """Cycle-stepped in-order-issue, out-of-order-completion core model.

    Args:
        core: Core resource description.
        enforce_war: Model WAR hazards through a finite rename pool. When
            False (the default, matching the paper's observation), writes
            never wait for older readers.
        load_latency: Override the L1-hit load latency (e.g. to model a
            stream that misses to L2).
    """

    def __init__(
        self,
        core: CoreParams,
        enforce_war: bool = False,
        load_latency: Optional[int] = None,
    ) -> None:
        self.core = core
        self.enforce_war = enforce_war
        self.load_latency = (
            core.load_latency if load_latency is None else load_latency
        )

    def _latency(self, instr: Instruction) -> int:
        if instr.mnemonic is Mnemonic.FMLA:
            return self.core.fma_latency
        if instr.mnemonic is Mnemonic.FADDP:
            return max(1, self.core.fma_latency - 2)
        if instr.mnemonic is Mnemonic.LDR:
            return self.load_latency
        if instr.mnemonic is Mnemonic.STR:
            return 1
        return 1  # prfm, nop: retire immediately after issue

    def run(
        self,
        instructions: List[Instruction],
        repeat: int = 1,
        latency_fn: Optional[Callable[[Instruction, int], int]] = None,
    ) -> PipelineResult:
        """Simulate ``instructions`` repeated ``repeat`` times back-to-back.

        Repetition models the unrolled register-kernel loop in steady state:
        dependences carry across iterations exactly as the rotation scheme
        intends.

        Args:
            instructions: The program.
            repeat: Back-to-back repetitions.
            latency_fn: Optional per-dynamic-instruction latency override
                ``(instruction, dynamic_index) -> cycles``; used by the
                timing-functional simulator to feed real cache-hierarchy
                latencies into individual loads. Falls back to the static
                class latencies when it returns a non-positive value.
        """
        if repeat < 1:
            raise SimulationError("repeat must be >= 1")

        # Ready time per register value (cycle at which the value is
        # available to consumers). Address registers (XReg) produced by
        # post-index updates are available one cycle after issue.
        ready: Dict[object, int] = {}
        # For WAR modeling: last cycle at which each register is read.
        last_read: Dict[object, int] = {}

        cycle = 0
        issued_in_cycle = 0
        # FMA pipes are busy for fma_throughput_cycles per instruction;
        # track the cycle at which each pipe frees up.
        fma_free_at = [0] * self.core.fma_pipes
        load_used = 0
        store_used = 0
        raw_stalls = 0
        structural_stalls = 0
        war_stalls = 0
        issue_cycles = 0
        any_issued_this_cycle = False
        last_completion = 0
        flops = 0

        def advance() -> None:
            nonlocal cycle, issued_in_cycle, load_used, store_used
            nonlocal any_issued_this_cycle, issue_cycles
            if any_issued_this_cycle:
                issue_cycles += 1
            cycle += 1
            issued_in_cycle = 0
            load_used = 0
            store_used = 0
            any_issued_this_cycle = False

        # The repeated stream is iterated, not materialized: dependences
        # still carry across repetitions through ``ready``, but a large
        # ``repeat`` no longer costs a len*repeat list copy up front.
        dyn_stream = (
            (i, instr)
            for rep in range(repeat)
            for i, instr in enumerate(
                instructions, start=rep * len(instructions)
            )
        )
        for dyn_index, instr in dyn_stream:
            while True:
                # Structural: issue width.
                if issued_in_cycle >= self.core.issue_width:
                    structural_stalls += 1
                    advance()
                    continue
                # Structural: pipes (FADDP shares the FP/FMA pipe).
                if instr.mnemonic in (Mnemonic.FMLA, Mnemonic.FADDP) and all(
                    free > cycle for free in fma_free_at
                ):
                    structural_stalls += 1
                    advance()
                    continue
                if (
                    instr.mnemonic in (Mnemonic.LDR, Mnemonic.STR, Mnemonic.PRFM)
                    and load_used + store_used >= self.core.load_ports
                ):
                    structural_stalls += 1
                    advance()
                    continue
                # RAW: all source operands ready?
                srcs_ready = max(
                    (ready.get(r, 0) for r in instr.reads()), default=0
                )
                if srcs_ready > cycle:
                    raw_stalls += srcs_ready - cycle
                    while cycle < srcs_ready:
                        advance()
                    continue
                # WAR via rename-pool pressure (optional).
                if self.enforce_war:
                    war_until = max(
                        (last_read.get(r, 0) for r in instr.writes()),
                        default=0,
                    )
                    if war_until > cycle:
                        war_stalls += war_until - cycle
                        while cycle < war_until:
                            advance()
                        continue
                break

            # Issue now.
            issued_in_cycle += 1
            any_issued_this_cycle = True
            if instr.mnemonic in (Mnemonic.FMLA, Mnemonic.FADDP):
                pipe = min(
                    range(self.core.fma_pipes), key=lambda p: fma_free_at[p]
                )
                fma_free_at[pipe] = cycle + self.core.fma_throughput_cycles
            elif instr.mnemonic is Mnemonic.LDR:
                load_used += 1
            elif instr.mnemonic in (Mnemonic.STR, Mnemonic.PRFM):
                store_used += 1

            lat = self._latency(instr)
            if latency_fn is not None:
                override = latency_fn(instr, dyn_index)
                if override > 0:
                    lat = override
            done = cycle + lat
            for reg in instr.writes():
                if isinstance(reg, XReg):
                    # Post-index address update forwards in one cycle.
                    ready[reg] = cycle + 1
                else:
                    ready[reg] = done
            for reg in instr.reads():
                last_read[reg] = max(last_read.get(reg, 0), cycle)
            last_completion = max(last_completion, done)
            flops += instr.flops

        if any_issued_this_cycle:
            issue_cycles += 1
        return PipelineResult(
            cycles=max(last_completion, cycle + 1),
            issue_cycles=issue_cycles,
            raw_stall_cycles=raw_stalls,
            structural_stall_cycles=structural_stalls,
            war_stall_cycles=war_stalls,
            instructions=len(instructions) * repeat,
            flops=flops,
        )

    # -- compiled execution -------------------------------------------------

    def _static_latency(self, code: int) -> int:
        if code == _FMLA:
            return self.core.fma_latency
        if code == _FADDP:
            return max(1, self.core.fma_latency - 2)
        if code == _LDR:
            return self.load_latency
        return 1  # str, prfm, nop

    def _step_template(
        self,
        template: ScoreboardTemplate,
        lats: Tuple[int, ...],
        st: _CompiledState,
    ) -> int:
        """Execute one pass over ``template`` — a verbatim transliteration
        of :meth:`run`'s issue loop against the compiled metadata. Returns
        the max completion cycle of the template's own instructions (0 if
        it is empty); the caller folds it into ``st.last_completion``."""
        core = self.core
        issue_width = core.issue_width
        load_ports = core.load_ports
        throughput = core.fma_throughput_cycles
        enforce_war = self.enforce_war
        ready = st.ready
        last_read = st.last_read
        fma_free = st.fma_free
        load_cursor = 0
        seg_completion = 0

        for pos in range(template.size):
            code = template.codes[pos]
            reads = template.reads[pos]
            writes = template.writes[pos]
            cycle = st.cycle
            while True:
                if st.issued >= issue_width:
                    st.structural += 1
                    if st.any_issued:
                        st.issue_cycles += 1
                    cycle += 1
                    st.issued = st.load_used = st.store_used = 0
                    st.any_issued = False
                    continue
                if code <= _FADDP and all(f > cycle for f in fma_free):
                    st.structural += 1
                    if st.any_issued:
                        st.issue_cycles += 1
                    cycle += 1
                    st.issued = st.load_used = st.store_used = 0
                    st.any_issued = False
                    continue
                if (
                    code >= _LDR
                    and code != _NOP
                    and st.load_used + st.store_used >= load_ports
                ):
                    st.structural += 1
                    if st.any_issued:
                        st.issue_cycles += 1
                    cycle += 1
                    st.issued = st.load_used = st.store_used = 0
                    st.any_issued = False
                    continue
                srcs_ready = 0
                for r in reads:
                    t = ready.get(r, 0)
                    if t > srcs_ready:
                        srcs_ready = t
                if srcs_ready > cycle:
                    st.raw += srcs_ready - cycle
                    while cycle < srcs_ready:
                        if st.any_issued:
                            st.issue_cycles += 1
                        cycle += 1
                        st.issued = st.load_used = st.store_used = 0
                        st.any_issued = False
                    continue
                if enforce_war:
                    war_until = 0
                    for r, _is_x in writes:
                        t = last_read.get(r, 0)
                        if t > war_until:
                            war_until = t
                    if war_until > cycle:
                        st.war += war_until - cycle
                        while cycle < war_until:
                            if st.any_issued:
                                st.issue_cycles += 1
                            cycle += 1
                            st.issued = st.load_used = st.store_used = 0
                            st.any_issued = False
                        continue
                break
            st.cycle = cycle

            st.issued += 1
            st.any_issued = True
            if code <= _FADDP:
                pipe = min(range(len(fma_free)), key=lambda p: fma_free[p])
                fma_free[pipe] = cycle + throughput
            elif code == _LDR:
                st.load_used += 1
            elif code != _NOP:  # str, prfm
                st.store_used += 1

            lat = self._static_latency(code)
            if code == _LDR:
                override = lats[load_cursor]
                load_cursor += 1
                if override > 0:
                    lat = override
            done = cycle + lat
            for r, is_x in writes:
                ready[r] = cycle + 1 if is_x else done
            for r in reads:
                if last_read.get(r, 0) < cycle:
                    last_read[r] = cycle
            if done > seg_completion:
                seg_completion = done
            st.flops += template.flops[pos]
        return seg_completion

    def run_compiled(
        self,
        segments: Sequence[Tuple[ScoreboardTemplate, int]],
        load_latencies: Sequence[int],
        memo: Optional[Dict] = None,
    ) -> PipelineResult:
        """Run concatenated template segments with per-load latencies.

        Produces a :class:`PipelineResult` bit-identical to :meth:`run`
        over the equivalent flat instruction stream with a ``latency_fn``
        feeding the same per-LDR latencies.

        Args:
            segments: ``(template, repeat)`` pairs, executed back to back.
            load_latencies: One entry per dynamic LDR across the whole
                run, in program order; non-positive entries fall back to
                the static load latency (matching ``latency_fn``).
            memo: Optional cross-call memo dictionary. Entries are keyed
                on (template, normalized state, latency tuple), so a memo
                must only be shared between cores with identical
                :class:`~repro.arch.params.CoreParams`, ``enforce_war``
                and ``load_latency`` settings — e.g. across the micro
                tiles of one GEBP.
        """
        if memo is None:
            memo = {}
        universe = tuple(
            sorted(set().union(*(t.regs for t, _ in segments)))
            if segments
            else ()
        )
        enforce_war = self.enforce_war
        st = _CompiledState(self.core.fma_pipes)
        total_instructions = 0
        cursor = 0
        for template, repeat in segments:
            if repeat < 0:
                raise SimulationError("repeat must be >= 0")
            total_instructions += template.size * repeat
            for _rep in range(repeat):
                lats = tuple(load_latencies[cursor:cursor + template.n_loads])
                if len(lats) != template.n_loads:
                    raise SimulationError(
                        "load_latencies shorter than the dynamic LDR count"
                    )
                cursor += template.n_loads
                sig = st.signature(universe, enforce_war)
                key = (template, sig, lats)
                hit = memo.get(key)
                if hit is not None:
                    (d_cycle, d_raw, d_struct, d_war, d_issue,
                     rel_completion, new_sig) = hit
                    entry = st.cycle
                    st.cycle = entry + d_cycle
                    st.raw += d_raw
                    st.structural += d_struct
                    st.war += d_war
                    st.issue_cycles += d_issue
                    if entry + rel_completion > st.last_completion:
                        st.last_completion = entry + rel_completion
                    st.flops += template.total_flops
                    st.restore(new_sig, universe, enforce_war)
                    continue
                entry = (st.cycle, st.raw, st.structural, st.war,
                         st.issue_cycles)
                seg_completion = self._step_template(template, lats, st)
                if seg_completion > st.last_completion:
                    st.last_completion = seg_completion
                memo[key] = (
                    st.cycle - entry[0],
                    st.raw - entry[1],
                    st.structural - entry[2],
                    st.war - entry[3],
                    st.issue_cycles - entry[4],
                    max(seg_completion - entry[0], 0),
                    st.signature(universe, enforce_war),
                )
        if st.any_issued:
            st.issue_cycles += 1
        return PipelineResult(
            cycles=max(st.last_completion, st.cycle + 1),
            issue_cycles=st.issue_cycles,
            raw_stall_cycles=st.raw,
            structural_stall_cycles=st.structural,
            war_stall_cycles=st.war,
            instructions=total_instructions,
            flops=st.flops,
        )

    def steady_state_cycles_per_iteration(
        self, instructions: List[Instruction], warmup: int = 4, measure: int = 8
    ) -> float:
        """Steady-state cycles for one pass over ``instructions``.

        Runs ``warmup + measure`` repetitions and differences the totals so
        pipeline fill does not pollute the estimate.
        """
        short = self.run(instructions, repeat=warmup)
        long = self.run(instructions, repeat=warmup + measure)
        return (long.cycles - short.cycles) / measure
