"""In-order-issue scoreboard simulator for one ARMv8 core.

Models the structural and data constraints the paper's instruction
scheduling targets (Sec. IV-A):

- issue width (X-Gene: 4 instructions/cycle, in program order);
- one FMA pipe (one ``fmla`` starts per cycle) and one load port;
- RAW hazards: an instruction cannot issue until every producer of a
  register it reads has completed (FMA latency, load latency);
- WAR hazards: optionally enforced. By default they are *not* enforced,
  mirroring the paper's finding that register renaming hides WAR latency
  (Sec. V-A); a finite rename pool can be modeled, in which case a write
  that would overwrite a register still being read by an in-flight older
  instruction stalls once the pool is exhausted.

The simulator executes a straight-line program (optionally repeated to reach
steady state) and reports total cycles plus a breakdown of stall causes.
This is what validates the rotation distance-7 / schedule distance-9 results
and quantifies the Fig. 13 no-rotation penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.params import CoreParams
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.registers import VReg, XReg


@dataclass
class PipelineResult:
    """Outcome of simulating a program on the scoreboard core.

    Attributes:
        cycles: Total cycles from first issue to last completion.
        issue_cycles: Cycles on which at least one instruction issued.
        raw_stall_cycles: Cycles lost waiting on RAW dependences.
        structural_stall_cycles: Cycles lost to pipe/port conflicts.
        war_stall_cycles: Cycles lost to WAR hazards (rename-pool pressure).
        instructions: Number of instructions executed.
        flops: FLOPs performed.
    """

    cycles: int
    issue_cycles: int
    raw_stall_cycles: int
    structural_stall_cycles: int
    war_stall_cycles: int
    instructions: int
    flops: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def flops_per_cycle(self) -> float:
        return self.flops / self.cycles if self.cycles else 0.0

    def efficiency(self, core: CoreParams) -> float:
        """Fraction of the core's peak FLOP rate achieved."""
        peak = core.flops_per_cycle
        return self.flops_per_cycle / peak if peak else 0.0


class ScoreboardCore:
    """Cycle-stepped in-order-issue, out-of-order-completion core model.

    Args:
        core: Core resource description.
        enforce_war: Model WAR hazards through a finite rename pool. When
            False (the default, matching the paper's observation), writes
            never wait for older readers.
        load_latency: Override the L1-hit load latency (e.g. to model a
            stream that misses to L2).
    """

    def __init__(
        self,
        core: CoreParams,
        enforce_war: bool = False,
        load_latency: Optional[int] = None,
    ) -> None:
        self.core = core
        self.enforce_war = enforce_war
        self.load_latency = (
            core.load_latency if load_latency is None else load_latency
        )

    def _latency(self, instr: Instruction) -> int:
        if instr.mnemonic is Mnemonic.FMLA:
            return self.core.fma_latency
        if instr.mnemonic is Mnemonic.FADDP:
            return max(1, self.core.fma_latency - 2)
        if instr.mnemonic is Mnemonic.LDR:
            return self.load_latency
        if instr.mnemonic is Mnemonic.STR:
            return 1
        return 1  # prfm, nop: retire immediately after issue

    def run(
        self,
        instructions: List[Instruction],
        repeat: int = 1,
        latency_fn: Optional[Callable[[Instruction, int], int]] = None,
    ) -> PipelineResult:
        """Simulate ``instructions`` repeated ``repeat`` times back-to-back.

        Repetition models the unrolled register-kernel loop in steady state:
        dependences carry across iterations exactly as the rotation scheme
        intends.

        Args:
            instructions: The program.
            repeat: Back-to-back repetitions.
            latency_fn: Optional per-dynamic-instruction latency override
                ``(instruction, dynamic_index) -> cycles``; used by the
                timing-functional simulator to feed real cache-hierarchy
                latencies into individual loads. Falls back to the static
                class latencies when it returns a non-positive value.
        """
        if repeat < 1:
            raise SimulationError("repeat must be >= 1")
        stream = instructions * repeat

        # Ready time per register value (cycle at which the value is
        # available to consumers). Address registers (XReg) produced by
        # post-index updates are available one cycle after issue.
        ready: Dict[object, int] = {}
        # For WAR modeling: last cycle at which each register is read.
        last_read: Dict[object, int] = {}

        cycle = 0
        issued_in_cycle = 0
        # FMA pipes are busy for fma_throughput_cycles per instruction;
        # track the cycle at which each pipe frees up.
        fma_free_at = [0] * self.core.fma_pipes
        load_used = 0
        store_used = 0
        raw_stalls = 0
        structural_stalls = 0
        war_stalls = 0
        issue_cycles = 0
        any_issued_this_cycle = False
        last_completion = 0
        flops = 0

        def advance() -> None:
            nonlocal cycle, issued_in_cycle, load_used, store_used
            nonlocal any_issued_this_cycle, issue_cycles
            if any_issued_this_cycle:
                issue_cycles += 1
            cycle += 1
            issued_in_cycle = 0
            load_used = 0
            store_used = 0
            any_issued_this_cycle = False

        for dyn_index, instr in enumerate(stream):
            while True:
                # Structural: issue width.
                if issued_in_cycle >= self.core.issue_width:
                    structural_stalls += 1
                    advance()
                    continue
                # Structural: pipes (FADDP shares the FP/FMA pipe).
                if instr.mnemonic in (Mnemonic.FMLA, Mnemonic.FADDP) and all(
                    free > cycle for free in fma_free_at
                ):
                    structural_stalls += 1
                    advance()
                    continue
                if (
                    instr.mnemonic in (Mnemonic.LDR, Mnemonic.STR, Mnemonic.PRFM)
                    and load_used + store_used >= self.core.load_ports
                ):
                    structural_stalls += 1
                    advance()
                    continue
                # RAW: all source operands ready?
                srcs_ready = max(
                    (ready.get(r, 0) for r in instr.reads()), default=0
                )
                if srcs_ready > cycle:
                    raw_stalls += srcs_ready - cycle
                    while cycle < srcs_ready:
                        advance()
                    continue
                # WAR via rename-pool pressure (optional).
                if self.enforce_war:
                    war_until = max(
                        (last_read.get(r, 0) for r in instr.writes()),
                        default=0,
                    )
                    if war_until > cycle:
                        war_stalls += war_until - cycle
                        while cycle < war_until:
                            advance()
                        continue
                break

            # Issue now.
            issued_in_cycle += 1
            any_issued_this_cycle = True
            if instr.mnemonic in (Mnemonic.FMLA, Mnemonic.FADDP):
                pipe = min(
                    range(self.core.fma_pipes), key=lambda p: fma_free_at[p]
                )
                fma_free_at[pipe] = cycle + self.core.fma_throughput_cycles
            elif instr.mnemonic is Mnemonic.LDR:
                load_used += 1
            elif instr.mnemonic in (Mnemonic.STR, Mnemonic.PRFM):
                store_used += 1

            lat = self._latency(instr)
            if latency_fn is not None:
                override = latency_fn(instr, dyn_index)
                if override > 0:
                    lat = override
            done = cycle + lat
            for reg in instr.writes():
                if isinstance(reg, XReg):
                    # Post-index address update forwards in one cycle.
                    ready[reg] = cycle + 1
                else:
                    ready[reg] = done
            for reg in instr.reads():
                last_read[reg] = max(last_read.get(reg, 0), cycle)
            last_completion = max(last_completion, done)
            flops += instr.flops

        if any_issued_this_cycle:
            issue_cycles += 1
        return PipelineResult(
            cycles=max(last_completion, cycle + 1),
            issue_cycles=issue_cycles,
            raw_stall_cycles=raw_stalls,
            structural_stall_cycles=structural_stalls,
            war_stall_cycles=war_stalls,
            instructions=len(stream),
            flops=flops,
        )

    def steady_state_cycles_per_iteration(
        self, instructions: List[Instruction], warmup: int = 4, measure: int = 8
    ) -> float:
        """Steady-state cycles for one pass over ``instructions``.

        Runs ``warmup + measure`` repetitions and differences the totals so
        pipeline fill does not pollute the estimate.
        """
        short = self.run(instructions, repeat=warmup)
        long = self.run(instructions, repeat=warmup + measure)
        return (long.cycles - short.cycles) / measure
