"""The ATLAS-style k-vectorized 5x5 register kernel, as real instructions.

ATLAS's comparison kernel ([11] in the paper) uses an odd 5x5 tile, which
cannot use by-element NEON FMLAs without wasting lanes. The viable
vectorization is along **k**: each 128-bit register holds two consecutive
k-iterations, every C element keeps a two-lane partial sum, and a
``faddp`` epilogue folds the partial sums before storing C.

Register budget on A64 (32 v-registers):

- 25 pinned partial-sum registers (``v7``-``v31``) — one per C element;
- a 7-register pool (``v0``-``v6``): the 5 A values of the current group
  are pinned for the whole group (each is read in all 5 column bursts),
  leaving only **2** registers to double-buffer the B stream.

Consequences, visible on the scoreboard: B values can be preloaded one
burst ahead (fine), but the next group's A values can only be loaded
*after* the current group's last burst — five loads crammed into the
group boundary with short load-to-use distances. That is the structural
penalty the cost model charges ATLAS for
(``KernelSpec.preload_window_limited``), derived here from an actual
instruction sequence.

The kernel is fully functional: :func:`execute_atlas_micro_tile` runs it
through the ISA executor and must reproduce ``C += A^T @ B`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.isa.executor import Executor, MachineState, Memory
from repro.isa.instructions import Faddp, FmlaVec, Ldr, Str
from repro.isa.program import Program
from repro.isa.registers import DOUBLE_BYTES, VReg, XReg

MR = 5
NR = 5
#: k-iterations per update group (two lanes of partial sums).
K_GROUP = 2

A_POINTER = XReg(14)
B_POINTER = XReg(15)
C_POINTER = XReg(16)

#: Pool: A values pinned in v0..v4 for the group, B double-buffered in
#: v5/v6. C partial sums in v7..v31 (column-major: c[i][j] = v(7+5j+i)).
A_REGS = [VReg(i) for i in range(5)]
B_REGS = [VReg(5), VReg(6)]


def c_reg(i: int, j: int) -> VReg:
    """Partial-sum register of C element (i, j)."""
    return VReg(7 + 5 * j + i)


@dataclass(frozen=True)
class AtlasKernel:
    """The generated k-vectorized kernel.

    Attributes:
        body: One group's instructions (25 fmla + 10 ldr), steady state.
        epilogue: faddp reduction + C stores (tile padded to 6 rows).
        groups_per_body: k-iterations advanced per body pass (2).
    """

    body: Program
    epilogue: Program
    groups_per_body: int = K_GROUP


def build_atlas_kernel() -> AtlasKernel:
    """Emit the steady-state group body and the reduction epilogue."""
    body = Program(name="atlas-5x5-kvec-body")
    # Five column bursts; B double-buffers through v5/v6; the burst for
    # column j uses B_REGS[j % 2] and preloads column j+1 into the other.
    for j in range(NR):
        if j < NR - 1:
            body.append(
                Ldr(dst=B_REGS[(j + 1) % 2], base=B_POINTER, tag="B")
            )
        for i in range(MR):
            body.append(
                FmlaVec(
                    acc=c_reg(i, j),
                    multiplicand=A_REGS[i],
                    multiplier=B_REGS[j % 2],
                )
            )
    # Group boundary: reload all five A values for the next group (the
    # 7-register pool leaves no room to do this earlier), then the next
    # group's first B column.
    for i in range(MR):
        body.append(Ldr(dst=A_REGS[i], base=A_POINTER, tag="A"))
    body.append(Ldr(dst=B_REGS[0], base=B_POINTER, tag="B"))

    # Epilogue: fold two-lane partial sums pairwise down each column and
    # store. Rows are processed in pairs, the 5th row paired with a
    # zeroed scratch lane (the C tile buffer is padded to 6 rows).
    epilogue = Program(name="atlas-5x5-kvec-epilogue")
    zero = VReg(0)  # A regs are dead after the k-loop; reuse as scratch
    for j in range(NR):
        for i in range(0, MR - 1, 2):
            epilogue.append(
                Faddp(dst=c_reg(i, j), first=c_reg(i, j),
                      second=c_reg(i + 1, j))
            )
            epilogue.append(Str(src=c_reg(i, j), base=C_POINTER, tag="C"))
        # Row 4 pairs with the zero scratch register.
        epilogue.append(
            Faddp(dst=c_reg(4, j), first=c_reg(4, j), second=zero)
        )
        epilogue.append(Str(src=c_reg(4, j), base=C_POINTER, tag="C"))
    return AtlasKernel(body=body, epilogue=epilogue)


@dataclass(frozen=True)
class _KVecPlan:
    """Duck-typed stand-in for a rotation plan: the kernel is statically
    assigned, so the only consumed fields are the unroll depth and the
    (cyclic) minimum register write-reuse distance of the body."""

    unroll: int
    min_distance: int


@dataclass(frozen=True)
class _KVecSchedule:
    """Duck-typed stand-in for a body schedule."""

    min_load_use_distance: int


@dataclass(frozen=True)
class KVecKernel:
    """The ATLAS kernel in the generated-kernel interface.

    Duck-types :class:`~repro.kernels.codegen.GeneratedKernel` closely
    enough for the timed executor, the compiled engine and the CLI:
    ``prologue`` is the A/B preamble (six loads priming group 0),
    ``body`` one steady-state group, ``epilogue`` the ``faddp`` fold +
    C stores.
    """

    spec: object
    prologue: Program
    body: Program
    epilogue: Program
    plan: _KVecPlan
    schedule: _KVecSchedule


def _cyclic_min_load_use_distance(body: Program) -> int:
    """Min instruction distance from a body load to its first consumer,
    treating the body as cyclic (the A reloads feed the next pass)."""
    instrs = list(body)
    n = len(instrs)
    best = n
    for idx, instr in enumerate(instrs):
        if not instr.is_load:
            continue
        for d in range(1, n + 1):
            if instr.dst in instrs[(idx + d) % n].reads():
                best = min(best, d)
                break
    return best


def _cyclic_min_write_reuse_distance(body: Program) -> int:
    """Min cyclic distance between consecutive writes of one register —
    the analogue of a rotation plan's reuse distance."""
    instrs = list(body)
    n = len(instrs)
    last_writer: dict = {}
    first_writer: dict = {}
    best = n
    for idx, instr in enumerate(instrs):
        for reg in instr.writes():
            if reg in last_writer:
                best = min(best, idx - last_writer[reg])
            else:
                first_writer[reg] = idx
            last_writer[reg] = idx
    for reg, idx in first_writer.items():
        best = min(best, idx + n - last_writer[reg])
    return best


def build_kvec_variant() -> KVecKernel:
    """The ATLAS kernel packaged for the timed/compiled engines.

    Memoized: the kernel has no kc-dependent prefetch distances, so one
    instance serves every blocking depth (and the compiled engine's
    id-keyed cache hits across calls).
    """
    global _KVEC_VARIANT
    if _KVEC_VARIANT is None:
        from repro.kernels.kernel_spec import KERNEL_5X5_ATLAS

        kernel = build_atlas_kernel()
        preamble = Program(name="atlas-5x5-kvec-preamble")
        for i in range(MR):
            preamble.append(Ldr(dst=A_REGS[i], base=A_POINTER, tag="A"))
        preamble.append(Ldr(dst=B_REGS[0], base=B_POINTER, tag="B"))
        _KVEC_VARIANT = KVecKernel(
            spec=KERNEL_5X5_ATLAS,
            prologue=preamble,
            body=kernel.body,
            epilogue=kernel.epilogue,
            plan=_KVecPlan(
                unroll=K_GROUP,
                min_distance=_cyclic_min_write_reuse_distance(kernel.body),
            ),
            schedule=_KVecSchedule(
                min_load_use_distance=_cyclic_min_load_use_distance(
                    kernel.body
                )
            ),
        )
    return _KVEC_VARIANT


_KVEC_VARIANT: Optional[KVecKernel] = None


def pack_a_kvec(a_sliver: "np.ndarray") -> np.ndarray:
    """Pack a ``(kc, 5)`` A sliver k-vectorized: ``out[g, i, :]`` holds
    ``A[2g:2g+2, i]`` — one q-load per (group, row)."""
    kc, mr = a_sliver.shape
    if mr != MR or kc % K_GROUP:
        raise SimulationError("A sliver must be (even kc, 5)")
    out = np.empty((kc // K_GROUP, MR, K_GROUP))
    for g in range(kc // K_GROUP):
        out[g] = a_sliver[2 * g : 2 * g + 2, :].T
    return out


def pack_b_kvec(b_sliver: "np.ndarray") -> np.ndarray:
    """Pack a ``(kc, 5)`` B sliver k-vectorized: ``out[g, j, :]`` holds
    ``B[2g:2g+2, j]``."""
    kc, nr = b_sliver.shape
    if nr != NR or kc % K_GROUP:
        raise SimulationError("B sliver must be (even kc, 5)")
    out = np.empty((kc // K_GROUP, NR, K_GROUP))
    for g in range(kc // K_GROUP):
        out[g] = b_sliver[2 * g : 2 * g + 2, :].T
    return out


A_BASE = 0x100000
B_BASE = 0x200000
C_BASE = 0x300000


def execute_atlas_micro_tile(
    a_sliver: "np.ndarray",
    b_sliver: "np.ndarray",
    c_tile: Optional["np.ndarray"] = None,
) -> "np.ndarray":
    """Functionally execute the ATLAS kernel over one 5x5 micro-tile.

    Args:
        a_sliver: ``(kc, 5)`` packed-order A sliver (kc even).
        b_sliver: ``(kc, 5)`` B sliver.
        c_tile: Initial 5x5 C tile.

    Returns:
        The updated 5x5 C tile (exactly ``C + A^T @ B``).
    """
    kc = a_sliver.shape[0]
    kernel = build_atlas_kernel()
    packed_a = pack_a_kvec(np.asarray(a_sliver, float))
    packed_b = pack_b_kvec(np.asarray(b_sliver, float))

    memory = Memory()
    # One padding group of zeros: the last body pass preloads past the end.
    memory.map_region(
        A_BASE, np.vstack([packed_a.reshape(-1, 2), np.zeros((MR, 2))])
    )
    memory.map_region(
        B_BASE, np.vstack([packed_b.reshape(-1, 2), np.zeros((NR, 2))])
    )
    # C tile buffer padded to 6 rows per column (the row-4 store writes a
    # 16-byte pair whose second lane is the faddp zero).
    c0 = np.zeros((MR, NR)) if c_tile is None else np.asarray(c_tile, float)
    if c0.shape != (MR, NR):
        raise SimulationError("C tile must be 5x5")
    padded = np.zeros((6, NR))
    memory.map_region(C_BASE, padded.T.copy())

    state = MachineState()
    ex = Executor(state, memory)

    # Preamble: load group 0's A values and first B column.
    state.set_pointer(A_POINTER, A_BASE)
    state.set_pointer(B_POINTER, B_BASE)
    for i in range(MR):
        ex.execute(Ldr(dst=A_REGS[i], base=A_POINTER, tag="A"))
    ex.execute(Ldr(dst=B_REGS[0], base=B_POINTER, tag="B"))

    groups = kc // K_GROUP
    for _g in range(groups):
        ex.run(kernel.body)

    # The A scratch register must be zero for the row-4 faddp pairing.
    state.vregs[0][:] = 0.0
    state.set_pointer(C_POINTER, C_BASE)
    ex.run(kernel.epilogue)

    stored = memory.region_at(C_BASE).reshape(NR, 6).T
    return c0 + stored[:MR, :]
