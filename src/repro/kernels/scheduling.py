"""Load-instruction scheduling inside the register kernel (eq. (13), Fig. 7).

Within the unrolled loop body the FMLA order is fixed (the zig-zag of
Fig. 6 repeated over the eight copies); the remaining freedom is *where* to
insert the loads that fetch each next copy's A/B values, plus the two
prefetches per copy. The paper's objective (13) maximizes the minimum
distance between each load ('W') and the first FMLA that reads the loaded
register ('R'), subject to correctness:

- a load into register v must come after the last read ('CL') of v's
  current tenant (decided by the rotation plan);
- loads from one stream (A via x14, B via x15) use post-indexed
  addressing, so each stream's loads must issue in address order;
- at most one memory operation fits between two FMLAs (one load port).

Loads may spill past their copy's last FMLA into the next copy's frame —
exactly the paper's Fig. 7, where the first loads of each frame are marked
red ("loaded in #(i-1)%8"). The scheduler therefore works *globally* over
the whole unrolled body, treating it as periodic: greedy earliest placement
in global gap coordinates, which is optimal for the min-distance objective
(no load can move earlier; moving later only shrinks its own distance).

Distances are reported in instruction positions of the final interleaved
stream, the unit of the paper's Fig. 7 (which realizes distance 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.kernels.kernel_spec import KernelSpec
from repro.kernels.rotation import RotationPlan, slot_read_positions


@dataclass(frozen=True)
class ScheduledOp:
    """One instruction slot of the scheduled body.

    Attributes:
        kind: ``"fmla"``, ``"ldr"`` or ``"prfm"``.
        copy: The unrolled copy whose frame this op sits in.
        fmla_index: For FMLAs, the zig-zag index within the copy.
        slot: For loads, the value slot being loaded (e.g. ``"A2"``) —
            the value belongs to copy ``value_copy``.
        value_copy: For loads, the copy whose value is fetched.
        stream: For loads/prefetches, ``"A"`` or ``"B"``.
    """

    kind: str
    copy: int = -1
    fmla_index: int = -1
    slot: str = ""
    value_copy: int = -1
    stream: str = ""


@dataclass(frozen=True)
class BodySchedule:
    """The scheduled instruction order of one steady-state loop body.

    Attributes:
        spec: Kernel shape.
        plan: Rotation plan the schedule serves.
        ops: The body's instructions in issue order (length =
            ``unroll * (fmla_per_iter + ldr_per_iter [+ 2])``).
        min_load_use_distance: Realized eq.-(13) objective in stream
            positions.
        loads_per_copy: Loads contained in each copy frame (diagnostic).
    """

    spec: KernelSpec
    plan: RotationPlan
    ops: Tuple[ScheduledOp, ...]
    min_load_use_distance: int
    loads_per_copy: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.ops)


def schedule_body(
    spec: KernelSpec,
    plan: RotationPlan,
    with_prefetch: bool = True,
    strategy: str = "earliest",
) -> BodySchedule:
    """Schedule loads and prefetches across the whole unrolled body.

    Simulates three periods of the periodic pattern and extracts the middle
    one, so wraparound effects at the body boundary are steady-state.

    Args:
        spec: Kernel shape.
        plan: Rotation plan (decides each load's earliest legal gap).
        with_prefetch: Insert the PREFA/PREFB prefetches.
        strategy: ``"earliest"`` is the paper's eq.-(13) optimum (greedy
            earliest placement maximizes every load-use distance);
            ``"latest"`` is the naive-compiler ablation that issues each
            load as close to its first use as constraints allow —
            quantifying what instruction scheduling itself is worth.
    """
    if strategy not in ("earliest", "latest"):
        raise SchedulingError(f"unknown strategy {strategy!r}")
    reads = slot_read_positions(spec)
    fpi = spec.fmla_per_iter
    unroll = plan.unroll
    period_fmla = unroll * fpi
    periods = 3
    total_fmla = periods * period_fmla

    # Global gap g sits immediately before global fmla g (g in 0..total).
    # Build per-stream load queues in address order.
    queues: Dict[str, List[Tuple[str, int, int, int]]] = {"A": [], "B": []}
    for c in range(periods * unroll):
        for slot in spec.slot_names():
            value_copy = c + 1  # loads during copy c fetch copy c+1 values
            tenant = plan.previous_tenant(slot, value_copy % unroll)
            if tenant is None:
                cl_global = c * fpi - 1  # spare register: free all frame
            else:
                cl_global = c * fpi + reads[tenant[0]].last
            nf_global = value_copy * fpi + reads[slot].first
            queues[slot[0]].append((slot, value_copy, cl_global + 1, nf_global))

    # Placement with one memory op per gap and per-stream address order.
    gap_used: Dict[int, bool] = {}
    cursor = {"A": 0, "B": 0}
    placements: List[Tuple[int, str, int, int]] = []  # (gap, slot, vcopy, nf)
    heads = {s: 0 for s in queues}
    while any(heads[s] < len(queues[s]) for s in queues):
        best_stream: Optional[str] = None
        best_gap: Optional[int] = None
        for stream, queue in queues.items():
            if heads[stream] >= len(queue):
                continue
            slot, vcopy, earliest, nf = queue[heads[stream]]
            floor = max(earliest, cursor[stream])
            if strategy == "latest":
                # As late as constraints allow: start at the gap right
                # before the first use and fall back toward the floor.
                gap = nf - 1
                while gap > floor and gap_used.get(gap, False):
                    gap -= 1
                if gap_used.get(gap, False) or gap < floor:
                    gap = floor
                    while gap_used.get(gap, False):
                        gap += 1
            else:
                gap = floor
                while gap_used.get(gap, False):
                    gap += 1
            if gap >= nf:
                raise SchedulingError(
                    f"load of {slot} (copy {vcopy}) cannot be placed before "
                    "its first use; rotation plan leaves no window"
                )
            if best_gap is None or gap < best_gap:
                best_gap, best_stream = gap, stream
        assert best_stream is not None and best_gap is not None
        slot, vcopy, _earliest, nf = queues[best_stream][heads[best_stream]]
        heads[best_stream] += 1
        gap_used[best_gap] = True
        cursor[best_stream] = best_gap + 1
        placements.append((best_gap, slot, vcopy, nf))

    # Prefetches: one PLDL1KEEP (A) and one PLDL2KEEP (B) per copy, in the
    # latest free gaps of the copy's frame. Very small tiles may have no
    # free gap left in some frames (all occupied by loads); those frames
    # simply go without a prefetch — a real kernel for such a tile would
    # prefetch at a lower rate too.
    prefetches: List[Tuple[int, str]] = []
    if with_prefetch:
        for c in range(periods * unroll):
            frame_end = (c + 1) * fpi - 1
            gap = frame_end
            for stream in ("A", "B"):
                while gap >= c * fpi and gap_used.get(gap, False):
                    gap -= 1
                if gap < c * fpi:
                    break  # frame full: skip remaining prefetches
                gap_used[gap] = True
                prefetches.append((gap, stream))
                gap -= 1

    # Materialize the full multi-period stream.
    stream_ops: List[ScheduledOp] = []
    fmla_pos: List[int] = []  # stream position of each global fmla
    load_pos: Dict[Tuple[str, int], int] = {}  # (slot, raw value copy) -> pos
    placed_by_gap: Dict[int, List[Tuple[str, int]]] = {}
    for gap, slot, vcopy, _nf in placements:
        placed_by_gap.setdefault(gap, []).append((slot, vcopy))
    pf_by_gap: Dict[int, List[str]] = {}
    for gap, stream in prefetches:
        pf_by_gap.setdefault(gap, []).append(stream)

    for f in range(total_fmla + 1):
        for slot, vcopy in placed_by_gap.get(f, []):
            load_pos[(slot, vcopy)] = len(stream_ops)
            stream_ops.append(
                ScheduledOp(
                    kind="ldr",
                    copy=(f // fpi) % unroll,
                    slot=slot,
                    value_copy=vcopy % unroll,
                    stream=slot[0],
                )
            )
        for stream in pf_by_gap.get(f, []):
            stream_ops.append(
                ScheduledOp(kind="prfm", copy=(f // fpi) % unroll, stream=stream)
            )
        if f < total_fmla:
            fmla_pos.append(len(stream_ops))
            stream_ops.append(
                ScheduledOp(
                    kind="fmla", copy=(f // fpi) % unroll, fmla_index=f % fpi
                )
            )

    # Realized objective over the middle period's loads.
    mid_lo, mid_hi = period_fmla, 2 * period_fmla
    min_dist: Optional[int] = None
    for gap, slot, vcopy, nf in placements:
        if not mid_lo <= gap < mid_hi:
            continue
        if nf >= total_fmla:
            continue
        dist = fmla_pos[nf] - load_pos[(slot, vcopy)]
        if min_dist is None or dist < min_dist:
            min_dist = dist
    if min_dist is None:
        raise SchedulingError("middle period contained no loads")

    # Extract the middle period's ops as the steady-state body.
    mid_ops: List[ScheduledOp] = []
    loads_per_copy = [0] * unroll
    lo_pos = fmla_pos[mid_lo]
    hi_pos = fmla_pos[mid_hi]
    for op in stream_ops[lo_pos:hi_pos]:
        mid_ops.append(op)
        if op.kind == "ldr":
            loads_per_copy[op.copy % unroll] += 1

    return BodySchedule(
        spec=spec,
        plan=plan,
        ops=tuple(mid_ops),
        min_load_use_distance=min_dist,
        loads_per_copy=tuple(loads_per_copy),
    )
