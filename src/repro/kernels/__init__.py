"""Register-kernel generation: specs, rotation, scheduling, codegen."""

from repro.kernels.atlas import (
    AtlasKernel,
    build_atlas_kernel,
    execute_atlas_micro_tile,
    pack_a_kvec,
    pack_b_kvec,
)
from repro.kernels.codegen import (
    A_POINTER,
    B_POINTER,
    C_POINTER,
    GeneratedKernel,
    c_register,
    generate_kernel,
)
from repro.kernels.compiled import (
    CompiledKernel,
    compilability,
    compile_kernel,
)
from repro.kernels.kernel_spec import (
    KernelStyle,
    KERNEL_4X4,
    KERNEL_5X5_ATLAS,
    KERNEL_8X4,
    KERNEL_8X6,
    KERNEL_8X6_NO_ROTATION,
    LANES,
    PAPER_KERNELS,
    KernelSpec,
)
from repro.kernels.rotation import (
    PAPER_SIGMA_8X6,
    RotationPlan,
    SlotReads,
    paper_plan,
    plan_from_cycle,
    slot_read_positions,
    solve_rotation,
    static_plan,
)
from repro.kernels.scheduling import BodySchedule, ScheduledOp, schedule_body
from repro.kernels.variants import PAPER_COMPARISON, VARIANTS, get_variant

__all__ = [
    "AtlasKernel",
    "build_atlas_kernel",
    "execute_atlas_micro_tile",
    "pack_a_kvec",
    "pack_b_kvec",
    "KernelSpec",
    "KernelStyle",
    "KERNEL_8X6",
    "KERNEL_8X4",
    "KERNEL_4X4",
    "KERNEL_5X5_ATLAS",
    "KERNEL_8X6_NO_ROTATION",
    "PAPER_KERNELS",
    "LANES",
    "RotationPlan",
    "SlotReads",
    "solve_rotation",
    "static_plan",
    "paper_plan",
    "plan_from_cycle",
    "slot_read_positions",
    "PAPER_SIGMA_8X6",
    "BodySchedule",
    "ScheduledOp",
    "schedule_body",
    "GeneratedKernel",
    "generate_kernel",
    "CompiledKernel",
    "compile_kernel",
    "compilability",
    "c_register",
    "A_POINTER",
    "B_POINTER",
    "C_POINTER",
    "VARIANTS",
    "PAPER_COMPARISON",
    "get_variant",
]
