"""Compiled execution of generated register kernels.

The timed executor's interpreted path dispatches every dynamic instruction
through three scalar loops: functional execution, a per-load cache walk,
and the scoreboard issue loop. But a generated kernel is a *static*
template — the body's dependence structure, address stream and FMA
dataflow are fixed at generation time and merely repeated ``kc/unroll``
times — so all three loops can be compiled once per kernel and replayed
in batch (the same compile-once / relocate-per-call trick
:mod:`repro.sim.gebp_cachesim` uses for cache traces, extended to values
and time):

- **values** — the by-element FMLA grid accumulates, for every C element,
  one ``a[k, i] * b[k, j]`` term per k of the unroll in a fixed
  per-element order (:func:`compilability` extracts the accumulation
  permutation from the schedule), so the C tile is an ordered NumPy
  accumulation (``np.add.accumulate`` applies adds sequentially, after a
  per-element ``np.take_along_axis`` reorder when the schedule deviates
  from ascending k) that matches the interpreter bit for bit. Odd tiles
  run in the same lane-padded layout the executor uses — the pad lanes
  multiply zeros into discarded C rows, so the visible tile is
  unaffected. K-vectorized kernels accumulate two-lane partial sums per
  group and fold them with an ordered reduction reproducing ``faddp``
  rounding exactly;
- **addresses** — every load/prefetch address is affine in the body index
  (post-indexed pointer walks), so one pass over the body yields a memory
  event template; folding in the :class:`SequentialPrefetcher` (whose
  late/drop pattern is a pure function of the observed line sequence)
  gives a relocatable :class:`~repro.memory.batch.BatchTrace` per tile,
  replayed through
  :meth:`~repro.memory.hierarchy.MemoryHierarchy.run_batch_levels`;
- **time** — the prologue/body/epilogue become
  :class:`~repro.pipeline.scoreboard.ScoreboardTemplate` segments run by
  :meth:`~repro.pipeline.scoreboard.ScoreboardCore.run_compiled`, whose
  per-(state, latency-pattern) memo collapses steady-state iterations
  into dictionary hits.

The interpreted path stays as the differential-testing oracle
(``tests/test_compiled_engine.py`` asserts bit-identical cycles, stalls,
latency histograms and C values on every compilable kernel variant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.params import CoreParams
from repro.errors import SimulationError
from repro.isa.instructions import Faddp, Fmla, FmlaVec, Ldr, Prfm, Str
from repro.isa.registers import DOUBLE_BYTES
from repro.kernels.codegen import (
    A_POINTER,
    B_POINTER,
    C_POINTER,
    GeneratedKernel,
)
from repro.kernels.execute import _body_load_targets, padded_stream_widths
from repro.kernels.kernel_spec import KernelStyle
from repro.memory.batch import ACCESS_DTYPE, BatchTrace
from repro.memory.cache import CODE_LOAD, CODE_PREFETCH
from repro.memory.prefetcher import SequentialPrefetcher
from repro.pipeline.scoreboard import ScoreboardTemplate

#: Stream ids used to tag trace records for per-stream relocation.
_STREAM_A, _STREAM_B, _STREAM_C = 0, 1, 2

_POINTER_STREAM = {
    A_POINTER.index: _STREAM_A,
    B_POINTER.index: _STREAM_B,
    C_POINTER.index: _STREAM_C,
}


def compilability(kernel) -> Optional[str]:
    """Why ``kernel`` cannot take the compiled path, or ``None`` if it can.

    The compiled engine covers two kernel families:

    - **by-element** kernels the code generator emits (Fig. 8 structure):
      an all-``ldr`` C prologue, a body of post-indexed A/B loads,
      prefetches and by-element FMLAs covering every ``k`` of the unroll
      exactly once per C element (in any per-element order — the
      accumulation permutation is extracted as metadata), and an
      all-``str`` epilogue. Odd tiles compile in the lane-padded layout.
    - **k-vectorized** kernels (the ATLAS 5x5 family): an A/B preamble,
      a full-vector FMLA body whose register dataflow is an affine
      function of the group index (verified symbolically), and a
      ``faddp``-fold epilogue.

    Anything else reports a reason and is left to the interpreter.
    """
    if kernel.spec.style is KernelStyle.K_VECTORIZED:
        return _kvec_compilability(kernel)
    for instr in kernel.prologue:
        if not isinstance(instr, Ldr) or instr.base.index != C_POINTER.index:
            return "prologue is not a C-pointer load sequence"
    for instr in kernel.epilogue:
        if not isinstance(instr, Str):
            return "epilogue is not a store sequence"
    for instr in kernel.body:
        if isinstance(instr, (Ldr, Prfm)):
            if instr.base.index not in (A_POINTER.index, B_POINTER.index):
                return "body accesses memory outside the A/B streams"
        elif isinstance(instr, FmlaVec):
            return (
                "body contains full-vector fmla outside a k-vectorized "
                "kernel"
            )
        elif not isinstance(instr, Fmla):
            return (
                f"body contains {type(instr).__name__}: only by-element "
                "fmla/ldr/prfm bodies compile"
            )
    # Complete k coverage per C element: each fmla_index must apply every
    # copy 0..unroll-1 exactly once. The program order of the copies is
    # the element's accumulation order; it becomes metadata (see
    # :func:`_accumulation_orders`), not a rejection.
    try:
        _accumulation_orders(kernel)
    except SimulationError as exc:
        return str(exc)
    # Address-sequential A/B streams (post-indexed execution reads
    # exactly the packed layout).
    try:
        _stream_layout(kernel)
    except SimulationError as exc:
        return str(exc)
    return None


def _accumulation_orders(kernel: GeneratedKernel) -> Optional[np.ndarray]:
    """Per-element accumulation order of the body's FMLA grid.

    Returns ``None`` when every element accumulates in ascending ``k``
    (the common case — the ordered reduction needs no reorder), else an
    ``(unroll, n_elements)`` int array whose column ``f`` lists, in
    program order, the k-offsets element ``f`` accumulates. Raises
    :class:`SimulationError` when the grid is incomplete or duplicated.
    """
    spec = kernel.spec
    unroll = kernel.plan.unroll
    orders: Dict[int, List[int]] = {}
    for op in kernel.schedule.ops:
        if op.kind != "fmla":
            continue
        orders.setdefault(op.fmla_index, []).append(op.copy)
    n_elements = spec.a_regs_per_copy * spec.nr
    if set(orders) != set(range(n_elements)):
        raise SimulationError("body does not cover every C element")
    for copies in orders.values():
        if sorted(copies) != list(range(unroll)):
            raise SimulationError(
                "fmla copies do not cover every k of the unroll exactly "
                "once per element"
            )
    if all(
        copies == list(range(unroll)) for copies in orders.values()
    ):
        return None
    perm = np.empty((unroll, n_elements), dtype=np.intp)
    for f, copies in orders.items():
        perm[:, f] = copies
    return perm


def _kvec_compilability(kernel) -> Optional[str]:
    """Why a k-vectorized kernel cannot compile, or ``None``.

    Proves, by symbolic register dataflow, that the kernel computes the
    canonical k-vectorized grid: the preamble and body load the packed
    A/B streams sequentially, every C element's accumulator receives
    exactly one full-vector FMLA per body pass reading A value ``i`` and
    B value ``j`` of that pass's group (the load pattern is affine in the
    pass index — pass 1 must replay pass 0 shifted by one group), and the
    epilogue folds each column's partial sums pairwise with ``faddp``
    before storing.
    """
    spec = kernel.spec
    if spec.k_iters_per_group != 2:
        return "k-vectorized compilation needs two k-iterations per group"
    mr, nr = spec.mr, spec.nr
    pointers = {A_POINTER.index: "A", B_POINTER.index: "B"}
    seq = {"A": 0, "B": 0}
    regval: Dict[int, Tuple[str, int]] = {}

    def run_loads_and_terms(program, terms_out):
        for instr in program:
            if isinstance(instr, Ldr):
                stream = pointers.get(instr.base.index)
                if stream is None:
                    return "loads a stream other than A/B"
                regval[instr.dst.index] = (stream, seq[stream])
                seq[stream] += 1
            elif isinstance(instr, FmlaVec):
                a_val = regval.get(instr.multiplicand.index)
                b_val = regval.get(instr.multiplier.index)
                if a_val is None or b_val is None:
                    return "fmla reads an unloaded register"
                if a_val[0] != "A" or b_val[0] != "B":
                    return "fmla operand streams are swapped or mixed"
                terms_out.append(
                    (instr.acc.index, a_val[1], b_val[1])
                )
            else:
                return (
                    f"body contains {type(instr).__name__}: only "
                    "full-vector fmla/ldr bodies compile"
                )
        return None

    err = run_loads_and_terms(kernel.prologue, [])
    if err:
        return f"preamble {err}"
    passes: List[List[Tuple[int, int, int]]] = []
    for _ in range(2):
        terms: List[Tuple[int, int, int]] = []
        err = run_loads_and_terms(kernel.body, terms)
        if err:
            return f"body {err}"
        passes.append(terms)
    shifted = [(acc, a + mr, b + nr) for acc, a, b in passes[0]]
    if passes[1] != shifted:
        return "body load pattern is not affine in the group index"
    if len(passes[0]) != mr * nr:
        return "body does not update every C element once per group"
    # Epilogue: pairwise faddp folds down each column, stored in order.
    # Column-major C buffer with 2*ceil(mr/2) lane-padded rows.
    acc_of: Dict[Tuple[int, int], int] = {
        (a, b): acc for acc, a, b in passes[0]
    }
    if len(acc_of) != mr * nr or len(
        {acc for acc, _, _ in passes[0]}
    ) != mr * nr:
        return "C accumulators are not in one-to-one element correspondence"
    row_pairs = spec.a_regs_per_copy
    folded: Dict[int, Tuple[int, Optional[int]]] = {}
    store_seq = 0
    for instr in kernel.epilogue:
        if isinstance(instr, Faddp):
            folded[instr.dst.index] = (instr.first.index, instr.second.index)
        elif isinstance(instr, Str):
            if instr.base.index != C_POINTER.index:
                return "epilogue stores outside the C stream"
            col, pair = divmod(store_seq, row_pairs)
            fold = folded.get(instr.src.index)
            if fold is None:
                return "epilogue stores an unfolded register"
            first, second = fold
            i = 2 * pair
            if acc_of.get((i, col)) != first:
                return "epilogue fold order does not match the C layout"
            if i + 1 < mr and acc_of.get((i + 1, col)) != second:
                return "epilogue fold order does not match the C layout"
            store_seq += 1
        else:
            return (
                f"epilogue contains {type(instr).__name__}: only "
                "faddp/str epilogues compile"
            )
    if store_seq != row_pairs * nr:
        return "epilogue does not store the whole C tile"
    return None


def _stream_layout(kernel: GeneratedKernel) -> Dict[str, int]:
    """Buffer-relative start offset of each stream's first body load.

    Raises if the body's loads are not address-sequential per stream.
    """
    spec = kernel.spec
    pw_a, pw_b = padded_stream_widths(spec)
    targets, _preload = _body_load_targets(kernel)
    start: Dict[str, int] = {}
    expected: Dict[str, int] = {}
    for _idx, slot, k_off in targets:
        s = slot[0]
        width = pw_a if s == "A" else pw_b
        off = (k_off * width + 2 * int(slot[1:])) * DOUBLE_BYTES
        if s not in start:
            start[s] = off
        elif off != expected[s]:
            raise SimulationError(
                f"{s}-stream loads are not address-sequential"
            )
        expected[s] = off + 2 * DOUBLE_BYTES
    return start


class CompiledKernel:
    """A generated kernel lowered for batched replay.

    Compile once per kernel (see :func:`compile_kernel` for the cached
    entry point); every per-shape artifact — tile traces keyed by base
    residues, scoreboard memos keyed by core parameters — is cached on
    the instance, so GEBP loops re-running the kernel over many tiles
    amortize all template construction.

    Args:
        kernel: The kernel to compile; raises :class:`SimulationError`
            with the :func:`compilability` reason if it cannot compile.
    """

    def __init__(self, kernel) -> None:
        reason = compilability(kernel)
        if reason is not None:
            raise SimulationError(f"kernel does not compile: {reason}")
        self.kernel = kernel
        self._kvec = kernel.spec.style is KernelStyle.K_VECTORIZED
        self._perm = None if self._kvec else _accumulation_orders(kernel)
        self.prologue_template = ScoreboardTemplate(list(kernel.prologue))
        self.body_template = ScoreboardTemplate(list(kernel.body))
        self.epilogue_template = ScoreboardTemplate(list(kernel.epilogue))
        self._events = _compile_events(kernel)
        self._trace_cache: Dict[tuple, Tuple[np.ndarray, np.ndarray, tuple]] = {}
        self._memos: Dict[tuple, dict] = {}

    # -- functional layer ---------------------------------------------------

    def compute_tile(
        self,
        a_sliver: np.ndarray,
        b_sliver: np.ndarray,
        c_tile: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The kernel's C tile, bit-identical to interpreted execution.

        By-element kernels: every C element accumulates exactly one
        product per ``k`` in the schedule's program order (metadata from
        :func:`_accumulation_orders` — ascending ``k`` in the common
        case, a per-element within-unroll reorder otherwise);
        ``np.add.accumulate`` applies the additions sequentially, so the
        float rounding matches the interpreter's one-FMLA-at-a-time
        updates exactly.

        K-vectorized kernels: two-lane partial sums accumulate per group
        in order, then fold lane 0 + lane 1 — the exact arithmetic of
        the ``faddp`` epilogue (``dst[0] = first[0] + first[1]``).
        """
        spec = self.kernel.spec
        c0 = (
            np.zeros((spec.mr, spec.nr))
            if c_tile is None
            else np.asarray(c_tile, float)
        )
        if self._kvec:
            mr, nr = spec.mr, spec.nr
            groups = a_sliver.shape[0] // 2
            ga = a_sliver.reshape(groups, 2, mr).transpose(0, 2, 1)
            gb = b_sliver.reshape(groups, 2, nr).transpose(0, 2, 1)
            terms = ga[:, :, None, :] * gb[:, None, :, :]
            chain = np.concatenate(
                [np.zeros((1, mr, nr, 2)), terms], axis=0
            )
            acc = np.add.accumulate(chain, axis=0)[-1]
            return c0 + (acc[..., 0] + acc[..., 1])
        terms = a_sliver[:, :, None] * b_sliver[:, None, :]
        if self._perm is not None:
            terms = np.take_along_axis(
                terms, self._element_k_order(a_sliver.shape[0]), axis=0
            )
        chain = np.concatenate([c0[None], terms], axis=0)
        return np.add.accumulate(chain, axis=0)[-1]

    def _element_k_order(self, kc: int) -> np.ndarray:
        """``(kc, mr, nr)`` gather indices applying each element's
        within-unroll accumulation order to the term stack."""
        spec = self.kernel.spec
        unroll = self.kernel.plan.unroll
        mr, nr = spec.mr, spec.nr
        # fmla_index f covers C rows (2*(f//nr), 2*(f//nr)+1), col f%nr.
        per_unroll = np.empty((unroll, mr, nr), dtype=np.intp)
        for f in range(self._perm.shape[1]):
            rg, col = divmod(f, nr)
            for row in (2 * rg, 2 * rg + 1):
                if row < mr:
                    per_unroll[:, row, col] = self._perm[:, f]
        bodies = np.arange(0, kc, unroll, dtype=np.intp)
        return (
            bodies[:, None, None, None] + per_unroll[None]
        ).reshape(kc, mr, nr)

    # -- memory layer -------------------------------------------------------

    def loads_per_tile(self, n_bodies: int) -> int:
        """Dynamic demand-load count of one micro-tile run."""
        return (
            self.prologue_template.n_loads
            + n_bodies * self.body_template.n_loads
        )

    def tile_trace(
        self,
        n_bodies: int,
        a_base: int,
        b_base: int,
        c_base: int,
        hw_late: float,
        line_bytes: int,
    ) -> BatchTrace:
        """The micro-tile's timed access stream at the given bases.

        One record per demand load (in 1:1 program order with the
        scoreboard's LDRs) plus the software prefetches and the hardware
        prefetcher's installs, exactly as the interpreted ``step()``
        interleaves them. The stream is a pure function of
        ``(n_bodies, bases mod line, hw_late)``; per residue class it is
        built once and relocated per call (base deltas within a class are
        line multiples, so install lines relocate exactly).
        """
        key = (
            n_bodies,
            a_base % line_bytes,
            b_base % line_bytes,
            c_base % line_bytes,
            hw_late,
            line_bytes,
        )
        entry = self._trace_cache.get(key)
        if entry is None:
            records, streams = self._build_rows(
                n_bodies, a_base, b_base, c_base, hw_late, line_bytes
            )
            self._trace_cache[key] = (
                records, streams, (a_base, b_base, c_base),
            )
            return BatchTrace(records)
        records, streams, bases0 = entry
        deltas = (a_base - bases0[0], b_base - bases0[1], c_base - bases0[2])
        if deltas == (0, 0, 0):
            return BatchTrace(records)
        moved = records.copy()
        moved["address"] += np.array(deltas, dtype=np.int64)[streams]
        return BatchTrace(moved)

    def _build_rows(
        self,
        n_bodies: int,
        a_base: int,
        b_base: int,
        c_base: int,
        hw_late: float,
        line_bytes: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        prologue_events, body_events, advance = self._events
        base_of = {_STREAM_A: a_base, _STREAM_B: b_base, _STREAM_C: c_base}
        rows: List[Tuple[int, int, int, int]] = []
        streams: List[int] = []
        current_stream = _STREAM_A

        def install(line: int, level: int) -> None:
            rows.append((line * line_bytes, 1, CODE_PREFETCH, level))
            streams.append(current_stream)

        prefetcher = SequentialPrefetcher(
            None, 0, late_rate=hw_late, install=install
        )
        tag_of = {_STREAM_A: "A", _STREAM_B: "B"}
        for sid, off, observed in prologue_events:
            addr = base_of[sid] + off
            rows.append((addr, 1, CODE_LOAD, 0))
            streams.append(sid)
            if observed:
                current_stream = sid
                prefetcher.observe(addr // line_bytes, tag_of[sid])
        for body in range(n_bodies):
            for is_prefetch, sid, off, level in body_events:
                addr = base_of[sid] + off + body * advance[sid]
                if is_prefetch:
                    rows.append((addr, 1, CODE_PREFETCH, level))
                    streams.append(sid)
                else:
                    rows.append((addr, 1, CODE_LOAD, 0))
                    streams.append(sid)
                    current_stream = sid
                    prefetcher.observe(addr // line_bytes, tag_of[sid])
        records = np.array(rows, dtype=ACCESS_DTYPE)
        n_demand = int((records["kind"] == CODE_LOAD).sum())
        if n_demand != self.loads_per_tile(n_bodies):
            raise SimulationError(
                "compiled trace demand-load count does not match the "
                "scoreboard templates"
            )
        return records, np.array(streams, dtype=np.int64)

    # -- timing layer -------------------------------------------------------

    def segments(
        self, n_bodies: int
    ) -> List[Tuple[ScoreboardTemplate, int]]:
        """Scoreboard segments of one micro-tile run."""
        return [
            (self.prologue_template, 1),
            (self.body_template, n_bodies),
            (self.epilogue_template, 1),
        ]

    def memo_for(
        self,
        core: CoreParams,
        enforce_war: bool = False,
        load_latency: Optional[int] = None,
    ) -> dict:
        """The scoreboard memo for one core configuration.

        Memo entries are only valid for identical core parameters, so the
        cache is keyed on them; callers running many tiles on the same
        chip share one memo and hit it for every steady-state iteration.
        """
        key = (core, enforce_war, load_latency)
        return self._memos.setdefault(key, {})


def _compile_events(kernel):
    """Lower prologue/body to relocatable memory events.

    Returns ``(prologue_events, body_events, advance)`` where prologue
    events are ``(stream, offset, observed)`` loads (``observed`` marks
    A/B-stream loads the hardware prefetcher watches — the C prologue of
    by-element kernels is not observed, matching the interpreter), body
    events are ``(is_prefetch, stream, offset, level)`` with offsets
    relative to the stream's buffer base for body 0, and ``advance`` maps
    each stream to its per-body pointer advance (body ``n`` adds
    ``n * advance``).
    """
    prologue_events: List[Tuple[int, int, bool]] = []
    if kernel.spec.style is KernelStyle.K_VECTORIZED:
        # The preamble walks the A/B streams directly; the body picks up
        # from the preamble's cursors.
        cursor = {_STREAM_A: 0, _STREAM_B: 0, _STREAM_C: 0}
        for instr in kernel.prologue:
            sid = _POINTER_STREAM[instr.base.index]
            prologue_events.append((sid, cursor[sid], True))
            cursor[sid] += instr.post_increment
    else:
        start = _stream_layout(kernel)
        c_off = 0
        for instr in kernel.prologue:
            prologue_events.append((_STREAM_C, c_off, False))
            c_off += instr.post_increment
        cursor = {
            _STREAM_A: start.get("A", 0),
            _STREAM_B: start.get("B", 0),
        }
    advance = {_STREAM_A: 0, _STREAM_B: 0, _STREAM_C: 0}
    body_events: List[Tuple[bool, int, int, int]] = []
    for instr in kernel.body:
        if isinstance(instr, Ldr):
            sid = _POINTER_STREAM[instr.base.index]
            body_events.append((False, sid, cursor[sid], 0))
            cursor[sid] += instr.post_increment
            advance[sid] += instr.post_increment
        elif isinstance(instr, Prfm):
            sid = _POINTER_STREAM[instr.base.index]
            body_events.append(
                (True, sid, cursor[sid] + instr.offset, instr.target.level)
            )
    return prologue_events, body_events, advance


#: id-keyed compilation cache; bounded so e.g. property tests generating
#: many throwaway kernels cannot grow it without limit.
_CACHE: Dict[int, CompiledKernel] = {}
_CACHE_LIMIT = 64


def compile_kernel(kernel) -> CompiledKernel:
    """Compile ``kernel``, reusing a prior compilation of the same object.

    The cache is what lets independent entry points (micro-tile, GEBP,
    dual-GEBP, benchmarks) share trace templates and scoreboard memos
    for the memoized kernel variants without explicit plumbing.
    """
    cached = _CACHE.get(id(kernel))
    if cached is not None and cached.kernel is kernel:
        return cached
    compiled = CompiledKernel(kernel)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[id(kernel)] = compiled
    return compiled
