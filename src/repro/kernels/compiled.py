"""Compiled execution of generated register kernels.

The timed executor's interpreted path dispatches every dynamic instruction
through three scalar loops: functional execution, a per-load cache walk,
and the scoreboard issue loop. But a generated kernel is a *static*
template — the body's dependence structure, address stream and FMA
dataflow are fixed at generation time and merely repeated ``kc/unroll``
times — so all three loops can be compiled once per kernel and replayed
in batch (the same compile-once / relocate-per-call trick
:mod:`repro.sim.gebp_cachesim` uses for cache traces, extended to values
and time):

- **values** — the by-element FMLA grid accumulates, for every C element,
  its ``a[k, i] * b[k, j]`` terms in strictly ascending ``k``
  (:func:`compilability` verifies this from the schedule), so the C tile
  is an ordered NumPy accumulation (``np.add.accumulate`` applies adds
  sequentially) that matches the interpreter bit for bit;
- **addresses** — every load/prefetch address is affine in the body index
  (post-indexed pointer walks), so one pass over the body yields a memory
  event template; folding in the :class:`SequentialPrefetcher` (whose
  late/drop pattern is a pure function of the observed line sequence)
  gives a relocatable :class:`~repro.memory.batch.BatchTrace` per tile,
  replayed through
  :meth:`~repro.memory.hierarchy.MemoryHierarchy.run_batch_levels`;
- **time** — the prologue/body/epilogue become
  :class:`~repro.pipeline.scoreboard.ScoreboardTemplate` segments run by
  :meth:`~repro.pipeline.scoreboard.ScoreboardCore.run_compiled`, whose
  per-(state, latency-pattern) memo collapses steady-state iterations
  into dictionary hits.

The interpreted path stays as the differential-testing oracle
(``tests/test_compiled_engine.py`` asserts bit-identical cycles, stalls,
latency histograms and C values on every compilable kernel variant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.params import CoreParams
from repro.errors import SimulationError
from repro.isa.instructions import Fmla, Ldr, Prfm, Str
from repro.isa.registers import DOUBLE_BYTES
from repro.kernels.codegen import (
    A_POINTER,
    B_POINTER,
    C_POINTER,
    GeneratedKernel,
)
from repro.kernels.execute import _body_load_targets
from repro.memory.batch import ACCESS_DTYPE, BatchTrace
from repro.memory.cache import CODE_LOAD, CODE_PREFETCH
from repro.memory.prefetcher import SequentialPrefetcher
from repro.pipeline.scoreboard import ScoreboardTemplate

#: Stream ids used to tag trace records for per-stream relocation.
_STREAM_A, _STREAM_B, _STREAM_C = 0, 1, 2

_POINTER_STREAM = {
    A_POINTER.index: _STREAM_A,
    B_POINTER.index: _STREAM_B,
    C_POINTER.index: _STREAM_C,
}


def compilability(kernel: GeneratedKernel) -> Optional[str]:
    """Why ``kernel`` cannot take the compiled path, or ``None`` if it can.

    The compiled engine covers the even-tile, by-element kernels the code
    generator emits (Fig. 8 structure): an all-``ldr`` C prologue, a body
    of post-indexed A/B loads, prefetches and by-element FMLAs whose
    per-element accumulation order is ascending in ``k``, and an
    all-``str`` epilogue. Anything else — odd tiles, k-vectorized bodies
    with ``faddp`` reductions, non-sequential load streams — reports a
    reason and is left to the interpreter.
    """
    spec = kernel.spec
    if spec.mr % 2 or spec.nr % 2:
        return "odd tile: no by-element functional compilation"
    for instr in kernel.prologue:
        if not isinstance(instr, Ldr) or instr.base.index != C_POINTER.index:
            return "prologue is not a C-pointer load sequence"
    for instr in kernel.epilogue:
        if not isinstance(instr, Str):
            return "epilogue is not a store sequence"
    for instr in kernel.body:
        if isinstance(instr, (Ldr, Prfm)):
            if instr.base.index not in (A_POINTER.index, B_POINTER.index):
                return "body accesses memory outside the A/B streams"
        elif not isinstance(instr, Fmla):
            return (
                f"body contains {type(instr).__name__}: only by-element "
                "fmla/ldr/prfm bodies compile"
            )
    # Ascending-k accumulation per C element: for each fmla_index the
    # copies must appear in program order 0..unroll-1, so the ordered
    # NumPy accumulation reproduces the interpreter's float rounding.
    last_copy: Dict[int, int] = {}
    for op in kernel.schedule.ops:
        if op.kind != "fmla":
            continue
        prev = last_copy.get(op.fmla_index, -1)
        if op.copy != prev + 1:
            return "fmla copies are not in ascending k order"
        last_copy[op.fmla_index] = op.copy
    if any(c != kernel.plan.unroll - 1 for c in last_copy.values()):
        return "body does not cover every k of the unroll"
    # Address-sequential A/B streams (post-indexed execution reads
    # exactly the packed layout).
    try:
        _stream_layout(kernel)
    except SimulationError as exc:
        return str(exc)
    return None


def _stream_layout(kernel: GeneratedKernel) -> Dict[str, int]:
    """Buffer-relative start offset of each stream's first body load.

    Raises if the body's loads are not address-sequential per stream.
    """
    spec = kernel.spec
    targets, _preload = _body_load_targets(kernel)
    start: Dict[str, int] = {}
    expected: Dict[str, int] = {}
    for _idx, slot, k_off in targets:
        s = slot[0]
        width = spec.mr if s == "A" else spec.nr
        off = (k_off * width + 2 * int(slot[1:])) * DOUBLE_BYTES
        if s not in start:
            start[s] = off
        elif off != expected[s]:
            raise SimulationError(
                f"{s}-stream loads are not address-sequential"
            )
        expected[s] = off + 2 * DOUBLE_BYTES
    return start


class CompiledKernel:
    """A generated kernel lowered for batched replay.

    Compile once per kernel (see :func:`compile_kernel` for the cached
    entry point); every per-shape artifact — tile traces keyed by base
    residues, scoreboard memos keyed by core parameters — is cached on
    the instance, so GEBP loops re-running the kernel over many tiles
    amortize all template construction.

    Args:
        kernel: The kernel to compile; raises :class:`SimulationError`
            with the :func:`compilability` reason if it cannot compile.
    """

    def __init__(self, kernel: GeneratedKernel) -> None:
        reason = compilability(kernel)
        if reason is not None:
            raise SimulationError(f"kernel does not compile: {reason}")
        self.kernel = kernel
        self.prologue_template = ScoreboardTemplate(list(kernel.prologue))
        self.body_template = ScoreboardTemplate(list(kernel.body))
        self.epilogue_template = ScoreboardTemplate(list(kernel.epilogue))
        self._events = _compile_events(kernel)
        self._trace_cache: Dict[tuple, Tuple[np.ndarray, np.ndarray, tuple]] = {}
        self._memos: Dict[tuple, dict] = {}

    # -- functional layer ---------------------------------------------------

    def compute_tile(
        self,
        a_sliver: np.ndarray,
        b_sliver: np.ndarray,
        c_tile: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The kernel's C tile, bit-identical to interpreted execution.

        Every C element accumulates its ``kc`` products in ascending
        ``k`` (guaranteed by :func:`compilability`); ``np.add.accumulate``
        applies the additions sequentially, so the float rounding matches
        the interpreter's one-FMLA-at-a-time updates exactly.
        """
        spec = self.kernel.spec
        c0 = (
            np.zeros((spec.mr, spec.nr))
            if c_tile is None
            else np.asarray(c_tile, float)
        )
        terms = a_sliver[:, :, None] * b_sliver[:, None, :]
        chain = np.concatenate([c0[None], terms], axis=0)
        return np.add.accumulate(chain, axis=0)[-1]

    # -- memory layer -------------------------------------------------------

    def loads_per_tile(self, n_bodies: int) -> int:
        """Dynamic demand-load count of one micro-tile run."""
        return (
            self.prologue_template.n_loads
            + n_bodies * self.body_template.n_loads
        )

    def tile_trace(
        self,
        n_bodies: int,
        a_base: int,
        b_base: int,
        c_base: int,
        hw_late: float,
        line_bytes: int,
    ) -> BatchTrace:
        """The micro-tile's timed access stream at the given bases.

        One record per demand load (in 1:1 program order with the
        scoreboard's LDRs) plus the software prefetches and the hardware
        prefetcher's installs, exactly as the interpreted ``step()``
        interleaves them. The stream is a pure function of
        ``(n_bodies, bases mod line, hw_late)``; per residue class it is
        built once and relocated per call (base deltas within a class are
        line multiples, so install lines relocate exactly).
        """
        key = (
            n_bodies,
            a_base % line_bytes,
            b_base % line_bytes,
            c_base % line_bytes,
            hw_late,
            line_bytes,
        )
        entry = self._trace_cache.get(key)
        if entry is None:
            records, streams = self._build_rows(
                n_bodies, a_base, b_base, c_base, hw_late, line_bytes
            )
            self._trace_cache[key] = (
                records, streams, (a_base, b_base, c_base),
            )
            return BatchTrace(records)
        records, streams, bases0 = entry
        deltas = (a_base - bases0[0], b_base - bases0[1], c_base - bases0[2])
        if deltas == (0, 0, 0):
            return BatchTrace(records)
        moved = records.copy()
        moved["address"] += np.array(deltas, dtype=np.int64)[streams]
        return BatchTrace(moved)

    def _build_rows(
        self,
        n_bodies: int,
        a_base: int,
        b_base: int,
        c_base: int,
        hw_late: float,
        line_bytes: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        prologue_events, body_events, advance = self._events
        base_of = {_STREAM_A: a_base, _STREAM_B: b_base, _STREAM_C: c_base}
        rows: List[Tuple[int, int, int, int]] = []
        streams: List[int] = []
        current_stream = _STREAM_A

        def install(line: int, level: int) -> None:
            rows.append((line * line_bytes, 1, CODE_PREFETCH, level))
            streams.append(current_stream)

        prefetcher = SequentialPrefetcher(
            None, 0, late_rate=hw_late, install=install
        )
        tag_of = {_STREAM_A: "A", _STREAM_B: "B"}
        for sid, off in prologue_events:
            rows.append((base_of[sid] + off, 1, CODE_LOAD, 0))
            streams.append(sid)
        for body in range(n_bodies):
            for is_prefetch, sid, off, level in body_events:
                addr = base_of[sid] + off + body * advance[sid]
                if is_prefetch:
                    rows.append((addr, 1, CODE_PREFETCH, level))
                    streams.append(sid)
                else:
                    rows.append((addr, 1, CODE_LOAD, 0))
                    streams.append(sid)
                    current_stream = sid
                    prefetcher.observe(addr // line_bytes, tag_of[sid])
        records = np.array(rows, dtype=ACCESS_DTYPE)
        n_demand = int((records["kind"] == CODE_LOAD).sum())
        if n_demand != self.loads_per_tile(n_bodies):
            raise SimulationError(
                "compiled trace demand-load count does not match the "
                "scoreboard templates"
            )
        return records, np.array(streams, dtype=np.int64)

    # -- timing layer -------------------------------------------------------

    def segments(
        self, n_bodies: int
    ) -> List[Tuple[ScoreboardTemplate, int]]:
        """Scoreboard segments of one micro-tile run."""
        return [
            (self.prologue_template, 1),
            (self.body_template, n_bodies),
            (self.epilogue_template, 1),
        ]

    def memo_for(
        self,
        core: CoreParams,
        enforce_war: bool = False,
        load_latency: Optional[int] = None,
    ) -> dict:
        """The scoreboard memo for one core configuration.

        Memo entries are only valid for identical core parameters, so the
        cache is keyed on them; callers running many tiles on the same
        chip share one memo and hit it for every steady-state iteration.
        """
        key = (core, enforce_war, load_latency)
        return self._memos.setdefault(key, {})


def _compile_events(kernel: GeneratedKernel):
    """Lower prologue/body to relocatable memory events.

    Returns ``(prologue_events, body_events, advance)`` where prologue
    events are ``(stream, offset)`` loads, body events are
    ``(is_prefetch, stream, offset, level)`` with offsets relative to the
    stream's buffer base for body 0, and ``advance`` maps each stream to
    its per-body pointer advance (body ``n`` adds ``n * advance``).
    """
    start = _stream_layout(kernel)
    prologue_events: List[Tuple[int, int]] = []
    c_off = 0
    for instr in kernel.prologue:
        prologue_events.append((_STREAM_C, c_off))
        c_off += instr.post_increment
    cursor = {_STREAM_A: start.get("A", 0), _STREAM_B: start.get("B", 0)}
    advance = {_STREAM_A: 0, _STREAM_B: 0, _STREAM_C: 0}
    body_events: List[Tuple[bool, int, int, int]] = []
    for instr in kernel.body:
        if isinstance(instr, Ldr):
            sid = _POINTER_STREAM[instr.base.index]
            body_events.append((False, sid, cursor[sid], 0))
            cursor[sid] += instr.post_increment
            advance[sid] += instr.post_increment
        elif isinstance(instr, Prfm):
            sid = _POINTER_STREAM[instr.base.index]
            body_events.append(
                (True, sid, cursor[sid] + instr.offset, instr.target.level)
            )
    return prologue_events, body_events, advance


#: id-keyed compilation cache; bounded so e.g. property tests generating
#: many throwaway kernels cannot grow it without limit.
_CACHE: Dict[int, CompiledKernel] = {}
_CACHE_LIMIT = 64


def compile_kernel(kernel: GeneratedKernel) -> CompiledKernel:
    """Compile ``kernel``, reusing a prior compilation of the same object.

    The cache is what lets independent entry points (micro-tile, GEBP,
    dual-GEBP, benchmarks) share trace templates and scoreboard memos
    for the memoized kernel variants without explicit plumbing.
    """
    cached = _CACHE.get(id(kernel))
    if cached is not None and cached.kernel is kernel:
        return cached
    compiled = CompiledKernel(kernel)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[id(kernel)] = compiled
    return compiled
