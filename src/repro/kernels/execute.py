"""Functional execution of generated register kernels.

Bridges the code generator and the ISA executor: lay out packed A/B
slivers and a C tile in executor memory exactly as GEBP would, preload the
copy-0 registers per the rotation plan, run the unrolled body ``kc/unroll``
times, and read the C tile back. The result must equal
``C + A_sliver^T_packed @ B_sliver`` — the ground-truth check that the
emitted assembly (rotation, scheduling, register assignment, pointer
bookkeeping) is *semantically* correct, not merely well-counted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.isa.executor import Executor, MachineState, Memory
from repro.isa.registers import DOUBLE_BYTES, LANES_PER_VECTOR
from repro.kernels.codegen import (
    A_POINTER,
    B_POINTER,
    C_POINTER,
    GeneratedKernel,
)
from repro.kernels.rotation import slot_read_positions

A_BASE = 0x10000
B_BASE = 0x40000
C_BASE = 0x80000


def padded_stream_widths(spec) -> "tuple[int, int]":
    """Doubles per k-iteration of the packed A/B streams in memory.

    By-element kernels load whole q-registers per column/row group, so an
    odd tile is stored lane-padded: ``2 * ceil(mr/2)`` doubles per A row
    (the pad lane multiplies into a discarded C row) and likewise for B.
    Even tiles pad to themselves, preserving the original layout.
    """
    return (
        LANES_PER_VECTOR * spec.a_regs_per_copy,
        LANES_PER_VECTOR * spec.b_regs_per_copy,
    )


def _body_load_targets(kernel: GeneratedKernel):
    """For each load of the body, the k-iteration its data belongs to
    (relative to the body's first copy), plus the set of slots whose
    copy-0 value must be preloaded.

    A load for value copy ``v`` placed *before* copy ``v``'s first
    consuming FMLA serves the current body (k = v); placed after, it
    serves the next body (k = v + unroll). Slots whose copy-0 load is not
    in-body-before-use must be preloaded by the caller.
    """
    spec = kernel.spec
    reads = slot_read_positions(spec)
    ops = kernel.schedule.ops
    # Position of each copy's first FMLA reading each slot.
    fmla_pos = {}
    for idx, op in enumerate(ops):
        if op.kind == "fmla":
            fmla_pos[(op.copy, op.fmla_index)] = idx

    targets = []  # (op_index, slot, k_offset)
    preload = set(spec.slot_names())
    for idx, op in enumerate(ops):
        if op.kind != "ldr":
            continue
        first_read = reads[op.slot].first
        use_idx = fmla_pos[(op.value_copy, first_read)]
        in_body = idx < use_idx
        k_off = op.value_copy + (0 if in_body else kernel.plan.unroll)
        targets.append((idx, op.slot, k_off))
        if op.value_copy == 0 and in_body:
            preload.discard(op.slot)
    return targets, preload


def execute_micro_tile(
    kernel: GeneratedKernel,
    a_sliver: "np.ndarray",
    b_sliver: "np.ndarray",
    c_tile: Optional["np.ndarray"] = None,
) -> "np.ndarray":
    """Run the generated kernel on one micro-tile.

    Args:
        kernel: A generated (by-element) kernel. Odd tiles run in the
            lane-padded layout of :func:`padded_stream_widths`: the pad
            lanes hold zeros, multiply into discarded C rows, and are
            sliced off the returned tile.
        a_sliver: Packed A sliver, shape ``(kc, mr)`` — ``a_sliver[k, i]``
            is the element of row ``i`` at depth ``k``.
        b_sliver: Packed B sliver, shape ``(kc, nr)``.
        c_tile: Initial ``mr x nr`` C tile (zeros when omitted).

    Returns:
        The updated ``mr x nr`` C tile.
    """
    spec = kernel.spec
    mr, nr = spec.mr, spec.nr
    pw_a, pw_b = padded_stream_widths(spec)
    kc, mr_in = a_sliver.shape
    kc_b, nr_in = b_sliver.shape
    if (mr_in, nr_in) != (mr, nr) or kc != kc_b:
        raise SimulationError(
            f"sliver shapes {a_sliver.shape}/{b_sliver.shape} do not match "
            f"the {mr}x{nr} kernel"
        )
    unroll = kernel.plan.unroll
    if kc % unroll:
        raise SimulationError(f"kc={kc} must be a multiple of unroll={unroll}")

    # Memory image: packed slivers in the lane-padded layout, padded by
    # one unroll of zero rows (the last body's lookahead loads read them;
    # their values are never consumed).
    memory = Memory()
    a_padded = np.zeros((kc + unroll, pw_a))
    a_padded[:kc, :mr] = a_sliver
    b_padded = np.zeros((kc + unroll, pw_b))
    b_padded[:kc, :nr] = b_sliver
    memory.map_region(A_BASE, a_padded)
    memory.map_region(B_BASE, b_padded)
    c0 = (
        np.zeros((mr, nr)) if c_tile is None else np.asarray(c_tile, float)
    )
    if c0.shape != (mr, nr):
        raise SimulationError(f"C tile must be {mr}x{nr}")
    # Column-major tile buffer, rows lane-padded like the A stream.
    c_padded = np.zeros((pw_a, nr))
    c_padded[:mr, :] = c0
    memory.map_region(C_BASE, c_padded.T.copy())

    state = MachineState()
    ex = Executor(state, memory)

    # Prologue: load the C tile into its pinned registers.
    state.set_pointer(C_POINTER, C_BASE)
    ex.run(kernel.prologue)

    # Preload the values the body does not load for itself, and point the
    # stream registers at the first value each body load will consume.
    plan = kernel.plan
    targets, preload = _body_load_targets(kernel)
    for slot in preload:
        reg = plan.register_for(slot, 0)
        idx = int(slot[1:])
        src = a_padded if slot[0] == "A" else b_padded
        state.vregs[reg][:] = src[0, 2 * idx : 2 * idx + 2]

    first = {"A": None, "B": None}
    expected = {"A": None, "B": None}
    for _op_idx, slot, k_off in targets:
        stream = slot[0]
        width = pw_a if stream == "A" else pw_b
        base = A_BASE if stream == "A" else B_BASE
        addr = base + (k_off * width + 2 * int(slot[1:])) * DOUBLE_BYTES
        if first[stream] is None:
            first[stream] = addr
        elif addr != expected[stream]:
            raise SimulationError(
                f"{stream}-stream loads are not address-sequential; "
                "post-indexed execution would read the wrong data"
            )
        expected[stream] = addr + 2 * DOUBLE_BYTES
    if first["A"] is not None:
        state.set_pointer(A_POINTER, first["A"])
    if first["B"] is not None:
        state.set_pointer(B_POINTER, first["B"])

    ex.run(kernel.body, times=kc // unroll)

    # Epilogue: store the C tile back.
    state.set_pointer(C_POINTER, C_BASE)
    ex.run(kernel.epilogue)

    return memory.region_at(C_BASE).reshape(nr, pw_a).T[:mr, :].copy()
