"""The kernel variants evaluated in the paper's Sec. V.

- ``OpenBLAS-8x6`` — the paper's contribution: gamma = 6.86, rotation +
  scheduling + prefetching;
- ``OpenBLAS-8x4`` — simplified variant, gamma = 5.33;
- ``OpenBLAS-4x4`` — small tile, gamma = 4;
- ``ATLAS-5x5`` — the comparison kernel of [11]: gamma = 5, with the odd
  tile's NEON lane waste;
- ``ATLAS-5x5-kvec`` — the same 5x5 tile in its true k-vectorized form
  (full-vector FMLAs over two-k groups, ``faddp`` fold epilogue), built
  from real instructions in :mod:`repro.kernels.atlas`;
- ``OpenBLAS-8x6-noRR`` — the Fig. 13 ablation: 8x6 without software
  register rotation (static assignment, short CL->NF windows).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.kernels.codegen import GeneratedKernel, generate_kernel
from repro.kernels.kernel_spec import (
    KERNEL_4X4,
    KERNEL_5X5_ATLAS,
    KERNEL_8X4,
    KERNEL_8X6,
    KERNEL_8X6_NO_ROTATION,
    KernelSpec,
)

#: Display names used in the paper's figures, mapped to specs.
VARIANTS: Dict[str, KernelSpec] = {
    "OpenBLAS-8x6": KERNEL_8X6,
    "OpenBLAS-8x4": KERNEL_8X4,
    "OpenBLAS-4x4": KERNEL_4X4,
    "ATLAS-5x5": KERNEL_5X5_ATLAS,
    "ATLAS-5x5-kvec": KERNEL_5X5_ATLAS,
    "OpenBLAS-8x6-noRR": KERNEL_8X6_NO_ROTATION,
}

#: The four implementations compared in Table V / Figs. 11-12.
PAPER_COMPARISON = (
    "OpenBLAS-8x6",
    "OpenBLAS-8x4",
    "OpenBLAS-4x4",
    "ATLAS-5x5",
)

#: Display twin for the ATLAS kernel: the cost model uses the k-vectorized
#: spec (KERNEL_5X5_ATLAS), but assembly display/round-trip uses this
#: by-element rendering — ATLAS publishes no listing of its 5x5 kernel, and
#: the k-vectorized form needs more registers than A64 has for a faithful
#: listing (see kernel_spec module docstring).
_ATLAS_DISPLAY = KernelSpec(5, 5, "5x5-atlas-display", rotated=False)

_cache: Dict[Tuple[str, int], object] = {}


def get_variant(name: str, kc: int = 512):
    """Generate (and memoize) a named kernel variant.

    Returns a :class:`GeneratedKernel` for the by-element variants and a
    duck-typed :class:`~repro.kernels.atlas.KVecKernel` for
    ``ATLAS-5x5-kvec``.

    Args:
        name: One of :data:`VARIANTS`.
        kc: Blocking depth used for prefetch distances.
    """
    key = (name, kc)
    if key not in _cache:
        try:
            spec = VARIANTS[name]
        except KeyError:
            raise KeyError(
                f"unknown kernel variant {name!r}; "
                f"choose from {sorted(VARIANTS)}"
            ) from None
        if name == "ATLAS-5x5-kvec":
            from repro.kernels.atlas import build_kvec_variant

            _cache[key] = build_kvec_variant()
        else:
            if spec is KERNEL_5X5_ATLAS:
                spec = _ATLAS_DISPLAY
            _cache[key] = generate_kernel(spec, kc=kc)
    return _cache[key]
