"""Assembly generation for the register kernel (paper Fig. 8).

Turns a :class:`~repro.kernels.scheduling.BodySchedule` into a concrete
:class:`~repro.isa.Program`:

- the C tile is pinned in the registers above the rotating pool
  (v8-v31 for the 8x6 kernel, column-major: ``C[2a:2a+2, col]`` lives in
  ``v(pool + col*a_regs + a)``);
- FMLA ``f`` of a copy accumulates ``A-slot (f // nr)`` times lane
  ``(f % nr) % 2`` of ``B-slot (f % nr) // 2``, with the physical registers
  chosen by the rotation plan for that copy;
- loads stream A through ``x14`` and B through ``x15`` with post-indexed
  ``#16`` updates, in exactly the scheduler's order;
- prefetches use the PREFA/PREFB distances of the prefetch plan.

A prologue loads the C tile from ``x16`` and an epilogue stores it back —
these run once per micro-tile, outside the k-loop, as in GEBP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.blocking.prefetch import PrefetchPlan, plan_prefetch
from repro.errors import AssemblyError
from repro.isa.instructions import (
    Fmla,
    Instruction,
    Ldr,
    PrefetchTarget,
    Prfm,
    Str,
)
from repro.isa.program import Program
from repro.isa.registers import VReg, XReg
from repro.kernels.kernel_spec import KernelSpec
from repro.kernels.rotation import RotationPlan, paper_plan, solve_rotation, static_plan
from repro.kernels.scheduling import BodySchedule, schedule_body

#: Pointer registers used by the paper's snippet (Fig. 8).
A_POINTER = XReg(14)
B_POINTER = XReg(15)
C_POINTER = XReg(16)


@dataclass(frozen=True)
class GeneratedKernel:
    """A fully generated register kernel.

    Attributes:
        spec: Kernel shape.
        plan: Register-rotation plan used.
        schedule: Scheduled body (loads interleaved with FMLAs).
        body: One unrolled loop body (``plan.unroll`` k-iterations).
        prologue: C-tile load sequence (once per micro-tile).
        epilogue: C-tile store sequence (once per micro-tile).
        prefetch: Prefetch distances baked into the body.
    """

    spec: KernelSpec
    plan: RotationPlan
    schedule: BodySchedule
    body: Program
    prologue: Program
    epilogue: Program
    prefetch: Optional[PrefetchPlan]

    @property
    def k_iterations_per_body(self) -> int:
        """k-iterations performed by one pass over the body."""
        return self.plan.unroll

    @property
    def flops_per_body(self) -> int:
        return self.spec.flops_per_iter * self.plan.unroll


def c_register(spec: KernelSpec, row_group: int, col: int) -> VReg:
    """Pinned register holding rows ``2*row_group..2*row_group+1`` of C
    column ``col``."""
    base = spec.rotation_pool
    idx = base + col * spec.a_regs_per_copy + row_group
    if idx > 31:
        raise AssemblyError(
            f"{spec.name}: C tile does not fit the register file"
        )
    return VReg(idx)


def _emit_body(
    spec: KernelSpec,
    plan: RotationPlan,
    schedule: BodySchedule,
    prefetch: Optional[PrefetchPlan],
) -> Program:
    nr = spec.nr
    prog = Program(name=f"gebp-{spec.name}-body")
    for op in schedule.ops:
        if op.kind == "fmla":
            f = op.fmla_index
            a_slot = f // nr
            col = f % nr
            a_reg = VReg(plan.register_for(f"A{a_slot}", op.copy))
            b_reg = VReg(plan.register_for(f"B{col // 2}", op.copy))
            prog.append(
                Fmla(
                    acc=c_register(spec, a_slot, col),
                    multiplicand=a_reg,
                    multiplier=b_reg.lane(col % 2),
                )
            )
        elif op.kind == "ldr":
            dst = VReg(plan.register_for(op.slot, op.value_copy))
            base = A_POINTER if op.stream == "A" else B_POINTER
            prog.append(Ldr(dst=dst, base=base, tag=op.stream))
        elif op.kind == "prfm":
            if prefetch is None:
                continue
            if op.stream == "A":
                prog.append(
                    Prfm(
                        target=PrefetchTarget.PLDL1KEEP,
                        base=A_POINTER,
                        offset=prefetch.prefa_bytes,
                        tag="A",
                    )
                )
            else:
                prog.append(
                    Prfm(
                        target=PrefetchTarget.PLDL2KEEP,
                        base=B_POINTER,
                        offset=prefetch.prefb_bytes,
                        tag="B",
                    )
                )
        else:  # pragma: no cover - scheduler only emits the three kinds
            raise AssemblyError(f"unknown scheduled op kind {op.kind!r}")
    return prog


def _emit_c_tile(spec: KernelSpec, store: bool) -> Program:
    kind = "store" if store else "load"
    prog = Program(name=f"gebp-{spec.name}-c-{kind}")
    for col in range(spec.nr):
        for a in range(spec.a_regs_per_copy):
            reg = c_register(spec, a, col)
            if store:
                prog.append(Str(src=reg, base=C_POINTER, tag="C"))
            else:
                prog.append(Ldr(dst=reg, base=C_POINTER, tag="C"))
    return prog


def generate_kernel(
    spec: KernelSpec,
    kc: int = 512,
    plan: Optional[RotationPlan] = None,
    use_paper_rotation: bool = False,
    with_prefetch: bool = True,
    schedule_strategy: str = "earliest",
) -> GeneratedKernel:
    """Generate the complete register kernel for ``spec``.

    Args:
        spec: Kernel shape; ``spec.rotated`` selects rotation vs static.
        kc: Blocking depth, used for the PREFB prefetch distance.
        plan: Explicit rotation plan (otherwise solved or static).
        use_paper_rotation: Use the paper's Table I cycle instead of the
            exhaustive optimum (only for the 8x6-shaped pool).
        schedule_strategy: ``"earliest"`` (the eq.-(13) optimum) or
            ``"latest"`` (the unscheduled ablation).
    """
    if plan is None:
        if not spec.rotated:
            plan = static_plan(spec)
        elif use_paper_rotation:
            plan = paper_plan(spec)
        else:
            plan = solve_rotation(spec)
    prefetch = (
        plan_prefetch(spec.mr, spec.nr, kc, unroll=plan.unroll)
        if with_prefetch
        else None
    )
    schedule = schedule_body(
        spec, plan, with_prefetch=with_prefetch,
        strategy=schedule_strategy,
    )
    body = _emit_body(spec, plan, schedule, prefetch)
    return GeneratedKernel(
        spec=spec,
        plan=plan,
        schedule=schedule,
        body=body,
        prologue=_emit_c_tile(spec, store=False),
        epilogue=_emit_c_tile(spec, store=True),
        prefetch=prefetch,
    )
