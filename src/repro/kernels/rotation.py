"""Software-implemented register rotation (paper Sec. IV-A, eq. (12), Table I).

The register kernel keeps the C tile pinned (v8-v31 for 8x6) and cycles the
A/B working values through a small pool (v0-v7). One unrolled copy needs
``ab_regs_per_copy`` pool registers (7 for 8x6); preloading the next copy's
values concurrently would need another 7, but only ``pool = 8`` exist, so
``nrf = 2*7 - 8 = 6`` registers must be reused between consecutive copies.

The optimization problem (12) asks for the assignment that maximizes the
minimum distance, over all pool registers, between the *last read of the
current value* ('CL') and the *first read of the next value* ('NF') in the
FMLA stream: the wider that window, the more freedom the scheduler has to
place the intervening load without stalling the pipeline.

We solve (12) exactly over the family the paper uses — rotation schemes in
which every slot follows one cyclic permutation ``sigma`` of the pool (each
row of Table I is the same 8-cycle started at a different point). All
``(pool-1)!`` cycles are enumerated; for the 8x6 kernel the optimum
distance is 7, matching the paper.

The unrotated baseline (``static_plan``) pins each slot to a fixed register
forever; its minimum CL->NF distance is 5 for the 8x6 kernel, which is what
the Fig. 13 ablation degrades to.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RegisterAllocationError
from repro.kernels.kernel_spec import KernelSpec


@dataclass(frozen=True)
class SlotReads:
    """First/last FMLA read positions of one value slot within a copy."""

    slot: str
    first: int
    last: int


def slot_read_positions(spec: KernelSpec) -> Dict[str, SlotReads]:
    """First and last FMLA positions at which each A/B slot is read.

    Positions index the ``fmla_per_iter`` FMLAs of one copy in zig-zag
    order.
    """
    firsts: Dict[str, int] = {}
    lasts: Dict[str, int] = {}
    reads = spec.read_schedule()
    for pos2, (operand, idx) in enumerate(reads):
        pos = pos2 // 2  # two reads per FMLA
        name = f"{operand}{idx}"
        firsts.setdefault(name, pos)
        lasts[name] = pos
    return {
        name: SlotReads(slot=name, first=firsts[name], last=lasts[name])
        for name in firsts
    }


@dataclass(frozen=True)
class RotationPlan:
    """A register-rotation assignment for the unrolled kernel.

    Attributes:
        spec: The kernel this plan serves.
        pool: Number of rotating registers (8 for 8x6).
        unroll: Number of unrolled copies per loop body (= pool for
            rotated plans, so the pattern closes after one body).
        assignment: ``assignment[copy][slot_name] -> pool register index``.
        min_distance: The realized eq.-(12) objective (in FMLA positions).
        sigma: The successor cycle, or ``None`` for the static plan.
    """

    spec: KernelSpec
    pool: int
    unroll: int
    assignment: Tuple[Dict[str, int], ...]
    min_distance: int
    sigma: Optional[Tuple[int, ...]] = None

    def register_for(self, slot: str, copy: int) -> int:
        """Pool register holding ``slot`` in unrolled copy ``copy``."""
        return self.assignment[copy % self.unroll][slot]

    def previous_tenant(self, slot: str, copy: int) -> Optional[Tuple[str, int]]:
        """The (slot, copy) whose value previously occupied the register
        that ``slot`` uses in ``copy``, or ``None`` when that register was
        the pool's spare in the previous copy (7 slots rotate through 8
        registers, so exactly one register idles each copy)."""
        reg = self.register_for(slot, copy)
        prev_copy = (copy - 1) % self.unroll
        for name, r in self.assignment[prev_copy].items():
            if r == reg:
                return (name, prev_copy)
        return None

    def table(self) -> List[Tuple[str, List[int]]]:
        """Table-I-shaped view: one row per slot, one column per copy."""
        rows = []
        for slot in self.spec.slot_names():
            rows.append(
                (slot, [self.assignment[c][slot] for c in range(self.unroll)])
            )
        return rows


def _evaluate_min_distance(
    spec: KernelSpec,
    assignment: Sequence[Dict[str, int]],
    unroll: int,
) -> int:
    """The eq.-(12) objective: min over registers of NF - CL, in global
    FMLA positions, with wraparound across loop bodies."""
    reads = slot_read_positions(spec)
    fpi = spec.fmla_per_iter
    # For each register: ordered list of (global_first, global_last) uses.
    uses: Dict[int, List[Tuple[int, int]]] = {}
    for copy in range(unroll):
        for slot, reg in assignment[copy].items():
            r = reads[slot]
            uses.setdefault(reg, []).append(
                (copy * fpi + r.first, copy * fpi + r.last)
            )
    total = unroll * fpi
    best = total
    for reg, spans in uses.items():
        spans.sort()
        n = len(spans)
        for i in range(n):
            cur_last = spans[i][1]
            nxt_first = spans[(i + 1) % n][0] + (total if i + 1 == n else 0)
            best = min(best, nxt_first - cur_last)
    return best


def static_plan(spec: KernelSpec) -> RotationPlan:
    """The unrotated baseline: each slot owns a fixed register forever."""
    slots = spec.slot_names()
    unroll = spec.rotation_pool  # same unroll as the rotated plan
    assignment = tuple({s: i for i, s in enumerate(slots)} for _ in range(unroll))
    dist = _evaluate_min_distance(spec, assignment, unroll)
    return RotationPlan(
        spec=spec,
        pool=spec.rotation_pool,
        unroll=unroll,
        assignment=assignment,
        min_distance=dist,
        sigma=None,
    )


#: The cycle behind the paper's Table I: 0 -> 2 -> 4 -> 7 -> 6 -> 1 -> 3 -> 5.
PAPER_SIGMA_8X6: Tuple[int, ...] = (0, 2, 4, 7, 6, 1, 3, 5)


def plan_from_cycle(spec: KernelSpec, cycle: Tuple[int, ...]) -> RotationPlan:
    """Build the rotation plan induced by one explicit pool cycle."""
    pool = spec.rotation_pool
    if sorted(cycle) != list(range(pool)):
        raise RegisterAllocationError(
            f"cycle must be a permutation of 0..{pool - 1}"
        )
    slots = spec.slot_names()
    succ = {cycle[i]: cycle[(i + 1) % pool] for i in range(pool)}
    assignment: List[Dict[str, int]] = []
    current = {slot: i for i, slot in enumerate(slots)}
    for _copy in range(pool):
        assignment.append(dict(current))
        current = {s: succ[r] for s, r in current.items()}
    dist = _evaluate_min_distance(spec, assignment, pool)
    return RotationPlan(
        spec=spec,
        pool=pool,
        unroll=pool,
        assignment=tuple(assignment),
        min_distance=dist,
        sigma=cycle,
    )


def paper_plan(spec: Optional[KernelSpec] = None) -> RotationPlan:
    """The paper's exact Table I rotation for the 8x6 kernel.

    Reproduces Table I digit-for-digit and realizes the paper's reported
    optimal distance of 7. (Our exhaustive :func:`solve_rotation` finds a
    cycle with distance 11 under the same objective — see EXPERIMENTS.md.)
    """
    from repro.kernels.kernel_spec import KERNEL_8X6

    spec = spec or KERNEL_8X6
    if spec.rotation_pool != 8:
        raise RegisterAllocationError(
            "the paper's Table I applies to the 8-register pool of 8x6"
        )
    return plan_from_cycle(spec, PAPER_SIGMA_8X6)


def solve_rotation(spec: KernelSpec) -> RotationPlan:
    """Solve eq. (12) exactly over single-cycle rotation schemes.

    Enumerates every cyclic permutation of the pool (fixing ``sigma(start)``
    chains as cycles through all pool registers), applies
    ``reg(slot, copy) = sigma^copy(slot)``, and keeps the assignment with
    the largest minimum CL->NF distance. For 8x6 the optimum is 7.
    """
    if not spec.rotated:
        return static_plan(spec)
    slots = spec.slot_names()
    pool = spec.rotation_pool
    if len(slots) >= pool + 1:
        raise RegisterAllocationError(
            f"{spec.name}: {len(slots)} slots exceed pool of {pool}"
        )
    unroll = pool  # one full rotation per unrolled loop body

    best_plan: Optional[RotationPlan] = None
    # A cycle through pool registers: 0 -> p1 -> p2 -> ... -> 0.
    for rest in itertools.permutations(range(1, pool)):
        cycle = (0,) + rest
        succ = {cycle[i]: cycle[(i + 1) % pool] for i in range(pool)}
        assignment: List[Dict[str, int]] = []
        current = {slot: i for i, slot in enumerate(slots)}
        for _copy in range(unroll):
            assignment.append(dict(current))
            current = {s: succ[r] for s, r in current.items()}
        dist = _evaluate_min_distance(spec, assignment, unroll)
        if best_plan is None or dist > best_plan.min_distance:
            best_plan = RotationPlan(
                spec=spec,
                pool=pool,
                unroll=unroll,
                assignment=tuple(assignment),
                min_distance=dist,
                sigma=cycle,
            )
    assert best_plan is not None
    return best_plan
