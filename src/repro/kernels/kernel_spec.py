"""Register-kernel specifications.

A :class:`KernelSpec` describes an ``mr x nr`` register kernel in terms the
generator and the performance model both consume: how many vector registers
hold the C tile, how many cycle through A and B, how many FMLA and LDR
instructions one rank-1 update (one k-iteration) needs, and the zig-zag
read schedule of the A/B registers inside one unrolled copy.

Two vectorization styles are modeled:

- ``BY_ELEMENT`` (the paper's kernels): columns of C are updated with
  by-element FMLAs (``fmla vd.2d, vn.2d, vm.d[i]``); rank-1 update per
  k-iteration; requires even mr/nr to avoid wasting lanes (eq. (11)).
- ``K_VECTORIZED`` (the ATLAS 5x5 comparison kernel of [11]): odd tiles
  cannot use by-element FMLAs without losing half the boundary lanes, so
  the kernel vectorizes along k instead — a rank-2 update per *group* of
  two k-iterations using full-vector FMLAs, holding two-lane partial sums
  per C element. No lanes are wasted, but the C tile needs mr*nr whole
  registers (25 for 5x5), leaving only a 7-register pool for the 10
  streaming A/B values per group — the short-preload-window handicap the
  simulator charges it for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import BlockingError
from repro.model.ratios import register_kernel_ratio

#: float64 lanes per 128-bit NEON register.
LANES = 2


class KernelStyle(enum.Enum):
    """How the register kernel maps the tile onto NEON lanes."""

    BY_ELEMENT = "by-element"
    K_VECTORIZED = "k-vectorized"


@dataclass(frozen=True)
class KernelSpec:
    """Shape and instruction budget of one register kernel.

    Attributes:
        mr: Rows of the register tile.
        nr: Columns of the register tile.
        name: Display name, e.g. ``"8x6"``.
        rotated: Whether software register rotation is applied (Fig. 13's
            ablation turns this off).
        style: Lane-mapping style (see module docstring).
    """

    mr: int
    nr: int
    name: str = ""
    rotated: bool = True
    style: KernelStyle = KernelStyle.BY_ELEMENT

    def __post_init__(self) -> None:
        if self.mr < 1 or self.nr < 1:
            raise BlockingError("mr and nr must be >= 1")
        if not self.name:
            object.__setattr__(self, "name", f"{self.mr}x{self.nr}")

    # -- register budget ------------------------------------------------------

    @property
    def a_regs_per_copy(self) -> int:
        """Vector registers holding one mr x 1 column of A (lane-padded)."""
        return -(-self.mr // LANES)

    @property
    def b_regs_per_copy(self) -> int:
        """Vector registers holding one 1 x nr row of B (lane-padded)."""
        return -(-self.nr // LANES)

    @property
    def ab_regs_per_copy(self) -> int:
        """A/B registers live in one unrolled copy (7 for 8x6)."""
        return self.a_regs_per_copy + self.b_regs_per_copy

    @property
    def c_regs(self) -> int:
        """Vector registers pinned to the C tile.

        Rows are lane-padded: an odd mr wastes one lane per column.
        """
        return self.a_regs_per_copy * self.nr

    def fits_register_file(self, nf: int = 32) -> bool:
        """C tile + two copies' worth of A/B minus reuse must fit in nf.

        The paper's working set is ``c_regs`` pinned registers plus a pool
        of at least ``ab_regs_per_copy + 1`` rotating registers.
        """
        return self.c_regs + self.ab_regs_per_copy + 1 <= nf

    @property
    def rotation_pool(self) -> int:
        """Registers available for the rotating A/B pool (8 for 8x6)."""
        return self.ab_regs_per_copy + 1

    # -- per-k-group instruction counts ----------------------------------------
    #
    # A "group" is the kernel's natural update unit: one k-iteration for
    # by-element kernels (rank-1 update), two for k-vectorized kernels
    # (rank-2 update with two-lane partial sums).

    @property
    def k_iters_per_group(self) -> int:
        """k-iterations per update group (1 by-element, 2 k-vectorized)."""
        return 1 if self.style is KernelStyle.BY_ELEMENT else LANES

    @property
    def fmla_per_group(self) -> int:
        """FMLA instructions per update group."""
        if self.style is KernelStyle.BY_ELEMENT:
            return self.a_regs_per_copy * self.nr
        return self.mr * self.nr  # one full-vector FMLA per C element

    @property
    def ldr_per_group(self) -> int:
        """128-bit loads per update group."""
        if self.style is KernelStyle.BY_ELEMENT:
            return self.a_regs_per_copy + self.b_regs_per_copy
        return self.mr + self.nr  # one q-load per row/column, 2 k deep

    @property
    def flops_per_group(self) -> int:
        """Useful flops per update group."""
        return 2 * self.mr * self.nr * self.k_iters_per_group

    # -- per-k-iteration views (by-element kernels; group == iteration) --------

    @property
    def fmla_per_iter(self) -> int:
        """FMLA instructions per rank-1 update (24 for 8x6).

        Only meaningful for by-element kernels, whose group is one
        iteration; k-vectorized counts are exposed per group.
        """
        return self.fmla_per_group if self.k_iters_per_group == 1 else (
            self.fmla_per_group // self.k_iters_per_group
        )

    @property
    def ldr_per_iter(self) -> int:
        """128-bit loads per rank-1 update (7 for 8x6); per-group share
        for k-vectorized kernels."""
        return self.ldr_per_group if self.k_iters_per_group == 1 else (
            self.ldr_per_group // self.k_iters_per_group
        )

    @property
    def flops_per_iter(self) -> int:
        """Useful flops per rank-1 update: 2 * mr * nr."""
        return 2 * self.mr * self.nr

    @property
    def flops_per_fmla(self) -> float:
        """Useful flops per FMLA (4.0 when no lanes are wasted)."""
        return self.flops_per_group / self.fmla_per_group

    @property
    def lane_efficiency(self) -> float:
        """Fraction of FMLA lanes doing useful work."""
        return self.flops_per_fmla / (2 * LANES)

    @property
    def preload_window_limited(self) -> bool:
        """True when the C tile leaves too few pool registers to preload a
        whole group ahead (the k-vectorized 5x5's handicap)."""
        free = 32 - self.c_regs_for_style
        return free < self.ldr_per_group

    @property
    def c_regs_for_style(self) -> int:
        """Registers pinned to C under the kernel's style."""
        if self.style is KernelStyle.BY_ELEMENT:
            return self.c_regs
        return self.mr * self.nr  # two-lane partial sum per element

    @property
    def gamma(self) -> float:
        """Eq. (8) compute-to-memory ratio of this tile."""
        return register_kernel_ratio(self.mr, self.nr)

    @property
    def ldr_fmla_ratio(self) -> Tuple[int, int]:
        """Reduced LDR:FMLA ratio, Table IV's row label (7:24 for 8x6)."""
        from math import gcd

        g = gcd(self.ldr_per_group, self.fmla_per_group)
        return (self.ldr_per_group // g, self.fmla_per_group // g)

    @property
    def arithmetic_fraction(self) -> float:
        """Sec. V-A's percentage of arithmetic instructions."""
        f, l = self.fmla_per_group, self.ldr_per_group
        return f / (f + l)

    # -- read schedule ---------------------------------------------------------

    def read_schedule(self) -> List[Tuple[str, int]]:
        """The zig-zag FMLA order of one copy as (operand, slot) per read.

        Each FMLA reads one A slot (register index within the copy's A
        group) and one B slot. The kernel walks row-pairs of C, covering
        all nr columns per row-pair (Figs. 6/7), so FMLA ``i`` reads
        ``("A", i // nr)`` and ``("B", (i % nr) // LANES)``.

        Returns a list of length ``2 * fmla_per_iter`` with the A and B
        read of each FMLA in order.
        """
        reads: List[Tuple[str, int]] = []
        for i in range(self.fmla_per_iter):
            reads.append(("A", i // self.nr))
            reads.append(("B", (i % self.nr) // LANES))
        return reads

    def slot_names(self) -> List[str]:
        """Stable names of the copy's A/B value slots, A first."""
        names = [f"A{i}" for i in range(self.a_regs_per_copy)]
        names += [f"B{i}" for i in range(self.b_regs_per_copy)]
        return names


#: The four kernels evaluated in the paper's Sec. V.
KERNEL_8X6 = KernelSpec(8, 6, "8x6")
KERNEL_8X4 = KernelSpec(8, 4, "8x4")
KERNEL_4X4 = KernelSpec(4, 4, "4x4")
KERNEL_5X5_ATLAS = KernelSpec(
    5, 5, "5x5-atlas", style=KernelStyle.K_VECTORIZED
)
#: The Fig. 13 ablation kernel: 8x6 without software register rotation.
KERNEL_8X6_NO_ROTATION = KernelSpec(8, 6, "8x6-noRR", rotated=False)

PAPER_KERNELS = (KERNEL_8X6, KERNEL_8X4, KERNEL_4X4, KERNEL_5X5_ATLAS)
