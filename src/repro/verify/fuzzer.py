"""Seeded differential fuzz sweeps and the mutation self-test.

One top-level ``seed`` determines every case in a sweep: each oracle gets
its own :class:`random.Random` seeded with the string ``"{seed}:{name}"``
(string seeding hashes through SHA-512, so it is stable across processes
and Python versions, unlike ``hash()``). Adding an oracle therefore never
perturbs the cases other oracles see — sweeps stay reproducible across
registry growth.

The sweep result is a plain versioned document designed to be embedded as
a ``RunReport`` stats section by the CLI.

The **mutation self-test** guards the guard: for every oracle it re-runs
one case under a comparator shim that bumps the first integer leaf of the
fast document by one, and demands a reported mismatch. A harness that
cannot see an injected off-by-one would pass every real sweep vacuously;
this test makes that failure mode loud.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.verify.oracle import (
    Oracle,
    VerifyError,
    diff_documents,
    oracles_for_suite,
    run_case,
)
from repro.verify.shrink import save_case, shrink_case

__all__ = [
    "BUDGETS",
    "VERIFY_SCHEMA_VERSION",
    "fuzz_params",
    "mutation_self_test",
    "run_suite",
]

VERIFY_SCHEMA_VERSION = 1

#: Cases generated per oracle for each named budget.
BUDGETS = {"smoke": 3, "default": 8, "deep": 25}


def oracle_rng(seed: int, oracle_name: str) -> random.Random:
    """The per-oracle RNG: independent streams from one top-level seed."""
    return random.Random(f"{seed}:{oracle_name}")


def fuzz_params(
    oracle: Oracle, seed: int, budget: str
) -> List[Dict[str, Any]]:
    """The deterministic case list one sweep runs for ``oracle``."""
    if budget not in BUDGETS:
        raise VerifyError(
            f"unknown budget {budget!r}; choose from {sorted(BUDGETS)}"
        )
    rng = oracle_rng(seed, oracle.name)
    return [oracle.generate(rng, budget) for _ in range(BUDGETS[budget])]


def _mutate_first_int(doc: Any) -> bool:
    """Bump the first integer leaf found by a deterministic DFS.

    Mutates ``doc`` in place; returns whether a leaf was found. Bools are
    skipped (they are ints in Python, but flipping one models a different
    fault class) and so are floats — the injected fault is specifically
    an off-by-one in a counter.
    """
    if isinstance(doc, dict):
        for key in sorted(doc):
            value = doc[key]
            if isinstance(value, int) and not isinstance(value, bool):
                doc[key] = value + 1
                return True
            if _mutate_first_int(value):
                return True
        return False
    if isinstance(doc, list):
        for i, value in enumerate(doc):
            if isinstance(value, int) and not isinstance(value, bool):
                doc[i] = value + 1
                return True
            if _mutate_first_int(value):
                return True
        return False
    return False


def _faulting_compare(
    reference: Dict[str, Any], fast: Dict[str, Any]
) -> List[str]:
    """Comparator shim with an injected off-by-one on the fast side."""
    import copy

    mutated = copy.deepcopy(fast)
    if not _mutate_first_int(mutated):
        raise VerifyError(
            "mutation self-test found no integer leaf to corrupt"
        )
    return diff_documents(reference, mutated)


def mutation_self_test(
    oracles: List[Oracle], seed: int
) -> Dict[str, Any]:
    """Prove the harness detects an injected comparator fault.

    For each oracle: run one fuzzed case under :func:`_faulting_compare`
    and require at least one reported mismatch. Returns a summary doc;
    ``passed`` is True only if every oracle's fault was caught.
    """
    results: Dict[str, Any] = {}
    all_caught = True
    for oracle in oracles:
        rng = oracle_rng(seed, f"selftest:{oracle.name}")
        params = oracle.generate(rng, "smoke")
        outcome = run_case(oracle, params, compare=_faulting_compare)
        caught = not outcome.ok
        all_caught = all_caught and caught
        results[oracle.name] = {
            "fault_caught": caught,
            "mismatches": outcome.mismatches[:3],
        }
    return {"passed": all_caught, "oracles": results}


def run_suite(
    seed: int,
    budget: str = "default",
    suite: str = "all",
    selftest: bool = True,
    shrink_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run a full differential sweep; returns the versioned result doc.

    When a case fails, it is greedily shrunk and — if ``shrink_dir`` is
    set — written there as a committed-ready repro file. The returned
    document's ``passed`` covers both the sweep and (when enabled) the
    mutation self-test.
    """
    oracles = oracles_for_suite(suite)
    doc: Dict[str, Any] = {
        "verify_schema_version": VERIFY_SCHEMA_VERSION,
        "seed": seed,
        "budget": budget,
        "suite": suite,
        "oracles": {},
    }
    sweep_ok = True
    for oracle in oracles:
        cases = fuzz_params(oracle, seed, budget)
        failures: List[Dict[str, Any]] = []
        for index, params in enumerate(cases):
            outcome = run_case(oracle, params)
            if outcome.ok:
                continue
            sweep_ok = False
            entry: Dict[str, Any] = {
                "case_index": index,
                "mismatches": outcome.mismatches[:10],
            }
            shrunk = shrink_case(oracle, params)
            entry["shrunk_params"] = shrunk.params
            entry["shrunk_mismatches"] = shrunk.mismatches[:10]
            entry["shrink_evaluations"] = shrunk.evaluations
            if shrink_dir is not None:
                path = save_case(
                    shrink_dir, oracle.name, shrunk.params,
                    note=f"shrunk from sweep seed={seed} case={index}",
                )
                entry["case_file"] = str(path)
            failures.append(entry)
        doc["oracles"][oracle.name] = {
            "suite": oracle.suite,
            "description": oracle.description,
            "cases": len(cases),
            "failures": failures,
            "passed": not failures,
        }
    if selftest:
        doc["selftest"] = mutation_self_test(oracles, seed)
        doc["passed"] = sweep_ok and doc["selftest"]["passed"]
    else:
        doc["passed"] = sweep_ok
    return doc
