"""Greedy case shrinker and committed-repro case files.

When the fuzzer finds a case where the fast engine diverges from the
reference, the raw params are usually noisy — a 40x37x23 GEMM on a
3-level machine with a 1500-access trace. :func:`shrink_case` minimizes
the failure greedily: it asks the oracle's ``shrink`` hook for candidate
params, keeps any candidate that (a) still fails and (b) strictly
reduces :func:`~repro.verify.oracle.numeric_size`, and repeats until no
candidate helps or the evaluation budget runs out. The strict-decrease
rule makes termination a theorem rather than a hope.

A minimized case is written as a small JSON file under ``tests/cases/``;
``repro verify --replay`` (and the test suite, for every committed file)
re-runs it through the named oracle.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.obs.run_report import atomic_write_text
from repro.verify.oracle import (
    CaseOutcome,
    Oracle,
    VerifyError,
    get_oracle,
    numeric_size,
    run_case,
)

__all__ = [
    "CASE_SCHEMA_VERSION",
    "ShrinkResult",
    "case_filename",
    "load_case",
    "replay_case",
    "save_case",
    "shrink_case",
]

CASE_SCHEMA_VERSION = 1

Comparator = Callable[[Dict[str, Any], Dict[str, Any]], List[str]]


class ShrinkResult:
    """Outcome of a shrink run: the minimized params and bookkeeping."""

    def __init__(
        self,
        params: Dict[str, Any],
        mismatches: List[str],
        evaluations: int,
        initial_size: int,
        final_size: int,
    ) -> None:
        self.params = params
        self.mismatches = mismatches
        self.evaluations = evaluations
        self.initial_size = initial_size
        self.final_size = final_size


def shrink_case(
    oracle: Oracle,
    params: Dict[str, Any],
    compare: Optional[Comparator] = None,
    max_evals: int = 200,
) -> ShrinkResult:
    """Greedily minimize a failing case.

    ``params`` must already fail under ``compare`` (the oracle's own
    comparator when omitted); raises :class:`VerifyError` otherwise,
    because "shrinking" a passing case would silently return it intact
    and mask a harness bug.
    """
    outcome = run_case(oracle, params, compare=compare)
    if outcome.ok:
        raise VerifyError(
            f"refusing to shrink a passing case for {oracle.name}"
        )
    initial_size = numeric_size(params)
    best = params
    best_mismatches = outcome.mismatches
    best_size = initial_size
    evals = 1
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in oracle.shrink(best):
            if evals >= max_evals:
                break
            size = numeric_size(candidate)
            if size >= best_size:
                continue
            try:
                attempt = run_case(oracle, candidate, compare=compare)
            except Exception:
                # A shrink candidate that crashes an engine is a worse
                # repro than one that mismatches; skip it.
                evals += 1
                continue
            evals += 1
            if not attempt.ok:
                best = candidate
                best_mismatches = attempt.mismatches
                best_size = size
                improved = True
                break  # restart shrinking from the new, smaller case
    return ShrinkResult(
        params=best,
        mismatches=best_mismatches,
        evaluations=evals,
        initial_size=initial_size,
        final_size=best_size,
    )


# -- case files ---------------------------------------------------------------


def case_filename(oracle_name: str, params: Dict[str, Any]) -> str:
    """Stable filename for a case: oracle name + content digest."""
    digest = hashlib.sha256(
        json.dumps(params, sort_keys=True).encode()
    ).hexdigest()[:12]
    return f"{oracle_name.replace('.', '-')}-{digest}.json"


def save_case(
    directory: Path,
    oracle_name: str,
    params: Dict[str, Any],
    note: str = "",
) -> Path:
    """Write a committed-ready repro file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case_filename(oracle_name, params)
    doc = {
        "schema_version": CASE_SCHEMA_VERSION,
        "kind": "verify-case",
        "oracle": oracle_name,
        "params": params,
        "note": note,
    }
    # Crash-safe: a committed-ready repro file must never be truncated.
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: Path) -> Dict[str, Any]:
    """Read and validate a case file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise VerifyError(f"cannot read case file {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != "verify-case":
        raise VerifyError(f"{path} is not a verify-case file")
    if doc.get("schema_version") != CASE_SCHEMA_VERSION:
        raise VerifyError(
            f"{path}: case schema {doc.get('schema_version')!r} "
            f"unsupported (want {CASE_SCHEMA_VERSION})"
        )
    for key in ("oracle", "params"):
        if key not in doc:
            raise VerifyError(f"{path}: missing {key!r}")
    return doc


def replay_case(path: Path) -> CaseOutcome:
    """Re-run a committed case file through its oracle's real comparator."""
    doc = load_case(path)
    oracle = get_oracle(doc["oracle"])
    return run_case(oracle, doc["params"])
