"""Differential verification: oracle registry, seeded fuzzer, shrinker.

Every fast/reference engine pair in the repo is declared once as an
:class:`~repro.verify.oracle.Oracle`; the fuzzer sweeps seeded random
cases through all of them, the shrinker minimizes any failure into a
committed-ready repro file, and a mutation self-test proves the harness
can actually see a fault. Entry points: ``repro verify`` on the CLI,
:func:`~repro.verify.fuzzer.run_suite` from code.
"""

from repro.verify.fuzzer import (
    BUDGETS,
    VERIFY_SCHEMA_VERSION,
    fuzz_params,
    mutation_self_test,
    run_suite,
)
from repro.verify.machines import (
    build_chip,
    random_machine,
    simplified_machines,
    with_replacement,
)
from repro.verify.oracle import (
    CaseOutcome,
    Oracle,
    VerifyError,
    all_oracles,
    diff_documents,
    get_oracle,
    numeric_size,
    oracles_for_suite,
    register,
    run_case,
    suites,
)
from repro.verify.shrink import (
    CASE_SCHEMA_VERSION,
    ShrinkResult,
    case_filename,
    load_case,
    replay_case,
    save_case,
    shrink_case,
)

__all__ = [
    "BUDGETS",
    "CASE_SCHEMA_VERSION",
    "CaseOutcome",
    "Oracle",
    "ShrinkResult",
    "VERIFY_SCHEMA_VERSION",
    "VerifyError",
    "all_oracles",
    "build_chip",
    "case_filename",
    "diff_documents",
    "fuzz_params",
    "get_oracle",
    "load_case",
    "mutation_self_test",
    "numeric_size",
    "oracles_for_suite",
    "random_machine",
    "register",
    "replay_case",
    "run_case",
    "run_suite",
    "save_case",
    "shrink_case",
    "simplified_machines",
    "suites",
    "with_replacement",
]
