"""The standing oracles: one per fast/reference engine pair in the repo.

Each oracle is declared once and covers one bit-identity claim:

- ``gemm.pool`` — OS-thread worker-pool ``parallel_dgemm`` vs the inline
  sequential executor (PR 1's engine);
- ``cachesim.batch`` — vectorized :meth:`MemoryHierarchy.run_batch` vs the
  per-access scalar :func:`run_trace` walk (PR 2's engine);
- ``timed.compiled`` — compiled timed-execution templates vs the
  instruction-by-instruction interpreter (PR 3's engine);
- ``lru.array`` — the timestamp-array LRU representation behind
  :meth:`Cache.access_lines_batched` vs the ``OrderedDict`` list mode;
- ``timed.oddtile`` — the compiled engine on the formerly interpreted
  tail (odd-tile lane padding, k-vectorized ``faddp`` folds) vs the
  interpreter;
- ``cachesim.writethrough`` — the batched store-propagation walk on
  machines with write-through levels vs the scalar chain;
- ``sweep.incremental`` — sweeps carrying warm hierarchy state across
  adjacent points vs cold-start replays of every point;
- ``stencil.blocked`` — cache-blocked stencil sweeps (any tile shape,
  remainder tiles included) vs the unblocked reference, plus the batched
  vs scalar walk of the blocked access stream;
- ``conv.im2col`` — convolution lowered through im2col + DGEMM vs the
  directly-blocked gather nest, plus the batched vs scalar walk of the
  direct lowering's access stream.

Result documents contain only JSON-able leaves. Float64 payloads (C
tiles/panels) are compared bit-exactly: values are carried as exact
``float`` lists plus a SHA-256 of the raw little-endian bytes, so a
single flipped mantissa bit anywhere fails the comparison.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, Iterator, List

import numpy as np

from repro.arch.presets import MOBILE_SOC, PRESETS, XGENE
from repro.blocking.cache_blocking import CacheBlocking
from repro.memory.batch import BatchTrace
from repro.memory.cache import (
    CODE_LOAD,
    CODE_PREFETCH,
    CODE_STORE,
    Cache,
    CacheStats,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.trace import run_trace
from repro.obs.run_report import snapshot_cache_stats, snapshot_pipeline
from repro.verify.machines import (
    build_chip,
    random_machine,
    simplified_machines,
)
from repro.verify.oracle import Oracle, register

__all__ = ["CHIPS"]

#: Named chips a case may reference (kept tiny and JSON-friendly) —
#: every registered preset; generation keeps drawing from the historical
#: subsets so committed cases and fixed-seed sweeps stay reproducible.
CHIPS = dict(PRESETS)


def _sha256(array: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(array, dtype=np.float64).tobytes()
    ).hexdigest()


def _array_doc(array: np.ndarray, values_limit: int = 256) -> Dict[str, Any]:
    """Bit-exact document for a float64 array.

    Small arrays carry their exact values (readable in a repro file);
    every array carries shape and a content hash, so equality of the
    document is equality of the bits.
    """
    arr = np.ascontiguousarray(array, dtype=np.float64)
    doc: Dict[str, Any] = {
        "shape": list(arr.shape),
        "sha256": _sha256(arr),
    }
    if arr.size <= values_limit:
        doc["values"] = [float(x) for x in arr.ravel()]
    return doc


# =============================================================================
# gemm.pool — pooled OS-thread parallel_dgemm vs the inline serial executor
# =============================================================================

_TILES = ((8, 6), (8, 4), (4, 4), (2, 2), (5, 3))
_SCALARS = (0.0, 1.0, -1.0, 0.5, 2.0)


def _gemm_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    hi = 24 if budget == "smoke" else 48
    mr, nr = rng.choice(_TILES)
    return {
        "m": rng.randint(1, hi),
        "n": rng.randint(1, hi),
        "k": rng.randint(1, hi),
        "threads": rng.randint(2, 4),
        "alpha": rng.choice(_SCALARS),
        "beta": rng.choice(_SCALARS),
        "axis": rng.choice(("m", "n")),
        "blocking": {
            "mr": mr,
            "nr": nr,
            "kc": rng.choice((4, 8, 16)),
            "mc": rng.choice((8, 16, 24)),
            "nc": rng.choice((12, 16, 32)),
        },
        "data_seed": rng.randint(0, 2**31 - 1),
    }


def _gemm_run(params: Dict[str, Any], use_os_threads: bool) -> Dict[str, Any]:
    from repro.gemm.parallel import parallel_dgemm
    from repro.gemm.pool import PoolStats, WorkerPool
    from repro.gemm.trace import GemmTrace
    from repro.gemm.workspace import GemmWorkspace

    g = np.random.default_rng(params["data_seed"])
    m, n, k = params["m"], params["n"], params["k"]
    a = np.asfortranarray(g.standard_normal((m, k)))
    b = np.asfortranarray(g.standard_normal((k, n)))
    c = np.asfortranarray(g.standard_normal((m, n)))
    blk = params["blocking"]
    blocking = CacheBlocking(
        mr=blk["mr"], nr=blk["nr"], kc=blk["kc"], mc=blk["mc"],
        nc=blk["nc"], k1=1, k2=1, k3=1,
    )
    trace = GemmTrace()
    stats = PoolStats()
    threads = params["threads"]

    def call(pool):
        return parallel_dgemm(
            a, b, c.copy(order="F"), threads=threads,
            alpha=params["alpha"], beta=params["beta"],
            blocking=blocking, trace=trace, axis=params["axis"],
            use_os_threads=use_os_threads, pool=pool,
            workspace=GemmWorkspace(), stats=stats,
        )

    if use_os_threads:
        with WorkerPool(threads) as pool:
            out = call(pool)
    else:
        out = call(None)

    counters = stats.snapshot()
    return {
        "c": _array_doc(out),
        "trace": {
            "packs": [
                [e.operand, e.rows, e.cols, e.thread] for e in trace.packs
            ],
            "gebps": [
                [e.mc, e.kc, e.nc, e.thread, e.beta_pass]
                for e in trace.gebps
            ],
            "active_threads": trace.active_threads,
            "flops": trace.flops,
        },
        # Wall-clock seconds are *excluded* on purpose: only call counts
        # are part of the engines' identity contract.
        "pool": {
            "steps": stats.steps,
            "calls": stats.calls,
            "threads": {
                str(t): [c_.pack_a_calls, c_.pack_b_calls, c_.gebp_calls]
                for t, c_ in sorted(counters.items())
            },
        },
    }


def _gemm_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    for dim in ("m", "n", "k"):
        if params[dim] > 1:
            yield {**params, dim: max(1, params[dim] // 2)}
            yield {**params, dim: params[dim] - 1}
    if params["threads"] > 2:
        yield {**params, "threads": 2}
    for scalar in ("alpha", "beta"):
        if params[scalar] != 1.0:
            yield {**params, scalar: 1.0}
    blk = params["blocking"]
    for key in ("kc", "mc", "nc"):
        if blk[key] > blk.get("mr", 1) and blk[key] > 4:
            yield {**params, "blocking": {**blk, key: blk[key] // 2}}


register(Oracle(
    name="gemm.pool",
    suite="gemm",
    description=(
        "worker-pool OS-thread parallel_dgemm is bit-identical to the "
        "inline sequential executor (C values, trace events, counters)"
    ),
    generate=_gemm_generate,
    reference=lambda p: _gemm_run(p, use_os_threads=False),
    fast=lambda p: _gemm_run(p, use_os_threads=True),
    shrink=_gemm_shrink,
))


# =============================================================================
# cachesim.batch — vectorized hierarchy replay vs the scalar per-access walk
# =============================================================================


def _trace_rows(params: Dict[str, Any], n_levels: int) -> List[tuple]:
    """The case's access stream, regenerated deterministically."""
    rng = random.Random(params["trace_seed"])
    span = params["span_lines"]
    line = params["machine"]["line"]
    rows = []
    for _ in range(params["length"]):
        addr = rng.randrange(span) * line + rng.choice((0, 0, 8, 24))
        nbytes = rng.choice((8, 16, 64, 2 * line))
        roll = rng.random()
        if roll < 0.6:
            rows.append((addr, nbytes, CODE_LOAD, 1))
        elif roll < 0.85:
            rows.append((addr, nbytes, CODE_STORE, 1))
        else:
            rows.append(
                (addr, line, CODE_PREFETCH, rng.randint(1, n_levels))
            )
    return rows


def _cachesim_doc(
    h: MemoryHierarchy, cost
) -> Dict[str, Any]:
    return {
        "cost": {
            "accesses": cost.accesses,
            "latency_cycles": cost.latency_cycles,
            "level_hits": list(cost.level_hits),
        },
        "caches": {
            key: snapshot_cache_stats(cache.stats)
            for key, cache in h.all_caches().items()
        },
        "dram_accesses": h.dram_accesses,
        "tlb": [
            None if t is None else {"accesses": t.stats.accesses,
                                    "misses": t.stats.misses}
            for t in h.tlbs
        ],
    }


def _cachesim_run(params: Dict[str, Any], engine: str) -> Dict[str, Any]:
    chip = build_chip(params["machine"])
    h = MemoryHierarchy(
        chip, with_tlb=params["machine"].get("with_tlb", False),
        seed=params["hier_seed"],
    )
    core = params["core"] % chip.cores
    trace = BatchTrace.from_rows(
        _trace_rows(params, len(chip.cache_levels))
    )
    if engine == "scalar":
        cost = run_trace(h, core, trace)
    else:
        cost = h.run_batch(core, trace)
    return _cachesim_doc(h, cost)


def _cachesim_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    length = rng.randint(50, 300 if budget == "smoke" else 1500)
    machine = random_machine(rng, budget)
    return {
        "machine": machine,
        "core": rng.randrange(machine["cores"]),
        "hier_seed": rng.randint(0, 2**31 - 1),
        "trace_seed": rng.randint(0, 2**31 - 1),
        "length": length,
        "span_lines": rng.choice((16, 64, 256, 1024)),
    }


def _cachesim_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    if params["length"] > 1:
        yield {**params, "length": params["length"] // 2}
        yield {**params, "length": params["length"] - 1}
    if params["span_lines"] > 2:
        yield {**params, "span_lines": params["span_lines"] // 2}
    if params["core"] > 0:
        yield {**params, "core": 0}
    for machine in simplified_machines(params["machine"]):
        yield {**params, "machine": machine}


register(Oracle(
    name="cachesim.batch",
    suite="cachesim",
    description=(
        "MemoryHierarchy.run_batch produces counters and TraceCost "
        "bit-identical to the scalar run_trace walk on any machine"
    ),
    generate=_cachesim_generate,
    reference=lambda p: _cachesim_run(p, "scalar"),
    fast=lambda p: _cachesim_run(p, "batched"),
    shrink=_cachesim_shrink,
))


# =============================================================================
# timed.compiled — template-compiled timed executor vs the interpreter
# =============================================================================

_COMPILED_VARIANTS = ("OpenBLAS-8x6", "OpenBLAS-8x4", "OpenBLAS-4x4",
                      "OpenBLAS-8x6-noRR", "ATLAS-5x5", "ATLAS-5x5-kvec")
_HW_LATE = (0.0, 0.25, 0.5, 1.0)


def _timed_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    from repro.kernels.variants import get_variant

    variant = rng.choice(_COMPILED_VARIANTS)
    unroll = get_variant(variant).plan.unroll
    bodies = rng.randint(1, 4 if budget == "smoke" else 10)
    return {
        "variant": variant,
        "kc": unroll * bodies,
        "hw_late": rng.choice(_HW_LATE),
        "chip": rng.choice(("xgene", "mobile")),
        "data_seed": rng.randint(0, 2**31 - 1),
        "with_c_tile": rng.random() < 0.5,
    }


def _timed_run(params: Dict[str, Any], engine: str) -> Dict[str, Any]:
    from repro.kernels.variants import VARIANTS, get_variant
    from repro.sim.timed_executor import run_timed_micro_tile

    spec = VARIANTS[params["variant"]]
    kernel = get_variant(params["variant"])
    chip = CHIPS[params["chip"]]
    g = np.random.default_rng(params["data_seed"])
    a = g.standard_normal((params["kc"], spec.mr))
    b = g.standard_normal((params["kc"], spec.nr))
    c0 = (
        g.standard_normal((spec.mr, spec.nr))
        if params.get("with_c_tile")
        else None
    )
    run = run_timed_micro_tile(
        kernel, a, b, c0, chip=chip, hw_late=params["hw_late"],
        engine=engine,
    )
    return {
        "c_tile": _array_doc(run.c_tile),
        "cycles": run.cycles,
        "cycles_per_iteration": run.cycles_per_iteration,
        "efficiency": run.efficiency,
        "pipeline": snapshot_pipeline(run.pipeline),
        "load_latencies": {
            str(lat): cnt
            for lat, cnt in sorted(run.load_latencies.items())
        },
    }


def _timed_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    from repro.kernels.variants import get_variant

    unroll = get_variant(params["variant"]).plan.unroll
    bodies = params["kc"] // unroll
    # Drop kernel segments: fewer unrolled bodies, down to one.
    if bodies > 1:
        yield {**params, "kc": unroll * max(1, bodies // 2)}
        yield {**params, "kc": unroll * (bodies - 1)}
    if params["hw_late"] != 0.0:
        yield {**params, "hw_late": 0.0}
    if params.get("with_c_tile"):
        yield {**params, "with_c_tile": False}
    if params["variant"] != "OpenBLAS-4x4":
        small = get_variant("OpenBLAS-4x4").plan.unroll
        yield {
            **params,
            "variant": "OpenBLAS-4x4",
            "kc": small * max(1, min(bodies, 2)),
        }


register(Oracle(
    name="timed.compiled",
    suite="timed",
    description=(
        "compiled timed-execution templates match the interpreter on "
        "C tile bits, cycles, stall breakdown and latency histogram"
    ),
    generate=_timed_generate,
    reference=lambda p: _timed_run(p, "interpreted"),
    fast=lambda p: _timed_run(p, "compiled"),
    shrink=_timed_shrink,
))


# =============================================================================
# timed.oddtile — the formerly interpreted tail on the compiled engine
# =============================================================================

_ODDTILE_VARIANTS = ("ATLAS-5x5", "ATLAS-5x5-kvec")


def _oddtile_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    from repro.kernels.variants import get_variant

    variant = rng.choice(_ODDTILE_VARIANTS)
    unroll = get_variant(variant).plan.unroll
    bodies = rng.randint(1, 4 if budget == "smoke" else 10)
    return {
        "variant": variant,
        "kc": unroll * bodies,
        "hw_late": rng.choice(_HW_LATE),
        "chip": rng.choice(("xgene", "mobile")),
        "data_seed": rng.randint(0, 2**31 - 1),
        "with_c_tile": rng.random() < 0.5,
    }


def _oddtile_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    from repro.kernels.variants import get_variant

    unroll = get_variant(params["variant"]).plan.unroll
    bodies = params["kc"] // unroll
    if bodies > 1:
        yield {**params, "kc": unroll * max(1, bodies // 2)}
        yield {**params, "kc": unroll * (bodies - 1)}
    if params["hw_late"] != 0.0:
        yield {**params, "hw_late": 0.0}
    if params.get("with_c_tile"):
        yield {**params, "with_c_tile": False}


register(Oracle(
    name="timed.oddtile",
    suite="timed",
    description=(
        "odd-tile (lane-padded) and k-vectorized ATLAS kernels on the "
        "compiled engine match the interpreter bit-exactly"
    ),
    generate=_oddtile_generate,
    reference=lambda p: _timed_run(p, "interpreted"),
    fast=lambda p: _timed_run(p, "compiled"),
    shrink=_oddtile_shrink,
))


# =============================================================================
# cachesim.writethrough — batched store-propagation walk vs the scalar chain
# =============================================================================


def _wt_force(machine: Dict[str, Any], mask: int) -> Dict[str, Any]:
    """Force write-through on the levels selected by ``mask`` bits."""
    out = dict(machine)
    for bit, lvl in enumerate(("l1", "l2", "l3")):
        if out.get(lvl) and mask & (1 << bit):
            out[lvl] = dict(out[lvl], write_policy="write-through")
    return out


def _wt_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    params = _cachesim_generate(rng, budget)
    # At least one write-through level, so every case exercises the
    # batched propagation walk (random_machine alone makes them rare).
    params["machine"] = _wt_force(
        params["machine"], rng.randint(1, 7)
    )
    return params


def _wt_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    for simpler in _cachesim_shrink(params):
        machine = simpler["machine"]
        if any(
            machine.get(lvl, {}) and
            machine[lvl].get("write_policy") == "write-through"
            for lvl in ("l1", "l2", "l3")
        ):
            yield simpler


register(Oracle(
    name="cachesim.writethrough",
    suite="cachesim",
    description=(
        "the batched engine's store-propagation walk on write-through "
        "machines is bit-identical to the scalar propagation chain"
    ),
    generate=_wt_generate,
    reference=lambda p: _cachesim_run(p, "scalar"),
    fast=lambda p: _cachesim_run(p, "batched"),
    shrink=_wt_shrink,
))


# =============================================================================
# sweep.incremental — warm-state-carrying sweeps vs cold-start replays
# =============================================================================

_SWEEP_KERNELS = ("OpenBLAS-8x6", "OpenBLAS-4x4", "ATLAS-5x5")


def _sweep_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    n_points = rng.randint(2, 3 if budget == "smoke" else 5)
    mults = [rng.randint(1, 6) for _ in range(n_points)]
    if rng.random() < 0.7:
        mults.sort()  # ascending sweeps exercise the prefix-delta path
    return {
        "kernel": rng.choice(_SWEEP_KERNELS),
        "kc": rng.choice((16, 32)),
        "mc": rng.choice((16, 32)),
        "nc_mults": mults,
        "chip": rng.choice(("xgene", "mobile")),
        "engine": rng.choice(("batched", "scalar")),
        "seed": rng.randint(0, 2**31 - 1),
        "prefetch": rng.random() < 0.8,
    }


def _sweep_run(params: Dict[str, Any], incremental: bool) -> Dict[str, Any]:
    import dataclasses

    from repro.kernels.variants import VARIANTS
    from repro.sim.gebp_cachesim import clear_warm_memo, simulate_gebp_cache

    spec = VARIANTS[params["kernel"]]
    chip = CHIPS[params["chip"]]
    clear_warm_memo()
    try:
        points = []
        for mult in params["nc_mults"]:
            nc = spec.nr * mult
            blocking = CacheBlocking(
                mr=spec.mr, nr=spec.nr, kc=params["kc"],
                mc=params["mc"], nc=nc, k1=1, k2=1, k3=1,
            )
            result = simulate_gebp_cache(
                spec, blocking, chip=chip, nc_slice=nc,
                prefetch=params["prefetch"], engine=params["engine"],
                seed=params["seed"], incremental=incremental,
            )
            points.append(dataclasses.asdict(result))
        return {"points": points}
    finally:
        clear_warm_memo()


def _sweep_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    if len(params["nc_mults"]) > 2:
        yield {**params, "nc_mults": params["nc_mults"][:2]}
        yield {**params, "nc_mults": params["nc_mults"][1:]}
    if max(params["nc_mults"]) > 1:
        yield {
            **params,
            "nc_mults": [max(1, m // 2) for m in params["nc_mults"]],
        }
    for key in ("kc", "mc"):
        if params[key] > 16:
            yield {**params, key: params[key] // 2}
    if params["prefetch"]:
        yield {**params, "prefetch": False}
    if params["kernel"] != "OpenBLAS-4x4":
        yield {**params, "kernel": "OpenBLAS-4x4"}


register(Oracle(
    name="sweep.incremental",
    suite="cachesim",
    description=(
        "sweeps carrying warm hierarchy snapshots across adjacent points "
        "report counters bit-identical to cold-start replays"
    ),
    generate=_sweep_generate,
    reference=lambda p: _sweep_run(p, incremental=False),
    fast=lambda p: _sweep_run(p, incremental=True),
    shrink=_sweep_shrink,
))


# =============================================================================
# lru.array — timestamp-array LRU representation vs the OrderedDict mode
# =============================================================================


def _lru_accesses(params: Dict[str, Any]) -> List[tuple]:
    rng = random.Random(params["access_seed"])
    kinds = (CODE_LOAD, CODE_LOAD, CODE_STORE, CODE_PREFETCH)
    return [
        (rng.randrange(params["span_lines"]), rng.choice(kinds))
        for _ in range(params["length"])
    ]


def _lru_cache(params: Dict[str, Any]) -> Cache:
    from repro.arch.params import CacheParams, WritePolicy

    line = 64
    return Cache(CacheParams(
        name="fuzzL",
        size_bytes=params["ways"] * params["sets"] * line,
        line_bytes=line,
        ways=params["ways"],
        latency_cycles=1,
        write_policy=(
            WritePolicy.WRITE_BACK if params["write_back"]
            else WritePolicy.WRITE_THROUGH
        ),
    ))


def _lru_doc(cache: Cache, hits: List[bool]) -> Dict[str, Any]:
    return {
        "hits": "".join("1" if h else "0" for h in hits),
        "stats": snapshot_cache_stats(cache.stats),
        "resident_lines": cache.resident_lines(),
        # Full state comparison, recency order included: both LRU
        # representations must agree on *which* lines survive and in
        # what eviction order, not just on the counters.
        "sets": [
            cache.set_contents(s) for s in range(cache.params.num_sets)
        ],
    }


def _lru_reference(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.memory.cache import CODE_TO_KIND

    cache = _lru_cache(params)
    hits = [
        cache.access_line(line, CODE_TO_KIND[kind])
        for line, kind in _lru_accesses(params)
    ]
    return _lru_doc(cache, hits)


def _lru_fast(params: Dict[str, Any]) -> Dict[str, Any]:
    cache = _lru_cache(params)
    accesses = _lru_accesses(params)
    lines = np.array([a[0] for a in accesses], dtype=np.int64)
    kinds = np.array([a[1] for a in accesses], dtype=np.int8)
    # Split into chunks so the OrderedDict -> array migration happens
    # mid-stream (chunk boundaries come from the case, deterministically).
    rng = random.Random(params["access_seed"] ^ 0x5BD1E995)
    hits: List[bool] = []
    start = 0
    while start < len(accesses):
        stop = min(len(accesses), start + rng.randint(1, params["length"]))
        hits.extend(
            bool(h)
            for h in cache.access_lines_batched(
                lines[start:stop], kinds[start:stop]
            )
        )
        start = stop
    return _lru_doc(cache, hits)


def _lru_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    return {
        "ways": rng.choice((1, 2, 4, 8)),
        "sets": rng.choice((1, 2, 4, 16)),
        "write_back": rng.random() < 0.8,
        "span_lines": rng.choice((4, 16, 64, 256)),
        "length": rng.randint(20, 200 if budget == "smoke" else 2000),
        "access_seed": rng.randint(0, 2**31 - 1),
    }


def _lru_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    if params["length"] > 1:
        yield {**params, "length": params["length"] // 2}
        yield {**params, "length": params["length"] - 1}
    if params["span_lines"] > 2:
        yield {**params, "span_lines": params["span_lines"] // 2}
    if params["sets"] > 1:
        yield {**params, "sets": params["sets"] // 2}
    if params["ways"] > 1:
        yield {**params, "ways": params["ways"] // 2}
    if params["write_back"]:
        yield {**params, "write_back": False}


register(Oracle(
    name="lru.array",
    suite="lru",
    description=(
        "timestamp-array LRU (batched mode) matches the OrderedDict "
        "list mode on hits, counters and full per-set recency state"
    ),
    generate=_lru_generate,
    reference=_lru_reference,
    fast=_lru_fast,
    shrink=_lru_shrink,
))


# =============================================================================
# serve.cache — answers served from the result store vs fresh computes
# =============================================================================

_SERVE_KERNELS = ("OpenBLAS-8x6", "OpenBLAS-4x4")


def _serve_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    from repro.kernels.variants import get_variant

    kind = rng.choice(("simulate", "cachesim", "timed"))
    kernel = rng.choice(_SERVE_KERNELS)
    machine = rng.choice(("xgene", "mobile"))
    query: Dict[str, Any] = {
        "kind": kind, "kernel": kernel, "machine": machine,
    }
    hi = 48 if budget == "smoke" else 128
    if kind == "simulate":
        query.update({
            "m": rng.randint(8, hi),
            "n": rng.randint(8, hi),
            "k": rng.randint(8, hi),
            "threads": rng.randint(1, 2),
            "parallel_axis": rng.choice(("m", "n")),
        })
    elif kind == "cachesim":
        query.update({
            "threads": 1,
            "nc_slice": rng.choice((6, 12)),
            "seed": rng.randint(0, 2**31 - 1),
            "engine": rng.choice(("auto", "scalar")),
        })
    else:
        unroll = get_variant(kernel).plan.unroll
        query.update({
            "kc": unroll * rng.randint(1, 2 if budget == "smoke" else 4),
            "hw_late": rng.choice((0.0, 0.25, 0.5)),
            "seed": rng.randint(0, 2**31 - 1),
            "engine": "auto",
        })
    return {"query": query}


def _serve_reference(params: Dict[str, Any]) -> Dict[str, Any]:
    """Fresh compute: the answer the engines give with no cache at all."""
    from repro.serve.engine import compute_answer
    from repro.serve.query import query_key

    canonical, key = query_key(params["query"])
    return compute_answer(canonical, key)


def _serve_fast(params: Dict[str, Any]) -> Dict[str, Any]:
    """Cached serve: compute once into a store, then answer from disk.

    A fresh engine object does the second pass so the hit can only come
    from the persisted entry, never from in-process state.
    """
    import shutil
    import tempfile

    from repro.serve.engine import QueryEngine
    from repro.verify.oracle import VerifyError

    tmp = tempfile.mkdtemp(prefix="serve-oracle-")
    try:
        first = QueryEngine(tmp).query(params["query"])
        if first.source != "computed":
            raise VerifyError(
                f"expected a cold cache miss, got {first.source!r}"
            )
        served = QueryEngine(tmp).query(params["query"])
        if served.source != "hit":
            raise VerifyError(
                f"expected a warm cache hit, got {served.source!r}"
            )
        return served.answer
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _serve_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    query = params["query"]
    for dim in ("m", "n", "k"):
        if query.get(dim, 0) > 8:
            yield {"query": {**query, dim: max(8, query[dim] // 2)}}
    if query.get("nc_slice", 0) > 6:
        yield {"query": {**query, "nc_slice": 6}}
    if query.get("kc", 0) and query["kc"] > 4:
        yield {"query": {**query, "kc": query["kc"] // 2}}
    if query.get("threads", 1) > 1:
        yield {"query": {**query, "threads": 1}}
    if query.get("seed", 0) > 0:
        yield {"query": {**query, "seed": 0}}


register(Oracle(
    name="serve.cache",
    suite="serve",
    description=(
        "answers served from the sharded result store are bit-identical "
        "to freshly computed ones for every query kind"
    ),
    generate=_serve_generate,
    reference=_serve_reference,
    fast=_serve_fast,
    shrink=_serve_shrink,
))


# =============================================================================
# tune.memo — memoized tuning replays vs cold evaluation
# =============================================================================


def _tune_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    max_tiles = rng.randint(1, 2 if budget == "smoke" else 3)
    return {
        "machine": rng.choice(("xgene", "mobile")),
        "max_tiles": max_tiles,
        "top_k": rng.randint(1, 3),
        "radius": rng.randint(0, 1),
        "bodies": rng.randint(1, 2),
        "problem_size": 256 if budget == "smoke" else rng.choice((256, 512)),
        "seed": rng.randint(0, 2**31 - 1),
    }


def _tune_result(params: Dict[str, Any], store: Any) -> Dict[str, Any]:
    from repro.tune import tune_search

    result = tune_search(
        machine=params["machine"],
        max_tiles=params["max_tiles"],
        top_k=params["top_k"],
        radius=params["radius"],
        bodies=params["bodies"],
        problem_size=params["problem_size"],
        seed=params["seed"],
        store=store,
    )
    # The memo section counts hits/misses, which legitimately differ
    # between a cold and a replayed run; everything else must not.
    result.pop("memo")
    return result


def _tune_reference(params: Dict[str, Any]) -> Dict[str, Any]:
    """Cold evaluation: no store, every candidate scored from scratch."""
    return _tune_result(params, store=None)


def _tune_fast(params: Dict[str, Any]) -> Dict[str, Any]:
    """Memoized replay: search once into a store, then search again.

    The second pass must answer every evaluation from the persisted
    entries and reproduce the cold result document bit-identically.
    """
    import shutil
    import tempfile

    from repro.serve.store import ResultStore
    from repro.tune import tune_search
    from repro.verify.oracle import VerifyError

    tmp = tempfile.mkdtemp(prefix="tune-oracle-")
    try:
        store = ResultStore(tmp)
        kwargs = dict(
            machine=params["machine"],
            max_tiles=params["max_tiles"],
            top_k=params["top_k"],
            radius=params["radius"],
            bodies=params["bodies"],
            problem_size=params["problem_size"],
            seed=params["seed"],
            store=store,
        )
        cold = tune_search(**kwargs)
        for stage in ("analytic", "timed"):
            if cold["memo"][stage]["hits"]:
                raise VerifyError(
                    f"cold pass had {stage} memo hits "
                    f"{cold['memo'][stage]}"
                )
        warm = tune_search(**kwargs)
        for stage in ("analytic", "timed"):
            if warm["memo"][stage]["misses"]:
                raise VerifyError(
                    f"warm pass recomputed {stage} evaluations "
                    f"{warm['memo'][stage]}"
                )
        warm.pop("memo")
        return warm
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _tune_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    if params["max_tiles"] > 1:
        yield {**params, "max_tiles": params["max_tiles"] - 1}
    if params["top_k"] > 1:
        yield {**params, "top_k": 1}
    if params["radius"] > 0:
        yield {**params, "radius": 0}
    if params["bodies"] > 1:
        yield {**params, "bodies": 1}
    if params["problem_size"] > 256:
        yield {**params, "problem_size": 256}
    if params["seed"] > 0:
        yield {**params, "seed": 0}


register(Oracle(
    name="tune.memo",
    suite="tune",
    description=(
        "memoized-replayed tuning results are bit-identical to "
        "cold-evaluated ones (winner, ranking and scores)"
    ),
    generate=_tune_generate,
    reference=_tune_reference,
    fast=_tune_fast,
    shrink=_tune_shrink,
))


# =============================================================================
# asym.partition — weighted class-aware partitioning vs the serial reference
# =============================================================================


def _asym_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    from repro.verify.machines import random_asym_machine

    hi = 24 if budget == "smoke" else 48
    machine = random_asym_machine(rng, budget)
    cores = sum(c["cores"] for c in machine["clusters"])
    mr, nr = rng.choice(_TILES)
    return {
        "machine": machine,
        "m": rng.randint(1, hi),
        "n": rng.randint(1, hi),
        "k": rng.randint(1, hi),
        "threads": rng.randint(2, max(2, min(4, cores))),
        "alpha": rng.choice(_SCALARS),
        "beta": rng.choice(_SCALARS),
        "blocking": {
            "mr": mr,
            "nr": nr,
            "kc": rng.choice((4, 8, 16)),
            "mc": rng.choice((8, 16, 24)),
            "nc": rng.choice((12, 16, 32)),
        },
        "data_seed": rng.randint(0, 2**31 - 1),
    }


def _asym_run(params: Dict[str, Any], weighted: bool) -> Dict[str, Any]:
    from repro.gemm.parallel import parallel_dgemm
    from repro.gemm.trace import GemmTrace
    from repro.gemm.workspace import GemmWorkspace

    chip = build_chip(params["machine"])
    g = np.random.default_rng(params["data_seed"])
    m, n, k = params["m"], params["n"], params["k"]
    a = np.asfortranarray(g.standard_normal((m, k)))
    b = np.asfortranarray(g.standard_normal((k, n)))
    c = np.asfortranarray(g.standard_normal((m, n)))
    blk = params["blocking"]
    blocking = CacheBlocking(
        mr=blk["mr"], nr=blk["nr"], kc=blk["kc"], mc=blk["mc"],
        nc=blk["nc"], k1=1, k2=1, k3=1,
    )
    threads = min(params["threads"], chip.cores) if weighted else 1
    trace = GemmTrace()
    out = parallel_dgemm(
        a, b, c.copy(order="F"), threads=threads,
        alpha=params["alpha"], beta=params["beta"],
        blocking=blocking, chip=chip, trace=trace,
        partition="weighted" if weighted else "symmetric",
        workspace=GemmWorkspace(),
    )
    # Thread ids differ between the serial and weighted runs by design;
    # identity is the C bits plus the (order-free) multiset of work the
    # engine performed.
    return {
        "c": _array_doc(out),
        "flops": trace.flops,
        "gebps": sorted(
            [e.mc, e.kc, e.nc, e.beta_pass] for e in trace.gebps
        ),
        "packs": sorted(
            [e.operand, e.rows, e.cols] for e in trace.packs
        ),
    }


def _asym_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    from repro.verify.machines import simplified_asym_machines

    for dim in ("m", "n", "k"):
        if params[dim] > 1:
            yield {**params, dim: max(1, params[dim] // 2)}
            yield {**params, dim: params[dim] - 1}
    if params["threads"] > 2:
        yield {**params, "threads": 2}
    for scalar in ("alpha", "beta"):
        if params[scalar] != 1.0:
            yield {**params, scalar: 1.0}
    blk = params["blocking"]
    for key in ("kc", "mc", "nc"):
        if blk[key] > 4:
            yield {**params, "blocking": {**blk, key: blk[key] // 2}}
    for machine in simplified_asym_machines(params["machine"]):
        yield {**params, "machine": machine}


register(Oracle(
    name="asym.partition",
    suite="asym",
    description=(
        "weighted class-aware partitioning on asymmetric chips is "
        "bit-identical to the serial reference (C values, work multiset)"
    ),
    generate=_asym_generate,
    reference=lambda p: _asym_run(p, weighted=False),
    fast=lambda p: _asym_run(p, weighted=True),
    shrink=_asym_shrink,
))


# =============================================================================
# stencil.blocked — cache-blocked stencil vs the unblocked reference
# =============================================================================


def _stencil_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    hi = 12 if budget == "smoke" else 24
    machine = random_machine(rng, budget)
    radius = rng.choice((1, 1, 2))
    lo = 2 * radius + 2
    return {
        "machine": machine,
        "core": rng.randrange(machine["cores"]),
        "hier_seed": rng.randint(0, 2**31 - 1),
        "height": rng.randint(lo, max(lo, hi)),
        "width": rng.randint(lo, max(lo, hi)),
        "radius": radius,
        "alpha": rng.choice((0.25, 0.1, 0.125)),
        "iterations": rng.randint(1, 3),
        # Deliberately free-running tile sizes: remainder tiles (blocks
        # that do not divide the interior) are the interesting cases.
        "bi": rng.randint(1, 8),
        "bj": rng.randint(1, 8),
        "data_seed": rng.randint(0, 2**31 - 1),
    }


def _stencil_run(params: Dict[str, Any], blocked: bool) -> Dict[str, Any]:
    from repro.workloads.base import simulate_workload_cache
    from repro.workloads.stencil import (
        StencilSpec,
        StencilWorkload,
        stencil_blocked,
        stencil_reference,
    )

    chip = build_chip(params["machine"])
    spec = StencilSpec(
        radius=params["radius"],
        alpha=params["alpha"],
        iterations=params["iterations"],
    )
    workload = StencilWorkload(
        params["height"], params["width"], spec=spec,
        block=(params["bi"], params["bj"]), seed=params["data_seed"],
    )
    grid = workload.make_grid()
    if blocked:
        out = stencil_blocked(grid, spec, (params["bi"], params["bj"]))
        engine = "batched"
    else:
        out = stencil_reference(grid, spec)
        engine = "scalar"
    # Both sides walk the *blocked* access stream; only the cache engine
    # differs, so the counters must agree bit-for-bit too.
    walk = simulate_workload_cache(
        workload, chip, core=params["core"] % chip.cores,
        engine=engine, seed=params["hier_seed"],
    )
    return {
        "output": _array_doc(out),
        "flops": workload.flops,
        "walk": {
            "l1_loads": walk.l1_loads,
            "l1_load_misses": walk.l1_load_misses,
            "l1_load_miss_rate": walk.l1_load_miss_rate,
            "l2_loads": walk.l2_loads,
            "l2_load_misses": walk.l2_load_misses,
            "dram_accesses": walk.dram_accesses,
            "trace_records": walk.trace_records,
        },
    }


def _stencil_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    lo = 2 * params["radius"] + 1
    for dim in ("height", "width"):
        if params[dim] > lo:
            yield {**params, dim: max(lo, params[dim] // 2)}
            yield {**params, dim: params[dim] - 1}
    if params["radius"] > 1:
        yield {**params, "radius": 1}
    if params["iterations"] > 1:
        yield {**params, "iterations": 1}
    for blk in ("bi", "bj"):
        if params[blk] > 1:
            yield {**params, blk: params[blk] // 2}
    if params["core"] > 0:
        yield {**params, "core": 0}
    for machine in simplified_machines(params["machine"]):
        yield {**params, "machine": machine}


register(Oracle(
    name="stencil.blocked",
    suite="workloads",
    description=(
        "cache-blocked stencil sweeps (remainder tiles included) are "
        "bit-identical to the unblocked reference, and the batched walk "
        "of the blocked stream matches the scalar walk"
    ),
    generate=_stencil_generate,
    reference=lambda p: _stencil_run(p, blocked=False),
    fast=lambda p: _stencil_run(p, blocked=True),
    shrink=_stencil_shrink,
))


# =============================================================================
# conv.im2col — im2col + DGEMM lowering vs the directly-blocked gather nest
# =============================================================================


def _conv_generate(rng: random.Random, budget: str) -> Dict[str, Any]:
    hi = 4 if budget == "smoke" else 8
    machine = random_machine(rng, budget)
    kh, kw = rng.randint(1, 3), rng.randint(1, 3)
    mr, nr = rng.choice(_TILES)
    return {
        "machine": machine,
        "core": rng.randrange(machine["cores"]),
        "hier_seed": rng.randint(0, 2**31 - 1),
        "cin": rng.randint(1, 3),
        "height": kh + rng.randint(0, hi),
        "width": kw + rng.randint(0, hi),
        "kh": kh,
        "kw": kw,
        "filters": rng.randint(1, 8),
        "blocking": {
            "mr": mr,
            "nr": nr,
            "kc": rng.choice((2, 4, 8)),
            "mc": rng.choice((4, 8, 16)),
            "nc": rng.choice((6, 12, 16)),
        },
        "data_seed": rng.randint(0, 2**31 - 1),
    }


def _conv_run(params: Dict[str, Any], direct: bool) -> Dict[str, Any]:
    from repro.workloads.base import simulate_workload_cache
    from repro.workloads.conv import (
        ConvSpec,
        ConvWorkload,
        conv_direct,
        conv_im2col,
    )

    chip = build_chip(params["machine"])
    spec = ConvSpec(
        cin=params["cin"], height=params["height"], width=params["width"],
        kh=params["kh"], kw=params["kw"], filters=params["filters"],
    )
    blk = params["blocking"]
    blocking = CacheBlocking(
        mr=blk["mr"], nr=blk["nr"], kc=blk["kc"], mc=blk["mc"],
        nc=blk["nc"], k1=1, k2=1, k3=1,
    )
    workload = ConvWorkload(
        spec, "direct", blocking, seed=params["data_seed"]
    )
    x, w = workload.make_operands()
    fn = conv_direct if direct else conv_im2col
    out = fn(x, w, blocking=blocking)
    # Both sides walk the *direct* lowering's access stream (the im2col
    # stream legitimately differs — it materializes the patches matrix);
    # only the cache engine changes between them.
    walk = simulate_workload_cache(
        workload, chip, core=params["core"] % chip.cores,
        engine="scalar" if direct else "batched",
        seed=params["hier_seed"],
    )
    return {
        "out": _array_doc(out),
        "flops": workload.flops,
        "walk": {
            "l1_loads": walk.l1_loads,
            "l1_load_misses": walk.l1_load_misses,
            "l1_load_miss_rate": walk.l1_load_miss_rate,
            "l2_loads": walk.l2_loads,
            "l2_load_misses": walk.l2_load_misses,
            "dram_accesses": walk.dram_accesses,
            "trace_records": walk.trace_records,
        },
    }


def _conv_shrink(params: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    for dim, floor in (("height", params["kh"]), ("width", params["kw"]),
                       ("cin", 1), ("filters", 1)):
        if params[dim] > floor:
            yield {**params, dim: max(floor, params[dim] // 2)}
            yield {**params, dim: params[dim] - 1}
    for dim in ("kh", "kw"):
        if params[dim] > 1:
            yield {**params, dim: params[dim] - 1}
    blk = params["blocking"]
    for key in ("kc", "mc", "nc"):
        if blk[key] > 2:
            yield {**params, "blocking": {**blk, key: blk[key] // 2}}
    if params["core"] > 0:
        yield {**params, "core": 0}
    for machine in simplified_machines(params["machine"]):
        yield {**params, "machine": machine}


register(Oracle(
    name="conv.im2col",
    suite="workloads",
    description=(
        "convolution lowered through im2col + blocked DGEMM is "
        "bit-identical to the directly-blocked gather nest, and the "
        "batched walk of the direct stream matches the scalar walk"
    ),
    generate=_conv_generate,
    reference=lambda p: _conv_run(p, direct=True),
    fast=lambda p: _conv_run(p, direct=False),
    shrink=_conv_shrink,
))
