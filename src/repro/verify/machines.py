"""Seeded generation of random-but-valid machines for differential fuzzing.

A *machine document* is a small JSON-able dict describing a
:class:`~repro.arch.params.ChipParams` perturbation — cache geometry,
replacement and write policies, topology, TLB presence. The fuzzer draws
documents from a seeded :class:`random.Random`; :func:`build_chip` turns a
document back into a validated ``ChipParams``. Keeping the document (not
the object) in the fuzz case makes every case JSON-serializable, so a
failing machine can be committed verbatim as a replay file.

Geometry is always generated valid by construction: sizes are computed as
``sets * ways * line`` (the :class:`~repro.arch.params.CacheParams`
divisibility invariant) and sharing factors follow the topology.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.arch.params import (
    CacheParams,
    ChipParams,
    CoreParams,
    DramParams,
    ReplacementPolicy,
    TlbParams,
    WritePolicy,
)

__all__ = ["build_chip", "random_machine", "simplified_machines",
           "with_replacement"]

_POLICIES = ("lru", "random", "plru")


def random_machine(rng: random.Random, budget: str = "default") -> Dict[str, Any]:
    """Draw one machine document from ``rng``.

    ``budget`` bounds the topology: ``"smoke"`` keeps chips small so a
    whole fuzz sweep stays interactive; larger budgets allow more cores
    and bigger caches.
    """
    small = budget == "smoke"
    per_module = rng.choice((1, 2))
    modules = rng.choice((1, 2) if small else (1, 2, 4))
    line = rng.choice((32, 64))

    def level(name: str, sets_choices, ways_choices, latency, shared_by):
        return {
            "name": name,
            "sets": rng.choice(sets_choices),
            "ways": rng.choice(ways_choices),
            "line": line,
            "latency": latency,
            "replacement": rng.choice(_POLICIES),
            # Write-through is rare on the modeled chips; it exercises the
            # batched engine's store-propagation walk, which we want
            # covered without dominating the sweep.
            "write_policy": (
                "write-through" if rng.random() < 0.1 else "write-back"
            ),
            "shared_by": shared_by,
        }

    cores = per_module * modules
    doc: Dict[str, Any] = {
        "cores": cores,
        "cores_per_module": per_module,
        "line": line,
        "l1": level("L1D", (2, 4, 8), (2, 4), 4, 1),
        "l2": level("L2", (8, 16), (4, 8), 12, per_module),
        "l3": (
            level("L3", (16, 32), (8, 16), 40, cores)
            if rng.random() < 0.7
            else None
        ),
        "with_tlb": rng.random() < 0.4,
        "dram_latency": rng.choice((120, 180)),
    }
    return doc


def _cache_params(doc: Dict[str, Any]) -> CacheParams:
    return CacheParams(
        name=doc["name"],
        size_bytes=doc["sets"] * doc["ways"] * doc["line"],
        line_bytes=doc["line"],
        ways=doc["ways"],
        latency_cycles=doc["latency"],
        replacement=ReplacementPolicy(doc.get("replacement", "lru")),
        write_policy=WritePolicy(doc.get("write_policy", "write-back")),
        shared_by=doc.get("shared_by", 1),
    )


def build_chip(doc: Dict[str, Any]) -> ChipParams:
    """Materialize a machine document into a validated ``ChipParams``."""
    return ChipParams(
        name="fuzz-machine",
        cores=doc["cores"],
        cores_per_module=doc["cores_per_module"],
        core=CoreParams(),
        l1d=_cache_params(doc["l1"]),
        l2=_cache_params(doc["l2"]),
        l3=_cache_params(doc["l3"]) if doc.get("l3") else None,
        dram=DramParams(latency_cycles=doc.get("dram_latency", 180)),
        tlb=TlbParams() if doc.get("with_tlb") else None,
    )


def simplified_machines(doc: Dict[str, Any]):
    """Yield strictly simpler variants of a machine document (shrinking).

    Each candidate removes one source of complexity: the L3, the TLB,
    extra modules, write-through levels, non-LRU replacement, set count.
    """
    if doc.get("l3") is not None:
        out = dict(doc)
        out["l3"] = None
        yield out
    if doc.get("with_tlb"):
        out = dict(doc)
        out["with_tlb"] = False
        yield out
    if doc["cores"] > doc["cores_per_module"]:
        out = dict(doc)
        out["cores"] = doc["cores_per_module"]
        yield out
    if doc["cores_per_module"] > 1:
        out = dict(doc)
        out["cores_per_module"] = 1
        out["cores"] = doc["cores"] // doc["cores_per_module"]
        for lvl in ("l2",):
            out[lvl] = dict(out[lvl], shared_by=1)
        if out.get("l3"):
            out["l3"] = dict(out["l3"], shared_by=out["cores"])
        yield out
    for lvl in ("l1", "l2", "l3"):
        level = doc.get(lvl)
        if not level:
            continue
        if level.get("write_policy") == "write-through":
            out = dict(doc)
            out[lvl] = dict(level, write_policy="write-back")
            yield out
        if level.get("replacement", "lru") != "lru":
            out = dict(doc)
            out[lvl] = dict(level, replacement="lru")
            yield out
        if level["sets"] > 1:
            out = dict(doc)
            out[lvl] = dict(level, sets=level["sets"] // 2)
            yield out
        if level["ways"] > 1:
            out = dict(doc)
            out[lvl] = dict(level, ways=level["ways"] // 2)
            yield out


def _replace_cache(cache: CacheParams, policy: ReplacementPolicy) -> CacheParams:
    return CacheParams(
        name=cache.name,
        size_bytes=cache.size_bytes,
        line_bytes=cache.line_bytes,
        ways=cache.ways,
        latency_cycles=cache.latency_cycles,
        replacement=policy,
        write_policy=cache.write_policy,
        shared_by=cache.shared_by,
    )


def with_replacement(
    chip: ChipParams, policy: ReplacementPolicy,
    l3: Optional[ReplacementPolicy] = None,
) -> ChipParams:
    """A copy of ``chip`` with every cache level using ``policy``.

    ``l3`` overrides the policy for the L3 alone (e.g. keep the big
    outer level LRU while stressing RANDOM victim selection inside).
    """
    return ChipParams(
        name=f"{chip.name}-{policy.value}",
        cores=chip.cores,
        cores_per_module=chip.cores_per_module,
        core=chip.core,
        l1d=_replace_cache(chip.l1d, policy),
        l2=_replace_cache(chip.l2, policy),
        l3=(
            None if chip.l3 is None
            else _replace_cache(chip.l3, l3 if l3 is not None else policy)
        ),
        dram=chip.dram,
        tlb=chip.tlb,
    )
