"""Seeded generation of random-but-valid machines for differential fuzzing.

A *machine document* is a small JSON-able dict describing a
:class:`~repro.arch.params.ChipParams` perturbation — cache geometry,
replacement and write policies, topology, TLB presence. The fuzzer draws
documents from a seeded :class:`random.Random`; :func:`build_chip` turns a
document back into a validated ``ChipParams``. Keeping the document (not
the object) in the fuzz case makes every case JSON-serializable, so a
failing machine can be committed verbatim as a replay file.

Geometry is always generated valid by construction: sizes are computed as
``sets * ways * line`` (the :class:`~repro.arch.params.CacheParams`
divisibility invariant) and sharing factors follow the topology.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.arch.params import (
    CacheParams,
    ChipParams,
    CoreClusterParams,
    CoreParams,
    DramParams,
    ReplacementPolicy,
    TlbParams,
    WritePolicy,
)

__all__ = ["build_chip", "chip_doc", "random_asym_machine",
           "random_machine", "simplified_asym_machines",
           "simplified_machines", "with_replacement"]

_POLICIES = ("lru", "random", "plru")


def random_machine(rng: random.Random, budget: str = "default") -> Dict[str, Any]:
    """Draw one machine document from ``rng``.

    ``budget`` bounds the topology: ``"smoke"`` keeps chips small so a
    whole fuzz sweep stays interactive; larger budgets allow more cores
    and bigger caches.
    """
    small = budget == "smoke"
    per_module = rng.choice((1, 2))
    modules = rng.choice((1, 2) if small else (1, 2, 4))
    line = rng.choice((32, 64))

    def level(name: str, sets_choices, ways_choices, latency, shared_by):
        return {
            "name": name,
            "sets": rng.choice(sets_choices),
            "ways": rng.choice(ways_choices),
            "line": line,
            "latency": latency,
            "replacement": rng.choice(_POLICIES),
            # Write-through is rare on the modeled chips; it exercises the
            # batched engine's store-propagation walk, which we want
            # covered without dominating the sweep.
            "write_policy": (
                "write-through" if rng.random() < 0.1 else "write-back"
            ),
            "shared_by": shared_by,
        }

    cores = per_module * modules
    doc: Dict[str, Any] = {
        "cores": cores,
        "cores_per_module": per_module,
        "line": line,
        "l1": level("L1D", (2, 4, 8), (2, 4), 4, 1),
        "l2": level("L2", (8, 16), (4, 8), 12, per_module),
        "l3": (
            level("L3", (16, 32), (8, 16), 40, cores)
            if rng.random() < 0.7
            else None
        ),
        "with_tlb": rng.random() < 0.4,
        "dram_latency": rng.choice((120, 180)),
    }
    return doc


def _cache_params(doc: Dict[str, Any]) -> CacheParams:
    kwargs: Dict[str, Any] = {}
    if "miss_energy_pj" in doc:
        kwargs["miss_energy_pj"] = doc["miss_energy_pj"]
    return CacheParams(
        name=doc["name"],
        size_bytes=doc["sets"] * doc["ways"] * doc["line"],
        line_bytes=doc["line"],
        ways=doc["ways"],
        latency_cycles=doc["latency"],
        replacement=ReplacementPolicy(doc.get("replacement", "lru")),
        write_policy=WritePolicy(doc.get("write_policy", "write-back")),
        shared_by=doc.get("shared_by", 1),
        **kwargs,
    )


#: CoreParams fields a machine document's ``core`` sub-document may set.
_CORE_KEYS = (
    "issue_width", "fma_pipes", "load_ports", "fma_latency",
    "fma_throughput_cycles", "load_latency", "fp_registers",
    "fp_register_bytes", "rename_registers", "frequency_hz",
    "flops_per_fma", "fma_energy_pj", "load_energy_pj", "idle_energy_pj",
)


def _core_params(doc: Optional[Dict[str, Any]]) -> CoreParams:
    if not doc:
        return CoreParams()
    return CoreParams(**{k: doc[k] for k in _CORE_KEYS if k in doc})


def _cluster_params(doc: Dict[str, Any]) -> CoreClusterParams:
    return CoreClusterParams(
        name=doc["name"],
        cores=doc["cores"],
        cores_per_module=doc["cores_per_module"],
        core=_core_params(doc.get("core")),
        l1d=_cache_params(doc["l1"]),
        l2=_cache_params(doc["l2"]),
    )


def build_chip(doc: Dict[str, Any]) -> ChipParams:
    """Materialize a machine document into a validated ``ChipParams``.

    The historical flat form (``cores``/``cores_per_module``/``l1``/
    ``l2``) is unchanged. A document may additionally carry a ``core``
    sub-document overriding :class:`CoreParams` fields, and a
    ``clusters`` list of per-class sub-documents (each with its own
    ``core``/``l1``/``l2``) describing an asymmetric chip; with clusters
    present the flat fields are derived from the first cluster and the
    top-level ``cores``/``l1``/``l2`` keys may be omitted.
    """
    name = doc.get("name", "fuzz-machine")
    dram = DramParams(latency_cycles=doc.get("dram_latency", 180))
    tlb = TlbParams() if doc.get("with_tlb") else None
    l3 = _cache_params(doc["l3"]) if doc.get("l3") else None
    if doc.get("clusters"):
        clusters = tuple(_cluster_params(c) for c in doc["clusters"])
        lead = clusters[0]
        return ChipParams(
            name=name,
            cores=sum(c.cores for c in clusters),
            cores_per_module=lead.cores_per_module,
            core=lead.core,
            l1d=lead.l1d,
            l2=lead.l2,
            l3=l3,
            dram=dram,
            tlb=tlb,
            clusters=clusters,
        )
    return ChipParams(
        name=name,
        cores=doc["cores"],
        cores_per_module=doc["cores_per_module"],
        core=_core_params(doc.get("core")),
        l1d=_cache_params(doc["l1"]),
        l2=_cache_params(doc["l2"]),
        l3=l3,
        dram=dram,
        tlb=tlb,
    )


def _cache_doc(cache: CacheParams) -> Dict[str, Any]:
    return {
        "name": cache.name,
        "sets": cache.num_sets,
        "ways": cache.ways,
        "line": cache.line_bytes,
        "latency": cache.latency_cycles,
        "replacement": cache.replacement.value,
        "write_policy": cache.write_policy.value,
        "shared_by": cache.shared_by,
        "miss_energy_pj": cache.miss_energy_pj,
    }


def _core_doc(core: CoreParams) -> Dict[str, Any]:
    return {k: getattr(core, k) for k in _CORE_KEYS}


def chip_doc(chip: ChipParams) -> Dict[str, Any]:
    """Serialize a ``ChipParams`` into a machine document.

    Inverse of :func:`build_chip` up to DRAM bandwidth and TLB geometry
    (documents carry only their presence knobs): ``build_chip(chip_doc(
    chip))`` reproduces every cache, core and cluster parameter.
    """
    doc: Dict[str, Any] = {
        "name": chip.name,
        "cores": chip.cores,
        "cores_per_module": chip.cores_per_module,
        "line": chip.l1d.line_bytes,
        "core": _core_doc(chip.core),
        "l1": _cache_doc(chip.l1d),
        "l2": _cache_doc(chip.l2),
        "l3": _cache_doc(chip.l3) if chip.l3 is not None else None,
        "with_tlb": chip.tlb is not None,
        "dram_latency": chip.dram.latency_cycles,
    }
    if chip.clusters:
        doc["clusters"] = [
            {
                "name": c.name,
                "cores": c.cores,
                "cores_per_module": c.cores_per_module,
                "core": _core_doc(c.core),
                "l1": _cache_doc(c.l1d),
                "l2": _cache_doc(c.l2),
            }
            for c in chip.clusters
        ]
    return doc


def random_asym_machine(
    rng: random.Random, budget: str = "default"
) -> Dict[str, Any]:
    """Draw one asymmetric (two-cluster) machine document from ``rng``.

    A separate generator so the draw sequence of :func:`random_machine`
    — and therefore every committed symmetric fuzz case — is untouched.
    The big cluster runs faster and pays more energy per event; the
    LITTLE cluster is the reverse; both always exist, so any chip from
    here has at least two cores and a meaningful weighted partition.
    """
    small = budget == "smoke"
    line = rng.choice((32, 64))

    def level(name, sets_choices, ways_choices, latency, shared_by):
        return {
            "name": name,
            "sets": rng.choice(sets_choices),
            "ways": rng.choice(ways_choices),
            "line": line,
            "latency": latency,
            "replacement": rng.choice(_POLICIES),
            "write_policy": (
                "write-through" if rng.random() < 0.1 else "write-back"
            ),
            "shared_by": shared_by,
        }

    def cluster(name: str, fast: bool) -> Dict[str, Any]:
        per_module = rng.choice((1, 2))
        modules = 1 if small else rng.choice((1, 2))
        return {
            "name": name,
            "cores": per_module * modules,
            "cores_per_module": per_module,
            "core": {
                "issue_width": 4 if fast else 2,
                "frequency_hz": (
                    rng.choice((2.0e9, 2.4e9)) if fast
                    else rng.choice((1.2e9, 1.4e9))
                ),
                "fma_energy_pj": 45.0 if fast else 15.0,
                "load_energy_pj": 25.0 if fast else 8.0,
                "idle_energy_pj": 150.0 if fast else 40.0,
            },
            "l1": level("L1D", (2, 4, 8), (2, 4), 4 if fast else 3, 1),
            "l2": level("L2", (8, 16), (4, 8), 12, per_module),
        }

    big = cluster("big", True)
    little = cluster("LITTLE", False)
    total = big["cores"] + little["cores"]
    return {
        "line": line,
        "clusters": [big, little],
        "l3": (
            level("L3", (16, 32), (8, 16), 40, total)
            if rng.random() < 0.7
            else None
        ),
        "with_tlb": rng.random() < 0.3,
        "dram_latency": rng.choice((120, 180)),
    }


def simplified_asym_machines(doc: Dict[str, Any]):
    """Yield strictly simpler variants of an asymmetric machine document.

    The cluster-aware counterpart of :func:`simplified_machines`: drops
    the L3 and TLB, shrinks each cluster's core count and module
    structure (keeping the shared L3's ``shared_by`` consistent with the
    new total), and halves cluster cache geometry.
    """
    def with_clusters(clusters):
        out = dict(doc, clusters=clusters)
        if out.get("l3"):
            total = sum(c["cores"] for c in clusters)
            out["l3"] = dict(out["l3"], shared_by=total)
        return out

    if doc.get("l3") is not None:
        yield dict(doc, l3=None)
    if doc.get("with_tlb"):
        yield dict(doc, with_tlb=False)
    clusters = doc["clusters"]
    for i, cl in enumerate(clusters):
        others = list(clusters)
        if cl["cores"] > cl["cores_per_module"]:
            others[i] = dict(cl, cores=cl["cores_per_module"])
            yield with_clusters(others)
            continue
        if cl["cores_per_module"] > 1:
            others[i] = dict(
                cl,
                cores_per_module=1,
                cores=cl["cores"] // cl["cores_per_module"],
                l2=dict(cl["l2"], shared_by=1),
            )
            yield with_clusters(others)
        for lvl in ("l1", "l2"):
            level = cl[lvl]
            if level["sets"] > 1:
                others = list(clusters)
                others[i] = dict(cl, **{lvl: dict(level, sets=level["sets"] // 2)})
                yield with_clusters(others)
            if level["ways"] > 1:
                others = list(clusters)
                others[i] = dict(cl, **{lvl: dict(level, ways=level["ways"] // 2)})
                yield with_clusters(others)
            if level.get("replacement", "lru") != "lru":
                others = list(clusters)
                others[i] = dict(cl, **{lvl: dict(level, replacement="lru")})
                yield with_clusters(others)


def simplified_machines(doc: Dict[str, Any]):
    """Yield strictly simpler variants of a machine document (shrinking).

    Each candidate removes one source of complexity: the L3, the TLB,
    extra modules, write-through levels, non-LRU replacement, set count.
    """
    if doc.get("l3") is not None:
        out = dict(doc)
        out["l3"] = None
        yield out
    if doc.get("with_tlb"):
        out = dict(doc)
        out["with_tlb"] = False
        yield out
    if doc["cores"] > doc["cores_per_module"]:
        out = dict(doc)
        out["cores"] = doc["cores_per_module"]
        yield out
    if doc["cores_per_module"] > 1:
        out = dict(doc)
        out["cores_per_module"] = 1
        out["cores"] = doc["cores"] // doc["cores_per_module"]
        for lvl in ("l2",):
            out[lvl] = dict(out[lvl], shared_by=1)
        if out.get("l3"):
            out["l3"] = dict(out["l3"], shared_by=out["cores"])
        yield out
    for lvl in ("l1", "l2", "l3"):
        level = doc.get(lvl)
        if not level:
            continue
        if level.get("write_policy") == "write-through":
            out = dict(doc)
            out[lvl] = dict(level, write_policy="write-back")
            yield out
        if level.get("replacement", "lru") != "lru":
            out = dict(doc)
            out[lvl] = dict(level, replacement="lru")
            yield out
        if level["sets"] > 1:
            out = dict(doc)
            out[lvl] = dict(level, sets=level["sets"] // 2)
            yield out
        if level["ways"] > 1:
            out = dict(doc)
            out[lvl] = dict(level, ways=level["ways"] // 2)
            yield out


def _replace_cache(cache: CacheParams, policy: ReplacementPolicy) -> CacheParams:
    return CacheParams(
        name=cache.name,
        size_bytes=cache.size_bytes,
        line_bytes=cache.line_bytes,
        ways=cache.ways,
        latency_cycles=cache.latency_cycles,
        replacement=policy,
        write_policy=cache.write_policy,
        shared_by=cache.shared_by,
    )


def with_replacement(
    chip: ChipParams, policy: ReplacementPolicy,
    l3: Optional[ReplacementPolicy] = None,
) -> ChipParams:
    """A copy of ``chip`` with every cache level using ``policy``.

    ``l3`` overrides the policy for the L3 alone (e.g. keep the big
    outer level LRU while stressing RANDOM victim selection inside).
    """
    return ChipParams(
        name=f"{chip.name}-{policy.value}",
        cores=chip.cores,
        cores_per_module=chip.cores_per_module,
        core=chip.core,
        l1d=_replace_cache(chip.l1d, policy),
        l2=_replace_cache(chip.l2, policy),
        l3=(
            None if chip.l3 is None
            else _replace_cache(chip.l3, l3 if l3 is not None else policy)
        ),
        dram=chip.dram,
        tlb=chip.tlb,
    )
