"""Oracle registry and the differential comparator.

An :class:`Oracle` declares one fast/reference engine pair *once*: how to
draw a random valid case from a seeded RNG, how to run the case through
the reference engine and through the fast engine, and how to shrink a
failing case. Both runners return a plain JSON-able *result document*;
the comparator requires the two documents to be exactly equal, leaf by
leaf — bit-exact for tile values and hit/miss counters, tolerance-free
integer comparison for cycle counts. There is deliberately no epsilon
anywhere: the repo's engine pairs promise bit-identity, and the oracle
harness is what holds them to it.

Oracles register themselves into a module-level registry at import time
(:mod:`repro.verify.oracles` defines the standing four); new engine PRs
add one :func:`register` call and inherit the fuzzer, the shrinker, the
CLI and the CI sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import ReproError

__all__ = [
    "CaseOutcome",
    "Oracle",
    "VerifyError",
    "all_oracles",
    "diff_documents",
    "get_oracle",
    "numeric_size",
    "oracles_for_suite",
    "register",
    "run_case",
    "suites",
]


class VerifyError(ReproError):
    """Raised for malformed oracles, cases, or replay files."""


#: params -> result document (JSON-able nested dict of scalars/lists).
Runner = Callable[[Dict[str, Any]], Dict[str, Any]]


@dataclass(frozen=True)
class Oracle:
    """One registered fast/reference engine pair.

    Attributes:
        name: Unique dotted identifier, e.g. ``"cachesim.batch"``.
        suite: Coarse grouping used by ``repro verify --suite``.
        description: One-line statement of the identity being checked.
        generate: Draw one random valid params dict from ``(rng, budget)``.
            Params must be JSON-serializable and fully determine the case
            (operand data comes from seeds inside params, never from
            global state).
        reference: Run the case on the reference engine.
        fast: Run the case on the fast engine.
        shrink: Yield strictly-smaller candidate params for a failing
            case (the greedy shrinker keeps candidates that still fail).
        compare: ``(reference_doc, fast_doc) -> mismatch list``; the
            default exact comparator suits every bit-identity oracle.
            The mutation self-test swaps in a fault-injecting shim here.
    """

    name: str
    suite: str
    description: str
    generate: Callable[[random.Random, str], Dict[str, Any]]
    reference: Runner
    fast: Runner
    shrink: Callable[[Dict[str, Any]], Iterator[Dict[str, Any]]]
    compare: Callable[[Dict[str, Any], Dict[str, Any]], List[str]] = field(
        default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if self.compare is None:
            object.__setattr__(self, "compare", diff_documents)
        if "." not in self.name:
            raise VerifyError(
                f"oracle name {self.name!r} must be dotted (suite.pair)"
            )


@dataclass
class CaseOutcome:
    """Result of running one case through both engines of an oracle."""

    oracle: str
    params: Dict[str, Any]
    mismatches: List[str]
    reference: Dict[str, Any]
    fast: Dict[str, Any]

    @property
    def ok(self) -> bool:
        return not self.mismatches


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, Oracle] = {}


def register(oracle: Oracle) -> Oracle:
    """Add ``oracle`` to the registry (name must be unused)."""
    if oracle.name in _REGISTRY:
        raise VerifyError(f"oracle {oracle.name!r} already registered")
    _REGISTRY[oracle.name] = oracle
    return oracle


def all_oracles() -> List[Oracle]:
    """Every registered oracle, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def get_oracle(name: str) -> Oracle:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise VerifyError(
            f"unknown oracle {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def suites() -> List[str]:
    """The distinct suite names, in registration order."""
    _ensure_loaded()
    seen: List[str] = []
    for oracle in _REGISTRY.values():
        if oracle.suite not in seen:
            seen.append(oracle.suite)
    return seen


def oracles_for_suite(suite: str) -> List[Oracle]:
    """Oracles selected by ``--suite`` (``"all"`` selects everything)."""
    _ensure_loaded()
    if suite == "all":
        return list(_REGISTRY.values())
    selected = [o for o in _REGISTRY.values() if o.suite == suite]
    if not selected:
        raise VerifyError(
            f"unknown suite {suite!r}; choose from "
            f"{['all'] + suites()}"
        )
    return selected


def _ensure_loaded() -> None:
    """Import the standing oracle definitions exactly once."""
    if not _REGISTRY:
        from repro.verify import oracles  # noqa: F401  (registers on import)


# -- comparator ---------------------------------------------------------------


def diff_documents(
    reference: Any, fast: Any, path: str = "", limit: int = 20
) -> List[str]:
    """Exact leaf-by-leaf differences between two result documents.

    Returns human-readable ``path: reference != fast`` strings (empty =
    identical). Numbers compare with ``==`` and type-compatible ints and
    floats are *not* interchanged: a counter drifting from int to float
    is itself a reportable engine divergence. NaN never equals anything,
    so a NaN leaf on either side always reports.
    """
    out: List[str] = []
    _diff(reference, fast, path, out, limit)
    return out


def _diff(a: Any, b: Any, path: str, out: List[str], limit: int) -> None:
    if len(out) >= limit:
        return
    label = path or "<root>"
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append(f"{sub}: missing in reference")
            elif key not in b:
                out.append(f"{sub}: missing in fast")
            else:
                _diff(a[key], b[key], sub, out, limit)
            if len(out) >= limit:
                return
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            out.append(f"{label}: length {len(a)} != {len(b)}")
            return
        for i, (va, vb) in enumerate(zip(a, b)):
            _diff(va, vb, f"{path}[{i}]", out, limit)
            if len(out) >= limit:
                return
        return
    if type(a) is not type(b):
        # int vs float, bool vs int, str vs int, dict vs list ... a
        # counter changing representation is itself engine divergence.
        out.append(f"{label}: type {type(a).__name__} != {type(b).__name__}")
        return
    if a != b or a != a or b != b:  # the self-inequality catches NaN
        out.append(f"{label}: {a!r} != {b!r}")


def numeric_size(params: Any) -> int:
    """A crude monotone size metric over a params document.

    The greedy shrinker only accepts candidates that strictly reduce
    this, which guarantees termination without each oracle having to
    define its own ordering. Booleans count as 0/1, strings by length,
    containers by recursion plus their own length.
    """
    if isinstance(params, bool):
        return int(params)
    if isinstance(params, int):
        return abs(params)
    if isinstance(params, float):
        return int(abs(params) * 16)
    if isinstance(params, str):
        return len(params)
    if isinstance(params, dict):
        return len(params) + sum(numeric_size(v) for v in params.values())
    if isinstance(params, (list, tuple)):
        return len(params) + sum(numeric_size(v) for v in params)
    return 0


def run_case(
    oracle: Oracle,
    params: Dict[str, Any],
    compare: Optional[Callable[[Dict[str, Any], Dict[str, Any]], List[str]]]
    = None,
) -> CaseOutcome:
    """Run one case through both engines and compare the documents."""
    reference = oracle.reference(params)
    fast = oracle.fast(params)
    comparator = compare if compare is not None else oracle.compare
    return CaseOutcome(
        oracle=oracle.name,
        params=params,
        mismatches=comparator(reference, fast),
        reference=reference,
        fast=fast,
    )
