"""repro — reproduction of the ICPP 2015 ARMv8 DGEMM paper.

The package implements, in pure Python + numpy:

- the Goto-algorithm DGEMM (blocking, packing, GEBP) of the paper
  (:mod:`repro.gemm`);
- the analytic performance model of Sec. III and the block-size engine of
  Sec. IV (:mod:`repro.model`, :mod:`repro.blocking`);
- the register-kernel generator with software register rotation and
  instruction scheduling (:mod:`repro.kernels`);
- a simulated ARMv8 machine — A64 ISA subset, scoreboard pipeline, and
  set-associative cache hierarchy — used to evaluate kernels the way the
  paper evaluates them on silicon (:mod:`repro.isa`, :mod:`repro.pipeline`,
  :mod:`repro.memory`, :mod:`repro.sim`).

See DESIGN.md for the substitution rationale and the per-experiment index.
"""

from repro._version import __version__

__all__ = ["__version__"]
