"""Content-hash memoization for tuner evaluations.

Every evaluation the tuner performs — analytic cost-model scoring of a
(tile, blocking) class, or a compiled timed run of a (tile, rotation,
schedule) variant — is described by a plain-JSON *evaluation document*.
The document is SHA-256-hashed into a cache key with the same key-material
idiom as :func:`repro.serve.query.query_key`, and the result is persisted
as a RunReport-shaped answer in a :class:`repro.serve.store.ResultStore`.

Three schema versions are folded into the key material:

- :data:`TUNE_SCHEMA_VERSION` — the shape of evaluation documents and of
  the stats they produce;
- :data:`~repro.serve.query.QUERY_SCHEMA_VERSION` — the machine-document
  conventions shared with the serving layer;
- :data:`~repro.obs.run_report.SCHEMA_VERSION` — the answer envelope.

Bumping any of them changes every key, so stale entries become
unreachable instead of being replayed in an old shape. The store's own
read-side validation additionally rejects entries whose answer no longer
validates as a report.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.obs.run_report import SCHEMA_VERSION, RunReport
from repro.serve.query import QUERY_SCHEMA_VERSION
from repro.serve.store import ResultStore

__all__ = [
    "TUNE_SCHEMA_VERSION",
    "eval_key",
    "make_answer",
    "stats_of",
    "TuneMemo",
]

#: Version of the tuner's evaluation-document and stats shapes. Bump
#: whenever an evaluation field is added/renamed or a stats field changes
#: meaning — either changes what a cached answer means.
TUNE_SCHEMA_VERSION = 1


def eval_key(doc: Dict[str, Any]) -> str:
    """The content-hash cache key of one evaluation document.

    ``doc`` must already be canonical: plain JSON types only, every field
    filled (the enumerator and evaluators construct docs this way, so two
    evaluations that mean the same thing hash identically).
    """
    material = json.dumps(
        {
            "tune_schema": TUNE_SCHEMA_VERSION,
            "query_schema": QUERY_SCHEMA_VERSION,
            "report_schema": SCHEMA_VERSION,
            "eval": doc,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


def make_answer(
    command: str,
    doc: Dict[str, Any],
    stats: Dict[str, Any],
    engines: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A RunReport-shaped answer document for one evaluation.

    ``created`` stays ``None`` so cold and memoized replays of the same
    evaluation are byte-identical (the ``tune.memo`` oracle and the warm
    bench pass both rely on this).
    """
    return RunReport(
        command=command,
        created=None,
        params=dict(doc),
        engines=dict(engines or {}),
        metrics={},
        stats=dict(stats),
    ).to_dict()


def stats_of(answer: Dict[str, Any]) -> Dict[str, Any]:
    """The evaluation stats carried inside a stored answer."""
    return answer.get("stats", {})


class TuneMemo:
    """Counting facade over an optional :class:`ResultStore`.

    With ``store=None`` every lookup misses and nothing persists — the
    cold path used by the ``tune.memo`` oracle's reference engine.
    """

    def __init__(self, store: Optional[ResultStore] = None) -> None:
        self.store = store
        self.hits = 0
        self.misses = 0
        self.stored = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The memoized answer for ``key``, counting the hit or miss."""
        answer = self.store.get(key) if self.store is not None else None
        if answer is None:
            self.misses += 1
        else:
            self.hits += 1
        return answer

    def put(self, key: str, doc: Dict[str, Any], answer: Dict[str, Any]) -> None:
        """Persist ``answer`` (no-op without a backing store)."""
        if self.store is not None:
            self.store.put(key, doc, answer)
            self.stored += 1

    def counts(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stored": self.stored}
