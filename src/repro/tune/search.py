"""The two-stage, parallel, memoized kernel search.

Stage one scores every *analytic class* — candidates that the cost model
cannot distinguish (same tile, rotated bit and blocking) collapse into
one evaluation — and keeps the ``top_k`` best-scoring classes as the
frontier. Stage two times every distinct *code-shape variant* (tile,
rotation scheme, issue schedule) among the surviving candidates through
the compiled engine. The final ranking orders survivors by exact timed
efficiency, with the analytic score deciding between blockings the timed
stage cannot separate (it runs fixed-depth panels), and a canonical-JSON
tie-break making the whole search deterministic.

Both stages dispatch their cache-missing evaluations as jobs on a
:class:`~repro.gemm.pool.WorkerPool` when one is supplied, and memoize
every result by content hash in a :class:`~repro.serve.store.ResultStore`
(see :mod:`repro.tune.memo`), so re-runs and overlapping searches are
near-free: the warm pass recomputes nothing and reproduces the cold
result bit-identically (the ``tune.memo`` oracle and
``benchmarks/bench_tune_throughput.py`` both enforce this).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import BlockingError
from repro.gemm.pool import WorkerPool
from repro.obs.metrics import MetricsRegistry
from repro.serve.query import resolve_machine
from repro.serve.store import ResultStore
from repro.tune.evaluate import analytic_eval, timed_eval
from repro.tune.memo import TUNE_SCHEMA_VERSION, TuneMemo, eval_key, make_answer
from repro.tune.space import ROTATIONS, SCHEDULES, Candidate, enumerate_candidates

__all__ = ["tune_search"]

#: Ranked entries reported in the result document's ``top`` list.
TOP_REPORTED = 5


def _canon(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True)


def _evaluate_stage(
    docs: Dict[Tuple[Any, ...], Dict[str, Any]],
    compute: Callable[[Dict[str, Any]], Dict[str, Any]],
    command: str,
    engines: Dict[str, Any],
    memo: TuneMemo,
    pool: Optional[WorkerPool],
    metrics: Optional[MetricsRegistry],
    counter: str,
) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
    """Memoized, optionally pool-parallel evaluation of one stage.

    ``docs`` maps a stage-specific class tuple to its canonical
    evaluation document. Returns class tuple -> stats.
    """
    stats: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    missing: List[Tuple[Tuple[Any, ...], str, Dict[str, Any]]] = []
    for cls, doc in docs.items():
        key = eval_key(doc)
        answer = memo.get(key)
        if answer is not None:
            stats[cls] = answer["stats"]
        else:
            missing.append((cls, key, doc))

    def job(doc: Dict[str, Any]) -> Dict[str, Any]:
        return compute(doc)

    if missing:
        if metrics is not None:
            metrics.inc(counter, len(missing))
        fns = [lambda d=doc: job(d) for _, _, doc in missing]
        if pool is not None:
            results = pool.run_jobs(fns)
        else:
            results = [fn() for fn in fns]
        for (cls, key, doc), result in zip(missing, results):
            memo.put(key, doc, make_answer(command, doc, result, engines))
            stats[cls] = result
    return stats


def tune_search(
    machine: Any = "xgene",
    threads: int = 1,
    problem_size: int = 2048,
    max_tiles: int = 4,
    top_k: int = 12,
    radius: int = 1,
    bodies: int = 2,
    na: int = 1,
    nb: int = 1,
    hw_late: float = 0.25,
    seed: int = 0,
    rotations: Sequence[str] = ROTATIONS,
    schedules: Sequence[str] = SCHEDULES,
    store: Optional[ResultStore] = None,
    pool: Optional[WorkerPool] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Run the full two-stage kernel search and return its result doc.

    Args:
        machine: Preset name or machine document (as in the serve layer).
        threads: Thread count the blocking solver targets.
        problem_size: Square DGEMM size the analytic stage prices.
        max_tiles: Top-gamma register tiles to enumerate.
        top_k: Analytic classes surviving into the timed stage.
        radius: Blocking-neighborhood radius per axis.
        bodies: Unrolled bodies per timed panel depth (``kc = unroll *
            bodies`` per variant).
        na, nb: Packed A/B panel counts for the timed run.
        hw_late: Hardware-prefetch lateness passed to the timed engine.
        seed: Governs enumeration order and timed operand values.
        rotations, schedules: Search-space gates (see
            :mod:`repro.tune.space`).
        store: Persistent memo store (``None`` = evaluate everything).
        pool: Job pool for cache-missing evaluations (``None`` = inline).
        metrics: Optional registry (``tune.*`` counters and spans).

    Returns:
        A plain-JSON result document. Every section except ``memo`` is
        invariant across cold and warm runs of the same parameters.
    """
    if problem_size < 64:
        raise BlockingError("problem_size too small to be meaningful")
    if top_k < 1:
        raise BlockingError("top_k must be >= 1")
    label, chip = resolve_machine(machine)
    candidates = enumerate_candidates(
        machine, threads=threads, max_tiles=max_tiles,
        rotations=rotations, schedules=schedules, radius=radius, seed=seed,
    )
    if not candidates:
        raise BlockingError("search space is empty for this machine")
    if metrics is not None:
        metrics.inc("tune.searches")
        metrics.observe("tune.candidates", len(candidates))

    # -- stage one: analytic scoring of every distinct class ----------------
    analytic_docs: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for cand in candidates:
        cls = cand.analytic_class()
        if cls not in analytic_docs:
            analytic_docs[cls] = {
                "stage": "analytic",
                "machine": machine,
                "mr": cand.mr, "nr": cand.nr, "rotated": cand.rotated,
                "kc": cand.kc, "mc": cand.mc, "nc": cand.nc,
                "k1": cand.k1, "k2": cand.k2, "k3": cand.k3,
                "problem_size": problem_size,
                "threads": threads,
            }
    memo = TuneMemo(store)
    analytic_memo_before = memo.counts()
    analytic_stats = _evaluate_stage(
        analytic_docs,
        lambda doc: analytic_eval(chip, doc),
        command="tune-eval-analytic",
        engines={"analytic": {"selected": "gemm-sim", "fallback_reason": None}},
        memo=memo, pool=pool, metrics=metrics,
        counter="tune.analytic_evals",
    )
    analytic_memo = memo.counts()

    ranked_classes = sorted(
        analytic_docs,
        key=lambda cls: (-analytic_stats[cls]["efficiency"],
                         _canon(analytic_docs[cls])),
    )
    frontier = set(ranked_classes[:top_k])
    survivors = [c for c in candidates if c.analytic_class() in frontier]

    # -- stage two: compiled timed runs of surviving code shapes ------------
    timed_docs: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for cand in survivors:
        cls = cand.timed_class()
        if cls not in timed_docs:
            timed_docs[cls] = {
                "stage": "timed",
                "machine": machine,
                "mr": cand.mr, "nr": cand.nr,
                "rotation": cand.rotation, "schedule": cand.schedule,
                "bodies": bodies, "na": na, "nb": nb,
                "hw_late": hw_late, "seed": seed,
            }
    timed_stats = _evaluate_stage(
        timed_docs,
        lambda doc: timed_eval(chip, doc),
        command="tune-eval-timed",
        engines={"timed": {"selected": "compiled", "fallback_reason": None}},
        memo=memo, pool=pool, metrics=metrics,
        counter="tune.timed_evals",
    )
    timed_memo = {
        k: memo.counts()[k] - analytic_memo[k] for k in analytic_memo
    }
    analytic_memo = {
        k: analytic_memo[k] - analytic_memo_before[k] for k in analytic_memo
    }

    # -- final ranking ------------------------------------------------------
    def final_key(cand: Candidate) -> Tuple[Any, ...]:
        timed = timed_stats[cand.timed_class()]
        analytic = analytic_stats[cand.analytic_class()]
        return (
            0 if timed["feasible"] else 1,
            -timed.get("efficiency", 0.0),
            -analytic["efficiency"],
            _canon(cand.doc()),
        )

    ranked = sorted(survivors, key=final_key)
    winner = ranked[0]
    winner_timed = timed_stats[winner.timed_class()]
    if not winner_timed["feasible"]:
        raise BlockingError(
            "no surviving candidate compiled; widen rotations/schedules"
        )
    feasible_variants = sum(
        1 for s in timed_stats.values() if s["feasible"]
    )
    prune_ratio = len(candidates) / max(1, len(timed_docs))

    def entry(cand: Candidate) -> Dict[str, Any]:
        return {
            "candidate": cand.doc(),
            "analytic": analytic_stats[cand.analytic_class()],
            "timed": timed_stats[cand.timed_class()],
        }

    # The reported top list shows the best blocking per code shape —
    # without the dedup it would be one kernel repeated across its
    # blocking neighborhood.
    top_entries: List[Dict[str, Any]] = []
    reported = set()
    for cand in ranked:
        shape = cand.timed_class()
        if shape in reported:
            continue
        reported.add(shape)
        top_entries.append(entry(cand))
        if len(top_entries) >= TOP_REPORTED:
            break

    return {
        "tune_schema_version": TUNE_SCHEMA_VERSION,
        "machine": label,
        "params": {
            "machine": machine, "threads": threads,
            "problem_size": problem_size, "max_tiles": max_tiles,
            "top_k": top_k, "radius": radius, "bodies": bodies,
            "na": na, "nb": nb, "hw_late": hw_late, "seed": seed,
            "rotations": list(rotations), "schedules": list(schedules),
        },
        "space": {
            "enumerated": len(candidates),
            "analytic_classes": len(analytic_docs),
            "survivors": len(survivors),
            "timed_variants": len(timed_docs),
            "feasible_variants": feasible_variants,
        },
        "stats": {
            "prune_ratio": prune_ratio,
        },
        "winner": entry(winner),
        "top": top_entries,
        "memo": {
            "analytic": analytic_memo,
            "timed": timed_memo,
        },
    }
