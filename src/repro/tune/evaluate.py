"""The tuner's two evaluators: analytic scoring and compiled timed runs.

Stage one prices a candidate with the Sec. III/IV analytic DGEMM cost
model (:class:`~repro.sim.gemm_sim.GemmSimulator` accepts the enumerated
:class:`~repro.kernels.kernel_spec.KernelSpec` directly). Stage two
generates the candidate's kernel — rotation plan, issue schedule,
prefetches — and executes it on seeded packed panels through the
compiled timed engine (``engine="compiled"``), which is exact for every
compilable variant.

Not every enumerated variant schedules: some rotation-plan/strategy
pairs leave no legal window for a load (e.g. the naive ring cycle under
the ``earliest`` strategy for 8x6). Those evaluate to an *infeasible*
record — ``{"feasible": false, "reason": ...}`` — which is memoized like
any other result so re-runs never retry a known-dead variant.

Rotation plans and generated kernels are cached per process: an
exhaustive ``solve_rotation`` over an 8-slot pool costs ~0.3 s, and the
same plan is shared by every blocking neighborhood of the tile.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.arch.params import ChipParams
from repro.errors import ReproError
from repro.kernels.codegen import GeneratedKernel, generate_kernel
from repro.kernels.kernel_spec import KernelSpec
from repro.kernels.rotation import (
    RotationPlan,
    paper_plan,
    plan_from_cycle,
    solve_rotation,
    static_plan,
)
from repro.sim.timed_executor import run_timed_gebp

__all__ = [
    "resolve_plan",
    "build_kernel",
    "analytic_eval",
    "timed_eval",
    "clear_eval_caches",
]

_PLAN_CACHE: Dict[Tuple[int, int, str], RotationPlan] = {}
_KERNEL_CACHE: Dict[Tuple[int, int, str, str, int], GeneratedKernel] = {}


def clear_eval_caches() -> None:
    """Drop the per-process plan and kernel caches (tests only)."""
    _PLAN_CACHE.clear()
    _KERNEL_CACHE.clear()


def resolve_plan(spec: KernelSpec, rotation: str) -> RotationPlan:
    """The rotation plan realizing ``rotation`` for ``spec`` (cached)."""
    key = (spec.mr, spec.nr, rotation)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if rotation == "static":
            plan = static_plan(spec)
        elif rotation == "paper":
            plan = paper_plan(spec)
        elif rotation == "ring":
            plan = plan_from_cycle(spec, tuple(range(spec.rotation_pool)))
        elif rotation == "solved":
            plan = solve_rotation(spec)
        else:
            raise ReproError(f"unknown rotation scheme {rotation!r}")
        _PLAN_CACHE[key] = plan
    return plan


def build_kernel(
    mr: int, nr: int, rotation: str, schedule: str, kc: int
) -> GeneratedKernel:
    """Generate (and cache) the kernel for one code-shape variant.

    Raises the underlying :class:`~repro.errors.ReproError` subclass
    (``SchedulingError``, ``RegisterAllocationError``, ...) when the
    variant cannot be realized; callers record that as infeasible.
    """
    key = (mr, nr, rotation, schedule, kc)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        spec = KernelSpec(mr, nr, rotated=rotation != "static")
        plan = resolve_plan(spec, rotation)
        kernel = generate_kernel(
            spec, kc=kc, plan=plan, schedule_strategy=schedule
        )
        _KERNEL_CACHE[key] = kernel
    return kernel


def analytic_eval(
    chip: ChipParams, doc: Dict[str, Any]
) -> Dict[str, Any]:
    """Analytic cost-model score of one (tile, blocking) class.

    ``doc`` is the canonical evaluation document built by the search
    (fields: mr/nr/rotated, kc/mc/nc/k1/k2/k3, problem_size, threads).
    Returns plain-JSON stats (efficiency, gflops, cycles).
    """
    from repro.blocking.cache_blocking import CacheBlocking
    from repro.sim.gemm_sim import GemmSimulator

    spec = KernelSpec(doc["mr"], doc["nr"], rotated=doc["rotated"])
    blocking = CacheBlocking(
        mr=doc["mr"], nr=doc["nr"],
        kc=doc["kc"], mc=doc["mc"], nc=doc["nc"],
        k1=doc["k1"], k2=doc["k2"], k3=doc["k3"],
    )
    size = doc["problem_size"]
    perf = GemmSimulator(chip).simulate(
        spec, size, size, size,
        threads=doc["threads"], blocking=blocking,
    )
    return {
        "efficiency": perf.efficiency,
        "gflops": perf.gflops,
        "cycles": perf.cycles,
    }


def _packed_operands(
    na: int, nb: int, kc: int, mr: int, nr: int, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    packed_a = rng.standard_normal((na, kc, mr))
    packed_b = rng.standard_normal((nb, kc, nr))
    return packed_a, packed_b


def timed_eval(
    chip: ChipParams, doc: Dict[str, Any],
    metrics: Optional[Any] = None,
) -> Dict[str, Any]:
    """Compiled timed run of one code-shape variant.

    ``doc`` fields: mr/nr/rotation/schedule, bodies (unrolled bodies per
    panel depth), na/nb (packed panel counts), hw_late, seed. The panel
    depth is ``plan.unroll * bodies`` so every variant runs whole bodies
    regardless of its pool size. Returns feasible stats (efficiency,
    cycles, cycles_per_iteration, kc) or an infeasible record with the
    generator's reason.
    """
    mr, nr = doc["mr"], doc["nr"]
    rotation, schedule = doc["rotation"], doc["schedule"]
    spec = KernelSpec(mr, nr, rotated=rotation != "static")
    try:
        plan = resolve_plan(spec, rotation)
        kc = plan.unroll * doc["bodies"]
        kernel = build_kernel(mr, nr, rotation, schedule, kc)
    except ReproError as exc:
        return {"feasible": False, "reason": str(exc), "kc": None}
    packed_a, packed_b = _packed_operands(
        doc["na"], doc["nb"], kc, mr, nr, doc["seed"]
    )
    run = run_timed_gebp(
        kernel, packed_a, packed_b,
        chip=chip, hw_late=doc["hw_late"], engine="compiled",
        metrics=metrics,
    )
    return {
        "feasible": True,
        "efficiency": run.efficiency,
        "cycles": int(run.cycles),
        "cycles_per_iteration": run.cycles_per_iteration,
        "kc": kc,
    }
