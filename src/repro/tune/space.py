"""Enumeration of the kernel-synthesis search space.

A search point — a :class:`Candidate` — fixes everything the code
generator and the blocking need to build one GEBP configuration:

- the register tile ``(mr, nr)``, drawn from the eq. (8)-(11)
  feasibility enumeration and filtered to tiles the code generator can
  realize (``KernelSpec.fits_register_file``);
- the register-rotation scheme (``solved`` exhaustive optimum, the
  paper's Table I ``paper`` cycle, the naive ``ring`` cycle, or the
  un-rotated ``static`` layout);
- the issue-schedule strategy (``earliest``, the eq. (13) optimum, or
  ``latest``, the unscheduled ablation);
- the cache blocking ``(kc, mc, nc)`` from a neighborhood around the
  analytic :func:`~repro.blocking.cache_blocking.solve_cache_blocking`
  solution, with the solver's ways-reservation ``(k1, k2, k3)``.

Enumeration is exhaustive over the gated cross product, deduplicated,
and deterministic: candidates are generated in a canonical order and
then shuffled by the fixed ``seed``, so the same seed always yields the
same sequence (exercised by ``tests/test_tune.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.blocking.autotune import candidate_tiles, neighborhood
from repro.blocking.cache_blocking import CacheBlocking, solve_cache_blocking
from repro.errors import BlockingError
from repro.kernels.kernel_spec import KernelSpec
from repro.serve.query import resolve_machine

__all__ = [
    "ROTATIONS",
    "SCHEDULES",
    "Candidate",
    "enumerate_candidates",
]

#: Register-rotation schemes the enumerator knows how to realize.
ROTATIONS = ("solved", "paper", "ring", "static")

#: Issue-schedule strategies of :func:`repro.kernels.scheduling.schedule_body`.
SCHEDULES = ("earliest", "latest")


@dataclass(frozen=True)
class Candidate:
    """One fully-specified point of the search space."""

    mr: int
    nr: int
    rotation: str
    schedule: str
    kc: int
    mc: int
    nc: int
    k1: int
    k2: int
    k3: int

    @property
    def rotated(self) -> bool:
        return self.rotation != "static"

    def spec(self) -> KernelSpec:
        """The kernel shape this candidate generates code for."""
        return KernelSpec(self.mr, self.nr, rotated=self.rotated)

    def blocking(self) -> CacheBlocking:
        """The cache blocking this candidate runs under."""
        return CacheBlocking(
            mr=self.mr, nr=self.nr, kc=self.kc, mc=self.mc, nc=self.nc,
            k1=self.k1, k2=self.k2, k3=self.k3,
        )

    def doc(self) -> Dict[str, Any]:
        """Plain-JSON description (stable field order via sorted dumps)."""
        return {
            "mr": self.mr, "nr": self.nr,
            "rotation": self.rotation, "schedule": self.schedule,
            "kc": self.kc, "mc": self.mc, "nc": self.nc,
            "k1": self.k1, "k2": self.k2, "k3": self.k3,
        }

    # -- memoization class keys ---------------------------------------------

    def analytic_class(self) -> Tuple[Any, ...]:
        """Candidates sharing this tuple have identical analytic scores.

        The Sec. III/IV cost model sees the tile shape, whether the
        kernel rotates (the prefetch-hide class), and the blocking — but
        not the concrete rotation cycle or issue schedule.
        """
        return (self.mr, self.nr, self.rotated,
                self.kc, self.mc, self.nc, self.k1, self.k2, self.k3)

    def timed_class(self) -> Tuple[Any, ...]:
        """Candidates sharing this tuple have identical timed runs.

        The compiled timed engine executes the generated kernel on
        packed panels whose depth the evaluator fixes independently of
        the candidate's ``kc``, so only the code-shape fields matter.
        """
        return (self.mr, self.nr, self.rotation, self.schedule)


def _rotations_for(spec: KernelSpec, rotations: Sequence[str]) -> List[str]:
    out: List[str] = []
    for rotation in rotations:
        if rotation not in ROTATIONS:
            raise BlockingError(
                f"unknown rotation scheme {rotation!r}; "
                f"choose from {list(ROTATIONS)}"
            )
        if rotation == "paper" and spec.rotation_pool != 8:
            continue  # the Table I cycle only exists for the 8-slot pool
        if rotation == "solved" and spec.rotation_pool > 8:
            continue  # exhaustive (pool-1)! search is gated to tractable pools
        out.append(rotation)
    return out


def enumerate_candidates(
    machine: Any = "xgene",
    threads: int = 1,
    max_tiles: int = 4,
    rotations: Sequence[str] = ROTATIONS,
    schedules: Sequence[str] = SCHEDULES,
    radius: int = 1,
    seed: int = 0,
) -> List[Candidate]:
    """Enumerate the gated search space for ``machine``.

    Args:
        machine: Preset name (``"xgene"``, ``"mobile"``) or a machine
            document in the :mod:`repro.verify.machines` schema.
        threads: Thread count the blocking solver targets.
        max_tiles: How many top-gamma register tiles to explore.
        rotations: Rotation schemes to include (subset of
            :data:`ROTATIONS`); infeasible scheme/tile pairs are gated
            out per tile.
        schedules: Issue-schedule strategies (subset of
            :data:`SCHEDULES`).
        radius: Blocking-neighborhood radius in solver steps per axis.
        seed: Shuffle seed; the same seed always yields the same order.

    Returns:
        Deduplicated candidate list, deterministically ordered.
    """
    for schedule in schedules:
        if schedule not in SCHEDULES:
            raise BlockingError(
                f"unknown schedule strategy {schedule!r}; "
                f"choose from {list(SCHEDULES)}"
            )
    _, chip = resolve_machine(machine)
    seen: Set[Candidate] = set()
    out: List[Candidate] = []
    for mr, nr in candidate_tiles(chip, max_tiles, require_codegen=True):
        try:
            base = solve_cache_blocking(chip, mr, nr, threads=threads)
        except BlockingError:
            continue
        schemes = _rotations_for(KernelSpec(mr, nr, rotated=True), rotations)
        for kc in neighborhood(base.kc, 128, 64, radius):
            for mc in neighborhood(base.mc, 2 * mr, mr, radius):
                for nc in neighborhood(base.nc, 16 * nr, nr, radius):
                    for rotation in schemes:
                        for schedule in schedules:
                            cand = Candidate(
                                mr=mr, nr=nr,
                                rotation=rotation, schedule=schedule,
                                kc=kc, mc=mc, nc=nc,
                                k1=base.k1, k2=base.k2, k3=base.k3,
                            )
                            if cand not in seen:
                                seen.add(cand)
                                out.append(cand)
    rng = random.Random(seed)
    rng.shuffle(out)
    return out
