"""Parallel, memoized kernel autotuning over the codegen search space.

Grows the block-size grid search of :mod:`repro.blocking.autotune` into
full kernel synthesis: :mod:`~repro.tune.space` enumerates register
tiles, rotation schemes, issue schedules and blocking neighborhoods;
:mod:`~repro.tune.evaluate` prices candidates analytically and times the
survivors through the compiled engine; :mod:`~repro.tune.memo` keys every
evaluation by content hash into a persistent result store; and
:mod:`~repro.tune.search` composes them into the two-stage search behind
``repro tune``.
"""

from repro.tune.evaluate import (
    analytic_eval,
    build_kernel,
    clear_eval_caches,
    resolve_plan,
    timed_eval,
)
from repro.tune.memo import (
    TUNE_SCHEMA_VERSION,
    TuneMemo,
    eval_key,
    make_answer,
    stats_of,
)
from repro.tune.search import tune_search
from repro.tune.space import (
    ROTATIONS,
    SCHEDULES,
    Candidate,
    enumerate_candidates,
)

__all__ = [
    "ROTATIONS",
    "SCHEDULES",
    "TUNE_SCHEMA_VERSION",
    "Candidate",
    "TuneMemo",
    "analytic_eval",
    "build_kernel",
    "clear_eval_caches",
    "enumerate_candidates",
    "eval_key",
    "make_answer",
    "resolve_plan",
    "stats_of",
    "timed_eval",
    "tune_search",
]
