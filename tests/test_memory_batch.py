"""Unit tests for the batched trace representation and vectorized engine.

The scalar per-access path is the oracle throughout: every test that runs
the batched engine checks its counters against an identical hierarchy (or
cache) driven through :func:`run_trace` / ``access_line``.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.arch import CacheParams, ReplacementPolicy
from repro.arch.params import WritePolicy
from repro.arch.presets import MOBILE_SOC, XGENE
from repro.blocking import solve_cache_blocking
from repro.errors import SimulationError
from repro.kernels import KERNEL_8X6
from repro.memory import (
    Access,
    BatchTrace,
    Cache,
    MemoryHierarchy,
    compile_trace,
    contiguous_trace,
    run_trace,
    strided_matrix_trace,
    warm_region,
)
from repro.memory.cache import CODE_LOAD, CODE_PREFETCH, CODE_STORE
from repro.sim import gebp_traces, simulate_gebp_cache


def small_chip(policy=ReplacementPolicy.LRU, base=XGENE):
    """A shrunk chip so tests exercise evictions with tiny traces."""
    repl = {}
    repl["l1d"] = dataclasses.replace(
        base.l1d, size_bytes=2048, ways=2, replacement=policy
    )
    repl["l2"] = dataclasses.replace(
        base.l2, size_bytes=4096, ways=4, replacement=policy
    )
    if base.l3:
        repl["l3"] = dataclasses.replace(
            base.l3, size_bytes=8192, ways=4, replacement=policy
        )
    return dataclasses.replace(base, **repl)


def l1_cache(policy=ReplacementPolicy.LRU, rng=None):
    return Cache(
        CacheParams(
            name="L1D", size_bytes=1024, line_bytes=64, ways=2,
            latency_cycles=4, replacement=policy,
        ),
        rng=rng,
    )


class TestBatchTrace:
    def test_round_trip_through_iter(self):
        accs = [
            Access(0, 16, "load"),
            Access(100, 8, "store"),
            Access(4096, 1, "prefetch", level=2),
        ]
        trace = BatchTrace.from_accesses(accs)
        assert len(trace) == 3
        assert list(trace) == accs

    def test_compile_trace_of_generators(self):
        gen = list(strided_matrix_trace(0, 8, 4, 16))
        trace = compile_trace(strided_matrix_trace(0, 8, 4, 16))
        assert list(trace) == gen

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            BatchTrace.from_accesses([Access(0, 8, "fetch")])

    def test_from_rows_and_views(self):
        trace = BatchTrace.from_rows(
            [(64, 8, CODE_LOAD, 1), (128, 8, CODE_STORE, 1)]
        )
        assert list(trace.addresses) == [64, 128]
        assert list(trace.kinds) == [CODE_LOAD, CODE_STORE]

    def test_concat_preserves_order(self):
        a = BatchTrace.from_rows([(0, 8, CODE_LOAD, 1)])
        b = BatchTrace.from_rows([(64, 8, CODE_STORE, 1)])
        both = BatchTrace.concat([a, b])
        assert list(both.addresses) == [0, 64]
        assert len(BatchTrace.concat([])) == 0

    def test_shifted_relocates_addresses(self):
        trace = BatchTrace.from_rows([(0, 8, CODE_LOAD, 1)])
        assert trace.shifted(0) is trace
        moved = trace.shifted(1 << 20)
        assert moved.addresses[0] == 1 << 20
        assert trace.addresses[0] == 0  # original untouched

    def test_expand_lines_demand_spans(self):
        # 8 bytes starting at 60 cross the line boundary at 64.
        trace = BatchTrace.from_rows([(60, 8, CODE_LOAD, 1)])
        lines, kinds, _ = trace.expand_lines(64)
        assert list(lines) == [0, 1]
        assert list(kinds) == [CODE_LOAD, CODE_LOAD]

    def test_expand_lines_zero_bytes_is_empty(self):
        trace = BatchTrace.from_rows([(60, 0, CODE_LOAD, 1)])
        assert trace.line_count(64) == 0

    def test_expand_lines_prefetch_is_one_line(self):
        # Scalar run_trace touches exactly address//line for a prefetch,
        # whatever nbytes says.
        trace = BatchTrace.from_rows([(100, 4096, CODE_PREFETCH, 2)])
        lines, _, levels = trace.expand_lines(64)
        assert list(lines) == [1]
        assert list(levels) == [2]

    def test_expand_lines_cached_per_line_size(self):
        trace = BatchTrace.from_rows([(0, 128, CODE_LOAD, 1)])
        first = trace.expand_lines(64)
        assert trace.expand_lines(64) is first
        assert trace.line_count(32) == 4


class TestBatchedCache:
    def run_both(self, lines, kinds, tail_min=None, policy=ReplacementPolicy.LRU):
        c_scalar = l1_cache(policy, rng=random.Random(7))
        c_batched = l1_cache(policy, rng=random.Random(7))
        kind_names = {CODE_LOAD: "load", CODE_STORE: "store",
                      CODE_PREFETCH: "prefetch"}
        scalar_hits = [
            c_scalar.access_line(int(ln), kind_names[int(k)])
            for ln, k in zip(lines, kinds)
        ]
        kwargs = {} if tail_min is None else {"tail_min": tail_min}
        batched_hits = c_batched.access_lines_batched(
            np.asarray(lines, dtype=np.int64),
            np.asarray(kinds, dtype=np.int8),
            **kwargs,
        )
        assert list(batched_hits) == scalar_hits
        assert c_scalar.stats == c_batched.stats
        assert c_scalar.resident_lines() == c_batched.resident_lines()
        return c_batched

    def adversarial_stream(self, n=3000, seed=0):
        rng = np.random.default_rng(seed)
        lines = np.repeat(rng.integers(0, 64, size=n // 3), 3)[:n]
        kinds = np.where(
            rng.random(n) < 0.3, CODE_STORE, CODE_LOAD
        ).astype(np.int8)
        kinds[rng.random(n) < 0.1] = CODE_PREFETCH
        return lines.astype(np.int64), kinds

    def test_vector_path_matches_scalar(self):
        lines, kinds = self.adversarial_stream()
        c = self.run_both(lines, kinds, tail_min=0)
        assert c.batched_accesses == len(lines)
        assert c.batched_fallback_accesses == 0

    def test_tail_path_matches_scalar(self):
        # A huge tail_min forces every round through the per-access tail.
        lines, kinds = self.adversarial_stream(seed=1)
        self.run_both(lines, kinds, tail_min=10**9)

    def test_single_set_exercises_runs_and_rounds(self):
        # One set (8 lines * stride num_sets) maximises run compression
        # and in-set ordering effects.
        pattern = [0, 8, 8, 16, 0, 24, 8, 0, 32, 16, 8, 40, 0]
        lines = np.array(pattern * 40, dtype=np.int64)
        kinds = np.tile(
            [CODE_LOAD, CODE_STORE, CODE_LOAD], len(lines) // 3 + 1
        )[: len(lines)].astype(np.int8)
        self.run_both(lines, kinds, tail_min=0)
        self.run_both(lines, kinds, tail_min=10**9)

    def test_non_lru_policies_fall_back_identically(self):
        for policy in (ReplacementPolicy.RANDOM, ReplacementPolicy.PLRU):
            lines, kinds = self.adversarial_stream(seed=2)
            c = self.run_both(lines, kinds, policy=policy)
            assert c.batched_fallback_accesses == len(lines)

    def test_scalar_then_batched_then_scalar(self):
        # Mode conversion must carry LRU state both ways.
        twin = l1_cache()
        c = l1_cache()
        warm = [0, 8, 16, 0, 24]
        for ln in warm:
            assert c.access_line(ln) == twin.access_line(ln)
        batch = np.array([8, 32, 0, 16, 40, 8], dtype=np.int64)
        hits = c.access_lines_batched(
            batch, np.zeros(len(batch), dtype=np.int8)
        )
        assert list(hits) == [twin.access_line(int(ln)) for ln in batch]
        for ln in (40, 24, 0):
            assert c.access_line(ln) == twin.access_line(ln)
        assert c.stats == twin.stats

    def test_set_contents_consistent_across_modes(self):
        twin = l1_cache()
        c = l1_cache()
        for ln in (0, 8, 16, 8, 24):  # all map to set 0 (8 sets, 2 ways)
            twin.access_line(ln)
            c.access_line(ln)
        c.access_lines_batched(
            np.array([32], dtype=np.int64), np.zeros(1, dtype=np.int8)
        )
        twin.access_line(32)
        for s in range(8):
            assert c.set_contents(s) == twin.set_contents(s)
        with pytest.raises(SimulationError):
            c.set_contents(99)

    def test_flush_in_array_mode(self):
        c = l1_cache()
        c.access_lines_batched(
            np.array([0, 8, 16], dtype=np.int64), np.zeros(3, dtype=np.int8)
        )
        assert c.contains_line(8)
        c.flush()
        assert c.resident_lines() == 0
        assert not c.contains_line(8)

    def test_validation_errors(self):
        c = l1_cache()
        with pytest.raises(SimulationError):
            c.access_lines_batched(
                np.array([0, 1], dtype=np.int64), np.zeros(1, dtype=np.int8)
            )
        with pytest.raises(SimulationError):
            c.access_lines_batched(
                np.array([0], dtype=np.int64), np.array([5], dtype=np.int8)
            )
        with pytest.raises(SimulationError):
            c.access_lines_batched(
                np.array([-1], dtype=np.int64), np.zeros(1, dtype=np.int8)
            )


class TestRunBatch:
    def generator_trace(self):
        return (
            list(strided_matrix_trace(0, 48, 12, 64))
            + list(contiguous_trace(1 << 16, 4096, "store"))
            + [Access(1 << 18, 1, "prefetch", level=2)]
            + list(contiguous_trace(1 << 18, 2048))
        )

    def compare(self, chip, accesses, core=0, seed=None, with_tlb=False):
        trace = BatchTrace.from_accesses(accesses)
        h_s = MemoryHierarchy(chip, with_tlb=with_tlb, seed=seed)
        h_b = MemoryHierarchy(chip, with_tlb=with_tlb, seed=seed)
        cost_s = run_trace(h_s, core, trace)
        cost_b = h_b.run_batch(core, trace)
        assert cost_s == cost_b
        assert h_s.l1_stats() == h_b.l1_stats()
        assert h_s.l2_stats() == h_b.l2_stats()
        assert h_s.l3_stats() == h_b.l3_stats()
        assert h_s.dram_accesses == h_b.dram_accesses
        if with_tlb:
            assert h_s.tlbs[core].stats == h_b.tlbs[core].stats
        return cost_b

    def test_matches_run_trace_on_generator_traces(self):
        cost = self.compare(small_chip(), self.generator_trace())
        assert cost.accesses > 0
        assert cost.latency_cycles > 0

    def test_matches_on_mobile_chip_without_l3(self):
        self.compare(
            small_chip(base=MOBILE_SOC),
            [a for a in self.generator_trace() if a.kind != "prefetch"],
        )

    def test_matches_with_tlb(self):
        self.compare(small_chip(), self.generator_trace(), with_tlb=True)

    def test_matches_under_random_replacement_with_seed(self):
        self.compare(
            small_chip(ReplacementPolicy.RANDOM),
            self.generator_trace(),
            seed=11,
        )

    def test_force_scalar_is_identical(self):
        chip = small_chip()
        trace = BatchTrace.from_accesses(self.generator_trace())
        h_a = MemoryHierarchy(chip)
        h_b = MemoryHierarchy(chip)
        assert h_a.run_batch(0, trace, force_scalar=True) == h_b.run_batch(
            0, trace
        )
        assert h_a.l1_stats() == h_b.l1_stats()

    def test_write_through_levels_stay_batched(self):
        """Write-through hierarchies run the batched store-propagation
        walk (they used to bail out to the scalar oracle wholesale)."""
        chip = small_chip()
        chip = dataclasses.replace(
            chip,
            l1d=dataclasses.replace(
                chip.l1d, write_policy=WritePolicy.WRITE_THROUGH
            ),
        )
        self.compare(chip, self.generator_trace())
        h = MemoryHierarchy(chip)
        h.run_batch(0, BatchTrace.from_accesses(self.generator_trace()))
        assert h.l1[0].batched_accesses > 0
        assert h.batched_fallback_accesses() == 0

    def test_write_through_chain_matches_scalar(self):
        """Every level write-through: propagated stores chain to DRAM and
        counters stay bit-identical to the scalar replay."""
        chip = small_chip()
        chip = dataclasses.replace(
            chip,
            l1d=dataclasses.replace(
                chip.l1d, write_policy=WritePolicy.WRITE_THROUGH
            ),
            l2=dataclasses.replace(
                chip.l2, write_policy=WritePolicy.WRITE_THROUGH
            ),
        )
        self.compare(chip, self.generator_trace())

    def test_prefetch_target_out_of_range(self):
        chip = small_chip()
        h = MemoryHierarchy(chip)
        bad = BatchTrace.from_accesses([Access(0, 1, "prefetch", level=9)])
        with pytest.raises(SimulationError):
            h.run_batch(0, bad)

    def test_empty_trace(self):
        h = MemoryHierarchy(small_chip())
        cost = h.run_batch(0, BatchTrace.from_rows([]))
        assert cost.accesses == 0
        assert cost.latency_cycles == 0


class TestGebpEngineWiring:
    def test_engines_bit_identical_on_gebp(self):
        blk = solve_cache_blocking(XGENE, 8, 6)
        results = {
            engine: simulate_gebp_cache(
                KERNEL_8X6, blk, nc_slice=6, engine=engine
            )
            for engine in ("scalar", "batched", "auto")
        }
        assert results["scalar"] == results["batched"] == results["auto"]
        assert results["scalar"].kernel_loads > 0

    def test_unknown_engine_rejected(self):
        blk = solve_cache_blocking(XGENE, 8, 6)
        with pytest.raises(SimulationError):
            simulate_gebp_cache(KERNEL_8X6, blk, engine="turbo")

    def test_gebp_traces_shared_across_cores(self):
        blk = solve_cache_blocking(XGENE, 8, 6)
        w0, m0, loads0 = gebp_traces(KERNEL_8X6, blk, nc_slice=6)
        w1, m1, loads1 = gebp_traces(KERNEL_8X6, blk, core=3, nc_slice=6)
        assert loads0 == loads1
        assert len(m0) == len(m1)
        offset = 3 * (1 << 30)
        assert (m1.addresses - m0.addresses == offset).all()
        assert (w1.addresses - w0.addresses == offset).all()

    def test_seed_reproducible_under_random_policy(self):
        chip = dataclasses.replace(
            XGENE,
            l1d=dataclasses.replace(
                XGENE.l1d, replacement=ReplacementPolicy.RANDOM
            ),
        )
        blk = solve_cache_blocking(chip, 8, 6)
        a = simulate_gebp_cache(KERNEL_8X6, blk, chip=chip, nc_slice=6,
                                seed=42)
        b = simulate_gebp_cache(KERNEL_8X6, blk, chip=chip, nc_slice=6,
                                seed=42)
        assert a == b

    def test_gemm_simulator_cache_sim(self):
        from repro.sim import GemmSimulator

        sim = GemmSimulator(XGENE)
        res = sim.cache_sim("OpenBLAS-8x6", nc_slice=6)
        assert 0.0 < res.l1_load_miss_rate < 0.2
        with pytest.raises(SimulationError):
            sim.cache_sim("bogus")


class TestWarmRegion:
    """warm_region must be indistinguishable from the per-line loop."""

    def _pair(self):
        return Cache(XGENE.l2), Cache(XGENE.l2)

    def test_state_and_stats_match_scalar_loop(self):
        batched, scalar = self._pair()
        base, nbytes, lb = 0x40000 + 24, 9 * 1024 + 40, XGENE.l2.line_bytes
        warm_region(batched, base, nbytes, lb)
        for off in range(0, nbytes, lb):
            scalar.access_line((base + off) // lb)
        assert batched.stats.accesses == scalar.stats.accesses
        assert batched.stats.misses == scalar.stats.misses
        # Probing every warmed line hits on both caches identically.
        for off in range(0, nbytes, lb):
            line = (base + off) // lb
            assert batched.access_line(line) == scalar.access_line(line)

    def test_empty_region_is_a_no_op(self):
        cache = Cache(XGENE.l1d)
        warm_region(cache, 0x1000, 0, XGENE.l1d.line_bytes)
        assert cache.stats.accesses == 0

    def test_capacity_eviction_matches(self):
        """Warming past capacity evicts the same lines in both paths."""
        batched, scalar = self._pair()
        lb = XGENE.l2.line_bytes
        nbytes = XGENE.l2.size_bytes + 16 * lb
        warm_region(batched, 0, nbytes, lb)
        for off in range(0, nbytes, lb):
            scalar.access_line(off // lb)
        probes = [0, 7, nbytes // lb - 1]
        for line in probes:
            assert batched.access_line(line) == scalar.access_line(line)
        assert batched.stats == scalar.stats
