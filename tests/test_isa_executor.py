"""Tests for the ISA executor and functional kernel execution.

The headline test: interpreting the *generated assembly* of each kernel
variant over packed slivers reproduces ``C += A^T_packed @ B`` exactly —
rotation, scheduling, register assignment and pointer bookkeeping are all
semantically correct, not merely well-counted.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa import Fmla, Ldr, Nop, Program, Str, VLane, VReg, XReg
from repro.isa.executor import Executor, MachineState, Memory
from repro.kernels import (
    KERNEL_8X6,
    generate_kernel,
    get_variant,
    paper_plan,
    static_plan,
)
from repro.kernels.execute import execute_micro_tile

RNG = np.random.default_rng(42)


class TestMemory:
    def test_map_and_read(self):
        m = Memory()
        m.map_region(0x100, np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.array_equal(m.read(0x108, 2), [2.0, 3.0])

    def test_write(self):
        m = Memory()
        m.map_region(0x100, np.zeros(4))
        m.write(0x110, np.array([7.0, 8.0]))
        assert np.array_equal(m.region_at(0x100), [0, 0, 7.0, 8.0])

    def test_unmapped_access_raises(self):
        m = Memory()
        with pytest.raises(SimulationError):
            m.read(0x0, 2)

    def test_access_crossing_region_end_raises(self):
        m = Memory()
        m.map_region(0x100, np.zeros(2))
        with pytest.raises(SimulationError):
            m.read(0x108, 2)

    def test_unaligned_raises(self):
        m = Memory()
        m.map_region(0x100, np.zeros(4))
        with pytest.raises(SimulationError):
            m.read(0x104, 1)

    def test_overlapping_regions_rejected(self):
        m = Memory()
        m.map_region(0x100, np.zeros(8))
        with pytest.raises(SimulationError):
            m.map_region(0x120, np.zeros(2))

    def test_region_at_unknown_base(self):
        with pytest.raises(SimulationError):
            Memory().region_at(0x5)


class TestExecutor:
    def test_ldr_post_increment(self):
        mem = Memory()
        mem.map_region(0, np.array([1.0, 2.0, 3.0, 4.0]))
        st = MachineState()
        st.set_pointer(XReg(14), 0)
        ex = Executor(st, mem)
        ex.execute(Ldr(dst=VReg(0), base=XReg(14)))
        ex.execute(Ldr(dst=VReg(1), base=XReg(14)))
        assert np.array_equal(st.v(VReg(0)), [1.0, 2.0])
        assert np.array_equal(st.v(VReg(1)), [3.0, 4.0])
        assert st.pointer(XReg(14)) == 32

    def test_str_writes_back(self):
        mem = Memory()
        mem.map_region(0, np.zeros(2))
        st = MachineState()
        st.vregs[3] = [5.0, 6.0]
        st.set_pointer(XReg(9), 0)
        Executor(st, mem).execute(Str(src=VReg(3), base=XReg(9)))
        assert np.array_equal(mem.region_at(0), [5.0, 6.0])

    def test_fmla_by_element(self):
        st = MachineState()
        st.vregs[8] = [1.0, 1.0]
        st.vregs[0] = [2.0, 3.0]
        st.vregs[4] = [10.0, 20.0]
        ex = Executor(st, Memory())
        ex.execute(Fmla(acc=VReg(8), multiplicand=VReg(0),
                        multiplier=VLane(VReg(4), 1)))
        assert np.array_equal(st.v(VReg(8)), [41.0, 61.0])

    def test_nop_and_counter(self):
        ex = Executor(MachineState(), Memory())
        ex.execute(Nop())
        assert ex.instructions_executed == 1

    def test_uninitialized_pointer_raises(self):
        ex = Executor(MachineState(), Memory())
        with pytest.raises(SimulationError):
            ex.execute(Ldr(dst=VReg(0), base=XReg(14)))

    def test_run_times_validation(self):
        ex = Executor(MachineState(), Memory())
        with pytest.raises(SimulationError):
            ex.run(Program("p"), times=-1)


class TestKernelSemantics:
    @pytest.mark.parametrize(
        "name", ["OpenBLAS-8x6", "OpenBLAS-8x4", "OpenBLAS-4x4",
                 "OpenBLAS-8x6-noRR"]
    )
    def test_generated_kernel_computes_correct_product(self, name):
        kernel = get_variant(name)
        mr, nr = kernel.spec.mr, kernel.spec.nr
        kc = kernel.plan.unroll * 6
        a = RNG.standard_normal((kc, mr))
        b = RNG.standard_normal((kc, nr))
        c0 = RNG.standard_normal((mr, nr))
        got = execute_micro_tile(kernel, a, b, c0)
        assert np.allclose(got, c0 + a.T @ b, atol=1e-12)

    def test_paper_rotation_plan_also_correct(self):
        kernel = generate_kernel(KERNEL_8X6, plan=paper_plan())
        kc = 32
        a = RNG.standard_normal((kc, 8))
        b = RNG.standard_normal((kc, 6))
        got = execute_micro_tile(kernel, a, b)
        assert np.allclose(got, a.T @ b, atol=1e-12)

    def test_static_plan_also_correct(self):
        kernel = generate_kernel(KERNEL_8X6, plan=static_plan(KERNEL_8X6))
        kc = 16
        a = RNG.standard_normal((kc, 8))
        b = RNG.standard_normal((kc, 6))
        got = execute_micro_tile(kernel, a, b)
        assert np.allclose(got, a.T @ b, atol=1e-12)

    def test_zero_c_default(self):
        kernel = get_variant("OpenBLAS-8x6")
        kc = 8
        a = RNG.standard_normal((kc, 8))
        b = RNG.standard_normal((kc, 6))
        got = execute_micro_tile(kernel, a, b)
        assert np.allclose(got, a.T @ b, atol=1e-13)

    def test_kc_must_be_multiple_of_unroll(self):
        kernel = get_variant("OpenBLAS-8x6")
        with pytest.raises(SimulationError):
            execute_micro_tile(
                kernel, np.zeros((7, 8)), np.zeros((7, 6))
            )

    def test_shape_validation(self):
        kernel = get_variant("OpenBLAS-8x6")
        with pytest.raises(SimulationError):
            execute_micro_tile(kernel, np.zeros((8, 6)), np.zeros((8, 6)))
        with pytest.raises(SimulationError):
            execute_micro_tile(
                kernel, np.zeros((8, 8)), np.zeros((8, 6)),
                c_tile=np.zeros((4, 4)),
            )

    def test_odd_tile_executes_lane_padded(self):
        """Odd tiles run in the lane-padded layout (they used to be
        rejected outright)."""
        kernel = get_variant("ATLAS-5x5")
        kc = kernel.plan.unroll * 2
        rng = np.random.default_rng(5)
        a = rng.standard_normal((kc, 5))
        b = rng.standard_normal((kc, 5))
        c = rng.standard_normal((5, 5))
        out = execute_micro_tile(kernel, a, b, c_tile=c.copy())
        assert np.allclose(out, c + a.T @ b, atol=1e-11)
