"""Stats-lifecycle property tests.

The observability layer snapshots engine stat objects, which only works
if those objects have a trustworthy lifecycle: ``reset_stats`` must zero
*every* counter (including registered hardware prefetchers),
``flush``/``reset`` must return a component to a state where replaying
the same access stream reproduces the same counters as a fresh object,
and engine-selection metadata (``engine``, ``fallback_reason``) must be
recorded rather than silently swallowed.

The core property, checked per policy and per engine:

    run(work); obj.reset(); run(work)  ==  run(work) on a fresh object
"""

import dataclasses
import random

import pytest

from repro.arch import XGENE, ReplacementPolicy
from repro.blocking import solve_cache_blocking
from repro.kernels import get_variant
from repro.kernels.kernel_spec import PAPER_KERNELS
from repro.memory import MemoryHierarchy
from repro.memory.cache import Cache
from repro.memory.prefetcher import SequentialPrefetcher
from repro.sim import simulate_gebp_cache
from repro.sim.timed_executor import engine_selection, run_timed_micro_tile

SPEC_8X6 = next(s for s in PAPER_KERNELS if s.name == "8x6")


def _small_cache(policy, seed=7):
    params = dataclasses.replace(
        XGENE.l1d, name=f"tiny-{policy.value}", size_bytes=4096,
        line_bytes=64, ways=4, replacement=policy,
    )
    return Cache(params, rng=random.Random(seed)), params


def _mixed_workload(cache, params):
    """A deterministic load/store stream with reuse, conflict misses and
    evictions; returns the hit pattern so state (not just counters) is
    compared."""
    rng = random.Random(123)
    lines = [rng.randrange(0, 4 * params.num_lines) for _ in range(400)]
    hits = []
    for i, line in enumerate(lines):
        kind = "store" if i % 7 == 3 else "load"
        hits.append(cache.access_line(line, kind))
    return hits


class TestCacheLifecycle:
    @pytest.mark.parametrize("policy", list(ReplacementPolicy))
    def test_reset_equals_fresh(self, policy):
        cache, params = _small_cache(policy)
        _mixed_workload(cache, params)
        cache.reset(rng=random.Random(7))

        fresh, _ = _small_cache(policy)
        assert _mixed_workload(cache, params) == _mixed_workload(
            fresh, params
        )
        assert cache.stats == fresh.stats
        assert cache.resident_lines() == fresh.resident_lines()

    @pytest.mark.parametrize(
        "policy", [ReplacementPolicy.LRU, ReplacementPolicy.PLRU]
    )
    def test_flush_plus_reset_stats_equals_fresh(self, policy):
        """For RNG-free policies, flush + reset_stats is a full reset."""
        cache, params = _small_cache(policy)
        _mixed_workload(cache, params)
        cache.flush()
        cache.reset_stats()

        fresh, _ = _small_cache(policy)
        assert _mixed_workload(cache, params) == _mixed_workload(
            fresh, params
        )
        assert cache.stats == fresh.stats

    def test_reset_stats_zeroes_batched_coverage_counters(self):
        cache, params = _small_cache(ReplacementPolicy.LRU)
        _mixed_workload(cache, params)
        cache.reset_stats()
        assert cache.stats.accesses == 0
        assert cache.batched_accesses == 0
        assert cache.batched_fallback_accesses == 0


def _hierarchy_counters(h):
    from repro.obs import snapshot_hierarchy

    return snapshot_hierarchy(h)


def _run_gebp(h, engine):
    blk = solve_cache_blocking(XGENE, SPEC_8X6.mr, SPEC_8X6.nr, threads=1)
    return simulate_gebp_cache(
        SPEC_8X6, blk, chip=XGENE, hierarchy=h, nc_slice=6, engine=engine,
    )


class TestHierarchyLifecycle:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_reset_equals_fresh(self, engine):
        h = MemoryHierarchy(XGENE, seed=0)
        _run_gebp(h, engine)
        h.reset()
        again = _run_gebp(h, engine)

        fresh = MemoryHierarchy(XGENE, seed=0)
        first = _run_gebp(fresh, engine)
        assert dataclasses.astuple(again) == dataclasses.astuple(first)
        assert _hierarchy_counters(h) == _hierarchy_counters(fresh)

    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_flush_plus_reset_stats_equals_fresh(self, engine):
        """XGENE is all-LRU, so the two-step lifecycle is equivalent to a
        full reset — including the array-mode clock rewind."""
        h = MemoryHierarchy(XGENE, seed=0)
        _run_gebp(h, engine)
        h.flush()
        h.reset_stats()
        again = _run_gebp(h, engine)

        fresh = MemoryHierarchy(XGENE, seed=0)
        first = _run_gebp(fresh, engine)
        assert dataclasses.astuple(again) == dataclasses.astuple(first)
        assert _hierarchy_counters(h) == _hierarchy_counters(fresh)

    def test_reset_covers_random_policy_rng(self):
        """reset() re-seeds per-cache victim RNGs, so a RANDOM-replacement
        hierarchy replays identically after reset."""
        chip = dataclasses.replace(
            XGENE,
            l1d=dataclasses.replace(
                XGENE.l1d, replacement=ReplacementPolicy.RANDOM
            ),
        )
        h = MemoryHierarchy(chip, seed=11)
        first = _run_gebp(h, "scalar")
        h.reset()
        again = _run_gebp(h, "scalar")
        assert dataclasses.astuple(again) == dataclasses.astuple(first)

    def test_all_caches_enumerates_every_level(self):
        h = MemoryHierarchy(XGENE, seed=0)
        keys = list(h.all_caches())
        assert keys == (
            [f"l1[{i}]" for i in range(XGENE.cores)]
            + [f"l2[{j}]" for j in range(XGENE.modules)]
            + ["l3"]
        )


class TestPrefetcherLifecycle:
    def _observe_some(self, pf):
        for line in (10, 11, 12, 40, 41):
            pf.observe(line, "a")

    def test_hierarchy_reset_stats_covers_prefetcher(self):
        """The original bug: hardware-prefetch counters survived
        ``reset_stats`` because the hierarchy did not know about the
        prefetchers installed in front of it."""
        h = MemoryHierarchy(XGENE, seed=0)
        pf = SequentialPrefetcher(h, core=0, late_rate=0.0)
        self._observe_some(pf)
        assert pf.stats.observed_lines > 0
        h.reset_stats()
        assert pf.stats.observed_lines == 0
        assert pf.stats.issued == 0
        assert pf.stats.late == 0

    def test_hierarchy_flush_resets_streams(self):
        h = MemoryHierarchy(XGENE, seed=0)
        pf = SequentialPrefetcher(h, core=0, late_rate=0.5)
        self._observe_some(pf)
        h.flush()
        h.reset_stats()
        self._observe_some(pf)

        fresh_h = MemoryHierarchy(XGENE, seed=0)
        fresh = SequentialPrefetcher(fresh_h, core=0, late_rate=0.5)
        self._observe_some(fresh)
        assert pf.stats == fresh.stats

    def test_prefetcher_stats_merge(self):
        h = MemoryHierarchy(XGENE, seed=0)
        a = SequentialPrefetcher(h, core=0, late_rate=0.0)
        b = SequentialPrefetcher(h, core=1, late_rate=0.0)
        self._observe_some(a)
        self._observe_some(b)
        merged = h.prefetcher_stats()
        assert merged["observed_lines"] == (
            a.stats.observed_lines + b.stats.observed_lines
        )
        assert merged["issued"] == a.stats.issued + b.stats.issued

    def test_install_sink_prefetcher_is_not_registered(self):
        """A trace-recording prefetcher (install sink, no hierarchy) owns
        its own lifecycle."""
        seen = []
        pf = SequentialPrefetcher(
            None, core=0, late_rate=0.0,
            install=lambda line, level: seen.append(line),
        )
        self._observe_some(pf)
        assert seen
        pf.reset()
        assert pf.stats.observed_lines == 0
        assert not pf._last_line


class TestEngineSelection:
    def test_auto_compiles_odd_tiles(self):
        """The odd-tile ATLAS kernel compiles in the lane-padded layout
        (it used to fall back with an "odd tile" reason)."""
        kernel = get_variant("ATLAS-5x5")
        assert engine_selection(kernel, "auto") == ("compiled", None)

    def test_auto_records_fallback_reason(self):
        from tests.test_compiled_engine import _noncompilable_kernel

        selected, reason = engine_selection(_noncompilable_kernel(), "auto")
        assert selected == "interpreted"
        assert "full-vector" in reason

    def test_auto_prefers_compiled(self):
        kernel = get_variant("OpenBLAS-8x6")
        assert engine_selection(kernel, "auto") == ("compiled", None)

    def test_explicit_engines(self):
        kernel = get_variant("OpenBLAS-8x6")
        assert engine_selection(kernel, "interpreted") == (
            "interpreted", None,
        )
        assert engine_selection(kernel, "compiled") == ("compiled", None)

    def test_compiled_on_noncompilable_raises(self):
        from tests.test_compiled_engine import _noncompilable_kernel

        with pytest.raises(Exception, match="full-vector"):
            engine_selection(_noncompilable_kernel(), "compiled")

    def test_unknown_engine_rejected(self):
        kernel = get_variant("OpenBLAS-8x6")
        with pytest.raises(Exception, match="engine"):
            engine_selection(kernel, "turbo")

    def test_timed_run_records_engine(self):
        import numpy as np

        kernel = get_variant("OpenBLAS-8x6")
        spec = kernel.spec
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, spec.mr))
        b = rng.standard_normal((8, spec.nr))
        auto = run_timed_micro_tile(kernel, a, b, engine="auto")
        assert auto.engine == "compiled"
        assert auto.fallback_reason is None
        interp = run_timed_micro_tile(kernel, a, b, engine="interpreted")
        assert interp.engine == "interpreted"
        assert interp.fallback_reason is None
        assert interp.cycles == auto.cycles
