"""Property-based tests (hypothesis) for the cache simulator."""

import dataclasses

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch import CacheParams, ReplacementPolicy
from repro.arch.presets import MOBILE_SOC, XGENE
from repro.memory import Access, BatchTrace, Cache, MemoryHierarchy, run_trace

SMALL_GEOMS = st.sampled_from(
    [
        (2, 2, 64),
        (4, 8, 64),
        (1, 4, 64),
        (8, 2, 32),
        (4, 16, 128),
    ]
)

ACCESSES = st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=300)


def make_cache(ways, sets, line, policy=ReplacementPolicy.LRU):
    return Cache(CacheParams(
        name="P", size_bytes=ways * sets * line, line_bytes=line, ways=ways,
        latency_cycles=1, replacement=policy,
    ))


class TestCacheInvariants:
    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_capacity(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
        assert c.resident_lines() <= ways * sets

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_hits_plus_misses_equals_accesses(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
        assert c.stats.hits + c.stats.misses == c.stats.accesses == len(lines)

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_immediate_rereference_always_hits(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
            assert c.access_line(ln) is True

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_accessed_line_is_resident(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
            assert c.contains_line(ln)

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_working_set_within_ways_never_misses_twice(self, geom, lines):
        """LRU: if all lines map to distinct slots within capacity per set,
        each line misses at most once (its cold miss)."""
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        # Restrict to a working set that fits: at most `ways` distinct
        # lines per set.
        per_set = {}
        filtered = []
        for ln in lines:
            s = ln % sets
            bucket = per_set.setdefault(s, set())
            if ln in bucket or len(bucket) < ways:
                bucket.add(ln)
                filtered.append(ln)
        for ln in filtered:
            c.access_line(ln)
        assert c.stats.misses == sum(len(b) for b in per_set.values())

    @given(SMALL_GEOMS, ACCESSES,
           st.sampled_from([ReplacementPolicy.LRU, ReplacementPolicy.PLRU,
                            ReplacementPolicy.RANDOM]))
    @settings(max_examples=60)
    def test_all_policies_respect_capacity(self, geom, lines, policy):
        ways, sets, line = geom
        c = make_cache(ways, sets, line, policy)
        for ln in lines:
            c.access_line(ln)
        assert c.resident_lines() <= ways * sets
        assert c.stats.accesses == len(lines)

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=40)
    def test_flush_forgets_everything(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
        c.flush()
        assert c.resident_lines() == 0
        for ln in set(lines):
            assert not c.contains_line(ln)

    @given(SMALL_GEOMS, st.lists(
        st.tuples(st.integers(0, 127), st.booleans()),
        min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_writeback_only_for_dirty(self, geom, ops):
        """Writebacks never exceed the number of store-touched lines."""
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        stores = 0
        for ln, is_store in ops:
            c.access_line(ln, "store" if is_store else "load")
            stores += is_store
        assert c.stats.writebacks <= stores


def _shrunk_chip(policy, base=XGENE):
    """A tiny-cache chip so short random traces still cause evictions."""
    repl = {
        "l1d": dataclasses.replace(
            base.l1d, size_bytes=1024, ways=2, replacement=policy
        ),
        "l2": dataclasses.replace(
            base.l2, size_bytes=2048, ways=4, replacement=policy
        ),
    }
    if base.l3:
        repl["l3"] = dataclasses.replace(
            base.l3, size_bytes=4096, ways=4, replacement=policy
        )
    return dataclasses.replace(base, **repl)


POLICIES = st.sampled_from(list(ReplacementPolicy))

RANDOM_ACCESSES = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 14) - 1),  # address
        st.integers(min_value=0, max_value=150),            # nbytes
        st.sampled_from(["load", "store", "prefetch"]),
        st.integers(min_value=1, max_value=2),              # prefetch level
    ),
    min_size=1,
    max_size=250,
)


class TestBatchedScalarEquivalence:
    """The vectorized engine must be bit-identical to the scalar oracle
    on arbitrary traces — every CacheStats field at every level, the
    DRAM counter, the TLB counters and the returned TraceCost."""

    def _compare(self, chip, rows, core, with_tlb=False, seed=17):
        n_levels = 3 if chip.l3 else 2
        trace = BatchTrace.from_accesses(
            Access(addr, nb, kind, min(level, n_levels))
            for addr, nb, kind, level in rows
        )
        h_s = MemoryHierarchy(chip, with_tlb=with_tlb, seed=seed)
        h_b = MemoryHierarchy(chip, with_tlb=with_tlb, seed=seed)
        cost_s = run_trace(h_s, core, trace)
        cost_b = h_b.run_batch(core, trace)
        assert cost_s == cost_b
        for c_s, c_b in zip(h_s.l1, h_b.l1):
            assert c_s.stats == c_b.stats
        for c_s, c_b in zip(h_s.l2, h_b.l2):
            assert c_s.stats == c_b.stats
        assert h_s.l3_stats() == h_b.l3_stats()
        assert h_s.dram_accesses == h_b.dram_accesses
        if with_tlb:
            assert h_s.tlbs[core].stats == h_b.tlbs[core].stats

    @given(RANDOM_ACCESSES, POLICIES,
           st.integers(min_value=0, max_value=XGENE.cores - 1))
    @settings(max_examples=40)
    def test_hierarchy_equivalence_all_policies(self, rows, policy, core):
        self._compare(_shrunk_chip(policy), rows, core)

    @given(RANDOM_ACCESSES,
           st.integers(min_value=0, max_value=MOBILE_SOC.cores - 1))
    @settings(max_examples=25)
    def test_hierarchy_equivalence_no_l3_with_tlb(self, rows, core):
        chip = _shrunk_chip(ReplacementPolicy.LRU, base=MOBILE_SOC)
        chip = dataclasses.replace(chip, tlb=XGENE.tlb)
        self._compare(chip, rows, core, with_tlb=True)

    @given(st.lists(
        st.tuples(st.integers(0, 255), st.booleans()),
        min_size=1, max_size=300,
    ), st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=40)
    def test_single_cache_batched_matches_scalar(self, ops, tail_min):
        """Both sweep paths (vector rounds and the per-access tail) agree
        with the scalar cache on hit pattern, stats and final contents."""
        import numpy as np

        c_s = make_cache(2, 4, 64)
        c_b = make_cache(2, 4, 64)
        scalar_hits = [
            c_s.access_line(ln, "store" if s else "load") for ln, s in ops
        ]
        lines = np.array([ln for ln, _ in ops], dtype=np.int64)
        kinds = np.array([1 if s else 0 for _, s in ops], dtype=np.int8)
        hits = c_b.access_lines_batched(lines, kinds, tail_min=tail_min)
        assert list(hits) == scalar_hits
        assert c_s.stats == c_b.stats
        for ln in set(lines.tolist()):
            assert c_s.contains_line(ln) == c_b.contains_line(ln)
