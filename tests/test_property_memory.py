"""Property-based tests (hypothesis) for the cache simulator."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.arch import CacheParams, ReplacementPolicy
from repro.memory import Cache

SMALL_GEOMS = st.sampled_from(
    [
        (2, 2, 64),
        (4, 8, 64),
        (1, 4, 64),
        (8, 2, 32),
        (4, 16, 128),
    ]
)

ACCESSES = st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=300)


def make_cache(ways, sets, line, policy=ReplacementPolicy.LRU):
    return Cache(CacheParams(
        name="P", size_bytes=ways * sets * line, line_bytes=line, ways=ways,
        latency_cycles=1, replacement=policy,
    ))


class TestCacheInvariants:
    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_capacity(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
        assert c.resident_lines() <= ways * sets

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_hits_plus_misses_equals_accesses(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
        assert c.stats.hits + c.stats.misses == c.stats.accesses == len(lines)

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_immediate_rereference_always_hits(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
            assert c.access_line(ln) is True

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_accessed_line_is_resident(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
            assert c.contains_line(ln)

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=60)
    def test_working_set_within_ways_never_misses_twice(self, geom, lines):
        """LRU: if all lines map to distinct slots within capacity per set,
        each line misses at most once (its cold miss)."""
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        # Restrict to a working set that fits: at most `ways` distinct
        # lines per set.
        per_set = {}
        filtered = []
        for ln in lines:
            s = ln % sets
            bucket = per_set.setdefault(s, set())
            if ln in bucket or len(bucket) < ways:
                bucket.add(ln)
                filtered.append(ln)
        for ln in filtered:
            c.access_line(ln)
        assert c.stats.misses == sum(len(b) for b in per_set.values())

    @given(SMALL_GEOMS, ACCESSES,
           st.sampled_from([ReplacementPolicy.LRU, ReplacementPolicy.PLRU,
                            ReplacementPolicy.RANDOM]))
    @settings(max_examples=60)
    def test_all_policies_respect_capacity(self, geom, lines, policy):
        ways, sets, line = geom
        c = make_cache(ways, sets, line, policy)
        for ln in lines:
            c.access_line(ln)
        assert c.resident_lines() <= ways * sets
        assert c.stats.accesses == len(lines)

    @given(SMALL_GEOMS, ACCESSES)
    @settings(max_examples=40)
    def test_flush_forgets_everything(self, geom, lines):
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        for ln in lines:
            c.access_line(ln)
        c.flush()
        assert c.resident_lines() == 0
        for ln in set(lines):
            assert not c.contains_line(ln)

    @given(SMALL_GEOMS, st.lists(
        st.tuples(st.integers(0, 127), st.booleans()),
        min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_writeback_only_for_dirty(self, geom, ops):
        """Writebacks never exceed the number of store-touched lines."""
        ways, sets, line = geom
        c = make_cache(ways, sets, line)
        stores = 0
        for ln, is_store in ops:
            c.access_line(ln, "store" if is_store else "load")
            stores += is_store
        assert c.stats.writebacks <= stores
