"""One top-level seed must deterministically reach every RNG.

These tests pin the seed-plumbing contract end to end: the CLI ``--seed``
flags, the per-cache victim RNG derivation inside ``MemoryHierarchy``,
the per-oracle stream derivation inside the fuzzer, and the repeat-run
determinism of a whole ``run_suite`` sweep.
"""

import json

from repro.arch.params import ReplacementPolicy
from repro.arch.presets import XGENE
from repro.cli import main
from repro.memory.batch import BatchTrace
from repro.memory.hierarchy import MemoryHierarchy
from repro.verify import run_suite, with_replacement


def _random_chip():
    return with_replacement(XGENE, ReplacementPolicy.RANDOM)


def _thrash_trace(chip):
    # More distinct lines than the L1 holds, so RANDOM eviction fires.
    line = chip.l1d.line_bytes
    lines = 4 * chip.l1d.size_bytes // line
    rows = [(i * line, 8, 0, 1) for i in range(lines)] * 3
    return BatchTrace.from_rows(rows)


def _victim_fingerprint(seed):
    chip = _random_chip()
    h = MemoryHierarchy(chip, seed=seed)
    h.run_batch(0, _thrash_trace(chip))
    return tuple(
        (
            key,
            cache.stats.evictions,
            tuple(
                tuple(cache.set_contents(s))
                for s in range(cache.params.num_sets)
            ),
        )
        for key, cache in sorted(h.all_caches().items())
    )


class TestHierarchySeed:
    def test_same_seed_same_victims(self):
        assert _victim_fingerprint(3) == _victim_fingerprint(3)

    def test_different_seed_different_victims(self):
        assert _victim_fingerprint(3) != _victim_fingerprint(4)


class TestSuiteDeterminism:
    def test_repeat_run_is_identical(self):
        # The whole sweep document — every case of every oracle plus the
        # self-test — must be byte-identical across repeat runs in one
        # process and (via string-seeded RNGs) across processes.
        first = run_suite(seed=11, budget="smoke", suite="all")
        second = run_suite(seed=11, budget="smoke", suite="all")
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_seed_changes_the_sweep(self):
        a = run_suite(seed=0, budget="smoke", suite="lru", selftest=False)
        b = run_suite(seed=1, budget="smoke", suite="lru", selftest=False)
        assert json.dumps(a, sort_keys=True) != json.dumps(
            b, sort_keys=True
        )


class TestCliSeedFlags:
    def _report(self, tmp_path, name, argv):
        path = tmp_path / name
        assert main(argv + ["--json", str(path)]) == 0
        return json.loads(path.read_text())

    def test_cachesim_seed_reaches_the_hierarchy(self, tmp_path):
        argv = ["cachesim", "--kernel", "OpenBLAS-4x4", "--nc-slice", "4"]
        a = self._report(tmp_path, "a.json", argv + ["--seed", "0"])
        b = self._report(tmp_path, "b.json", argv + ["--seed", "0"])
        # XGENE is all-LRU so results match regardless; the pin here is
        # that the flag exists, lands in params, and the run reports are
        # reproducible under a fixed seed.
        assert a["params"]["seed"] == 0
        assert a["stats"] == b["stats"]

    def test_timed_seed_reaches_the_operands(self, tmp_path):
        argv = ["timed", "--kernel", "OpenBLAS-4x4", "--kc", "10"]
        a = self._report(tmp_path, "a.json", argv + ["--seed", "1"])
        b = self._report(tmp_path, "b.json", argv + ["--seed", "1"])
        c = self._report(tmp_path, "c.json", argv + ["--seed", "2"])
        assert a["stats"]["run"] == b["stats"]["run"]
        # Different operand seeds must change the computed C tile but
        # not the cycle count (timing is data-independent).
        assert a["stats"]["run"] != c["stats"]["run"]
        assert (a["stats"]["run"]["cycles"]
                == c["stats"]["run"]["cycles"])

    def test_verify_seed_lands_in_report(self, tmp_path):
        doc = self._report(
            tmp_path, "v.json",
            ["verify", "--suite", "lru", "--seed", "42",
             "--budget", "smoke"],
        )
        assert doc["params"]["seed"] == 42
        assert doc["stats"]["verify"]["seed"] == 42
