"""Unit tests for the multi-core memory hierarchy and TLB."""

import pytest

from repro.arch import XGENE, TlbParams, single_core
from repro.errors import SimulationError
from repro.memory import KIND_STORE, MemoryHierarchy, Tlb


class TestTopology:
    def test_counts(self):
        h = MemoryHierarchy(XGENE)
        assert len(h.l1) == 8
        assert len(h.l2) == 4
        assert h.l3 is not None

    def test_module_mapping(self):
        h = MemoryHierarchy(XGENE)
        assert h.module_of(0) == 0
        assert h.module_of(1) == 0
        assert h.module_of(2) == 1
        assert h.module_of(7) == 3

    def test_core_out_of_range(self):
        h = MemoryHierarchy(XGENE)
        with pytest.raises(SimulationError):
            h.access_line(8, 0)

    def test_levels_for_core(self):
        h = MemoryHierarchy(XGENE)
        path = h.levels_for(3)
        assert path[0] is h.l1[3]
        assert path[1] is h.l2[1]
        assert path[2] is h.l3


class TestAccessWalk:
    def test_cold_access_reaches_dram(self):
        h = MemoryHierarchy(XGENE)
        res = h.access_line(0, 100)
        assert res.level_hit == 4  # past L1, L2, L3
        assert res.latency_cycles == XGENE.dram.latency_cycles
        assert h.dram_accesses == 1

    def test_second_access_hits_l1(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 100)
        res = h.access_line(0, 100)
        assert res.level_hit == 1
        assert res.latency_cycles == XGENE.l1d.latency_cycles

    def test_allocation_fills_all_levels(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 100)
        assert h.l1[0].contains_line(100)
        assert h.l2[0].contains_line(100)
        assert h.l3.contains_line(100)

    def test_sharing_within_module(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 100)    # core 0 warms module 0's L2
        res = h.access_line(1, 100)  # core 1 shares that L2
        assert res.level_hit == 2

    def test_sharing_across_modules_via_l3(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 100)
        res = h.access_line(2, 100)  # different module: miss L1+L2, hit L3
        assert res.level_hit == 3

    def test_access_bytes_line_split(self):
        h = MemoryHierarchy(XGENE)
        results = h.access_bytes(0, 60, 8)  # crosses the 64B boundary
        assert len(results) == 2

    def test_access_bytes_empty(self):
        h = MemoryHierarchy(XGENE)
        assert h.access_bytes(0, 0, 0) == []

    def test_store_traffic_counted(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 5, KIND_STORE)
        assert h.l1_stats(0).stores == 1


class TestPrefetch:
    def test_prefetch_l1_makes_demand_hit(self):
        h = MemoryHierarchy(XGENE)
        h.prefetch_line(0, 42, target_level=1)
        res = h.access_line(0, 42)
        assert res.level_hit == 1
        # Prefetch traffic does not count as demand loads.
        assert h.l1_stats(0).loads == 1
        assert h.l1_stats(0).prefetches == 1

    def test_prefetch_l2_skips_l1(self):
        h = MemoryHierarchy(XGENE)
        h.prefetch_line(0, 42, target_level=2)
        assert not h.l1[0].contains_line(42)
        res = h.access_line(0, 42)
        assert res.level_hit == 2

    def test_prefetch_bad_level(self):
        h = MemoryHierarchy(XGENE)
        with pytest.raises(SimulationError):
            h.prefetch_line(0, 42, target_level=9)

    def test_prefetch_idempotent(self):
        h = MemoryHierarchy(XGENE)
        h.prefetch_line(0, 42, target_level=1)
        h.prefetch_line(0, 42, target_level=1)
        assert h.l1_stats(0).prefetches == 2
        assert h.l1_stats(0).prefetch_misses == 1


class TestStatsAndReset:
    def test_merged_l1_stats(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 1)
        h.access_line(3, 2)
        assert h.l1_stats().loads == 2

    def test_flush_then_miss(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 1)
        h.flush()
        res = h.access_line(0, 1)
        assert res.level_hit == 4

    def test_reset_stats(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 1)
        h.reset_stats()
        assert h.l1_stats().accesses == 0
        assert h.dram_accesses == 0

    def test_l2_l3_stats_access(self):
        h = MemoryHierarchy(XGENE)
        h.access_line(0, 1)
        assert h.l2_stats(0).loads == 1
        assert h.l2_stats().loads == 1
        assert h.l3_stats().loads == 1

    def test_no_l3_chip(self):
        chip = single_core(XGENE)
        import dataclasses
        chip2 = dataclasses.replace(chip, l3=None)
        h = MemoryHierarchy(chip2)
        res = h.access_line(0, 0)
        assert res.level_hit == 3  # DRAM directly after L2
        assert h.l3_stats().accesses == 0


class TestTlb:
    def test_tlb_hit_miss(self):
        t = Tlb(TlbParams(entries=2, page_bytes=4096))
        assert t.access_page(0) is False
        assert t.access_page(0) is True
        t.access_page(1)
        t.access_page(2)  # evicts page 0 (LRU, capacity 2)
        assert t.access_page(0) is False
        assert t.stats.accesses == 5

    def test_tlb_line_to_page(self):
        t = Tlb(TlbParams(entries=8, page_bytes=4096))
        t.access_line(0, 64)
        assert t.access_line(63, 64) is True   # same 4K page
        assert t.access_line(64, 64) is False  # next page

    def test_hierarchy_with_tlb(self):
        h = MemoryHierarchy(XGENE, with_tlb=True)
        res1 = h.access_line(0, 0)
        assert res1.tlb_miss is True
        res2 = h.access_line(0, 0)
        assert res2.tlb_miss is False
        # TLB miss penalty charged on top of the level latency.
        assert res1.latency_cycles == (
            XGENE.dram.latency_cycles + XGENE.tlb.miss_penalty_cycles
        )

    def test_tlb_reset(self):
        t = Tlb(TlbParams())
        t.access_page(1)
        t.flush()
        t.reset_stats()
        assert t.stats.accesses == 0
        assert t.access_page(1) is False


class TestRunBatchLevels:
    """Per-access level/latency replay vs the scalar engine oracle."""

    def _trace(self, seed=0, n=400):
        import numpy as np

        from repro.memory import BatchTrace
        from repro.memory.cache import CODE_LOAD, CODE_PREFETCH, CODE_STORE

        rng = np.random.default_rng(seed)
        rows = []
        for _ in range(n):
            r = rng.random()
            addr = int(rng.integers(0, 1 << 16))
            if r < 0.15:
                rows.append((addr, 1, CODE_PREFETCH,
                             int(rng.integers(1, 4))))
            elif r < 0.3:
                rows.append((addr, 8, CODE_STORE, 1))
            else:
                # Widths up to 96 bytes cross line boundaries.
                rows.append((addr, int(rng.integers(1, 96)), CODE_LOAD, 1))
        return BatchTrace.from_rows(rows)

    def _compare(self, with_tlb):
        import numpy as np

        trace = self._trace()
        h_fast = MemoryHierarchy(XGENE, with_tlb=with_tlb)
        h_ref = MemoryHierarchy(XGENE, with_tlb=with_tlb)
        lv_fast, lat_fast = h_fast.run_batch_levels(0, trace)
        lv_ref, lat_ref = h_ref.run_batch_levels(0, trace, force_scalar=True)
        assert np.array_equal(lv_fast, lv_ref)
        assert np.array_equal(lat_fast, lat_ref)
        assert h_fast.l1_stats(0) == h_ref.l1_stats(0)
        assert h_fast.l2_stats(0) == h_ref.l2_stats(0)
        assert h_fast.l3_stats() == h_ref.l3_stats()
        assert h_fast.dram_accesses == h_ref.dram_accesses

    def test_matches_scalar_engine(self):
        self._compare(with_tlb=False)

    def test_matches_scalar_engine_with_tlb(self):
        self._compare(with_tlb=True)

    def test_prefetch_level_out_of_range(self):
        from repro.memory import BatchTrace
        from repro.memory.cache import CODE_PREFETCH

        h = MemoryHierarchy(XGENE)
        trace = BatchTrace.from_rows([(0, 1, CODE_PREFETCH, 9)])
        with pytest.raises(SimulationError):
            h.run_batch_levels(0, trace)
