"""Asymmetric big.LITTLE support: clusters, weighted partitioning,
energy, and the bugfix sweep that rode along (pool-stats call counter,
executor validation shortcut, ``single_core`` field drops, preset-choice
drift)."""

import dataclasses
import threading

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.arch import (
    BIG_LITTLE,
    MOBILE_SOC,
    PRESETS,
    XGENE,
    ChipParams,
    CoreClusterParams,
    get_preset,
    preset_names,
    single_core,
)
from repro.blocking import CacheBlocking
from repro.blocking.cache_blocking import (
    solve_cache_blocking,
    solve_class_blockings,
)
from repro.errors import ArchitectureError, GemmError, SimulationError
from repro.gemm import GemmTrace, PoolStats, dgemm, parallel_dgemm
from repro.gemm.parallel import _thread_row_blocks, apportion_blocks
from repro.sim.asym import asym_exhibit, class_rates, partition_model
from repro.sim.energy import dgemm_energy
from repro.sim.gemm_sim import GemmSimulator

RNG = np.random.default_rng(4242)

SMALL_BLOCKING = CacheBlocking(
    mr=8, nr=6, kc=64, mc=24, nc=48, k1=1, k2=2, k3=1
)


def fmat(m, n):
    return np.asfortranarray(RNG.standard_normal((m, n)))


def scaled_chip(big_freq, little_freq):
    """A BIG_LITTLE variant with rescaled per-class clock rates."""
    big, little = BIG_LITTLE.clusters
    big = dataclasses.replace(
        big, core=dataclasses.replace(big.core, frequency_hz=big_freq)
    )
    little = dataclasses.replace(
        little,
        core=dataclasses.replace(little.core, frequency_hz=little_freq),
    )
    return dataclasses.replace(
        BIG_LITTLE, core=big.core, clusters=(big, little)
    )


class TestClusterModel:
    def test_big_little_shape(self):
        assert BIG_LITTLE.is_asymmetric
        assert [c.name for c in BIG_LITTLE.clusters] == ["big", "LITTLE"]
        assert sum(c.cores for c in BIG_LITTLE.clusters) == BIG_LITTLE.cores
        assert BIG_LITTLE.peak_flops == sum(
            c.peak_flops for c in BIG_LITTLE.clusters
        )

    def test_symmetric_chips_have_no_clusters(self):
        for chip in (XGENE, MOBILE_SOC):
            assert chip.clusters == ()
            assert not chip.is_asymmetric
            (synth,) = chip.core_clusters
            assert synth.name == "all"
            assert synth.cores == chip.cores
            assert synth.core == chip.core

    def test_thread_clusters_fill_in_declaration_order(self):
        assert list(BIG_LITTLE.thread_clusters(1)) == [0]
        assert list(BIG_LITTLE.thread_clusters(3)) == [0, 0, 1]
        assert list(BIG_LITTLE.thread_clusters(6)) == [0, 0, 1, 1, 1, 1]

    def test_cluster_view_is_symmetric(self):
        for index, cluster in enumerate(BIG_LITTLE.clusters):
            view = BIG_LITTLE.cluster_view(index)
            assert not view.is_asymmetric
            assert view.cores == cluster.cores
            assert view.core == cluster.core
            assert view.l3.shared_by == cluster.cores
            assert view.name == f"{BIG_LITTLE.name}:{cluster.name}"

    def test_cluster_core_sum_must_match(self):
        big, little = BIG_LITTLE.clusters
        with pytest.raises(ArchitectureError):
            dataclasses.replace(BIG_LITTLE, cores=5)

    def test_flat_fields_must_mirror_lead_cluster(self):
        big, little = BIG_LITTLE.clusters
        with pytest.raises(ArchitectureError):
            dataclasses.replace(BIG_LITTLE, core=little.core)

    def test_cluster_l2_sharing_must_match_module(self):
        big = BIG_LITTLE.clusters[0]
        with pytest.raises(ArchitectureError):
            dataclasses.replace(
                big, l2=dataclasses.replace(big.l2, shared_by=4)
            )


class TestWeightedPartition:
    @given(st.integers(0, 64), st.lists(
        st.floats(0.1, 16.0, allow_nan=False), min_size=1, max_size=8,
    ))
    @settings(max_examples=80)
    def test_apportion_conserves_blocks(self, count, weights):
        counts = apportion_blocks(count, weights)
        assert sum(counts) == count
        assert all(c >= 0 for c in counts)

    def test_apportion_is_proportional(self):
        assert apportion_blocks(6, [2.0, 1.0, 1.0]) == [3, 2, 1]
        assert apportion_blocks(8, [1.0, 1.0]) == [4, 4]

    def test_apportion_rejects_bad_weights(self):
        with pytest.raises(GemmError):
            apportion_blocks(4, [])
        with pytest.raises(GemmError):
            apportion_blocks(4, [1.0, -1.0])
        with pytest.raises(GemmError):
            apportion_blocks(4, [0.0, 0.0])

    @given(
        st.integers(1, 40), st.integers(2, 6),
        st.lists(st.sampled_from([1.0, 1.3, 2.0, 3.7, 8.0]),
                 min_size=2, max_size=6),
    )
    @settings(max_examples=80)
    def test_weighted_split_covers_every_block_once(
        self, blocks_m, threads, ratios
    ):
        weights = (ratios * threads)[:threads]
        mc = 8
        split = _thread_row_blocks(blocks_m * mc, mc, threads, weights)
        flat = sorted(b for run in split for b in run)
        assert flat == list(range(0, blocks_m * mc, mc))
        for run in split:
            # Weighted runs are contiguous (cache-friendly slabs).
            assert not run or run == list(
                range(run[0], run[0] + len(run) * mc, mc)
            )

    @given(
        st.integers(1, 60), st.integers(1, 40), st.integers(1, 70),
        st.sampled_from([1.0, 1.5, 2.4 / 1.3, 3.3, 8.0]),
        st.integers(2, 6), st.integers(0, 2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_weighted_parallel_bit_identical_to_serial(
        self, m, n, k, ratio, threads, seed
    ):
        chip = scaled_chip(int(1.3e9 * ratio), int(1.3e9))
        rng = np.random.default_rng(seed)
        a = np.asfortranarray(rng.standard_normal((m, k)))
        b = np.asfortranarray(rng.standard_normal((k, n)))
        c = np.asfortranarray(rng.standard_normal((m, n)))
        serial = dgemm(a, b, c.copy(order="F"), blocking=SMALL_BLOCKING,
                       alpha=1.25, beta=-0.5)
        weighted = parallel_dgemm(
            a, b, c.copy(order="F"), threads=threads,
            blocking=SMALL_BLOCKING, alpha=1.25, beta=-0.5,
            chip=chip, partition="weighted",
        )
        assert np.array_equal(serial, weighted)

    def test_auto_partition_goes_weighted_on_asym_chips(self):
        a, b, c = fmat(64, 32), fmat(32, 48), fmat(64, 48)
        trace = GemmTrace()
        stats = PoolStats()
        parallel_dgemm(a, b, c, threads=4, blocking=SMALL_BLOCKING,
                       chip=BIG_LITTLE, trace=trace, stats=stats)
        assert trace.thread_classes == {0: "big", 1: "big",
                                        2: "LITTLE", 3: "LITTLE"}
        assert set(trace.class_flops()) == {"big", "LITTLE"}
        assert stats.thread_class == trace.thread_classes

    def test_partition_name_is_validated(self):
        a, b, c = fmat(8, 8), fmat(8, 8), fmat(8, 8)
        with pytest.raises(GemmError):
            parallel_dgemm(a, b, c, threads=2, blocking=SMALL_BLOCKING,
                           partition="fastest")

    def test_symmetric_chip_defaults_to_round_robin(self):
        """``auto`` on a symmetric chip must not change the historical
        split (same thread gets the same interleaved blocks)."""
        a, b, c = fmat(97, 33), fmat(33, 50), fmat(97, 50)
        base = parallel_dgemm(a, b, c.copy(order="F"), threads=3,
                              blocking=SMALL_BLOCKING)
        auto = parallel_dgemm(a, b, c.copy(order="F"), threads=3,
                              blocking=SMALL_BLOCKING, chip=XGENE,
                              partition="auto")
        assert np.array_equal(base, auto)


class TestBugfixSweep:
    def test_record_call_is_atomic_under_threads(self):
        stats = PoolStats()
        n_threads, reps = 16, 500
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(reps):
                stats.record_call()

        workers = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert stats.calls == n_threads * reps

    def test_invalid_pool_rejected_even_inline(self):
        """threads=1 used to shortcut to the inline executor before
        validating ``pool``; bad arguments must fail loudly always."""
        a, b, c = fmat(8, 8), fmat(8, 8), fmat(8, 8)
        for threads in (1, 2):
            with pytest.raises(GemmError):
                parallel_dgemm(a, b, c.copy(order="F"), threads=threads,
                               blocking=SMALL_BLOCKING,
                               use_os_threads=True, pool=123)
            with pytest.raises(GemmError):
                parallel_dgemm(a, b, c.copy(order="F"), threads=threads,
                               blocking=SMALL_BLOCKING,
                               use_os_threads=True, pool="fork")

    @pytest.mark.parametrize("name", preset_names())
    def test_single_core_preserves_every_cache_field(self, name):
        """The private-view rebuild must carry every CacheParams field
        (it used to re-list them and silently drop new ones)."""
        chip = get_preset(name)
        solo = single_core(chip)
        pairs = [(chip.l1d, solo.l1d), (chip.l2, solo.l2)]
        if chip.l3 is not None:
            pairs.append((chip.l3, solo.l3))
        for original, rebuilt in pairs:
            for field in dataclasses.fields(original):
                expected = (1 if field.name == "shared_by"
                            else getattr(original, field.name))
                assert getattr(rebuilt, field.name) == expected

    def test_cli_choices_track_the_preset_registry(self):
        """The serve/tune/asym choice lists must derive from PRESETS —
        a new preset must never require editing cli.py."""
        import argparse

        from repro.cli import build_parser
        from repro.serve.presets import WARM_PRESETS
        from repro.serve.query import MACHINE_PRESETS

        assert MACHINE_PRESETS == preset_names()
        assert WARM_PRESETS == preset_names() + ("all",)
        parser = build_parser()
        (sub,) = [a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction)]

        def choices(command, flag):
            for action in sub.choices[command]._actions:
                if flag in action.option_strings:
                    return list(action.choices)
            raise AssertionError(f"{command} has no {flag}")

        assert choices("serve", "--warm") == list(preset_names()) + ["all"]
        assert choices("tune", "--machine") == list(preset_names())
        assert choices("asym", "--machine") == list(preset_names())


class TestEnergyModel:
    def test_simulate_reports_energy(self):
        for chip in (XGENE, BIG_LITTLE):
            perf = GemmSimulator(chip).simulate(
                "OpenBLAS-8x6", 256, 256, 256, threads=2
            )
            assert perf.joules > 0
            assert perf.gflops_per_watt > 0
            assert set(perf.energy_breakdown) == {
                "fma", "load", "miss", "idle"
            }
            assert perf.joules == pytest.approx(
                sum(perf.energy_breakdown.values())
            )

    def test_energy_rejects_nonpositive_cycles(self):
        with pytest.raises(SimulationError):
            dgemm_energy(XGENE, flops=1e6, l1_loads=1e5,
                         bytes_offchip=1e4, cycles=0)

    def test_idle_energy_charged_for_straggler_wait(self):
        est = dgemm_energy(
            XGENE, flops=1e9, l1_loads=1e8, bytes_offchip=1e6,
            cycles=1000, per_thread_cycles=[1000, 200],
        )
        assert est.breakdown["idle"] > 0

    def test_serve_answer_carries_energy_fields(self):
        from repro.serve.engine import compute_answer
        from repro.serve.query import query_key

        canonical, key = query_key(
            {"kind": "simulate", "machine": "big_little"}
        )
        perf = compute_answer(canonical, key)["stats"]["performance"]
        assert perf["joules"] > 0
        assert perf["gflops_per_watt"] > 0


class TestClassBlocking:
    def test_symmetric_chip_matches_flat_solver(self):
        flat = solve_cache_blocking(XGENE, 8, 6, threads=8)
        assert solve_class_blockings(XGENE, 8, 6, threads=8) == {
            "all": flat
        }

    def test_big_little_solves_per_class(self):
        per_class = solve_class_blockings(BIG_LITTLE, 8, 6, threads=6)
        assert set(per_class) == {"big", "LITTLE"}
        big, little = per_class["big"], per_class["LITTLE"]
        # The LITTLE L1/L2 are smaller: kc and mc must shrink with them.
        assert little.kc < big.kc
        assert little.mc < big.mc
        # nc comes from the shared L3: the LITTLE class's shallower kc
        # leaves room for proportionally more B-panel columns.
        assert little.nc > big.nc

    def test_thread_subset_only_solves_occupied_classes(self):
        per_class = solve_class_blockings(BIG_LITTLE, 8, 6, threads=2)
        assert set(per_class) == {"big"}


class TestExhibit:
    def test_weighted_beats_symmetric_at_full_size(self):
        doc = asym_exhibit(smoke=True)
        (entry,) = doc["sizes"]
        placements = entry["placements"]
        assert entry["weighted_speedup"] > 1.0
        assert (placements["all-weighted"]["gflops"]
                > placements["all-symmetric"]["gflops"])
        # The energy frontier: LITTLE-only wins Gflops/W, weighted
        # strictly improves both axes over the symmetric split.
        assert (placements["LITTLE-only"]["gflops_per_watt"]
                > placements["all-weighted"]["gflops_per_watt"])
        assert (placements["all-weighted"]["joules"]
                < placements["all-symmetric"]["joules"])

    def test_class_rates_order_big_over_little(self):
        rates = class_rates(BIG_LITTLE)
        assert rates["big"] > rates["LITTLE"]

    def test_symmetric_chip_degenerates_cleanly(self):
        doc = asym_exhibit(chip=XGENE, sizes=(1024,))
        assert list(doc["classes"]) == ["all"]
        assert doc["sizes"][0]["weighted_speedup"] == pytest.approx(1.0)

    def test_partition_model_conserves_slabs(self):
        out = partition_model(
            BIG_LITTLE, 4096, 4096, 4096,
            list(BIG_LITTLE.thread_clusters(6)), weighted=True,
        )
        assert sum(out["counts"]) == out["slabs"]
        assert sum(out["class_slabs"].values()) == out["slabs"]


class TestMachineDocRoundTrip:
    @pytest.mark.parametrize("name", preset_names())
    def test_presets_round_trip_through_machine_docs(self, name):
        from repro.verify.machines import build_chip, chip_doc

        chip = PRESETS[name]
        rebuilt = build_chip(chip_doc(chip))
        assert rebuilt.cores == chip.cores
        assert rebuilt.core == chip.core
        assert rebuilt.l1d == chip.l1d
        assert rebuilt.l2 == chip.l2
        assert rebuilt.l3 == chip.l3
        assert rebuilt.clusters == chip.clusters
        assert rebuilt.is_asymmetric == chip.is_asymmetric

    def test_random_asym_machines_validate_and_rebuild(self):
        import random

        from repro.verify.machines import build_chip, random_asym_machine

        rng = random.Random(7)
        for _ in range(20):
            chip = build_chip(random_asym_machine(rng))
            assert isinstance(chip, ChipParams)
            assert chip.is_asymmetric


class TestTlbSurfacing:
    def test_hierarchy_snapshot_flags_tlb_presence(self):
        from repro.memory.hierarchy import MemoryHierarchy
        from repro.obs import snapshot_hierarchy

        modeled = snapshot_hierarchy(
            MemoryHierarchy(XGENE, with_tlb=True, seed=0)
        )
        # The mobile preset omits the TLB on purpose: even when the
        # hierarchy asks for one, the report must say none was modeled.
        omitted = snapshot_hierarchy(
            MemoryHierarchy(MOBILE_SOC, with_tlb=True, seed=0)
        )
        disabled = snapshot_hierarchy(MemoryHierarchy(XGENE, seed=0))
        assert modeled["tlb_modeled"] is True
        assert omitted["tlb_modeled"] is False
        assert disabled["tlb_modeled"] is False
        assert "tlb" not in omitted and "tlb" not in disabled
