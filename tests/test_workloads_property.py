"""Property-based tests (hypothesis) for the workload families.

The devito ``test_cache_blocking`` pattern: cache-blocked and unblocked
executions must be **bit-equal** for every block shape, including blocks
that do not divide the iteration space (remainder tiles). The same
discipline applies to the convolution lowerings — im2col + DGEMM vs the
directly-blocked gather nest — and to the cache-walk engines.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import assume, given, settings

from repro.arch.presets import XGENE
from repro.blocking.cache_blocking import CacheBlocking
from repro.workloads import (
    ConvSpec,
    ConvWorkload,
    StencilSpec,
    StencilWorkload,
    conv_direct,
    conv_im2col,
    conv_reference,
    simulate_workload_cache,
    stencil_blocked,
    stencil_reference,
    unblocked_conv_blocking,
)

TILE = st.sampled_from([(8, 6), (8, 4), (4, 4), (2, 2), (5, 3)])
SEED = st.integers(0, 2**16)


def _grid(h, w, seed):
    return np.random.default_rng(seed).standard_normal((h, w))


def _conv_operands(spec, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.cin, spec.height, spec.width))
    w = rng.standard_normal((spec.filters, spec.cin, spec.kh, spec.kw))
    return x, w


class TestStencilBlockedEqualsUnblocked:
    @given(st.integers(3, 20), st.integers(3, 20), st.integers(1, 2),
           st.integers(1, 9), st.integers(1, 9), st.integers(1, 3), SEED)
    @settings(max_examples=60)
    def test_bit_equal_any_block_shape(
        self, h, w, radius, bi, bj, iterations, seed
    ):
        assume(h > 2 * radius and w > 2 * radius)
        spec = StencilSpec(radius=radius, iterations=iterations)
        grid = _grid(h, w, seed)
        assert np.array_equal(
            stencil_blocked(grid, spec, (bi, bj)),
            stencil_reference(grid, spec),
        )

    @given(st.integers(4, 16), st.integers(4, 16),
           st.floats(-1.0, 1.0, allow_nan=False), SEED)
    @settings(max_examples=25)
    def test_blockings_agree_with_each_other(self, h, w, alpha, seed):
        """Any two blockings of the same sweep produce identical bits."""
        spec = StencilSpec(radius=1, alpha=alpha, iterations=2)
        grid = _grid(h, w, seed)
        a = stencil_blocked(grid, spec, (2, 3))
        b = stencil_blocked(grid, spec, (5, 7))
        assert np.array_equal(a, b)


class TestConvLoweringEquivalence:
    @given(st.integers(1, 3), st.integers(0, 6), st.integers(0, 6),
           st.integers(1, 3), st.integers(1, 3), st.integers(1, 7),
           TILE, st.sampled_from([2, 3, 5, 8]),
           st.sampled_from([4, 6, 10]), st.sampled_from([4, 6, 9]), SEED)
    @settings(max_examples=30)
    def test_direct_bit_equals_im2col_any_blocking(
        self, cin, dh, dw, kh, kw, filters, tile, kc, mc, nc, seed
    ):
        spec = ConvSpec(cin=cin, height=kh + dh, width=kw + dw,
                        kh=kh, kw=kw, filters=filters)
        mr, nr = tile
        blocking = CacheBlocking(mr=mr, nr=nr, kc=kc, mc=max(mc, mr),
                                 nc=max(nc, nr), k1=1, k2=1, k3=1)
        x, w = _conv_operands(spec, seed)
        direct = conv_direct(x, w, blocking)
        lowered = conv_im2col(x, w, blocking)
        assert np.array_equal(direct, lowered)
        assert np.allclose(lowered, conv_reference(x, w), atol=1e-9)

    @given(st.integers(1, 2), st.integers(0, 5), st.integers(0, 5),
           st.integers(1, 3), st.integers(1, 3), st.integers(1, 7),
           TILE, st.sampled_from([2, 4, 7]), st.integers(1, 3),
           st.integers(1, 3), SEED)
    @settings(max_examples=30)
    def test_blocked_bit_equals_unblocked_conforming(
        self, cin, dh, dw, kh, kw, filters, tile, kc, mtiles, ntiles, seed
    ):
        """Splitting mc/nc is invisible when mr/nr/kc are shared and the
        block extents are whole multiples of the register tile."""
        spec = ConvSpec(cin=cin, height=kh + dh, width=kw + dw,
                        kh=kh, kw=kw, filters=filters)
        mr, nr = tile
        blocking = CacheBlocking(mr=mr, nr=nr, kc=kc, mc=mtiles * mr,
                                 nc=ntiles * nr, k1=1, k2=1, k3=1)
        unblocked = unblocked_conv_blocking(spec, blocking)
        x, w = _conv_operands(spec, seed)
        assert np.array_equal(conv_im2col(x, w, blocking),
                              conv_im2col(x, w, unblocked))


class TestCacheWalkIdentity:
    """The batched cache walk is bit-identical to the scalar oracle on
    workload-shaped streams (strided grids, packing interleaves)."""

    @given(st.integers(4, 10), st.integers(4, 14), st.integers(1, 6),
           st.integers(1, 6), SEED)
    @settings(max_examples=10)
    def test_stencil_walk(self, h, w, bi, bj, seed):
        wl = StencilWorkload(h, w, StencilSpec(radius=1, iterations=1),
                             block=(bi, bj), seed=seed)
        batched = simulate_workload_cache(wl, XGENE, engine="batched", seed=0)
        scalar = simulate_workload_cache(wl, XGENE, engine="scalar", seed=0)
        assert batched == scalar

    @given(st.sampled_from(["im2col", "direct"]), st.integers(0, 3),
           st.integers(1, 4), TILE, SEED)
    @settings(max_examples=8)
    def test_conv_walk(self, lowering, extent, filters, tile, seed):
        spec = ConvSpec(cin=1, height=3 + extent, width=3 + extent,
                        kh=3, kw=3, filters=filters)
        mr, nr = tile
        blocking = CacheBlocking(mr=mr, nr=nr, kc=4, mc=2 * mr, nc=2 * nr,
                                 k1=1, k2=1, k3=1)
        wl = ConvWorkload(spec, lowering, blocking, seed=seed)
        batched = simulate_workload_cache(wl, XGENE, engine="batched", seed=0)
        scalar = simulate_workload_cache(wl, XGENE, engine="scalar", seed=0)
        assert batched == scalar
