"""Unit tests for architecture parameter dataclasses and the X-Gene preset."""

import pytest

from repro.arch import (
    KB,
    MB,
    XGENE,
    CacheParams,
    ChipParams,
    CoreParams,
    DramParams,
    ReplacementPolicy,
    single_core,
)
from repro.errors import ArchitectureError


class TestCacheParams:
    def test_xgene_l1_geometry(self):
        l1 = XGENE.l1d
        assert l1.size_bytes == 32 * KB
        assert l1.ways == 4
        assert l1.line_bytes == 64
        assert l1.num_sets == 128
        assert l1.num_lines == 512
        assert l1.way_bytes == 8 * KB

    def test_xgene_l2_geometry(self):
        l2 = XGENE.l2
        assert l2.size_bytes == 256 * KB
        assert l2.ways == 16
        assert l2.num_sets == 256
        assert l2.shared_by == 2

    def test_xgene_l3_geometry(self):
        l3 = XGENE.l3
        assert l3.size_bytes == 8 * MB
        assert l3.ways == 16
        assert l3.shared_by == 8

    def test_lines_for_rounds_up(self):
        l1 = XGENE.l1d
        assert l1.lines_for(0) == 0
        assert l1.lines_for(1) == 1
        assert l1.lines_for(64) == 1
        assert l1.lines_for(65) == 2

    def test_lines_for_rejects_negative(self):
        with pytest.raises(ArchitectureError):
            XGENE.l1d.lines_for(-1)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ArchitectureError):
            CacheParams(name="bad", size_bytes=1000, line_bytes=64, ways=4,
                        latency_cycles=1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ArchitectureError):
            CacheParams(name="bad", size_bytes=32 * KB, line_bytes=64, ways=4,
                        latency_cycles=-1)


class TestCoreParams:
    def test_xgene_peak_flops_per_core(self):
        # 2.4 GHz x 1 FMA pipe x 2 lanes x 2 flops = 4.8 Gflops (paper Sec II-A)
        assert XGENE.core.peak_flops == pytest.approx(4.8e9)

    def test_doubles_per_register(self):
        assert XGENE.core.doubles_per_register == 2

    def test_invalid_issue_width(self):
        with pytest.raises(ArchitectureError):
            CoreParams(issue_width=0)

    def test_invalid_register_width(self):
        with pytest.raises(ArchitectureError):
            CoreParams(fp_register_bytes=10)


class TestChipParams:
    def test_xgene_chip_peak(self):
        # 8 cores x 4.8 = 38.4 Gflops (the denominator of all efficiencies)
        assert XGENE.peak_flops == pytest.approx(38.4e9)

    def test_peak_flops_for_threads(self):
        assert XGENE.peak_flops_for(1) == pytest.approx(4.8e9)
        assert XGENE.peak_flops_for(8) == pytest.approx(38.4e9)

    def test_peak_flops_for_bad_thread_count(self):
        with pytest.raises(ArchitectureError):
            XGENE.peak_flops_for(0)
        with pytest.raises(ArchitectureError):
            XGENE.peak_flops_for(9)

    def test_modules(self):
        assert XGENE.modules == 4

    def test_cache_levels_order(self):
        names = [c.name for c in XGENE.cache_levels]
        assert names == ["L1D", "L2", "L3"]

    def test_sharing_validation(self):
        with pytest.raises(ArchitectureError):
            ChipParams(
                name="bad",
                cores=8,
                cores_per_module=2,
                core=XGENE.core,
                l1d=XGENE.l1d,
                l2=CacheParams(name="L2", size_bytes=256 * KB, line_bytes=64,
                               ways=16, latency_cycles=12, shared_by=4),
                l3=XGENE.l3,
            )

    def test_cores_must_divide_into_modules(self):
        with pytest.raises(ArchitectureError):
            ChipParams(
                name="bad", cores=7, cores_per_module=2, core=XGENE.core,
                l1d=XGENE.l1d, l2=XGENE.l2, l3=XGENE.l3,
            )


class TestSingleCore:
    def test_single_core_view(self):
        chip = single_core(XGENE)
        assert chip.cores == 1
        assert chip.modules == 1
        assert chip.l2.shared_by == 1
        assert chip.l3.shared_by == 1
        # Cache sizes are preserved: the lone thread owns the full hierarchy.
        assert chip.l2.size_bytes == XGENE.l2.size_bytes
        assert chip.l3.size_bytes == XGENE.l3.size_bytes

    def test_single_core_without_l3(self):
        base = single_core(XGENE)
        no_l3 = ChipParams(
            name="two-level", cores=1, cores_per_module=1, core=base.core,
            l1d=base.l1d, l2=base.l2, l3=None,
        )
        assert single_core(no_l3).l3 is None
        assert len(no_l3.cache_levels) == 2


class TestDramParams:
    def test_defaults(self):
        d = DramParams()
        assert d.bridges == 2

    def test_invalid(self):
        with pytest.raises(ArchitectureError):
            DramParams(latency_cycles=0)
        with pytest.raises(ArchitectureError):
            DramParams(bridges=0)
