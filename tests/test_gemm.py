"""Unit and integration tests for the functional Goto DGEMM."""

import numpy as np
import pytest

from repro.blocking import CacheBlocking, solve_cache_blocking
from repro.arch import XGENE
from repro.errors import GemmError
from repro.gemm import (
    DEFAULT_BLOCKING,
    GemmTrace,
    dgemm,
    gebp,
    gess,
    naive_dgemm,
    num_slivers,
    numpy_dgemm,
    pack_a,
    pack_b,
    packed_a_bytes,
    packed_b_bytes,
    parallel_dgemm,
    unpack_a,
    unpack_b,
)

RNG = np.random.default_rng(12345)


def fmat(m, n):
    """Column-major random matrix (the paper's storage order)."""
    return np.asfortranarray(RNG.standard_normal((m, n)))


SMALL_BLOCKING = CacheBlocking(
    mr=8, nr=6, kc=64, mc=24, nc=48, k1=1, k2=2, k3=1
)


class TestPacking:
    def test_pack_a_layout(self):
        a = fmat(16, 4)
        packed = pack_a(a, 8)
        assert packed.shape == (2, 4, 8)
        # out[s, k, i] == A[s*8 + i, k]
        assert packed[0, 2, 3] == a[3, 2]
        assert packed[1, 1, 5] == a[13, 1]

    def test_pack_a_padding(self):
        a = fmat(10, 3)
        packed = pack_a(a, 8)
        assert packed.shape == (2, 3, 8)
        assert np.all(packed[1, :, 2:] == 0.0)

    def test_pack_b_layout(self):
        b = fmat(5, 12)
        packed = pack_b(b, 6)
        assert packed.shape == (2, 5, 6)
        assert packed[0, 3, 4] == b[3, 4]
        assert packed[1, 2, 1] == b[2, 7]

    def test_pack_b_padding(self):
        b = fmat(4, 8)
        packed = pack_b(b, 6)
        assert np.all(packed[1, :, 2:] == 0.0)

    def test_pack_unpack_roundtrip(self):
        a = fmat(21, 13)
        assert np.array_equal(unpack_a(pack_a(a, 8), 21), a)
        b = fmat(13, 31)
        assert np.array_equal(unpack_b(pack_b(b, 6), 31), b)

    def test_packed_buffer_is_contiguous(self):
        packed = pack_a(fmat(16, 8), 8)
        assert packed.flags.c_contiguous

    def test_num_slivers(self):
        assert num_slivers(56, 8) == 7
        assert num_slivers(57, 8) == 8
        assert num_slivers(0, 8) == 0
        with pytest.raises(GemmError):
            num_slivers(10, 0)

    def test_packed_sizes(self):
        # 56x512 block of A packed with mr=8: 7 slivers (paper geometry).
        assert packed_a_bytes(56, 512, 8) == 7 * 512 * 8 * 8
        assert packed_b_bytes(512, 1920, 6) == 320 * 512 * 6 * 8

    def test_pack_rejects_bad_input(self):
        with pytest.raises(GemmError):
            pack_a(np.zeros(5), 8)
        with pytest.raises(GemmError):
            pack_b(np.zeros((4, 4)), -1)


class TestGess:
    def test_rank_update(self):
        kc, mr, nr = 32, 8, 6
        a = RNG.standard_normal((kc, mr))
        b = RNG.standard_normal((kc, nr))
        c = np.zeros((mr, nr))
        gess(a, b, c)
        assert np.allclose(c, a.T @ b)

    def test_partial_tile(self):
        a = RNG.standard_normal((16, 8))
        b = RNG.standard_normal((16, 6))
        c = np.zeros((5, 4))  # ragged C tile
        gess(a, b, c)
        assert np.allclose(c, a[:, :5].T @ b[:, :4])

    def test_kc_mismatch(self):
        with pytest.raises(GemmError):
            gess(np.zeros((4, 8)), np.zeros((5, 6)), np.zeros((8, 6)))


class TestGebp:
    def test_block_panel_product(self):
        mc, kc, nc = 24, 32, 30
        a = fmat(mc, kc)
        b = fmat(kc, nc)
        c = np.zeros((mc, nc), order="F")
        gebp(pack_a(a, 8), pack_b(b, 6), c, 8, 6)
        assert np.allclose(c, a @ b)

    def test_ragged_extents(self):
        mc, kc, nc = 21, 17, 25
        a, b = fmat(mc, kc), fmat(kc, nc)
        c = np.zeros((mc, nc), order="F")
        gebp(pack_a(a, 8), pack_b(b, 6), c, 8, 6)
        assert np.allclose(c, a @ b)

    def test_accumulates(self):
        a, b = fmat(8, 4), fmat(4, 6)
        c0 = fmat(8, 6)
        c = c0.copy(order="F")
        gebp(pack_a(a, 8), pack_b(b, 6), c, 8, 6)
        assert np.allclose(c, c0 + a @ b)

    def test_mismatched_buffers(self):
        with pytest.raises(GemmError):
            gebp(pack_a(fmat(8, 4), 8), pack_b(fmat(5, 6), 6),
                 np.zeros((8, 6)), 8, 6)
        with pytest.raises(GemmError):
            gebp(pack_a(fmat(8, 4), 4), pack_b(fmat(4, 6), 6),
                 np.zeros((8, 6)), 8, 6)


class TestDgemm:
    @pytest.mark.parametrize("shape", [
        (1, 1, 1), (8, 6, 1), (64, 64, 64), (65, 67, 63),
        (130, 97, 150), (16, 200, 16),
    ])
    def test_matches_numpy(self, shape):
        m, n, k = shape
        a, b, c = fmat(m, k), fmat(k, n), fmat(m, n)
        ref = numpy_dgemm(a, b, c)
        got = dgemm(a, b, c.copy(order="F"), blocking=SMALL_BLOCKING)
        assert np.allclose(got, ref, atol=1e-10)

    def test_alpha_beta(self):
        a, b, c = fmat(40, 30), fmat(30, 20), fmat(40, 20)
        ref = numpy_dgemm(a, b, c, alpha=2.5, beta=-0.5)
        got = dgemm(a, b, c.copy(order="F"), alpha=2.5, beta=-0.5,
                    blocking=SMALL_BLOCKING)
        assert np.allclose(got, ref, atol=1e-10)

    def test_alpha_zero_scales_only(self):
        a, b, c = fmat(8, 8), fmat(8, 8), fmat(8, 8)
        got = dgemm(a, b, c.copy(order="F"), alpha=0.0, beta=3.0)
        assert np.allclose(got, 3.0 * c)

    def test_beta_applied_once_across_k_blocks(self):
        """K spans several kc blocks; beta must scale C exactly once."""
        m, n, k = 16, 12, 200  # k > 3 * kc for the small blocking
        a, b, c = fmat(m, k), fmat(k, n), fmat(m, n)
        ref = numpy_dgemm(a, b, c, beta=0.25)
        got = dgemm(a, b, c.copy(order="F"), beta=0.25,
                    blocking=SMALL_BLOCKING)
        assert np.allclose(got, ref, atol=1e-10)

    def test_default_blocking_is_papers(self):
        assert (DEFAULT_BLOCKING.kc, DEFAULT_BLOCKING.mc,
                DEFAULT_BLOCKING.nc) == (512, 56, 1920)

    def test_matches_naive_reference(self):
        a, b, c = fmat(9, 7), fmat(7, 11), fmat(9, 11)
        ref = naive_dgemm(a, b, c, alpha=1.5, beta=0.5)
        got = dgemm(a, b, c.copy(order="F"), alpha=1.5, beta=0.5,
                    blocking=SMALL_BLOCKING)
        assert np.allclose(got, ref, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(GemmError):
            dgemm(fmat(4, 5), fmat(6, 4), fmat(4, 4))
        with pytest.raises(GemmError):
            dgemm(fmat(4, 5), fmat(5, 4), fmat(3, 4))

    def test_trace_records_structure(self):
        m, n, k = 100, 100, 100
        trace = GemmTrace()
        dgemm(fmat(m, k), fmat(k, n), fmat(m, n), blocking=SMALL_BLOCKING,
              trace=trace)
        assert trace.m == m and trace.flops == 2 * m * n * k
        # jj panels: ceil(100/48)=3; kk blocks: ceil(100/64)=2;
        # ii blocks: ceil(100/24)=5.
        assert len(trace.gebps) == 3 * 2 * 5
        assert len([p for p in trace.packs if p.operand == "B"]) == 6
        assert len([p for p in trace.packs if p.operand == "A"]) == 30


class TestParallelDgemm:
    @pytest.mark.parametrize("threads", [1, 2, 3, 8])
    def test_matches_numpy(self, threads):
        m, n, k = 120, 90, 70
        a, b, c = fmat(m, k), fmat(k, n), fmat(m, n)
        ref = numpy_dgemm(a, b, c)
        got = parallel_dgemm(a, b, c.copy(order="F"), threads=threads,
                             blocking=SMALL_BLOCKING)
        assert np.allclose(got, ref, atol=1e-10)

    def test_os_threads_same_result(self):
        m, n, k = 96, 64, 48
        a, b, c = fmat(m, k), fmat(k, n), fmat(m, n)
        seq = parallel_dgemm(a, b, c.copy(order="F"), threads=4,
                             blocking=SMALL_BLOCKING)
        par = parallel_dgemm(a, b, c.copy(order="F"), threads=4,
                             blocking=SMALL_BLOCKING, use_os_threads=True)
        assert np.array_equal(seq, par)

    def test_alpha_beta(self):
        a, b, c = fmat(50, 40), fmat(40, 30), fmat(50, 30)
        ref = numpy_dgemm(a, b, c, alpha=-1.0, beta=2.0)
        got = parallel_dgemm(a, b, c.copy(order="F"), threads=2,
                             alpha=-1.0, beta=2.0, blocking=SMALL_BLOCKING)
        assert np.allclose(got, ref, atol=1e-10)

    def test_round_robin_distribution(self):
        trace = GemmTrace()
        m = 24 * 7  # 7 row blocks over 3 threads -> 3,2,2
        a, b, c = fmat(m, 32), fmat(32, 48), fmat(m, 48)
        parallel_dgemm(a, b, c, threads=3, blocking=SMALL_BLOCKING,
                       trace=trace)
        counts = [
            len([g for g in trace.gebps if g.thread == t]) for t in range(3)
        ]
        assert counts == [3, 2, 2]

    def test_default_blocking_derived_for_threads(self):
        trace = GemmTrace()
        a, b, c = fmat(64, 64), fmat(64, 64), fmat(64, 64)
        got = parallel_dgemm(a, b, c.copy(order="F"), threads=8, trace=trace)
        assert np.allclose(got, numpy_dgemm(a, b, c), atol=1e-10)
        assert trace.threads == 8

    def test_thread_validation(self):
        a, b, c = fmat(8, 8), fmat(8, 8), fmat(8, 8)
        with pytest.raises(GemmError):
            parallel_dgemm(a, b, c, threads=0)
        with pytest.raises(GemmError):
            parallel_dgemm(a, b, c, threads=9)


class TestTraceAccounting:
    def test_flops_property(self):
        t = GemmTrace()
        t.record_gebp(8, 4, 6)
        t.record_gebp(8, 4, 6)
        assert t.flops == 2 * 2 * 8 * 4 * 6

    def test_pack_accounting(self):
        t = GemmTrace()
        t.record_pack("A", 56, 512, thread=1)
        t.record_pack("B", 512, 1920)
        assert t.packed_a_elements == 56 * 512
        assert t.packed_b_elements == 512 * 1920

    def test_events_for_thread(self):
        t = GemmTrace()
        t.record_pack("A", 8, 8, thread=2)
        t.record_gebp(8, 8, 8, thread=2)
        t.record_gebp(8, 8, 8, thread=0)
        packs, gebps = t.events_for_thread(2)
        assert len(packs) == 1 and len(gebps) == 1


class TestBetaZeroSemantics:
    """BLAS: beta = 0 overwrites C without reading it (NaN-safe)."""

    def test_dgemm_beta_zero_ignores_nan(self):
        a, b = fmat(8, 8), fmat(8, 8)
        c = np.full((8, 8), np.nan, order="F")
        out = dgemm(a, b, c, alpha=1.0, beta=0.0, blocking=SMALL_BLOCKING)
        assert not np.isnan(out).any()
        assert np.allclose(out, a @ b, atol=1e-12)

    def test_parallel_beta_zero_ignores_nan(self):
        a, b = fmat(30, 30), fmat(30, 30)
        c = np.full((30, 30), np.nan, order="F")
        out = parallel_dgemm(a, b, c, threads=3, alpha=1.0, beta=0.0,
                             blocking=SMALL_BLOCKING)
        assert not np.isnan(out).any()

    def test_alpha_zero_beta_zero_gives_zeros(self):
        a, b = fmat(4, 4), fmat(4, 4)
        c = np.full((4, 4), np.inf, order="F")
        out = dgemm(a, b, c, alpha=0.0, beta=0.0)
        assert np.array_equal(out, np.zeros((4, 4)))

    def test_sgemm_beta_zero_ignores_nan(self):
        from repro.gemm import sgemm

        a = np.ones((8, 8), dtype=np.float32)
        b = np.ones((8, 8), dtype=np.float32)
        c = np.full((8, 8), np.nan, dtype=np.float32)
        out = sgemm(a, b, c, alpha=1.0, beta=0.0)
        assert not np.isnan(out).any()


class TestParallelAxisN:
    """Layer-1 parallelization (the Fig. 9 ablation) — numerics."""

    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_axis_n_matches_numpy(self, threads):
        m, n, k = 110, 140, 60
        a, b, c = fmat(m, k), fmat(k, n), fmat(m, n)
        got = parallel_dgemm(a, b, c.copy(order="F"), threads=threads,
                             blocking=SMALL_BLOCKING, axis="n")
        assert np.allclose(got, numpy_dgemm(a, b, c), atol=1e-10)

    def test_axis_n_alpha_beta(self):
        a, b, c = fmat(40, 30), fmat(30, 50), fmat(40, 50)
        got = parallel_dgemm(a, b, c.copy(order="F"), threads=3,
                             alpha=2.0, beta=-1.0,
                             blocking=SMALL_BLOCKING, axis="n")
        assert np.allclose(got, 2 * (a @ b) - c, atol=1e-10)

    def test_axis_n_trace_ownership(self):
        """Each column panel's B pack belongs to its owning thread."""
        trace = GemmTrace()
        m, n, k = 48, 48 * 4, 32  # 4 column panels of nc=48
        parallel_dgemm(fmat(m, k), fmat(k, n), fmat(m, n), threads=2,
                       blocking=SMALL_BLOCKING, axis="n", trace=trace)
        b_threads = {p.thread for p in trace.packs if p.operand == "B"}
        assert b_threads == {0, 1}

    def test_axis_n_synthetic_trace_matches(self):
        from repro.sim import synthesize_trace

        m, n, k = 100, 200, 60
        trace = GemmTrace()
        parallel_dgemm(fmat(m, k), fmat(k, n), fmat(m, n), threads=3,
                       blocking=SMALL_BLOCKING, axis="n", trace=trace)
        synth = synthesize_trace(m, n, k, SMALL_BLOCKING, threads=3,
                                 axis="n")
        assert synth.gebps == trace.gebps
        assert synth.packs == trace.packs

    def test_invalid_axis(self):
        a, b, c = fmat(8, 8), fmat(8, 8), fmat(8, 8)
        with pytest.raises(GemmError):
            parallel_dgemm(a, b, c, threads=2, axis="k")
