"""Unit tests for the analytic block-size engine (paper Sec. IV).

The ground truth is the paper itself: Fig. 5 (register blocking surface),
the derivations in Sec. IV-B/IV-C, and every row of Table III.
"""

import pytest

from repro.arch import XGENE, CoreParams, single_core
from repro.blocking import (
    CacheBlocking,
    PrefetchPlan,
    RegisterBlockingProblem,
    goto_blocking,
    plan_prefetch,
    solve_cache_blocking,
    solve_kc,
    solve_mc,
    solve_nc,
)
from repro.errors import BlockingError


class TestRegisterBlocking:
    def problem(self):
        return RegisterBlockingProblem(nf=32, pf=16, element_size=8)

    def test_paper_optimum(self):
        """Fig. 5: the optimum is 8x6 with nrf=6 and gamma=6.857."""
        best = self.problem().solve()
        assert (best.mr, best.nr) == (8, 6)
        assert best.nrf == 6
        assert best.gamma == pytest.approx(6.857, abs=1e-3)

    def test_tie_breaker_prefers_line_aligned_mr(self):
        """6x8 has the same gamma; 8x6 wins because 8 doubles = 1 line."""
        best = self.problem().solve()
        assert best.mr * 8 % 64 == 0

    def test_register_accounting_8x6(self):
        """24 C registers (v8-v31) + 8 A/B registers (v0-v7), Sec. IV-A."""
        best = self.problem().solve()
        assert best.c_registers == 24
        assert best.ab_registers == 7  # per copy; 8 available, 6 reused

    def test_budget_constraint_eq9(self):
        p = self.problem()
        # (8*6 + 2*8 + 2*6) * 8 = 608 <= (32+6)*16 = 608: exactly tight.
        assert p.register_budget_ok(8, 6, 6)
        assert not p.register_budget_ok(8, 6, 5)

    def test_nrf_constraint_eq10(self):
        p = self.problem()
        assert p.max_nrf(8, 6) == 7
        assert not p.is_feasible(8, 6, 8)

    def test_lane_constraint_eq11(self):
        p = self.problem()
        assert not p.lanes_ok(5, 5)
        assert not p.is_feasible(5, 6, 0)
        assert p.lanes_ok(4, 4)

    def test_surface_contains_paper_peak(self):
        """Fig. 5 annotates X=8, Y=6, Z=6.857."""
        surf = {(mr, nrf): g for mr, nrf, g in self.problem().surface()}
        assert surf[(8, 6)] == pytest.approx(6.857, abs=1e-3)
        # Everything on the surface is bounded by the optimum.
        assert max(surf.values()) == pytest.approx(6.857, abs=1e-3)

    def test_surface_infeasible_floor(self):
        surf = {(mr, nrf): g for mr, nrf, g in self.problem().surface()}
        # mr=16 with nrf=0: 16*nr + 2*16 + 2*nr <= 64 has no even nr >= 2.
        assert surf[(16, 0)] == 0.0

    def test_from_core(self):
        p = RegisterBlockingProblem.from_core(XGENE.core)
        assert p.nf == 32 and p.pf == 16
        assert p.solve().mr == 8

    def test_fewer_registers_shrinks_tile(self):
        """With half the registers, the best tile must be smaller."""
        p16 = RegisterBlockingProblem(nf=16, pf=16, element_size=8)
        best = p16.solve()
        assert best.mr * best.nr < 48
        assert best.gamma < 6.857

    def test_invalid_problem(self):
        with pytest.raises(BlockingError):
            RegisterBlockingProblem(nf=0)

    def test_best_nr_for_infeasible(self):
        p = self.problem()
        assert p.best_nr_for(3, 0) is None  # odd mr violates (11)
        assert p.best_nr_for(-2, 0) is None


class TestCacheBlockingPaperValues:
    """Every row of Table III, plus the k values derived in Sec. IV."""

    def test_kc_8x6(self):
        kc, k1 = solve_kc(XGENE.l1d, 8, 6)
        assert (kc, k1) == (512, 1)  # B sliver fills 3/4 of L1

    def test_kc_8x4_and_4x4(self):
        assert solve_kc(XGENE.l1d, 8, 4)[0] == 768
        assert solve_kc(XGENE.l1d, 4, 4)[0] == 768

    def test_mc_serial_8x6(self):
        mc, k2 = solve_mc(XGENE.l2, 512, 6, 8)
        assert (mc, k2) == (56, 2)  # A block fills 7/8 of L2

    def test_nc_serial_8x6(self):
        nc, k3 = solve_nc(XGENE.l3, 512, 56)
        assert (nc, k3) == (1920, 1)  # B panel fills 15/16 of L3

    @pytest.mark.parametrize(
        "mr,nr,threads,expected",
        [
            (8, 6, 1, (512, 56, 1920)),
            (8, 4, 1, (768, 32, 1280)),
            (4, 4, 1, (768, 32, 1280)),
            (8, 6, 8, (512, 24, 1792)),
            (8, 4, 8, (768, 16, 1192)),
            (4, 4, 8, (768, 16, 1192)),
        ],
    )
    def test_table_iii(self, mr, nr, threads, expected):
        b = solve_cache_blocking(XGENE, mr, nr, threads=threads)
        assert (b.kc, b.mc, b.nc) == expected

    @pytest.mark.parametrize(
        "threads,expected",
        [
            (1, (512, 56, 1920)),
            (2, (512, 56, 1920)),
            (4, (512, 56, 1792)),
            (8, (512, 24, 1792)),
        ],
    )
    def test_fig14_thread_configs(self, threads, expected):
        """Fig. 14's per-thread-count block sizes for the 8x6 kernel."""
        b = solve_cache_blocking(XGENE, 8, 6, threads=threads)
        assert (b.kc, b.mc, b.nc) == expected

    def test_parallel_l2_occupancy(self):
        """8 threads: two A blocks of 24x512 fill 3/4 of a shared L2."""
        b = solve_cache_blocking(XGENE, 8, 6, threads=8)
        two_blocks = 2 * b.mc * b.kc * 8
        assert two_blocks <= XGENE.l2.size_bytes * (16 - b.k2) / 16

    def test_parallel_l3_occupancy(self):
        """8 threads: eight A blocks fit in the k3 reserved L3 ways."""
        b = solve_cache_blocking(XGENE, 8, 6, threads=8)
        eight_blocks = 8 * b.mc * b.kc * 8
        assert eight_blocks <= XGENE.l3.size_bytes * b.k3 / 16

    def test_str_and_label(self):
        b = solve_cache_blocking(XGENE, 8, 6)
        assert str(b) == "8x6x512x56x1920"
        assert b.label == "8x6"

    def test_thread_range_validated(self):
        with pytest.raises(BlockingError):
            solve_cache_blocking(XGENE, 8, 6, threads=0)
        with pytest.raises(BlockingError):
            solve_cache_blocking(XGENE, 8, 6, threads=9)

    def test_kc_override(self):
        b = solve_cache_blocking(XGENE, 8, 6, kc_override=320)
        assert b.kc == 320
        # mc grows when kc shrinks (same L2 budget).
        assert b.mc > 56

    def test_no_l3_chip(self):
        import dataclasses
        chip = dataclasses.replace(single_core(XGENE), l3=None)
        b = solve_cache_blocking(chip, 8, 6)
        assert b.nc % 6 == 0 and b.nc > 0

    def test_infeasible_tiny_cache(self):
        import dataclasses
        tiny = dataclasses.replace(
            XGENE.l1d, size_bytes=256, ways=2
        )
        with pytest.raises(BlockingError):
            solve_kc(tiny, 8, 6)

    def test_goto_blocking_half_cache(self):
        """The [5]-style heuristic: kc*nr*8 ~ half of L1 (paper: 320)."""
        g = goto_blocking(XGENE, 8, 6)
        assert g.kc == 320
        assert g.kc * 6 * 8 <= XGENE.l1d.size_bytes // 2
        # And it differs from the associativity-aware answer.
        ours = solve_cache_blocking(XGENE, 8, 6)
        assert (g.kc, g.mc) != (ours.kc, ours.mc)


class TestPrefetchPlan:
    def test_paper_distances(self):
        """Sec. IV-B: PREFB = 24576 bytes, PREFA = 1024 bytes."""
        p = plan_prefetch(8, 6, 512)
        assert p.prefb_bytes == 24576
        assert p.prefa_bytes == 1024
        assert p.unroll == 8

    def test_validation(self):
        with pytest.raises(BlockingError):
            plan_prefetch(0, 6, 512)
