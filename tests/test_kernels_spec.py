"""Unit tests for kernel specs (instruction budgets, gammas, schedules)."""

import pytest

from repro.errors import BlockingError
from repro.kernels import (
    KERNEL_4X4,
    KERNEL_5X5_ATLAS,
    KERNEL_8X4,
    KERNEL_8X6,
    KERNEL_8X6_NO_ROTATION,
    PAPER_KERNELS,
    KernelSpec,
)


class TestKernel8x6:
    """All the Sec. IV-A facts about the 8x6 kernel."""

    def test_register_budget(self):
        k = KERNEL_8X6
        assert k.c_regs == 24          # v8..v31
        assert k.a_regs_per_copy == 4  # 8 doubles
        assert k.b_regs_per_copy == 3  # 6 doubles
        assert k.ab_regs_per_copy == 7
        assert k.rotation_pool == 8    # v0..v7
        assert k.fits_register_file(32)

    def test_instruction_budget(self):
        k = KERNEL_8X6
        assert k.fmla_per_iter == 24
        assert k.ldr_per_iter == 7
        assert k.ldr_fmla_ratio == (7, 24)
        assert k.flops_per_iter == 96
        assert k.flops_per_fmla == 4.0
        assert k.lane_efficiency == 1.0

    def test_arithmetic_fraction(self):
        # Paper Sec. V-A: 77.4% for 8x6.
        assert KERNEL_8X6.arithmetic_fraction == pytest.approx(0.774, abs=1e-3)

    def test_gamma(self):
        assert KERNEL_8X6.gamma == pytest.approx(6.857, abs=1e-3)

    def test_read_schedule_shape(self):
        reads = KERNEL_8X6.read_schedule()
        assert len(reads) == 48  # 2 reads per FMLA
        # First FMLA reads A0 and B0; last reads A3 and B2.
        assert reads[0] == ("A", 0)
        assert reads[1] == ("B", 0)
        assert reads[-2] == ("A", 3)
        assert reads[-1] == ("B", 2)

    def test_slot_names(self):
        assert KERNEL_8X6.slot_names() == [
            "A0", "A1", "A2", "A3", "B0", "B1", "B2",
        ]


class TestOtherKernels:
    def test_8x4(self):
        k = KERNEL_8X4
        assert k.fmla_per_iter == 16
        assert k.ldr_per_iter == 6
        assert k.ldr_fmla_ratio == (3, 8)  # 6:16 reduced
        assert k.arithmetic_fraction == pytest.approx(0.727, abs=1e-3)
        assert k.gamma == pytest.approx(16 / 3)

    def test_4x4(self):
        k = KERNEL_4X4
        assert k.fmla_per_iter == 8
        assert k.ldr_per_iter == 4
        assert k.ldr_fmla_ratio == (1, 2)
        assert k.arithmetic_fraction == pytest.approx(0.667, abs=1e-3)
        assert k.gamma == pytest.approx(4.0)

    def test_5x5_atlas_is_k_vectorized(self):
        """The ATLAS tile is odd: by-element FMLAs would waste lanes, so
        it is modeled as a rank-2 (k-vectorized) kernel — full lanes, but
        25 pinned C registers and no room to preload a whole group."""
        k = KERNEL_5X5_ATLAS
        assert k.k_iters_per_group == 2
        assert k.fmla_per_group == 25
        assert k.ldr_per_group == 10
        assert k.flops_per_group == 100
        assert k.flops_per_fmla == 4.0
        assert k.lane_efficiency == 1.0
        assert k.gamma == pytest.approx(5.0)
        assert k.c_regs_for_style == 25
        assert k.preload_window_limited

    def test_5x5_by_element_wastes_lanes(self):
        """A by-element 5x5 (the display twin) pays the lane waste."""
        from repro.kernels import KernelSpec

        k = KernelSpec(5, 5)
        assert k.a_regs_per_copy == 3   # ceil(5/2)
        assert k.c_regs == 15
        assert k.fmla_per_iter == 15
        assert k.flops_per_fmla == pytest.approx(50 / 15)
        assert k.lane_efficiency == pytest.approx(5 / 6)

    def test_even_kernels_full_lanes(self):
        for k in (KERNEL_8X6, KERNEL_8X4, KERNEL_4X4):
            assert k.lane_efficiency == 1.0
            assert k.k_iters_per_group == 1
            assert not k.preload_window_limited
            assert k.fmla_per_group == k.fmla_per_iter

    def test_arithmetic_fraction_ordering(self):
        """Paper Sec. V-A: 66.7% (4x4) < 72.7% (8x4) < 77.4% (8x6)."""
        assert (
            KERNEL_4X4.arithmetic_fraction
            < KERNEL_8X4.arithmetic_fraction
            < KERNEL_8X6.arithmetic_fraction
        )

    def test_gamma_ordering_matches_table_v(self):
        """gamma ordering must predict the Table V efficiency ordering."""
        gammas = {k.name: k.gamma for k in PAPER_KERNELS}
        assert gammas["8x6"] > gammas["8x4"] > gammas["5x5-atlas"] > gammas["4x4"]

    def test_no_rotation_variant(self):
        assert KERNEL_8X6_NO_ROTATION.rotated is False
        assert KERNEL_8X6_NO_ROTATION.fmla_per_iter == 24

    def test_default_name(self):
        assert KernelSpec(8, 6).name == "8x6"

    def test_invalid(self):
        with pytest.raises(BlockingError):
            KernelSpec(0, 4)

    def test_oversized_tile_rejected_by_fit(self):
        assert not KernelSpec(16, 16).fits_register_file(32)
