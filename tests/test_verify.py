"""Tests for the differential verification subsystem itself.

The harness guards every fast/reference engine pair; these tests guard
the harness — registry wiring, the exact comparator, fuzz determinism,
shrinker convergence, the mutation self-test, the CLI surface, and the
replayability of every case file committed under ``tests/cases/``.
"""

import json
import random
from pathlib import Path

import pytest

from repro.cli import main
from repro.verify import (
    BUDGETS,
    VerifyError,
    all_oracles,
    diff_documents,
    fuzz_params,
    get_oracle,
    load_case,
    mutation_self_test,
    numeric_size,
    oracles_for_suite,
    replay_case,
    run_case,
    run_suite,
    save_case,
    shrink_case,
    suites,
)
from repro.verify.fuzzer import _faulting_compare, _mutate_first_int

CASES_DIR = Path(__file__).parent / "cases"


class TestRegistry:
    def test_standing_oracles(self):
        names = [o.name for o in all_oracles()]
        assert names == [
            "gemm.pool", "cachesim.batch", "timed.compiled",
            "timed.oddtile", "cachesim.writethrough", "sweep.incremental",
            "lru.array", "serve.cache", "tune.memo", "asym.partition",
            "stencil.blocked", "conv.im2col",
        ]

    def test_suites_cover_every_oracle(self):
        per_suite = [oracles_for_suite(s) for s in suites()]
        flat = [o.name for group in per_suite for o in group]
        assert sorted(flat) == sorted(o.name for o in all_oracles())

    def test_all_suite_selects_everything(self):
        assert oracles_for_suite("all") == all_oracles()

    def test_unknown_suite_and_oracle_raise(self):
        with pytest.raises(VerifyError):
            oracles_for_suite("nope")
        with pytest.raises(VerifyError):
            get_oracle("no.such")


class TestComparator:
    def test_identical_documents_match(self):
        doc = {"a": [1, 2.5, "x"], "b": {"c": True, "d": None}}
        assert diff_documents(doc, dict(doc)) == []

    def test_leaf_difference_reports_path(self):
        out = diff_documents({"a": {"b": [1, 2]}}, {"a": {"b": [1, 3]}})
        assert out == ["a.b[1]: 2 != 3"]

    def test_missing_keys_both_directions(self):
        out = diff_documents({"a": 1}, {"b": 1})
        assert "a: missing in fast" in out
        assert "b: missing in reference" in out

    def test_length_mismatch(self):
        assert diff_documents([1, 2], [1, 2, 3]) == [
            "<root>: length 2 != 3"
        ]

    def test_type_drift_is_a_difference(self):
        # An int counter turning float is engine divergence, not noise.
        assert diff_documents({"n": 1}, {"n": 1.0})
        assert diff_documents({"n": True}, {"n": 1})

    def test_nan_never_matches(self):
        assert diff_documents({"x": float("nan")}, {"x": float("nan")})

    def test_limit_caps_output(self):
        a = {str(i): i for i in range(100)}
        b = {str(i): i + 1 for i in range(100)}
        assert len(diff_documents(a, b, limit=5)) == 5


class TestFuzzer:
    def test_case_stream_is_seed_deterministic(self):
        for oracle in all_oracles():
            first = fuzz_params(oracle, seed=7, budget="smoke")
            again = fuzz_params(oracle, seed=7, budget="smoke")
            assert first == again
            assert first != fuzz_params(oracle, seed=8, budget="smoke")

    def test_cases_are_json_roundtrippable(self):
        for oracle in all_oracles():
            for params in fuzz_params(oracle, seed=3, budget="smoke"):
                assert json.loads(json.dumps(params)) == params

    def test_adding_an_oracle_does_not_shift_streams(self):
        # Streams derive from (seed, oracle name), not registry order.
        oracle = get_oracle("lru.array")
        alone = fuzz_params(oracle, seed=5, budget="smoke")
        _ = fuzz_params(get_oracle("gemm.pool"), seed=5, budget="smoke")
        assert fuzz_params(oracle, seed=5, budget="smoke") == alone

    def test_unknown_budget_raises(self):
        with pytest.raises(VerifyError):
            fuzz_params(all_oracles()[0], seed=0, budget="huge")

    @pytest.mark.parametrize(
        "oracle", all_oracles(), ids=lambda o: o.name
    )
    def test_each_oracle_passes_one_smoke_case(self, oracle):
        rng = random.Random("pytest-smoke:" + oracle.name)
        outcome = run_case(oracle, oracle.generate(rng, "smoke"))
        assert outcome.ok, outcome.mismatches


class TestMutationSelfTest:
    def test_mutate_first_int_hits_exactly_one_leaf(self):
        doc = {"a": {"flag": True, "xs": [0.5, 3, 4]}, "b": 9}
        clone = json.loads(json.dumps(doc))
        assert _mutate_first_int(clone)
        diffs = diff_documents(doc, clone)
        assert len(diffs) == 1
        assert diffs == ["a.xs[1]: 3 != 4"]

    def test_mutate_skips_bools_and_floats(self):
        doc = {"flag": True, "x": 1.5}
        assert not _mutate_first_int(doc)
        assert doc == {"flag": True, "x": 1.5}

    def test_every_oracle_catches_the_injected_fault(self):
        result = mutation_self_test(all_oracles(), seed=0)
        assert result["passed"]
        for name, entry in result["oracles"].items():
            assert entry["fault_caught"], name


class TestShrinker:
    def test_refuses_to_shrink_a_passing_case(self):
        oracle = get_oracle("lru.array")
        rng = random.Random("shrink-pass")
        with pytest.raises(VerifyError):
            shrink_case(oracle, oracle.generate(rng, "smoke"))

    def test_converges_under_injected_fault(self):
        # A fault the shrinker can never remove (the comparator itself
        # is broken) should shrink toward the oracle's minimal case.
        oracle = get_oracle("lru.array")
        rng = random.Random("shrink-fault")
        params = oracle.generate(rng, "default")
        result = shrink_case(oracle, params, compare=_faulting_compare)
        assert result.mismatches
        assert result.final_size < result.initial_size
        assert result.params["length"] == 1
        assert result.params["ways"] == 1
        assert result.evaluations <= 200

    def test_shrink_candidates_differ_and_some_reduce_size(self):
        # Candidates may individually grow numeric_size (e.g. alpha
        # 0.5 -> 1.0); the shrink loop filters those. What each oracle
        # must provide: candidates that differ from the input, at least
        # one of which strictly reduces the size metric.
        for oracle in all_oracles():
            rng = random.Random("shrink-size:" + oracle.name)
            params = oracle.generate(rng, "default")
            candidates = list(oracle.shrink(params))
            assert candidates, oracle.name
            assert all(c != params for c in candidates), oracle.name
            assert any(
                numeric_size(c) < numeric_size(params)
                for c in candidates
            ), oracle.name


class TestCaseFiles:
    def test_save_load_replay_roundtrip(self, tmp_path):
        oracle = get_oracle("lru.array")
        rng = random.Random("roundtrip")
        params = oracle.generate(rng, "smoke")
        path = save_case(tmp_path, oracle.name, params, note="t")
        doc = load_case(path)
        assert doc["oracle"] == oracle.name
        assert doc["params"] == params
        assert replay_case(path).ok

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("{}")
        with pytest.raises(VerifyError):
            load_case(bad)
        bad.write_text("not json")
        with pytest.raises(VerifyError):
            load_case(bad)

    @pytest.mark.parametrize(
        "case_path",
        sorted(CASES_DIR.glob("*.json")),
        ids=lambda p: p.stem,
    )
    def test_every_committed_case_replays_clean(self, case_path):
        outcome = replay_case(case_path)
        assert outcome.ok, outcome.mismatches


class TestRunSuite:
    def test_smoke_sweep_passes_and_is_versioned(self):
        doc = run_suite(seed=0, budget="smoke", suite="all")
        assert doc["passed"]
        assert doc["verify_schema_version"] == 1
        assert set(doc["oracles"]) == {o.name for o in all_oracles()}
        for entry in doc["oracles"].values():
            assert entry["cases"] == BUDGETS["smoke"]
            assert entry["failures"] == []
        assert doc["selftest"]["passed"]

    def test_single_suite_selection(self):
        doc = run_suite(seed=0, budget="smoke", suite="lru",
                        selftest=False)
        assert list(doc["oracles"]) == ["lru.array"]
        assert "selftest" not in doc


class TestVerifyCli:
    def test_list(self, capsys):
        assert main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        for oracle in all_oracles():
            assert oracle.name in out

    def test_smoke_sweep_with_report(self, tmp_path, capsys):
        report = tmp_path / "verify.json"
        code = main([
            "verify", "--suite", "all", "--seed", "0",
            "--budget", "smoke", "--json", str(report),
        ])
        assert code == 0
        assert "verify: PASS" in capsys.readouterr().out
        doc = json.loads(report.read_text())
        assert doc["command"] == "verify"
        assert doc["stats"]["verify"]["passed"] is True

    def test_replay_committed_case(self, capsys):
        cases = sorted(CASES_DIR.glob("*.json"))
        assert cases, "expected at least one committed case file"
        assert main(["verify", "--replay", str(cases[0])]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_replay_missing_file_errors(self, capsys):
        assert main(["verify", "--replay", "/no/such/file.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_suite_errors(self, capsys):
        assert main(["verify", "--suite", "bogus"]) == 1
        assert "error:" in capsys.readouterr().err
