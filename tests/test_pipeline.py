"""Unit tests for the scoreboard pipeline and the calibrated overlap model."""

import pytest

from repro.arch import XGENE, CoreParams
from repro.errors import SimulationError
from repro.isa import Fmla, Ldr, Nop, VLane, VReg, XReg
from repro.pipeline import LoadInterferenceModel, PipelineResult, ScoreboardCore


def fmla(acc, src=0, mul=4, lane=0):
    return Fmla(acc=VReg(acc), multiplicand=VReg(src),
                multiplier=VLane(VReg(mul), lane))


def ldr(dst, base=14):
    return Ldr(dst=VReg(dst), base=XReg(base))


class TestScoreboardStructural:
    def test_single_fma_pipe_throughput(self):
        """Independent FMAs are throughput-bound: 2 cycles each (4.8 Gflops
        at 2.4 GHz means one vector FMLA every other cycle)."""
        core = ScoreboardCore(XGENE.core)
        prog = [fmla(8 + i) for i in range(16)]
        per_iter = core.steady_state_cycles_per_iteration(prog)
        assert per_iter == pytest.approx(32, abs=1.0)

    def test_issue_width_limits_nops(self):
        core = ScoreboardCore(XGENE.core)
        prog = [Nop() for _ in range(16)]
        per_iter = core.steady_state_cycles_per_iteration(prog)
        # 4-wide issue: 16 nops take ~4 cycles.
        assert per_iter == pytest.approx(4, abs=0.5)

    def test_load_port_throughput(self):
        core = ScoreboardCore(XGENE.core)
        # Independent loads from different bases: serialized by the 1 port.
        prog = [ldr(i, base=i) for i in range(8)]
        per_iter = core.steady_state_cycles_per_iteration(prog)
        assert per_iter == pytest.approx(8, abs=0.5)

    def test_loads_and_fmas_overlap_structurally(self):
        """With separate pipes, a balanced mix is FMA-bound in the scoreboard
        (the calibrated interference model adds the empirical contention)."""
        core = ScoreboardCore(XGENE.core)
        prog = []
        for i in range(8):
            prog.append(ldr(i % 4, base=10 + i % 4))
            prog.append(fmla(8 + i, src=5, mul=6))
        # 8 fmla on 1 pipe at 2 cycles each = 16 cycles; loads fit alongside.
        per_iter = core.steady_state_cycles_per_iteration(prog)
        assert per_iter == pytest.approx(16, abs=1.5)


class TestScoreboardDependences:
    def test_raw_chain_pays_latency(self):
        """Serially dependent FMAs cost the full FMA latency each."""
        core = ScoreboardCore(XGENE.core)
        # Each fmla accumulates into the same register: RAW chain.
        prog = [fmla(8) for _ in range(8)]
        res = core.run(prog)
        assert res.raw_stall_cycles > 0
        per_iter = core.steady_state_cycles_per_iteration(prog)
        assert per_iter == pytest.approx(8 * XGENE.core.fma_latency, rel=0.1)

    def test_load_to_use_stall(self):
        """An FMA reading a just-loaded register waits for load latency."""
        core = ScoreboardCore(XGENE.core)
        prog = [ldr(0), fmla(8, src=0)]
        res = core.run(prog)
        assert res.raw_stall_cycles >= XGENE.core.load_latency - 1

    def test_distant_load_hides_latency(self):
        """If >= load_latency independent FMAs separate load and use, no stall."""
        core = ScoreboardCore(XGENE.core)
        prog = [ldr(0)]
        prog += [fmla(8 + i, src=1) for i in range(6)]  # independent work
        prog += [fmla(20, src=0)]  # consumer, far away
        res = core.run(prog)
        assert res.raw_stall_cycles == 0

    def test_war_not_enforced_by_default(self):
        """Overwriting a register that a slow consumer still reads is free
        when renaming is modeled (the paper's WAR observation)."""
        core = ScoreboardCore(XGENE.core, enforce_war=False)
        prog = [fmla(8, src=0), ldr(0)]
        res = core.run(prog)
        assert res.war_stall_cycles == 0

    def test_war_enforced_when_requested(self):
        core = ScoreboardCore(XGENE.core, enforce_war=True)
        # ldr writes v0 in the same cycle fmla reads it -> no stall needed;
        # but writing a register read *later* must wait.
        prog = [ldr(0), fmla(8, src=0), ldr(0)]
        res = core.run(prog)
        assert res.war_stall_cycles >= 0  # structural sanity

    def test_repeat_validation(self):
        core = ScoreboardCore(XGENE.core)
        with pytest.raises(SimulationError):
            core.run([], repeat=0)

    def test_result_properties(self):
        core = ScoreboardCore(XGENE.core)
        res = core.run([fmla(8), fmla(9)])
        assert res.instructions == 2
        assert res.flops == 8
        assert 0 < res.ipc <= XGENE.core.issue_width
        assert 0 < res.efficiency(XGENE.core) <= 1.0


class TestInterferenceModel:
    """The model must reproduce the paper's Table IV ladder."""

    TABLE_IV = {
        (1, 1): 0.630,
        (1, 2): 0.809,
        (6, 16): 0.877,
        (1, 3): 0.887,
        (7, 24): 0.915,
        (1, 4): 0.942,
        (1, 5): 0.952,
    }

    @pytest.mark.parametrize("ratio,expected", sorted(TABLE_IV.items()))
    def test_table_iv_within_two_points(self, ratio, expected):
        model = LoadInterferenceModel()
        ldr_n, fmla_n = ratio
        eff = model.efficiency(ldr_n, fmla_n)
        assert eff == pytest.approx(expected, abs=0.02)

    def test_monotone_in_gamma(self):
        model = LoadInterferenceModel()
        gammas = [2, 4, 5, 5.33, 6, 6.86, 8, 10]
        effs = [model.efficiency_from_gamma(g) for g in gammas]
        assert effs == sorted(effs)

    def test_psi_decreasing(self):
        model = LoadInterferenceModel()
        assert model.psi(2) > model.psi(4) > model.psi(8)

    def test_psi_limits(self):
        model = LoadInterferenceModel()
        assert model.psi(0.001) == pytest.approx(1.0, abs=0.01)
        assert model.psi(1e9) == pytest.approx(0.0, abs=0.01)

    def test_no_loads_full_efficiency(self):
        model = LoadInterferenceModel()
        assert model.efficiency(0, 10) == 1.0
        assert model.stall_per_load(0, 10) == 0.0

    def test_no_fmas_zero_efficiency(self):
        model = LoadInterferenceModel()
        assert model.efficiency(10, 0) == 0.0

    def test_invalid_inputs(self):
        model = LoadInterferenceModel()
        with pytest.raises(SimulationError):
            model.load_density(0, 0)
        with pytest.raises(SimulationError):
            model.efficiency_from_gamma(0)
        with pytest.raises(SimulationError):
            model.psi(-1)

    def test_kernel_gammas_match_paper(self):
        """Register-kernel gammas from eq. (8): 6.86, 5.33, 4, 5."""
        model = LoadInterferenceModel()
        # eff ordering must match the paper's kernel ordering.
        e86 = model.efficiency_from_gamma(6.86)
        e84 = model.efficiency_from_gamma(5.33)
        e55 = model.efficiency_from_gamma(5.0)
        e44 = model.efficiency_from_gamma(4.0)
        assert e86 > e84 > e55 > e44
        # And the 8x6 upper bound is the paper's 91.5%.
        assert e86 == pytest.approx(0.915, abs=0.01)
